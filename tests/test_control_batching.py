"""Tests for shard-aware control-plane write batching (``batched_writes``).

The contract: inside the context every write is immediately visible to
control-plane reads, but each touched table/PRE bumps its write generation
exactly once at exit and rewriter register fan-out coalesces to one write per
index — and none of this changes a single observable datapath byte.
"""

import dataclasses

from repro.core.replication import ParticipantEndpoint
from repro.core.seqrewrite import SequenceRewriterLowMemory, SequenceRewriterLowRetransmission, SkipCadence
from repro.core.switch_agent import SwitchAgent
from repro.dataplane.pipeline import (
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from repro.dataplane.pre import L2Port
from repro.dataplane.sharding import ShardedScallopPipeline
from repro.netsim.datagram import Address, Datagram
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)


def _install_meeting(pipeline, meeting=0, participants=4):
    mgid = pipeline.pre.create_tree()
    addresses = [Address(f"10.3.{meeting}.{i + 2}", 6000 + i) for i in range(participants)]
    for rid, address in enumerate(addresses, start=1):
        pipeline.pre.add_node(mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True)
        pipeline.install_replica_target(mgid, rid, ReplicaTarget(address=address, participant_id=f"p{rid}"))
    ssrc = 7_000 + meeting
    pipeline.install_stream(
        (addresses[0], ssrc),
        StreamForwardingEntry(
            mode=ForwardingMode.REPLICATE, meeting_id=f"m{meeting}", sender=addresses[0],
            mgid=mgid, rid=1, l2_xid=1,
        ),
    )
    return addresses, ssrc


class TestBatchedWrites:
    def test_generations_bump_once_per_batch(self):
        pipeline = ScallopPipeline(SFU)
        versions_before = {
            "stream": pipeline.stream_table.version,
            "replica": pipeline.replica_table.version,
            "adaptation": pipeline.adaptation_table.version,
            "pre": pipeline.pre.generation,
        }
        with pipeline.batched_writes():
            addresses, ssrc = _install_meeting(pipeline)
            pipeline.install_adaptation(
                ssrc, addresses[1], frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
            )
            pipeline.install_adaptation(
                ssrc, addresses[2], frozenset({0}), SequenceRewriterLowRetransmission(SkipCadence(3, 4))
            )
            # writes are visible inside the batch...
            assert pipeline.stream_table.peek((addresses[0], ssrc)) is not None
            # ...but no generation has moved yet
            assert pipeline.stream_table.version == versions_before["stream"]
            assert pipeline.pre.generation == versions_before["pre"]
        assert pipeline.stream_table.version == versions_before["stream"] + 1
        assert pipeline.replica_table.version == versions_before["replica"] + 1
        assert pipeline.adaptation_table.version == versions_before["adaptation"] + 1
        assert pipeline.pre.generation == versions_before["pre"] + 1

    def test_untouched_tables_do_not_bump(self):
        pipeline = ScallopPipeline(SFU)
        feedback_before = pipeline.feedback_table.version
        with pipeline.batched_writes():
            _install_meeting(pipeline)
        assert pipeline.feedback_table.version == feedback_before

    def test_nested_batches_commit_at_outermost_exit(self):
        pipeline = ScallopPipeline(SFU)
        before = pipeline.stream_table.version
        with pipeline.batched_writes():
            with pipeline.install_many():
                _install_meeting(pipeline, meeting=0)
            # still inside the outer batch: no bump
            assert pipeline.stream_table.version == before
            _install_meeting(pipeline, meeting=1)
        assert pipeline.stream_table.version == before + 1

    def test_exception_still_commits_pending_bumps(self):
        pipeline = ScallopPipeline(SFU)
        before = pipeline.stream_table.version
        try:
            with pipeline.batched_writes():
                _install_meeting(pipeline)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        # the writes happened, so their (single) generation bump must land:
        # caches over the mutated tables would otherwise go stale forever
        assert pipeline.stream_table.version == before + 1

    def test_shard_register_views_fan_out_once_and_agree(self):
        engine = ShardedScallopPipeline(SFU, n_shards=4)
        with engine.batched_writes():
            addresses, ssrc = _install_meeting(engine)
            rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
            index = engine.install_adaptation(ssrc, addresses[1], frozenset({0, 1}), rewriter)
            # canonical register is current inside the batch
            assert engine.stream_trackers.peek(index) is rewriter
        for shard in engine.shards:
            assert shard.trackers.peek(index) is rewriter

    def test_batched_setup_is_datapath_equivalent(self):
        plain = ScallopPipeline(SFU)
        batched = ScallopPipeline(SFU)
        addresses_a, ssrc_a = _install_meeting(plain)
        plain.install_adaptation(
            ssrc_a, addresses_a[1], frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        with batched.batched_writes():
            addresses_b, ssrc_b = _install_meeting(batched)
            batched.install_adaptation(
                ssrc_b, addresses_b[1], frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
            )

        encoder_args = dict(target_bitrate_bps=900_000, seed=11)
        traffic_a, traffic_b = [], []
        for target, traffic, ssrc, addresses in (
            (plain, traffic_a, ssrc_a, addresses_a),
            (batched, traffic_b, ssrc_b, addresses_b),
        ):
            encoder = SvcEncoder(**encoder_args)
            packetizer = RtpPacketizer(ssrc=ssrc, seed=11)
            for index in range(8):
                for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                    traffic.append(Datagram(src=addresses[0], dst=SFU, payload=packet))
        results_a = plain.process_batch(traffic_a)
        results_b = batched.process_batch(traffic_b)
        assert [len(r.outputs) for r in results_a] == [len(r.outputs) for r in results_b]
        for result_a, result_b in zip(results_a, results_b):
            assert [o.to_bytes() for o in result_a.outputs] == [o.to_bytes() for o in result_b.outputs]
        assert dataclasses.asdict(plain.counters) == dataclasses.asdict(batched.counters)

    def test_cache_invalidation_after_batch(self):
        pipeline = ScallopPipeline(SFU)
        addresses, ssrc = _install_meeting(pipeline)
        packet = RtpPacketizer(ssrc=ssrc, seed=2).packetize(SvcEncoder(seed=2).next_frame(0.0))[0]
        first = pipeline.process_batch([Datagram(src=addresses[0], dst=SFU, payload=packet)])[0]
        assert len(first.outputs) == len(addresses) - 1
        with pipeline.batched_writes():
            # retarget one replica to a new receiver mid-run
            new_receiver = Address("10.3.99.2", 6099)
            pipeline.install_replica_target(
                pipeline.stream_table.peek((addresses[0], ssrc)).mgid,
                2,
                ReplicaTarget(address=new_receiver, participant_id="late"),
            )
        second = pipeline.process_batch([Datagram(src=addresses[0], dst=SFU, payload=packet)])[0]
        assert new_receiver in [o.dst for o in second.outputs]


class TestAgentBatchedJoins:
    def test_meeting_join_bumps_generations_once(self):
        pipeline = ScallopPipeline(SFU)
        agent = SwitchAgent(pipeline)
        participants = [
            ParticipantEndpoint(
                participant_id=f"p{i}",
                address=Address(f"10.4.0.{i + 2}", 6000 + i),
                egress_port=i + 1,
                audio_ssrc=100 + i,
                video_ssrc=200 + i,
            )
            for i in range(5)
        ]
        stream_v0 = pipeline.stream_table.version
        pre_g0 = pipeline.pre.generation
        agent.configure_meeting("meeting-x", participants)
        # a 5-party join installs dozens of entries; the datapath sees ONE
        # stream-table generation and ONE PRE generation
        assert pipeline.stream_table.version == stream_v0 + 1
        assert pipeline.pre.generation == pre_g0 + 1
        assert len(pipeline.stream_table) >= 10  # audio+video per sender

    def test_add_and_remove_participant_batched(self):
        pipeline = ScallopPipeline(SFU)
        agent = SwitchAgent(pipeline)
        base = [
            ParticipantEndpoint(
                participant_id=f"p{i}",
                address=Address(f"10.4.1.{i + 2}", 6000 + i),
                egress_port=i + 1,
                audio_ssrc=300 + i,
                video_ssrc=400 + i,
            )
            for i in range(3)
        ]
        agent.configure_meeting("meeting-y", base)
        v_joined = pipeline.stream_table.version
        late = ParticipantEndpoint(
            participant_id="late",
            address=Address("10.4.1.99", 6099),
            egress_port=9,
            audio_ssrc=390,
            video_ssrc=490,
        )
        agent.add_participant("meeting-y", late)
        assert pipeline.stream_table.version == v_joined + 1
        agent.remove_participant("meeting-y", "late")
        assert pipeline.stream_table.version == v_joined + 2
