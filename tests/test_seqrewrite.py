"""Unit tests for the S-LM / S-LR sequence-rewriting heuristics."""

import pytest

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    ideal_rewrite_map,
    ideal_rewrite_sequence,
)

REWRITERS = [SequenceRewriterLowMemory, SequenceRewriterLowRetransmission]


def feed(rewriter, events):
    """events: list of (seq, frame, forward) -> list of emitted sequence numbers."""
    emitted = []
    for seq, frame, forward in events:
        out = rewriter.on_packet(seq, frame, forward)
        if out is not None:
            emitted.append(out)
    return emitted


class TestSkipCadence:
    def test_ratio(self):
        assert SkipCadence(1, 2).ratio == 0.5
        assert SkipCadence(0, 1).ratio == 0.0

    def test_for_decode_target(self):
        assert SkipCadence.for_decode_target(2).ratio == 0.0
        assert SkipCadence.for_decode_target(1).ratio == 0.5
        assert SkipCadence.for_decode_target(0).ratio == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            SkipCadence(2, 1)
        with pytest.raises(ValueError):
            SkipCadence(0, 0)


@pytest.mark.parametrize("cls", REWRITERS)
class TestRewriterCommonBehaviour:
    def test_pass_through_when_nothing_suppressed(self, cls):
        rewriter = cls(SkipCadence(0, 1))
        events = [(100 + i, i // 3, True) for i in range(30)]
        emitted = feed(rewriter, events)
        assert emitted == [100 + i for i in range(30)]

    def test_suppression_closes_gaps(self, cls):
        rewriter = cls(SkipCadence(1, 2))
        # frames of 2 packets each; every second frame suppressed
        events = []
        seq = 500
        for frame in range(20):
            forward = frame % 2 == 0
            for _ in range(2):
                events.append((seq, frame, forward))
                seq += 1
        emitted = feed(rewriter, events)
        # forwarded packets must be consecutive: no gaps, no duplicates
        assert emitted == list(range(emitted[0], emitted[0] + len(emitted)))

    def test_never_emits_duplicates(self, cls):
        rewriter = cls(SkipCadence(1, 2))
        events = []
        seq = 0
        for frame in range(50):
            forward = frame % 2 == 0
            for _ in range(3):
                events.append((seq, frame, forward))
                seq += 1
        # replay some packets out of order / duplicated
        events = events + events[10:20]
        emitted = feed(rewriter, events)
        assert len(emitted) == len(set(emitted))

    def test_sequence_wraparound(self, cls):
        rewriter = cls(SkipCadence(0, 1))
        events = [((65_530 + i) % 65_536, i // 2, True) for i in range(12)]
        emitted = feed(rewriter, events)
        assert len(emitted) == 12
        assert len(set(emitted)) == 12

    def test_counters(self, cls):
        rewriter = cls(SkipCadence(1, 2))
        feed(rewriter, [(i, i // 2, i % 4 < 2) for i in range(40)])
        assert rewriter.packets_seen == 40
        assert rewriter.packets_forwarded + rewriter.packets_suppressed <= 40 + rewriter.packets_dropped_for_safety
        assert rewriter.state_cells in (3, 6)


class TestLowMemorySpecifics:
    def test_gap_attributed_to_cadence(self):
        rewriter = SequenceRewriterLowMemory(SkipCadence(1, 2))
        # packets 0,1 forwarded; packets 2,3 never arrive (they were the
        # suppressed frame, dropped upstream); packets 4,5 forwarded
        emitted = feed(
            rewriter,
            [(0, 0, True), (1, 0, True), (4, 2, True), (5, 2, True)],
        )
        # the 2-packet gap matches the cadence, so roughly half of it is
        # attributed to suppression: the output gap shrinks
        assert emitted[0] == 0 and emitted[1] == 1
        assert emitted[2] - emitted[1] <= 2

    def test_old_packet_dropped_for_safety(self):
        rewriter = SequenceRewriterLowMemory(SkipCadence(0, 1))
        feed(rewriter, [(i, 0, True) for i in range(10)])
        assert rewriter.on_packet(2, 0, True) is None
        assert rewriter.packets_dropped_for_safety >= 1


class TestLowRetransmissionSpecifics:
    def test_intra_frame_gap_preserved(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        # packets 0..3 belong to frame 7; packet 2 is lost in the network.
        # Because a frame is never partially suppressed, the gap must remain.
        emitted = feed(rewriter, [(0, 7, True), (1, 7, True), (3, 7, True)])
        assert emitted == [0, 1, 3]

    def test_late_packet_of_current_frame_rewritten_correctly(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        emitted = []
        for seq, frame, forward in [(0, 0, True), (1, 0, True), (2, 1, False), (3, 1, False), (4, 2, True), (6, 2, True)]:
            out = rewriter.on_packet(seq, frame, forward)
            if out is not None:
                emitted.append(out)
        # the late packet 5 of frame 2 arrives after 6
        late = rewriter.on_packet(5, 2, True)
        assert late is not None
        assert late not in emitted  # no duplicate
        all_out = sorted(emitted + [late])
        assert all_out == list(range(all_out[0], all_out[0] + len(all_out)))

    def test_late_packet_of_suppressed_frame_dropped_silently(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        feed(rewriter, [(0, 0, True), (1, 0, True), (2, 1, False), (4, 2, True)])
        # packet 3 of the suppressed frame 1 shows up late; it must vanish
        assert rewriter.on_packet(3, 1, False) is None


def wrap_spanning_events(num_frames=78_000, packets_per_frame=2, suppress_every=8):
    """A meeting long enough for the *rewritten* sequence space to wrap fully
    (> 129k forwarded packets): every ``suppress_every``-th frame suppressed,
    every packet arriving in order (suppressed ones with ``forward=False``)."""
    events = []
    seq = 0
    for frame in range(num_frames):
        forward = frame % suppress_every != suppress_every - 1
        for _ in range(packets_per_frame):
            events.append((seq % 65_536, frame % 65_536, forward))
            seq += 1
    return events


@pytest.mark.parametrize("cls", REWRITERS)
class TestWrapSpanningStreams:
    """Regression tests for the duplicate-guard eviction bug: the old numeric
    trim kept the top-2048 pre-wrap entries forever, so one full lap of the
    rewritten space later every fresh emission collided with a stale entry
    and was spuriously dropped for safety."""

    def test_no_spurious_drops_and_ideal_rewrite_across_wraps(self, cls):
        events = wrap_spanning_events()
        rewriter = cls(SkipCadence(1, 2))
        emitted = [rewriter.on_packet(seq, frame, forward) for seq, frame, forward in events]
        ideal = ideal_rewrite_sequence([(seq, not forward, False) for seq, _frame, forward in events])
        assert rewriter.packets_dropped_for_safety == 0
        assert emitted == ideal
        assert rewriter.packets_forwarded > 65_536 * 2  # genuinely wrap-spanning

    def test_first_wrap_agrees_with_ideal_map(self, cls):
        # over the first 65536 packets the sequence numbers are still unique,
        # so the dictionary-keyed oracle applies directly
        events = wrap_spanning_events(num_frames=32_768)
        rewriter = cls(SkipCadence(1, 2))
        mapping = ideal_rewrite_map([(seq, not forward, False) for seq, _frame, forward in events])
        for seq, frame, forward in events:
            assert rewriter.on_packet(seq, frame, forward) == mapping[seq]

    def test_reordered_duplicate_after_wrap_still_dropped(self, cls):
        events = wrap_spanning_events(num_frames=33_000)
        rewriter = cls(SkipCadence(1, 2))
        for seq, frame, forward in events:
            rewriter.on_packet(seq, frame, forward)
        # replay the most recent forwarded packet: the guard set must still
        # hold its post-wrap rewritten number even after evictions
        last_forwarded = next(e for e in reversed(events) if e[2])
        assert rewriter.on_packet(last_forwarded[0], last_forwarded[1], True) is None
        assert rewriter.packets_dropped_for_safety == 1


class TestFrameNumberWraparound:
    """S-LR frame tracking must survive the 16-bit frame-number wrap (~18
    minutes at 60 fps); the old plain max() froze both high-water marks at
    65535 forever."""

    def feed_across_frame_wrap(self, rewriter, frames_after_wrap=12):
        seq = 0
        frame_events = []
        for frame in range(65_530, 65_536 + frames_after_wrap):
            frame_number = frame % 65_536
            forward = frame % 2 == 0  # alternate frames suppressed
            for _ in range(2):
                frame_events.append((seq, frame_number, forward))
                seq += 1
        for event_seq, frame_number, forward in frame_events:
            rewriter.on_packet(event_seq % 65_536, frame_number, forward)

    def test_highest_frames_track_past_the_wrap(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        self.feed_across_frame_wrap(rewriter)
        # the last frame fed is 65547 % 65536 == 11 (suppressed); both
        # high-water marks must have crossed the wrap instead of freezing
        assert rewriter.highest_frame == 11
        assert rewriter.highest_suppressed_frame == 11

    def test_late_packet_classification_after_wrap(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        self.feed_across_frame_wrap(rewriter)
        # a late packet of a recent *forwarded* post-wrap frame whose offset
        # is still remembered must be emitted, not swallowed as "suppressed"
        emitted_before = rewriter.packets_forwarded
        late_frame = rewriter.frame_number_current
        late = rewriter.on_packet((rewriter.highest_seq - 1) % 65_536, late_frame, True)
        assert late is not None
        assert rewriter.packets_forwarded == emitted_before + 1

    def test_late_packet_of_old_suppressed_frame_still_silently_dropped(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        self.feed_across_frame_wrap(rewriter)
        drops_before = rewriter.packets_dropped_for_safety
        # frame 65531 was suppressed long ago (pre-wrap): silently dropped,
        # not counted as a safety drop
        assert rewriter.on_packet(3, 65_531, False) is None
        assert rewriter.packets_dropped_for_safety == drops_before


class TestOracle:
    def test_ideal_map_removes_only_suppressed(self):
        events = [(0, False, False), (1, True, False), (2, False, True), (3, False, False)]
        mapping = ideal_rewrite_map(events)
        assert mapping[0] == 0
        assert mapping[1] is None          # suppressed: receiver never sees it
        assert mapping[2] == 1             # lost: keeps its (shifted) slot
        assert mapping[3] == 2

    def test_ideal_map_is_gap_free_over_suppression(self):
        events = [(seq, seq % 2 == 1, False) for seq in range(100)]
        mapping = ideal_rewrite_map(events)
        values = [v for v in mapping.values() if v is not None]
        assert values == list(range(50))
