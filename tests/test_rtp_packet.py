"""Unit tests for the RTP packet codec."""

import pytest

from repro.rtp.packet import (
    PT_AUDIO_OPUS,
    PT_VIDEO_AV1,
    RTP_HEADER_LEN,
    RtpHeaderExtension,
    RtpPacket,
    RtpParseError,
    is_rtcp,
    looks_like_rtp,
    seq_add,
    seq_delta,
)


def make_packet(**overrides):
    defaults = dict(
        payload_type=PT_VIDEO_AV1,
        sequence_number=100,
        timestamp=90_000,
        ssrc=0xDEADBEEF,
        marker=True,
        payload=b"\x01\x02\x03\x04",
    )
    defaults.update(overrides)
    return RtpPacket(**defaults)


class TestRtpRoundTrip:
    def test_basic_round_trip(self):
        packet = make_packet()
        assert RtpPacket.parse(packet.serialize()) == packet

    def test_round_trip_with_csrcs(self):
        packet = make_packet(csrcs=(1, 2, 3))
        parsed = RtpPacket.parse(packet.serialize())
        assert parsed.csrcs == (1, 2, 3)

    def test_round_trip_with_extension(self):
        extension = RtpHeaderExtension(profile=0xBEDE, data=b"\x10\xab\x00\x00")
        packet = make_packet(extension=extension)
        parsed = RtpPacket.parse(packet.serialize())
        assert parsed.extension == extension

    def test_round_trip_empty_payload(self):
        packet = make_packet(payload=b"")
        assert RtpPacket.parse(packet.serialize()).payload == b""

    def test_marker_bit_preserved(self):
        for marker in (True, False):
            packet = make_packet(marker=marker)
            assert RtpPacket.parse(packet.serialize()).marker is marker

    def test_boundary_field_values(self):
        packet = make_packet(sequence_number=65_535, timestamp=2**32 - 1, ssrc=2**32 - 1)
        parsed = RtpPacket.parse(packet.serialize())
        assert parsed.sequence_number == 65_535
        assert parsed.timestamp == 2**32 - 1
        assert parsed.ssrc == 2**32 - 1


class TestRtpValidation:
    def test_rejects_bad_payload_type(self):
        with pytest.raises(ValueError):
            make_packet(payload_type=200)

    def test_rejects_bad_sequence_number(self):
        with pytest.raises(ValueError):
            make_packet(sequence_number=70_000)

    def test_rejects_too_many_csrcs(self):
        with pytest.raises(ValueError):
            make_packet(csrcs=tuple(range(16)))

    def test_rejects_unaligned_extension(self):
        with pytest.raises(ValueError):
            RtpHeaderExtension(profile=0xBEDE, data=b"\x01\x02\x03")

    def test_parse_short_buffer(self):
        with pytest.raises(RtpParseError):
            RtpPacket.parse(b"\x80\x60\x00")

    def test_parse_wrong_version(self):
        data = bytearray(make_packet().serialize())
        data[0] = 0x00  # version 0
        with pytest.raises(RtpParseError):
            RtpPacket.parse(bytes(data))

    def test_parse_truncated_extension(self):
        extension = RtpHeaderExtension(profile=0xBEDE, data=b"\x10\xab\x00\x00")
        data = make_packet(extension=extension, payload=b"").serialize()
        with pytest.raises(RtpParseError):
            RtpPacket.parse(data[: RTP_HEADER_LEN + 2])


class TestHelpers:
    def test_header_length_and_size(self):
        packet = make_packet(csrcs=(1,), extension=RtpHeaderExtension(0xBEDE, b"\x00" * 4))
        assert packet.header_length == RTP_HEADER_LEN + 4 + 4 + 4
        assert packet.size == packet.header_length + len(packet.payload)

    def test_with_sequence_number_wraps(self):
        packet = make_packet().with_sequence_number(70_000)
        assert packet.sequence_number == 70_000 % 65_536

    def test_with_ssrc(self):
        assert make_packet().with_ssrc(42).ssrc == 42

    def test_is_audio_video(self):
        assert make_packet(payload_type=PT_AUDIO_OPUS).is_audio()
        assert make_packet(payload_type=PT_VIDEO_AV1).is_video()

    def test_looks_like_rtp(self):
        assert looks_like_rtp(make_packet().serialize())
        assert not looks_like_rtp(b"\x00\x01")
        assert not looks_like_rtp(b"")

    def test_is_rtcp_false_for_media(self):
        assert not is_rtcp(make_packet().serialize())


class TestSequenceArithmetic:
    def test_seq_delta_forward(self):
        assert seq_delta(10, 5) == 5

    def test_seq_delta_backward(self):
        assert seq_delta(5, 10) == -5

    def test_seq_delta_wraparound(self):
        assert seq_delta(2, 65_534) == 4
        assert seq_delta(65_534, 2) == -4

    def test_seq_add_wraps(self):
        assert seq_add(65_535, 1) == 0
        assert seq_add(0, -1) == 65_535
