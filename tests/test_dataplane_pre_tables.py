"""Unit tests for the PRE, match-action tables, registers, and resource model."""

import pytest

from repro.dataplane.pre import L2Port, PacketReplicationEngine
from repro.dataplane.resources import (
    DEFAULT_CAPACITIES,
    ResourceAccountant,
    ResourceExhausted,
    TofinoCapacities,
    table3_rows,
)
from repro.dataplane.tables import ExactMatchTable, IndexAllocator, RegisterArray, TableFull


class TestExactMatchTable:
    def test_install_lookup_remove(self):
        table = ExactMatchTable("t", max_entries=4)
        table.install("k", 42)
        assert table.lookup("k") == 42
        assert "k" in table
        table.remove("k")
        assert table.lookup("k") is None

    def test_capacity_enforced(self):
        table = ExactMatchTable("t", max_entries=2)
        table.install(1, "a")
        table.install(2, "b")
        with pytest.raises(TableFull):
            table.install(3, "c")
        # overwriting an existing key is always allowed
        table.install(1, "a2")
        assert table.lookup(1) == "a2"

    def test_hit_counters_and_occupancy(self):
        table = ExactMatchTable("t", max_entries=10)
        table.install(1, "a")
        table.lookup(1)
        table.lookup(2)
        assert table.lookups == 2 and table.hits == 1
        assert table.occupancy == pytest.approx(0.1)


class TestRegisterArray:
    def test_read_write_clear(self):
        registers = RegisterArray("r", size=4, initial=0)
        registers.write(2, 99)
        assert registers.read(2) == 99
        registers.clear(2)
        assert registers.read(2) is None

    def test_bounds_checked(self):
        registers = RegisterArray("r", size=4)
        with pytest.raises(IndexError):
            registers.read(4)
        with pytest.raises(IndexError):
            registers.write(-1, 0)

    def test_used_cells(self):
        registers = RegisterArray("r", size=4)
        registers.write(0, "x")
        registers.write(3, "y")
        assert registers.used_cells() == 2


class TestIndexAllocator:
    def test_unique_collision_free_indices(self):
        allocator = IndexAllocator(8)
        indices = {allocator.allocate(f"stream-{i}") for i in range(8)}
        assert len(indices) == 8
        with pytest.raises(TableFull):
            allocator.allocate("one-too-many")

    def test_release_recycles(self):
        allocator = IndexAllocator(1)
        index = allocator.allocate("a")
        allocator.release("a")
        assert allocator.allocate("b") == index

    def test_same_key_same_index(self):
        allocator = IndexAllocator(4)
        assert allocator.allocate("a") == allocator.allocate("a")
        assert allocator.in_use == 1


class TestPacketReplicationEngine:
    def build_meeting_tree(self, pre, participants):
        """One tree, one L1 node per participant (the NRA layout)."""
        mgid = pre.create_tree()
        rids = {}
        for index, name in enumerate(participants):
            rid = index + 1
            pre.add_node(
                mgid,
                rid=rid,
                ports=[L2Port(port=100 + index, l2_xid=100 + index)],
                l1_xid=1,
                prune_enabled=True,
            )
            rids[name] = rid
        return mgid, rids

    def test_replicates_to_all_but_sender(self):
        pre = PacketReplicationEngine()
        mgid, rids = self.build_meeting_tree(pre, ["a", "b", "c"])
        # packet from "a": suppress a's own copy via (RID, L2 XID)
        replicas = pre.replicate(mgid, l1_xid=None, rid=rids["a"], l2_xid=100)
        ports = sorted(r.egress_port for r in replicas)
        assert ports == [101, 102]

    def test_l1_xid_prunes_other_meeting(self):
        pre = PacketReplicationEngine()
        mgid = pre.create_tree()
        # meeting 1 participants get XID 1, meeting 2 participants XID 2
        pre.add_node(mgid, rid=1, ports=[L2Port(1, 1)], l1_xid=1, prune_enabled=True)
        pre.add_node(mgid, rid=2, ports=[L2Port(2, 2)], l1_xid=1, prune_enabled=True)
        pre.add_node(mgid, rid=3, ports=[L2Port(3, 3)], l1_xid=2, prune_enabled=True)
        pre.add_node(mgid, rid=4, ports=[L2Port(4, 4)], l1_xid=2, prune_enabled=True)
        # a packet of meeting 1 carries L1 XID 2 to exclude meeting 2's nodes
        replicas = pre.replicate(mgid, l1_xid=2, rid=1, l2_xid=1)
        assert sorted(r.egress_port for r in replicas) == [2]

    def test_duplicate_rid_rejected(self):
        pre = PacketReplicationEngine()
        mgid = pre.create_tree()
        pre.add_node(mgid, rid=1, ports=[L2Port(1)])
        with pytest.raises(ValueError):
            pre.add_node(mgid, rid=1, ports=[L2Port(2)])

    def test_node_requires_ports(self):
        pre = PacketReplicationEngine()
        mgid = pre.create_tree()
        with pytest.raises(ValueError):
            pre.add_node(mgid, rid=1, ports=[])

    def test_unknown_tree_raises(self):
        pre = PacketReplicationEngine()
        with pytest.raises(KeyError):
            pre.replicate(123)

    def test_destroy_tree_releases_resources(self):
        pre = PacketReplicationEngine()
        mgid, _ = self.build_meeting_tree(pre, ["a", "b"])
        assert pre.num_trees == 1
        pre.destroy_tree(mgid)
        assert pre.num_trees == 0

    def test_tree_capacity_enforced(self):
        tiny = TofinoCapacities(max_multicast_trees=2)
        pre = PacketReplicationEngine(ResourceAccountant(tiny))
        pre.create_tree()
        pre.create_tree()
        with pytest.raises(ResourceExhausted):
            pre.create_tree()

    def test_rid_space_enforced(self):
        tiny = TofinoCapacities(max_rids_per_tree=4)
        pre = PacketReplicationEngine(ResourceAccountant(tiny))
        mgid = pre.create_tree()
        with pytest.raises(ResourceExhausted):
            pre.add_node(mgid, rid=4, ports=[L2Port(1)])

    def test_copy_counters(self):
        pre = PacketReplicationEngine()
        mgid, rids = self.build_meeting_tree(pre, ["a", "b", "c", "d"])
        pre.replicate(mgid, rid=rids["a"], l2_xid=100)
        assert pre.replications_performed == 1
        assert pre.copies_produced == 3


class TestResourceAccounting:
    def test_stream_state_budget(self):
        accountant = ResourceAccountant(TofinoCapacities(stream_tracker_cells=2))
        accountant.allocate_stream_state()
        accountant.allocate_stream_state()
        with pytest.raises(ResourceExhausted):
            accountant.allocate_stream_state()
        accountant.release_stream_state()
        accountant.allocate_stream_state()

    def test_match_entry_budget(self):
        accountant = ResourceAccountant(TofinoCapacities(exact_match_entries=10))
        accountant.allocate_match_entries(10)
        with pytest.raises(ResourceExhausted):
            accountant.allocate_match_entries(1)

    def test_utilization_report(self):
        accountant = ResourceAccountant()
        accountant.allocate_tree(l1_nodes=10)
        utilization = accountant.utilization()
        assert 0 < utilization["multicast_trees"] < 1
        assert 0 < utilization["l1_nodes"] < 1

    def test_table3_rows_structure(self):
        rows = table3_rows(peak_campus_egress_bps=1.2e9, max_egress_bps=197e9)
        names = [row.resource for row in rows]
        assert "Parsing depth" in names and "Egress Tput." in names and "SRAM" in names
        egress = next(row for row in rows if row.resource == "Egress Tput.")
        assert egress.scaling == "quadratic"
        assert "1.2" in egress.peak_campus_load
        fixed_rows = [row for row in rows if row.scaling == "fixed"]
        assert all(row.max_utilization == "=" for row in fixed_rows)

    def test_default_capacities_match_paper(self):
        capacities = DEFAULT_CAPACITIES
        assert capacities.max_multicast_trees == 65_536
        assert capacities.max_l1_nodes == 2**24
        assert capacities.stream_tracker_cells == 65_536
        assert capacities.switch_bandwidth_bps == pytest.approx(12.8e12)
