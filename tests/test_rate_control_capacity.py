"""Unit tests for the rate-control logic and the analytic capacity models."""

import math

import pytest

from repro.core.capacity import (
    MeetingShape,
    ReplicationDesign,
    RewriteVariant,
    ScallopCapacityModel,
    SoftwareSfuCapacityModel,
    figure15_series,
    figure16_series,
    figure17_series,
    improvement_over_software,
)
from repro.core.rate_control import (
    DecodeTargetTracker,
    DownlinkFilter,
    select_decode_target,
)
from repro.rtp.av1 import DecodeTarget


class TestSelectDecodeTarget:
    def test_thresholds(self):
        assert select_decode_target(DecodeTarget.DT2, (), 2_000_000) == DecodeTarget.DT2
        assert select_decode_target(DecodeTarget.DT2, (), 800_000) == DecodeTarget.DT1
        assert select_decode_target(DecodeTarget.DT2, (), 300_000) == DecodeTarget.DT0

    def test_upgrade_requires_hysteresis_margin(self):
        # at DT1, an estimate just above the high threshold is not enough
        assert select_decode_target(DecodeTarget.DT1, (), 1_250_000) == DecodeTarget.DT1
        assert select_decode_target(DecodeTarget.DT1, (), 1_500_000) == DecodeTarget.DT2

    def test_custom_thresholds(self):
        target = select_decode_target(
            DecodeTarget.DT2, (), 400_000, threshold_high_bps=500_000, threshold_low_bps=200_000
        )
        assert target == DecodeTarget.DT1


class TestDownlinkFilter:
    def test_best_receiver_selection(self):
        filter_fn = DownlinkFilter(alpha=0.5)
        filter_fn.observe("s", "r1", 1_000_000, now=0.0)
        filter_fn.observe("s", "r2", 3_000_000, now=0.0)
        best = filter_fn.best_receiver("s")
        assert best is not None and best[0] == "r2"

    def test_reselect_reports_changes_once(self):
        filter_fn = DownlinkFilter(alpha=0.5)
        filter_fn.observe("s", "r1", 1_000_000, now=0.0)
        receiver, changed = filter_fn.reselect("s")
        assert receiver == "r1" and changed
        receiver, changed = filter_fn.reselect("s")
        assert receiver == "r1" and not changed
        # a consistently better downlink eventually takes over
        for t in range(10):
            filter_fn.observe("s", "r2", 5_000_000, now=float(t))
        receiver, changed = filter_fn.reselect("s")
        assert receiver == "r2" and changed

    def test_ewma_smooths_spikes(self):
        filter_fn = DownlinkFilter(alpha=0.1)
        for t in range(20):
            filter_fn.observe("s", "r1", 1_000_000, now=float(t))
        filter_fn.observe("s", "r2", 10_000_000, now=20.0)  # single spike
        filter_fn.observe("s", "r2", 100_000, now=21.0)
        # r2's EWMA is dominated by its initialization + low second sample
        estimate_r2 = filter_fn.estimate("s", "r2")
        assert estimate_r2 < 10_000_000

    def test_forget_receiver(self):
        filter_fn = DownlinkFilter()
        filter_fn.observe("s", "r1", 1_000_000, now=0.0)
        filter_fn.reselect("s")
        filter_fn.forget_receiver("r1")
        assert filter_fn.best_receiver("s") is None

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            DownlinkFilter(alpha=0.0)


class TestDecodeTargetTracker:
    def test_change_detection(self):
        tracker = DecodeTargetTracker()
        target, changed = tracker.update("s", "r", 2_000_000)
        assert target == DecodeTarget.DT2 and not changed
        target, changed = tracker.update("s", "r", 700_000)
        assert target == DecodeTarget.DT1 and changed
        target, changed = tracker.update("s", "r", 650_000)
        assert target == DecodeTarget.DT1 and not changed

    def test_history_is_bounded(self):
        tracker = DecodeTargetTracker(history_length=4)
        for estimate in range(10):
            tracker.update("s", "r", 2_000_000 + estimate)
        assert len(tracker._history[("s", "r")]) == 4

    def test_forget(self):
        tracker = DecodeTargetTracker()
        tracker.update("s", "r", 700_000)
        tracker.forget("r")
        assert tracker.current("s", "r") == DecodeTarget.DT2


class TestMeetingShape:
    def test_streams_at_sfu_matches_paper_examples(self):
        # 10 participants, everyone sending audio+video: 200 streams (2 N^2)
        assert MeetingShape(participants=10).streams_at_sfu == 200
        # two-party call: 8 streams
        assert MeetingShape(participants=2).streams_at_sfu == 8

    def test_rate_adapted_streams(self):
        shape = MeetingShape(participants=10)
        assert shape.rate_adapted_streams == 10 * 2
        one_sender = MeetingShape(participants=10, senders=1)
        assert one_sender.rate_adapted_streams == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MeetingShape(participants=1)
        with pytest.raises(ValueError):
            MeetingShape(participants=4, senders=5)


class TestSoftwareCapacity:
    def test_calibration_matches_paper(self):
        software = SoftwareSfuCapacityModel()
        assert software.max_meetings(MeetingShape(participants=10)) == pytest.approx(192, rel=0.01)
        assert software.max_meetings(MeetingShape(participants=2)) == pytest.approx(4_800, rel=0.01)

    def test_quadratic_scaling(self):
        software = SoftwareSfuCapacityModel()
        m10 = software.max_meetings(MeetingShape(participants=10))
        m20 = software.max_meetings(MeetingShape(participants=20))
        assert m10 / m20 == pytest.approx(4.0, rel=0.01)


class TestScallopCapacity:
    def setup_method(self):
        self.model = ScallopCapacityModel()

    def test_headline_capacities_match_paper(self):
        ten = MeetingShape(participants=10)
        assert self.model.max_meetings_nra(ten) == pytest.approx(128_000, rel=0.05)
        assert self.model.max_meetings_ra_r(ten) == pytest.approx(42_700, rel=0.05)
        assert self.model.max_meetings_ra_sr(ten) == pytest.approx(4_300, rel=0.05)
        assert self.model.max_meetings_two_party() == pytest.approx(533_000, rel=0.01)

    def test_nra_independent_of_meeting_size_until_l1_limit(self):
        small = self.model.max_meetings_nra(MeetingShape(participants=10))
        large = self.model.max_meetings_nra(MeetingShape(participants=100))
        assert small == large  # tree-limited in both cases
        huge = self.model.max_meetings_nra(MeetingShape(participants=200))
        assert huge <= small

    def test_ra_sr_scales_inversely_with_senders(self):
        all_send = self.model.max_meetings_ra_sr(MeetingShape(participants=10))
        one_sends = self.model.max_meetings_ra_sr(MeetingShape(participants=10, senders=1))
        assert one_sends == pytest.approx(all_send * 10, rel=0.01)

    def test_rewrite_limit_variants(self):
        shape = MeetingShape(participants=10)
        s_lm = self.model.rewrite_limit(shape, RewriteVariant.S_LM)
        s_lr = self.model.rewrite_limit(shape, RewriteVariant.S_LR)
        assert s_lm == pytest.approx(2 * s_lr, rel=0.01)

    def test_bandwidth_limit_quadratic(self):
        bw10 = self.model.bandwidth_limit(MeetingShape(participants=10))
        bw20 = self.model.bandwidth_limit(MeetingShape(participants=20))
        assert bw10 / bw20 == pytest.approx(20 * 19 / (10 * 9), rel=0.01)

    def test_two_party_design_requires_two_participants(self):
        with pytest.raises(ValueError):
            self.model.max_meetings_for_design(MeetingShape(participants=3), ReplicationDesign.TWO_PARTY)

    def test_overall_minimum_applied(self):
        shape = MeetingShape(participants=10)
        combined = self.model.max_meetings(shape, ReplicationDesign.RA_SR, RewriteVariant.S_LR)
        assert combined <= self.model.max_meetings_ra_sr(shape)
        assert combined <= self.model.rewrite_limit(shape, RewriteVariant.S_LR)

    def test_best_design_choice(self):
        assert self.model.best_design(MeetingShape(participants=2), True) == ReplicationDesign.TWO_PARTY
        assert self.model.best_design(MeetingShape(participants=10), False) == ReplicationDesign.NRA
        assert self.model.best_design(MeetingShape(participants=10), True) == ReplicationDesign.RA_R


class TestFigureSeries:
    def test_improvement_range_brackets_paper(self):
        points = figure15_series()
        lower = min(p.improvement_min for p in points)
        upper = max(p.improvement_max for p in points)
        # the paper reports 7x-210x; accept the same order of magnitude
        assert 2 <= lower <= 20
        assert 100 <= upper <= 700

    def test_improvement_grows_with_meeting_size(self):
        small = improvement_over_software(10)
        large = improvement_over_software(80)
        assert large.improvement_max > small.improvement_max

    def test_scallop_always_beats_software(self):
        for point in figure16_series():
            assert point.scallop_min > point.software_min
            assert point.scallop_max > point.software_max

    def test_design_space_ordering(self):
        for point in figure17_series():
            # NRA packs the most meetings, RA-R fewer, RA-SR the fewest
            assert point.nra >= point.ra_r >= point.ra_sr
            assert point.s_lm >= point.s_lr
            assert point.software < point.ra_sr or point.participants > 90

    def test_overall_capacity_is_min_of_constraints(self):
        point = figure17_series([10])[0]
        overall = point.overall(ReplicationDesign.RA_SR, RewriteVariant.S_LR)
        assert overall == min(point.ra_sr, point.s_lr, point.bandwidth)
