"""Suite for the load-aware shard placement subsystem (PR 4).

Three layers:

* unit tests for the telemetry tracker (:mod:`repro.dataplane.loadstats`) and
  the greedy hysteresis-damped policy (:mod:`repro.dataplane.rebalance`);
* live-migration mechanics: the two-level flow -> shard lookup, placement
  generation stamping, per-shard attribution following the flow, and the
  process executor's zero-pickle packed-state migration shipping;
* the sharding invariant under placement churn: with the rebalancer armed (and
  extra forced migrations layered on top), outputs must stay byte-identical to
  the unsharded reference pipeline for k in {2, 4, 8} on both executors, and a
  migration landing mid-adaptation-churn — S-LM/S-LR rewriters with in-flight
  sequence-wraparound state — must preserve ``ideal_rewrite_sequence`` oracle
  equality on the migrated flow.
"""

import dataclasses
import random

import pytest

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    clone_rewriter,
    extract_flow_state,
    ideal_rewrite_sequence,
    unpack_rewriter_state,
)
from repro.dataplane.loadstats import FlowLoadTracker
from repro.dataplane.pipeline import (
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from repro.dataplane.pre import L2Port
from repro.dataplane.rebalance import RebalancerConfig, ShardRebalancer
from repro.dataplane.sharding import ShardedScallopPipeline, flow_shard
from repro.netsim.datagram import Address, Datagram
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

from test_sharded_pipeline import (
    MeetingScenario,
    apply_op,
    assert_engines_agree,
    assert_results_identical,
)

SFU = Address("10.0.0.1", 5000)

#: Aggressive placement churn for the property tests: decide every batch, no
#: cooldown, hair-trigger hysteresis — the point is to migrate as often as
#: possible while the equivalence harness watches for divergence.
CHURN_CONFIG = RebalancerConfig(
    epoch_batches=1,
    trigger_ratio=1.02,
    target_ratio=1.01,
    migration_budget=8,
    cooldown_epochs=0,
    min_flow_rate=0.0,
)


# --------------------------------------------------------------------------- telemetry


class TestFlowLoadTracker:
    def test_ewma_converges_and_decays(self):
        tracker = FlowLoadTracker(n_shards=2, alpha=0.5)
        flow_a, flow_b = (Address("10.0.0.2", 6000), 1), (Address("10.0.0.3", 6000), 2)
        for _ in range(12):
            tracker.observe_batch({flow_a: 40, flow_b: 10}, {flow_a: 0, flow_b: 1})
        assert tracker.flows[flow_a].rate == pytest.approx(40, rel=0.01)
        assert tracker.flows[flow_b].rate == pytest.approx(10, rel=0.01)
        assert tracker.shard_rates[0] == pytest.approx(40, rel=0.01)
        assert tracker.skew_ratio() == pytest.approx(40 / 25, rel=0.02)
        # flow_a goes silent: its rate must decay toward zero
        for _ in range(10):
            tracker.observe_batch({flow_b: 10}, {flow_b: 1})
        assert tracker.flows[flow_a].rate < 1.0

    def test_hottest_flows_ranked_per_shard(self):
        tracker = FlowLoadTracker(n_shards=2, alpha=1.0)
        flows = {(Address("10.0.0.2", 6000 + i), i): (i + 1) * 5 for i in range(4)}
        shards = {key: 0 for key in flows}
        tracker.observe_batch(flows, shards)
        ranked = tracker.hottest_flows(0)
        rates = [row.rate for _key, row in ranked]
        assert rates == sorted(rates, reverse=True)
        assert tracker.hottest_flows(1) == []

    def test_egress_rate_tracks_replica_fanout(self):
        tracker = FlowLoadTracker(n_shards=2, alpha=0.5)
        fanned = (Address("10.0.0.2", 6000), 1)   # big meeting: 9 replicas/pkt
        narrow = (Address("10.0.0.3", 6000), 2)   # small meeting: 2 replicas/pkt
        for _ in range(12):
            tracker.observe_batch(
                {fanned: 10, narrow: 10},
                {fanned: 0, narrow: 1},
                {fanned: 90, narrow: 20},
            )
        assert tracker.flows[fanned].rate == pytest.approx(10, rel=0.01)
        assert tracker.flows[fanned].egress_rate == pytest.approx(90, rel=0.01)
        assert tracker.flows[narrow].egress_rate == pytest.approx(20, rel=0.01)
        # equal ingress, very different work: the weighted view knows
        assert tracker.flows[fanned].weight(1.0) > 3 * tracker.flows[narrow].weight(1.0)
        assert tracker.shard_weights(1.0)[0] == pytest.approx(100, rel=0.01)
        # silent flows decay their egress term too
        for _ in range(10):
            tracker.observe_batch({narrow: 10}, {narrow: 1}, {narrow: 20})
        assert tracker.flows[fanned].egress_rate < 10.0

    def test_bounded_flow_table_evicts_coldest(self):
        tracker = FlowLoadTracker(n_shards=2, alpha=1.0, max_flows=8)
        hot = (Address("10.9.0.1", 6000), 7)
        tracker.observe_batch({hot: 1000}, {hot: 0})
        for index in range(40):
            key = (Address("10.9.1.1", 7000 + index), index)
            tracker.observe_batch({key: 1, hot: 1000}, {key: 1, hot: 0})
        assert len(tracker.flows) <= 8
        assert hot in tracker.flows  # the hot flow is never the eviction victim


class TestRebalancerPolicy:
    @staticmethod
    def tracker_with(loads, alpha=1.0):
        """A 2-shard-or-more tracker seeded with one flow per (shard, rate)."""
        n_shards = max(shard for shard, _ in loads) + 1
        tracker = FlowLoadTracker(n_shards=n_shards, alpha=alpha)
        counts, shards = {}, {}
        for index, (shard, rate) in enumerate(loads):
            key = (Address(f"10.1.{shard}.{index + 2}", 6000 + index), index)
            counts[key] = rate
            shards[key] = shard
        tracker.observe_batch(counts, shards)
        return tracker

    def test_no_plan_inside_hysteresis_band(self):
        tracker = self.tracker_with([(0, 11), (1, 10)])
        planner = ShardRebalancer(2, RebalancerConfig(trigger_ratio=1.25, target_ratio=1.1))
        assert not planner.plan(tracker)

    def test_greedy_moves_hottest_to_coldest(self):
        tracker = self.tracker_with([(0, 30), (0, 10), (1, 10)])
        planner = ShardRebalancer(2, RebalancerConfig(trigger_ratio=1.25, target_ratio=1.1))
        plan = planner.plan(tracker)
        assert plan.migrations
        move = plan.migrations[0]
        assert (move.from_shard, move.to_shard) == (0, 1)
        # moving the 30-rate flow would just swap which shard is hot; the
        # planner must pick the 10-rate flow (the hottest that fits the gap)
        assert move.rate == pytest.approx(10)
        assert plan.projected_skew < plan.observed_skew

    def test_budget_bounds_migrations_per_epoch(self):
        loads = [(0, 8)] * 10 + [(1, 1)]
        tracker = self.tracker_with(loads)
        planner = ShardRebalancer(
            2, RebalancerConfig(trigger_ratio=1.1, target_ratio=1.01, migration_budget=3)
        )
        plan = planner.plan(tracker)
        assert len(plan.migrations) == 3

    def test_cooldown_pins_recently_moved_flows(self):
        tracker = self.tracker_with([(0, 30), (0, 10), (1, 10)])
        config = RebalancerConfig(
            trigger_ratio=1.1, target_ratio=1.01, cooldown_epochs=5, epoch_batches=1
        )
        planner = ShardRebalancer(2, config)
        first = planner.plan(tracker)
        assert first.migrations
        for migration in first.migrations:
            tracker.note_migration(migration.flow, migration.to_shard)
        # identical telemetry again: every mover is in cooldown, and the only
        # other candidate (rate 30) exceeds the gap, so the plan is empty
        assert not planner.plan(tracker).migrations

    def test_unbalanceable_mega_flow_not_ping_ponged(self):
        # one flow bigger than the mean: no placement fixes it, and moving it
        # only relabels the hot shard — the planner must leave it alone
        tracker = self.tracker_with([(0, 100), (1, 5)])
        planner = ShardRebalancer(2, RebalancerConfig(trigger_ratio=1.1, target_ratio=1.01))
        assert not planner.plan(tracker).migrations

    def test_egress_weight_balances_fanout_not_just_packets(self):
        # equal ingress packet rates everywhere: invisible to a packet-only
        # policy, but shard 0's flows fan out 9x (big meetings) while shard
        # 1's fan out 1x — the egress-weighted planner must move work
        tracker = FlowLoadTracker(n_shards=2, alpha=1.0)
        counts, shards, replicas = {}, {}, {}
        for index in range(4):
            key = (Address(f"10.2.0.{index + 2}", 6000 + index), index)
            counts[key] = 10
            shards[key] = 0 if index < 2 else 1
            replicas[key] = 90 if index < 2 else 10
        tracker.observe_batch(counts, shards, replicas)
        packet_only = ShardRebalancer(
            2, RebalancerConfig(trigger_ratio=1.25, target_ratio=1.1, egress_weight=0.0)
        )
        assert not packet_only.plan(tracker), "packet rates are perfectly even"
        weighted = ShardRebalancer(
            2, RebalancerConfig(trigger_ratio=1.25, target_ratio=1.1, egress_weight=1.0)
        )
        plan = weighted.plan(tracker)
        assert plan.migrations
        move = plan.migrations[0]
        assert move.from_shard == 0 and move.to_shard == 1
        # the transferred load is the weighted contribution (10 + 90)
        assert move.rate == pytest.approx(100)
        assert plan.projected_skew < plan.observed_skew

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RebalancerConfig(trigger_ratio=1.1, target_ratio=1.2)
        with pytest.raises(ValueError):
            RebalancerConfig(migration_budget=0)
        with pytest.raises(ValueError):
            RebalancerConfig(egress_weight=-1.0)
        with pytest.raises(ValueError):
            FlowLoadTracker(n_shards=2, alpha=0.0)


# --------------------------------------------------------------------------- migration mechanics


class TestLiveMigrationMechanics:
    def test_two_level_lookup_and_generation(self):
        engine = ShardedScallopPipeline(SFU, n_shards=4)
        src, ssrc = Address("10.3.0.2", 6000), 4242
        default = flow_shard(src, ssrc, 4)
        assert engine.shard_for_flow(src, ssrc) == default
        version = engine.control.placement_table.version
        target = (default + 1) % 4
        assert engine.migrate_flow(src, ssrc, target)
        assert engine.control.placement_table.version > version
        assert engine.shard_for_flow(src, ssrc) == target
        # migrating "back home" drops the exception instead of pinning it
        assert engine.migrate_flow(src, ssrc, default)
        assert engine.control.placement_table.peek((src, ssrc)) is None
        assert engine.shard_for_flow(src, ssrc) == default
        # no-op migration reports False and costs no generation bump
        version = engine.control.placement_table.version
        assert not engine.migrate_flow(src, ssrc, default)
        assert engine.control.placement_table.version == version

    def test_migration_invalidates_flow_routing_cache(self):
        scenario = MeetingScenario(3)
        engine = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4))
        meeting = scenario.meetings[0]
        sender, ssrc = meeting["addresses"][0], meeting["video_ssrc"]
        chunk = scenario.traffic_chunk(1)
        engine.process_batch(chunk)  # populates the flow->shard cache
        old = engine.shard_for_flow(sender, ssrc)
        new = (old + 1) % 4
        engine.migrate_flow(sender, ssrc, new)
        engine.process_batch(scenario.traffic_chunk(2))
        packets_on_new = engine.shards[new].counters.data_plane_packets
        assert packets_on_new > 0

    def test_attribution_follows_migrated_flow(self):
        from repro.dataplane.resources import attribution_skew

        scenario = MeetingScenario(3)
        engine = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4))
        meeting = scenario.meetings[0]
        sender, receiver = meeting["addresses"][0], meeting["addresses"][1]
        ssrc = meeting["video_ssrc"]
        engine.install_adaptation(
            ssrc, receiver, frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        owner = engine.shard_for_flow(sender, ssrc)
        assert engine.shard_accountants[owner].stream_tracker_cells_used == 3
        # one flow's state on one shard of four: maximal occupancy skew
        assert attribution_skew(engine.shard_accountants) == pytest.approx(4.0)
        target = (owner + 1) % 4
        engine.migrate_flow(sender, ssrc, target)
        assert engine.shard_accountants[owner].stream_tracker_cells_used == 0
        assert engine.shard_accountants[target].stream_tracker_cells_used == 3
        # attribution stays a view over the single global ledger
        total = sum(a.stream_tracker_cells_used for a in engine.shard_accountants)
        assert total == engine.accountant.stream_tracker_cells_used

    def test_process_migration_ships_packed_state_not_snapshots(self):
        scenario_a, scenario_b = MeetingScenario(21, num_meetings=2), MeetingScenario(21, num_meetings=2)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(
            ShardedScallopPipeline(SFU, n_shards=2, executor="process")
        )
        try:
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                meeting = scenario.meetings[0]
                engine.install_adaptation(
                    meeting["video_ssrc"],
                    meeting["addresses"][1],
                    frozenset({0, 1}),
                    SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
                )
            assert_results_identical(
                [reference.process(d) for d in scenario_a.traffic_chunk(1)],
                sharded.process_batch(scenario_b.traffic_chunk(1)),
            )
            snapshots_before = sharded.transport_stats()["snapshots_shipped"]
            # migrate the adapted flow with NO control-plane writes in between
            meeting = scenario_b.meetings[0]
            sender, ssrc = meeting["addresses"][0], meeting["video_ssrc"]
            sharded.migrate_flow(sender, ssrc, 1 - sharded.shard_for_flow(sender, ssrc))
            assert_results_identical(
                [reference.process(d) for d in scenario_a.traffic_chunk(2)],
                sharded.process_batch(scenario_b.traffic_chunk(2)),
            )
            transport = sharded.transport_stats()
            assert transport["migrations_shipped"] >= 1
            assert transport["migration_bytes_out"] > 0
            # zero-pickle: the migration itself forced no snapshot reship
            assert transport["snapshots_shipped"] == snapshots_before
            assert_engines_agree(reference, sharded)
        finally:
            sharded.close()

    def test_extract_flow_state_round_trips(self):
        engine = ShardedScallopPipeline(SFU, n_shards=2)
        receiver = Address("10.4.0.3", 6001)
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        for step in range(40):
            rewriter.on_packet((65_520 + step) % 65_536, step // 2, step % 3 != 0)
        engine.install_stream(
            (Address("10.4.0.2", 6000), 777),
            StreamForwardingEntry(
                mode=ForwardingMode.UNICAST,
                meeting_id="m",
                sender=Address("10.4.0.2", 6000),
                unicast_receiver=receiver,
            ),
        )
        engine.install_adaptation(777, receiver, frozenset({0}), rewriter)
        indices = engine.control.tracker_indices_for_ssrc(777)
        assert len(indices) == 1
        images = extract_flow_state(engine.control.stream_trackers, indices)
        clone = unpack_rewriter_state(images[indices[0]])
        twin = clone_rewriter(rewriter)
        probe = [(65_560 + i) % 65_536 for i in range(8)]
        assert [clone.on_packet(s, 30, True) for s in probe] == [
            twin.on_packet(s, 30, True) for s in probe
        ]


# --------------------------------------------------------------------------- equivalence under churn


def run_rebalancing_scenario(n_shards: int, seed: int, executor: str = "serial"):
    """The PR 2 equivalence harness with the placement loop armed *and* extra
    forced migrations layered between phases: byte-identical results, merged
    counters, and ledger utilization must survive arbitrary placement churn."""
    scenario_a = MeetingScenario(seed)
    scenario_b = MeetingScenario(seed)
    reference = scenario_a.configure(ScallopPipeline(SFU))
    sharded = scenario_b.configure(
        ShardedScallopPipeline(
            SFU, n_shards=n_shards, executor=executor, rebalance_config=CHURN_CONFIG
        )
    )
    rng = random.Random(seed * 977)
    try:
        for phase in range(3):
            for op in scenario_a.churn_ops(seed * 101 + phase):
                apply_op(reference, op)
                apply_op(sharded, op)
            chunk = scenario_a.traffic_chunk(seed * 31 + phase)
            chunk_b = scenario_b.traffic_chunk(seed * 31 + phase)
            reference_results = [reference.process(d) for d in chunk]
            sharded_results = sharded.process_batch(chunk_b)
            assert_results_identical(reference_results, sharded_results)
            # forced migrations on top of whatever the policy decided
            for meeting in scenario_b.meetings:
                if rng.random() < 0.7:
                    sender, ssrc = meeting["addresses"][0], meeting["video_ssrc"]
                    sharded.migrate_flow(sender, ssrc, rng.randrange(n_shards))
        assert_engines_agree(reference, sharded)
        assert reference.counters.adaptation_drops > 0
        assert sharded.migrations_applied > 0, "the scenario never actually migrated"
    finally:
        sharded.close()
    return sharded


class TestRebalancedEquivalenceProperty:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    @pytest.mark.parametrize("seed", [7, 19])
    def test_serial_byte_identical_across_migrations(self, n_shards, seed):
        run_rebalancing_scenario(n_shards, seed, executor="serial")

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_process_byte_identical_across_migrations(self, n_shards):
        engine = run_rebalancing_scenario(n_shards, seed=11, executor="process")
        assert engine.transport_stats()["batches"] > 0

    def test_rebalancer_actually_balances_skewed_load(self):
        from repro.experiments.batch_throughput import (
            build_skewed_meeting_pipeline,
            skewed_media_ingress,
            zipf_frames,
        )

        engine, senders = build_skewed_meeting_pipeline(
            20,
            4,
            participants=4,
            colocate_hot=8,
            pipeline=ShardedScallopPipeline(
                SFU,
                n_shards=4,
                executor="serial",
                rebalance_config=RebalancerConfig(
                    epoch_batches=2, trigger_ratio=1.15, target_ratio=1.05, migration_budget=6
                ),
            ),
        )
        frames = zipf_frames(20, base_frames=12, exponent=1.2)
        initial = None
        for batch in range(16):
            engine.process_batch(skewed_media_ingress(senders, frames))
            if initial is None:
                rows = engine.shard_load()
                packets = [row["data_plane_packets"] for row in rows]
                initial = max(packets) / (sum(packets) / len(packets))
        assert engine.migrations_applied > 0
        assert engine.load_tracker.skew_ratio() < initial
        assert engine.load_tracker.skew_ratio() < 1.2


# --------------------------------------------------------------------------- oracle equality on the migrated flow


def build_adapted_meeting(pipeline, rewriter_cls, allowed_templates, seq_start):
    """One meeting: sender + 2 receivers, rate adaptation with ``rewriter_cls``
    on receiver 1, and a packetizer pinned to ``seq_start`` so the stream's
    sequence space wraps mid-test."""
    sender = Address("10.6.0.2", 6000)
    receivers = [Address("10.6.0.3", 6001), Address("10.6.0.4", 6002)]
    ssrc = 55_000
    mgid = pipeline.pre.create_tree()
    for rid, address in enumerate([sender] + receivers, start=1):
        pipeline.pre.add_node(
            mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
        )
        pipeline.install_replica_target(
            mgid, rid, ReplicaTarget(address=address, participant_id=f"p{rid}")
        )
    pipeline.install_stream(
        (sender, ssrc),
        StreamForwardingEntry(
            mode=ForwardingMode.REPLICATE,
            meeting_id="oracle",
            sender=sender,
            mgid=mgid,
            rid=1,
            l2_xid=1,
        ),
    )
    pipeline.install_adaptation(
        ssrc, receivers[0], allowed_templates, rewriter_cls(SkipCadence(1, 2))
    )
    packetizer = RtpPacketizer(ssrc=ssrc, seed=1)
    packetizer._sequence_number = seq_start
    encoder = SvcEncoder(target_bitrate_bps=1_500_000, seed=1)
    return sender, receivers, ssrc, packetizer, encoder


class TestMigrationOracleEquality:
    """A migration landing mid-adaptation-churn must leave the migrated
    flow's rewritten sequence space exactly where the oracle says it should
    be — in-flight wraparound state included."""

    @pytest.mark.parametrize(
        "rewriter_cls", [SequenceRewriterLowMemory, SequenceRewriterLowRetransmission]
    )
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_migrated_flow_matches_ideal_rewrite_sequence(self, rewriter_cls, executor):
        allowed = frozenset({0, 1, 3, 4})  # suppresses the top temporal layer
        engine = ShardedScallopPipeline(SFU, n_shards=4, executor=executor)
        # start ~60 packets before the 65535 -> 0 wrap so the wrap lands in
        # the middle of the migration churn below
        sender, receivers, ssrc, packetizer, encoder = build_adapted_meeting(
            engine, rewriter_cls, allowed, seq_start=65_470
        )
        adapted = receivers[0]
        events = []  # (seq, suppressed, lost) ground truth in arrival order
        emitted = []  # rewritten seq (or None) per event, from the outputs
        try:
            for batch_index in range(12):
                batch = []
                for frame_index in range(4):
                    frame = encoder.next_frame((batch_index * 4 + frame_index) / 30)
                    for packet in packetizer.packetize(frame):
                        suppressed = (
                            packet.extension is not None
                            and frame.template_id not in allowed
                        )
                        events.append((packet.sequence_number, suppressed, False))
                        batch.append(Datagram(src=sender, dst=SFU, payload=packet))
                for result in engine.process_batch(batch):
                    outs = [d for d in result.outputs if d.dst == adapted]
                    if outs:
                        emitted.append(outs[0].payload.sequence_number)
                    else:
                        emitted.append(None)
                # migrate the flow every batch: each migration lands with
                # in-flight rewriter state, several of them mid-wraparound
                engine.migrate_flow(sender, ssrc, (batch_index + 1) % 4)
        finally:
            engine.close()
        ideal = ideal_rewrite_sequence(events)
        assert emitted == ideal
        suppressed_count = sum(1 for _seq, suppressed, _lost in events if suppressed)
        assert suppressed_count > 0, "the workload never exercised suppression"
        # the stream genuinely wrapped mid-test
        seqs = [seq for seq, _s, _l in events]
        assert max(seqs) > 65_000 and min(seqs) < 500
