"""Unit tests for the discrete-event simulator, datagrams, links, and network."""

import pytest

from repro.netsim.datagram import Address, Datagram, PayloadKind, payload_size
from repro.netsim.link import DEFAULT_ACCESS_PROFILE, Link, LinkProfile, Network
from repro.netsim.simulator import SimulationError, Simulator
from repro.rtp.packet import RtpPacket
from repro.rtp.rtcp import Remb
from repro.stun.message import make_binding_request

A = Address("10.0.0.2", 6000)
B = Address("10.0.0.3", 6001)


def video_packet(seq=1):
    return RtpPacket(payload_type=45, sequence_number=seq, timestamp=1000, ssrc=7, payload=b"x" * 100)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.2, lambda: order.append("b"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.3, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_same_timestamp(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(0.1, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(2.0)
        sim.run_for(3.0)
        assert sim.now == 5.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.1, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_fp_drift_negative_delay_clamped(self):
        # periodic processes computing absolute deadlines accumulate ULP-scale
        # error; schedule_at must tolerate an infinitesimally negative delta
        sim = Simulator()
        sim.run(until=0.1 + 0.1 + 0.1)  # 0.30000000000000004
        fired = []
        sim.schedule_at(0.3, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [sim.now]
        with pytest.raises(SimulationError):
            sim.schedule_at(sim.now - 1.0, lambda: None)

    def test_schedule_batch_runs_fifo_at_one_time(self):
        sim = Simulator()
        order = []
        sim.schedule_batch(0.2, [lambda: order.append(("a", sim.now)), lambda: order.append(("b", sim.now))])
        sim.schedule(0.1, lambda: order.append(("early", sim.now)))
        sim.run()
        assert order == [("early", 0.1), ("a", 0.2), ("b", 0.2)]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestDatagram:
    def test_size_and_kind_derived(self):
        packet = video_packet()
        datagram = Datagram(src=A, dst=B, payload=packet)
        assert datagram.size == packet.size
        assert datagram.kind == PayloadKind.RTP
        assert datagram.wire_size == packet.size + 42

    def test_rtcp_kind(self):
        datagram = Datagram(src=A, dst=B, payload=(Remb(1, 1000.0, (2,)),))
        assert datagram.kind == PayloadKind.RTCP

    def test_stun_kind(self):
        request = make_binding_request(bytes(12), "alice")
        assert Datagram(src=A, dst=B, payload=request).kind == PayloadKind.STUN

    def test_bytes_round_trip(self):
        datagram = Datagram(src=A, dst=B, payload=video_packet())
        restored = Datagram.from_bytes(A, B, datagram.to_bytes())
        assert restored.kind == PayloadKind.RTP
        assert restored.payload == datagram.payload

    def test_redirect(self):
        datagram = Datagram(src=A, dst=B, payload=video_packet())
        moved = datagram.redirect(B, A)
        assert (moved.src, moved.dst) == (B, A)
        assert moved.payload == datagram.payload

    def test_payload_size_helper(self):
        assert payload_size(b"12345") == 5


class _Sink:
    def __init__(self, address):
        self.address = address
        self.received = []

    def handle_datagram(self, datagram):
        self.received.append(datagram)


class TestLink:
    def test_delivery_with_delay(self):
        sim = Simulator()
        got = []
        link = Link(sim, LinkProfile(bandwidth_bps=1e9, propagation_delay_s=0.01), got.append)
        link.send(Datagram(src=A, dst=B, payload=video_packet()))
        sim.run()
        assert len(got) == 1
        assert sim.now >= 0.01

    def test_serialization_delay_queues_packets(self):
        sim = Simulator()
        got = []
        # 1 Mbit/s: a ~142 byte wire packet takes ~1.1 ms to serialize
        link = Link(sim, LinkProfile(bandwidth_bps=1e6, propagation_delay_s=0.0), got.append)
        for seq in range(5):
            link.send(Datagram(src=A, dst=B, payload=video_packet(seq)))
        sim.run()
        assert len(got) == 5
        assert sim.now > 4 * (142 * 8 / 1e6)

    def test_loss(self):
        sim = Simulator()
        got = []
        link = Link(sim, LinkProfile(loss_rate=1.0), got.append)
        assert link.send(Datagram(src=A, dst=B, payload=video_packet())) is False
        sim.run()
        assert got == [] and link.packets_dropped == 1

    def test_queue_overflow_drops(self):
        sim = Simulator()
        got = []
        profile = LinkProfile(bandwidth_bps=1e6, queue_limit_bytes=500)
        link = Link(sim, profile, got.append)
        results = [link.send(Datagram(src=A, dst=B, payload=video_packet(i))) for i in range(20)]
        assert not all(results)
        assert link.packets_dropped > 0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkProfile(loss_rate=1.5)


class _BatchSink:
    def __init__(self, address):
        self.address = address
        self.received = []
        self.batches = []

    def handle_datagram(self, datagram):
        self.received.append(datagram)

    def handle_datagram_batch(self, datagrams):
        self.batches.append(list(datagrams))
        self.received.extend(datagrams)


class TestLinkBursts:
    def test_burst_applies_same_admission_math_as_send(self):
        profile = LinkProfile(bandwidth_bps=1e6, propagation_delay_s=0.001)
        burst = [Datagram(src=A, dst=B, payload=video_packet(seq)) for seq in range(5)]

        sim_a, got_a = Simulator(), []
        reference = Link(sim_a, profile, got_a.append)
        for datagram in burst:
            reference.send(datagram)
        sim_a.run()

        sim_b, got_b = Simulator(), []
        link = Link(sim_b, profile, got_b.append)
        assert link.send_burst(burst) == 5
        sim_b.run()

        # same packets in order, same total counters, and the burst arrives
        # when its last bit would have (the per-packet path's final delivery)
        assert [d.payload.sequence_number for d in got_b] == [d.payload.sequence_number for d in got_a]
        assert (link.packets_sent, link.bytes_sent) == (reference.packets_sent, reference.bytes_sent)
        assert sim_b.now == pytest.approx(sim_a.now)

    def test_burst_respects_loss_and_queue_limit(self):
        sim = Simulator()
        got = []
        link = Link(sim, LinkProfile(loss_rate=1.0), got.append)
        assert link.send_burst([Datagram(src=A, dst=B, payload=video_packet())]) == 0
        assert link.packets_dropped == 1

        sim = Simulator()
        link = Link(sim, LinkProfile(bandwidth_bps=1e6, queue_limit_bytes=500), got.append)
        accepted = link.send_burst([Datagram(src=A, dst=B, payload=video_packet(i)) for i in range(20)])
        assert 0 < accepted < 20
        assert link.packets_dropped == 20 - accepted

    def test_burst_coalesced_into_one_simulator_event(self):
        sim = Simulator()
        got = []
        link = Link(sim, DEFAULT_ACCESS_PROFILE, got.append)
        link.send_burst([Datagram(src=A, dst=B, payload=video_packet(seq)) for seq in range(10)])
        sim.run()
        assert len(got) == 10
        assert sim.events_processed == 1


class TestNetworkBursts:
    def test_batch_endpoint_receives_whole_burst(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        sender, receiver = _Sink(A), _BatchSink(B)
        net.attach(sender)
        net.attach(receiver)
        burst = [Datagram(src=A, dst=B, payload=video_packet(seq)) for seq in range(4)]
        assert net.send_burst(burst) == 4
        sim.run()
        assert len(receiver.batches) == 1 and len(receiver.batches[0]) == 4
        assert all(d.sent_at == 0.0 for d in receiver.received)

    def test_plain_endpoint_receives_burst_per_packet(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        sender, receiver = _Sink(A), _Sink(B)
        net.attach(sender)
        net.attach(receiver)
        net.send_burst([Datagram(src=A, dst=B, payload=video_packet(seq)) for seq in range(4)])
        sim.run()
        assert [d.payload.sequence_number for d in receiver.received] == [0, 1, 2, 3]
        assert net.datagrams_delivered == 4

    def test_burst_to_multiple_destinations_routed_per_downlink(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        c = Address("10.0.0.4", 6002)
        sender, rx_b, rx_c = _Sink(A), _BatchSink(B), _BatchSink(c)
        net.attach(sender)
        net.attach(rx_b)
        net.attach(rx_c)
        burst = [Datagram(src=A, dst=B, payload=video_packet(1)), Datagram(src=A, dst=c, payload=video_packet(2))]
        net.send_burst(burst)
        sim.run()
        assert len(rx_b.received) == 1 and len(rx_c.received) == 1

    def test_burst_from_unattached_source_raises(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        with pytest.raises(KeyError):
            net.send_burst([Datagram(src=A, dst=B, payload=video_packet())])

    def test_mixed_burst_with_detached_source_sends_nothing(self):
        # atomic failure: if any source of the burst is unattached, no part
        # of the burst may have been transmitted
        sim = Simulator()
        net = Network(sim, seed=1)
        ghost = Address("10.9.9.9", 9999)
        sender, receiver = _Sink(A), _Sink(B)
        net.attach(sender)
        net.attach(receiver)
        with pytest.raises(KeyError):
            net.send_burst(
                [
                    Datagram(src=A, dst=B, payload=video_packet(1)),
                    Datagram(src=ghost, dst=B, payload=video_packet(2)),
                ]
            )
        sim.run()
        assert receiver.received == []

    def test_burst_to_departed_destination_dropped_silently(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        sender = _Sink(A)
        net.attach(sender)
        net.send_burst([Datagram(src=A, dst=B, payload=video_packet())])
        sim.run()
        assert net.datagrams_delivered == 0


class TestNetwork:
    def test_end_to_end_delivery(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        a, b = _Sink(A), _Sink(B)
        net.attach(a)
        net.attach(b)
        net.send(Datagram(src=A, dst=B, payload=video_packet()))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].sent_at == 0.0

    def test_unknown_destination_dropped_silently(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        a = _Sink(A)
        net.attach(a)
        net.send(Datagram(src=A, dst=B, payload=video_packet()))
        sim.run()
        assert net.datagrams_delivered == 0

    def test_unknown_source_raises(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        with pytest.raises(KeyError):
            net.send(Datagram(src=A, dst=B, payload=video_packet()))

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        net.attach(_Sink(A))
        with pytest.raises(ValueError):
            net.attach(_Sink(A))

    def test_downlink_profile_change_applies(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        a, b = _Sink(A), _Sink(B)
        net.attach(a)
        net.attach(b)
        net.set_downlink_profile(B, LinkProfile(loss_rate=1.0))
        net.send(Datagram(src=A, dst=B, payload=video_packet()))
        sim.run()
        assert b.received == []

    def test_detach_stops_delivery(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        a, b = _Sink(A), _Sink(B)
        net.attach(a)
        net.attach(b)
        net.detach(B)
        net.send(Datagram(src=A, dst=B, payload=video_packet()))
        sim.run()
        assert b.received == []
