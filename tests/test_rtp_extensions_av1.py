"""Unit tests for RTP header extensions and the AV1 dependency descriptor."""

import pytest

from repro.rtp.av1 import (
    DecodeTarget,
    DependencyDescriptor,
    TemplateStructure,
    dependency_descriptor_element,
    extract_dependency_descriptor,
    frame_rate_for_decode_target,
    packet_template_id,
    template_needed_by,
    temporal_layer_for_template,
)
from repro.rtp.extensions import (
    EXT_ID_AV1_DEPENDENCY_DESCRIPTOR,
    ExtensionElement,
    decode_extensions,
    encode_extensions,
    extensions_by_id,
    find_extension,
    walk_extension_elements,
)
from repro.rtp.packet import (
    EXTENSION_PROFILE_ONE_BYTE,
    EXTENSION_PROFILE_TWO_BYTE,
    RtpPacket,
)


class TestExtensionCodec:
    def test_one_byte_round_trip(self):
        elements = [ExtensionElement(3, b"\x01\x02"), ExtensionElement(12, b"\xaa")]
        block = encode_extensions(elements)
        assert block.profile == EXTENSION_PROFILE_ONE_BYTE
        assert decode_extensions(block) == elements

    def test_two_byte_profile_selected_for_large_elements(self):
        elements = [ExtensionElement(12, b"\x00" * 20)]
        block = encode_extensions(elements)
        assert block.profile == EXTENSION_PROFILE_TWO_BYTE
        assert decode_extensions(block) == elements

    def test_two_byte_profile_selected_for_large_ids(self):
        elements = [ExtensionElement(120, b"\x01")]
        block = encode_extensions(elements)
        assert block.profile == EXTENSION_PROFILE_TWO_BYTE
        assert decode_extensions(block) == elements

    def test_padding_alignment(self):
        block = encode_extensions([ExtensionElement(3, b"\x01")])
        assert len(block.data) % 4 == 0

    def test_decode_none(self):
        assert decode_extensions(None) == []

    def test_find_and_lookup(self):
        block = encode_extensions([ExtensionElement(3, b"\x01\x02"), ExtensionElement(4, b"mid0")])
        assert find_extension(block, 4) == b"mid0"
        assert find_extension(block, 9) is None
        assert extensions_by_id(block) == {3: b"\x01\x02", 4: b"mid0"}

    def test_walk_elements_reports_depth(self):
        block = encode_extensions([ExtensionElement(3, b"\x01"), ExtensionElement(4, b"\x02\x03")])
        walked = walk_extension_elements(block)
        assert walked == [(0, 3, 1), (1, 4, 2)]

    def test_element_id_validation(self):
        with pytest.raises(ValueError):
            ExtensionElement(0, b"\x01")


class TestL1T3Structure:
    def test_template_to_layer_mapping(self):
        assert temporal_layer_for_template(0) == 0
        assert temporal_layer_for_template(1) == 0
        assert temporal_layer_for_template(2) == 1
        assert temporal_layer_for_template(3) == 2
        assert temporal_layer_for_template(4) == 2

    def test_unknown_template_raises(self):
        with pytest.raises(ValueError):
            temporal_layer_for_template(9)

    def test_decode_target_frame_rates(self):
        assert frame_rate_for_decode_target(DecodeTarget.DT0) == 7.5
        assert frame_rate_for_decode_target(DecodeTarget.DT1) == 15.0
        assert frame_rate_for_decode_target(DecodeTarget.DT2) == 30.0

    def test_template_needed_by(self):
        # dropping template ids 3 and 4 reduces 30 fps to 15 fps (paper §5.4)
        assert template_needed_by(3, DecodeTarget.DT2)
        assert not template_needed_by(3, DecodeTarget.DT1)
        assert template_needed_by(2, DecodeTarget.DT1)
        assert not template_needed_by(2, DecodeTarget.DT0)
        assert template_needed_by(0, DecodeTarget.DT0)

    def test_structure_templates_for_targets(self):
        structure = TemplateStructure.l1t3()
        assert structure.templates_for_decode_target(0) == [0, 1]
        assert structure.templates_for_decode_target(1) == [0, 1, 2]
        assert structure.templates_for_decode_target(2) == [0, 1, 2, 3, 4]

    def test_structure_round_trip(self):
        structure = TemplateStructure.l1t3()
        assert TemplateStructure.parse(structure.serialize()) == structure


class TestDependencyDescriptor:
    def test_mandatory_round_trip(self):
        descriptor = DependencyDescriptor(
            start_of_frame=True, end_of_frame=False, template_id=3, frame_number=1234
        )
        parsed = DependencyDescriptor.parse(descriptor.serialize())
        assert parsed == descriptor
        assert not parsed.is_extended

    def test_extended_round_trip(self):
        descriptor = DependencyDescriptor(
            start_of_frame=True,
            end_of_frame=True,
            template_id=0,
            frame_number=7,
            structure=TemplateStructure.l1t3(),
        )
        parsed = DependencyDescriptor.parse(descriptor.serialize())
        assert parsed.is_extended
        assert parsed.structure == TemplateStructure.l1t3()

    def test_prefix_parse_detects_extension_flag(self):
        descriptor = DependencyDescriptor(
            start_of_frame=True,
            end_of_frame=True,
            template_id=0,
            frame_number=7,
            structure=TemplateStructure.l1t3(),
        )
        prefix = DependencyDescriptor.parse_prefix(descriptor.serialize())
        assert prefix.is_extended
        assert prefix.template_id == 0

    def test_temporal_layer_property(self):
        descriptor = DependencyDescriptor(True, True, template_id=4, frame_number=1)
        assert descriptor.temporal_layer == 2

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            DependencyDescriptor.parse(b"\x00")

    def test_extract_from_packet(self):
        descriptor = DependencyDescriptor(True, True, template_id=2, frame_number=55)
        extension = encode_extensions([dependency_descriptor_element(descriptor)])
        packet = RtpPacket(
            payload_type=45, sequence_number=1, timestamp=1, ssrc=1, extension=extension, payload=b"x"
        )
        # survive a full wire round trip
        parsed_packet = RtpPacket.parse(packet.serialize())
        assert extract_dependency_descriptor(parsed_packet.extension) == descriptor
        assert packet_template_id(parsed_packet) == 2

    def test_extract_missing_returns_none(self):
        packet = RtpPacket(payload_type=45, sequence_number=1, timestamp=1, ssrc=1, payload=b"x")
        assert extract_dependency_descriptor(packet.extension) is None
        assert packet_template_id(packet) is None
