"""Deliver-with-schedule burst delivery and adaptive RX-queue batching.

The contract: a burst rides one simulator event per hop, but every datagram
carries the arrival timestamp it would have had under per-packet ``send`` —
through loss/jitter/queueing arithmetic and across hops — so GCC estimators,
jitter measurement, and latency samples observe identical timing in both
modes.  On the receive side, all bursts landing at an endpoint in one instant
drain as a single batch whose size follows instantaneous load.
"""

import pytest

from repro.core.scallop import ScallopSfu
from repro.dataplane.pipeline import ForwardingMode, ReplicaTarget, StreamForwardingEntry
from repro.dataplane.pre import L2Port
from repro.netsim.datagram import Address, Datagram
from repro.netsim.link import Link, LinkProfile, Network
from repro.netsim.simulator import Simulator
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder
from repro.webrtc.gcc import RemoteBitrateEstimator

A = Address("10.0.0.2", 6000)
B = Address("10.0.0.3", 6001)
SFU = Address("10.0.0.1", 5000)


def frame_datagrams(frames=3, src=A, dst=B, ssrc=7, seed=2):
    encoder = SvcEncoder(target_bitrate_bps=2_200_000, seed=seed)
    packetizer = RtpPacketizer(ssrc=ssrc, seed=seed)
    out = []
    for index in range(frames):
        out.append(
            [Datagram(src=src, dst=dst, payload=p) for p in packetizer.packetize(encoder.next_frame(index / 30))]
        )
    return out


class _TimedSink:
    """Endpoint recording each packet's schedule-aware arrival time."""

    def __init__(self, address, simulator):
        self.address = address
        self.simulator = simulator
        self.arrivals = []  # (sequence_number, time)

    def handle_datagram(self, datagram):
        at = datagram.arrived_at if datagram.arrived_at is not None else self.simulator.now
        self.arrivals.append((datagram.payload.sequence_number, at))


class _BatchTimedSink(_TimedSink):
    def __init__(self, address, simulator):
        super().__init__(address, simulator)
        self.batches = []

    def handle_datagram_batch(self, datagrams):
        self.batches.append(len(datagrams))
        for datagram in datagrams:
            self.handle_datagram(datagram)


class TestLinkSchedulePreserved:
    def run_link(self, profile, burst_mode, packets):
        simulator = Simulator()
        arrivals = []

        def deliver(datagram):
            at = datagram.arrived_at if datagram.arrived_at is not None else simulator.now
            arrivals.append(at)

        link = Link(simulator, profile, deliver)
        if burst_mode:
            link.send_burst(packets)
        else:
            for datagram in packets:
                link.send(datagram)
        simulator.run()
        return arrivals

    @pytest.mark.parametrize(
        "profile",
        [
            LinkProfile(bandwidth_bps=2e6, propagation_delay_s=0.004),
            LinkProfile(bandwidth_bps=2e6, propagation_delay_s=0.004, jitter_s=0.003),
            LinkProfile(bandwidth_bps=5e5, propagation_delay_s=0.001, queue_limit_bytes=4000),
        ],
    )
    def test_burst_arrival_schedule_matches_per_packet_send(self, profile):
        packets = [d for frame in frame_datagrams(2) for d in frame]
        reference = self.run_link(profile, burst_mode=False, packets=packets)
        burst = self.run_link(profile, burst_mode=True, packets=packets)
        assert len(reference) == len(burst)
        for expected, actual in zip(reference, burst):
            assert actual == pytest.approx(expected, abs=1e-12)

    def test_inter_arrival_gaps_reflect_serialization(self):
        # back-to-back packets of one frame must arrive one serialization
        # time apart inside the burst, not all at the coalesced event time
        profile = LinkProfile(bandwidth_bps=1e6, propagation_delay_s=0.0)
        packets = [d for frame in frame_datagrams(1) for d in frame]
        arrivals = self.run_link(profile, burst_mode=True, packets=packets)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        serialization = [d.wire_size * 8.0 / 1e6 for d in packets[1:]]
        for gap, expected in zip(gaps, serialization):
            assert gap == pytest.approx(expected, rel=1e-9)


class TestCoalescedAdmissionFifo:
    def test_per_packet_send_does_not_overtake_pending_burst(self):
        # a burst held for admission coalescing arrived first; a per-packet
        # send must flush it ahead rather than claim earlier queue slots
        simulator = Simulator()
        arrivals = []

        def deliver(datagram):
            at = datagram.arrived_at if datagram.arrived_at is not None else simulator.now
            arrivals.append((datagram.payload.sequence_number, at))

        link = Link(
            simulator,
            LinkProfile(bandwidth_bps=1e6, propagation_delay_s=0.001),
            deliver,
            admission_coalesce_window_s=0.002,
        )
        burst = [d for frame in frame_datagrams(1) for d in frame][:5]
        link.send_burst(burst)
        straggler = frame_datagrams(1, ssrc=9)[0][0]
        link.send(straggler)
        simulator.run()
        assert [seq for seq, _ in arrivals[:5]] == [d.payload.sequence_number for d in burst]
        assert arrivals[5][0] == straggler.payload.sequence_number
        # FIFO admission: the straggler serialized behind the whole burst
        assert arrivals[5][1] > max(at for _, at in arrivals[:5])


class TestNetworkSchedulePreserved:
    def run_network(self, burst_mode, jitter_s=0.0):
        simulator = Simulator()
        network = Network(simulator, seed=17)
        sender = _TimedSink(A, simulator)
        receiver = _TimedSink(B, simulator)
        access = LinkProfile(bandwidth_bps=4e6, propagation_delay_s=0.008, jitter_s=jitter_s)
        network.attach(sender, uplink=access, downlink=access)
        network.attach(receiver, uplink=access, downlink=access)
        for frame in frame_datagrams(3):
            if burst_mode:
                network.send_burst(frame)
            else:
                for datagram in frame:
                    network.send(datagram)
            simulator.run()
        return receiver.arrivals

    @pytest.mark.parametrize("jitter_s", [0.0, 0.002])
    def test_two_hop_schedule_matches_per_packet(self, jitter_s):
        reference = self.run_network(burst_mode=False, jitter_s=jitter_s)
        burst = self.run_network(burst_mode=True, jitter_s=jitter_s)
        assert [seq for seq, _ in reference] == [seq for seq, _ in burst]
        for (_, expected), (_, actual) in zip(reference, burst):
            assert actual == pytest.approx(expected, abs=1e-12)


class TestAdaptiveRxBatching:
    def test_bursts_arriving_together_drain_as_one_batch(self):
        # two senders each emit a frame burst at t=0 towards one receiver:
        # their downlink deliveries land microseconds apart, inside the RX
        # moderation window, so they coalesce into a single load-sized batch
        simulator = Simulator()
        # window sized to cover the downlink's serialization spread of the
        # second sender's burst (two 69-packet bursts back-to-back at 1 Gb/s)
        network = Network(simulator, seed=1, rx_coalesce_window_s=1e-3)
        c = Address("10.0.0.4", 6002)
        receiver = _BatchTimedSink(B, simulator)
        profile = LinkProfile(bandwidth_bps=1e9, propagation_delay_s=0.005)
        for endpoint in (_TimedSink(A, simulator), _TimedSink(c, simulator), receiver):
            network.attach(endpoint, uplink=profile, downlink=profile)
        burst_a = [d for f in frame_datagrams(1, src=A, ssrc=7) for d in f]
        burst_c = [d for f in frame_datagrams(1, src=c, ssrc=8) for d in f]
        network.send_burst(burst_a + burst_c)
        simulator.run()
        assert sum(receiver.batches) == len(burst_a) + len(burst_c)
        # adaptive sizing: the two per-source bursts coalesced into one drain
        assert receiver.batches == [len(burst_a) + len(burst_c)]

    def test_batches_track_instantaneous_load(self):
        # bursts spaced out in time drain separately; batch size follows load
        simulator = Simulator()
        network = Network(simulator, seed=1, rx_coalesce_window_s=250e-6)
        receiver = _BatchTimedSink(B, simulator)
        profile = LinkProfile(bandwidth_bps=1e9, propagation_delay_s=0.005)
        network.attach(_TimedSink(A, simulator), uplink=profile, downlink=profile)
        network.attach(receiver, uplink=profile, downlink=profile)
        frames = frame_datagrams(2, src=A)
        network.send_burst(frames[0])
        simulator.run()
        simulator.schedule(1.0, lambda: network.send_burst(frames[1]))
        simulator.run()
        assert receiver.batches == [len(frames[0]), len(frames[1])]

    def test_moderation_window_does_not_change_measured_arrivals(self):
        # the window shifts drain *event* times only; the arrival schedule
        # each packet carries is identical with and without moderation
        def run(window):
            simulator = Simulator()
            network = Network(simulator, seed=4, rx_coalesce_window_s=window)
            receiver = _BatchTimedSink(B, simulator)
            profile = LinkProfile(bandwidth_bps=4e6, propagation_delay_s=0.008)
            network.attach(_TimedSink(A, simulator), uplink=profile, downlink=profile)
            network.attach(receiver, uplink=profile, downlink=profile)
            for frame in frame_datagrams(3, src=A):
                network.send_burst(frame)
            simulator.run()
            return receiver.arrivals

        without = run(0.0)
        with_window = run(0.002)
        assert [seq for seq, _ in without] == [seq for seq, _ in with_window]
        for (_, expected), (_, actual) in zip(without, with_window):
            assert actual == pytest.approx(expected, abs=1e-12)


class TestSoftwareSfuBatch:
    """The split-proxy baseline ingests bursts like-for-like (ROADMAP item 3):
    same modelled CPU cost per packet, anchored on true arrival schedules."""

    @staticmethod
    def run_baseline(frame_bursts):
        from repro.experiments import MeetingSetupConfig, build_software_testbed
        from repro.rtp.av1 import DecodeTarget

        config = MeetingSetupConfig(
            num_meetings=2,
            participants_per_meeting=3,
            frame_bursts=frame_bursts,
            send_audio=False,
            frame_rate=10.0,
            video_bitrate_bps=500_000.0,
            seed=6,
        )
        # pin the decode target (as the Figure 3/4 experiment does): REMB
        # estimates sit near a layer-drop threshold in this scenario, and the
        # resulting flicker is stochastic noise orthogonal to what is under
        # test here (burst ingest fidelity of the CPU model)
        testbed = build_software_testbed(
            config, select_fn=lambda current, history, estimate: DecodeTarget.DT2
        )
        testbed.run_for(3.0)
        return testbed

    def test_burst_ingest_preserves_forwarding_behaviour(self):
        reference = self.run_baseline(frame_bursts=False)
        burst = self.run_baseline(frame_bursts=True)
        # light load, no CPU drops: both modes admit and forward essentially
        # the same traffic (periodic feedback events near the horizon shift
        # by microseconds under coalescing, so counts match within a hair,
        # not exactly — the byte-identical contract belongs to Scallop's
        # dataplane, not the stochastic CPU baseline)
        assert burst.sfu.stats.packets_dropped_cpu == 0
        assert reference.sfu.stats.packets_dropped_cpu == 0
        assert burst.sfu.stats.packets_in == pytest.approx(reference.sfu.stats.packets_in, rel=0.02)
        assert burst.sfu.stats.packets_out == pytest.approx(reference.sfu.stats.packets_out, rel=0.02)

        def mean_fps(testbed):
            now = testbed.simulator.now
            rates = [
                stream.frame_rate(2.0, now)
                for client in testbed.clients
                for stream in client.video_receivers.values()
            ]
            return sum(rates) / len(rates)

        assert mean_fps(burst) == pytest.approx(mean_fps(reference), rel=0.15)

    def test_overload_experiment_runs_in_burst_mode(self):
        from repro.experiments.fig_overload import OverloadConfig, run_overload_experiment

        config = OverloadConfig(
            num_meetings=2,
            participants_per_meeting=3,
            seconds_per_join=0.3,
            media_scale=0.1,
            saturation_participants=6,
            frame_bursts=True,
        )
        result = run_overload_experiment(config)
        assert len(result.samples) == 6
        assert result.samples[-1].cpu_utilization > 0.0


def build_sfu_star(n_shards=1):
    """A minimal SFU star (one sender flow, one receiver) with the pipeline
    configured directly, bypassing signaling/feedback so the only traffic is
    the media under test."""
    simulator = Simulator()
    network = Network(simulator, seed=9)
    sfu = ScallopSfu(SFU, simulator, network, n_shards=n_shards)
    access = LinkProfile(bandwidth_bps=6e6, propagation_delay_s=0.01)
    sender = _TimedSink(A, simulator)
    receiver = _TimedSink(B, simulator)
    network.attach(sender, uplink=access, downlink=access)
    network.attach(receiver, uplink=access, downlink=access)
    pipeline = sfu.pipeline
    mgid = pipeline.pre.create_tree()
    pipeline.pre.add_node(mgid, rid=1, ports=[L2Port(port=1, l2_xid=1)], l1_xid=1, prune_enabled=True)
    pipeline.install_replica_target(mgid, 1, ReplicaTarget(address=B, participant_id="bob"))
    pipeline.install_stream(
        (A, 7),
        StreamForwardingEntry(
            mode=ForwardingMode.REPLICATE, meeting_id="m", sender=A, mgid=mgid, rid=2, l2_xid=2
        ),
    )
    return simulator, network, receiver


class TestGccVisibleTimingThroughSfu:
    """Acceptance: GCC-visible inter-arrival times under deliver-with-schedule
    match per-packet ``send`` within floating-point tolerance, end to end
    through the SFU (uplink -> switch -> downlink)."""

    def run_mode(self, burst_mode, n_shards=1):
        simulator, network, receiver = build_sfu_star(n_shards=n_shards)
        frames = frame_datagrams(4, src=A, dst=SFU, ssrc=7)
        for index, frame in enumerate(frames):
            if burst_mode:
                simulator.schedule(index / 30, lambda f=frame: network.send_burst(f))
            else:
                simulator.schedule(
                    index / 30, lambda f=frame: [network.send(d) for d in f]
                )
        simulator.run()
        return receiver.arrivals

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_receiver_arrival_schedule_identical(self, n_shards):
        reference = self.run_mode(burst_mode=False)
        burst = self.run_mode(burst_mode=True, n_shards=n_shards)
        assert [seq for seq, _ in reference] == [seq for seq, _ in burst]
        for (_, expected), (_, actual) in zip(reference, burst):
            assert actual == pytest.approx(expected, abs=1e-9)

    def test_gcc_estimator_sees_identical_pacing(self):
        reference = self.run_mode(burst_mode=False)
        burst = self.run_mode(burst_mode=True)

        def feed(arrivals):
            estimator = RemoteBitrateEstimator(initial_estimate_bps=2_200_000)
            for index, (_, at) in enumerate(arrivals):
                estimator.on_packet(recv_time=at, send_time=index / 90, size_bytes=1000)
            return estimator.estimate_bps

        assert feed(burst) == pytest.approx(feed(reference), rel=1e-12)
        gaps_reference = [b[1] - a[1] for a, b in zip(reference, reference[1:])]
        gaps_burst = [b[1] - a[1] for a, b in zip(burst, burst[1:])]
        for expected, actual in zip(gaps_reference, gaps_burst):
            assert actual == pytest.approx(expected, abs=1e-9)
