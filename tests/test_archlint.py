"""Per-rule and end-to-end suite for the archlint architecture checker.

Each rule gets four fixtures: a violating snippet, a clean snippet, the
violating snippet with an inline ``# archlint: ignore[...]`` suppression, and
the violating snippet grandfathered through a baseline.  The end-to-end tests
pin the CI contract: ``python -m tools.archlint src`` exits 0 against the
committed baseline, and exits non-zero against the violating fixture file.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.archlint import ALL_RULES, check_source, load_baseline, run_paths
from tools.archlint.engine import format_baseline_entry
from tools.archlint.rules import (
    PICKLE_WHITELIST,
    DeterminismRule,
    GenerationDisciplineRule,
    ShareNothingRule,
    WireHygieneRule,
    ZeroPickleRule,
)


def lint(source, module, rules=None, baseline=None):
    return check_source(
        textwrap.dedent(source),
        module=module,
        rules=rules,
        baseline=baseline,
    )


def new_rules(findings):
    return sorted({finding.rule for finding in findings if finding.is_new})


# --------------------------------------------------------------------------- rule 1: share-nothing


class TestShareNothingRule:
    RULES = (ShareNothingRule(),)

    def test_datapath_method_mutating_control_state_flags(self):
        findings = lint(
            """
            class PipelineDatapath:
                def _process_media_fast(self, view):
                    self.pre.copies_produced += 1
                    self.stream_table.install(("a", 1), object())
                    self.control.stream_indices["x"] = 3
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) == 3
        assert new_rules(findings) == ["share-nothing"]

    def test_reads_and_sanctioned_accounting_are_clean(self):
        findings = lint(
            """
            class PipelineDatapath:
                def _process_media_fast(self, view):
                    entry = self.stream_table.lookup(("a", 1))
                    self.pre.note_replication(3)
                    self.local_counter += 1
                    return entry
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert not findings

    def test_control_plane_class_is_out_of_scope(self):
        findings = lint(
            """
            class PipelineControlPlane:
                def install_stream(self, key, entry):
                    self.stream_table.install(key, entry)
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert not findings

    def test_worker_functions_in_sharding_are_in_scope(self):
        findings = lint(
            """
            def _worker_process_batch(blob):
                state.control.stream_indices["k"] = 1

            def coordinator_side(control):
                control.stream_indices["k"] = 1  # not a worker, out of scope
            """,
            module="repro.dataplane.sharding",
            rules=self.RULES,
        )
        assert len(findings) == 1
        assert findings[0].rule == "share-nothing"
        assert "_worker_process_batch" in findings[0].fingerprint

    def test_inline_suppression(self):
        findings = lint(
            """
            class PipelineDatapath:
                def _process_media_fast(self, view):
                    self.pre.copies_produced += 1  # archlint: ignore[share-nothing]
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert len(findings) == 1
        assert findings[0].suppressed and not findings[0].is_new

    def test_baseline_grandfathers_exact_fingerprint(self):
        source = """
        class PipelineDatapath:
            def _process_media_fast(self, view):
                self.pre.copies_produced += 1
        """
        first = lint(source, module="repro.dataplane.pipeline", rules=self.RULES)
        assert len(first) == 1 and first[0].is_new
        baseline = {("share-nothing", "<fixture>", first[0].fingerprint): 1}
        again = lint(source, module="repro.dataplane.pipeline", rules=self.RULES, baseline=baseline)
        assert len(again) == 1
        assert again[0].baselined and not again[0].is_new


# --------------------------------------------------------------------------- rule 2: zero-pickle


class TestZeroPickleRule:
    RULES = (ZeroPickleRule(),)

    def test_pickle_import_and_call_flag_outside_whitelist(self):
        findings = lint(
            """
            import pickle
            from copy import deepcopy

            def encode(batch):
                return pickle.dumps(batch), deepcopy(batch)
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) >= 3
        assert new_rules(findings) == ["zero-pickle"]

    def test_whitelisted_codec_sites_are_clean(self):
        findings = lint(
            """
            import pickle

            def encode_ingress_batch(datagrams, stats=None):
                return pickle.dumps(datagrams)
            """,
            module="repro.dataplane.shardcodec",
            rules=self.RULES,
        )
        assert not [finding for finding in findings if finding.is_new]

    def test_non_dataplane_modules_out_of_scope_unless_repro(self):
        findings = lint(
            """
            import pickle

            def snapshot(obj):
                return pickle.dumps(obj)
            """,
            module="repro.scenario.library",
            rules=self.RULES,
        )
        # scenario code is still repro simulation code: pickle there is a finding
        assert new_rules(findings) == ["zero-pickle"]

    def test_inline_suppression(self):
        findings = lint(
            """
            import pickle  # archlint: ignore[zero-pickle]

            def bench(graph):
                return pickle.dumps(graph)  # archlint: ignore[zero-pickle]
            """,
            module="repro.experiments.batch_throughput",
            rules=self.RULES,
        )
        assert findings and all(finding.suppressed for finding in findings)


# --------------------------------------------------------------------------- rule 3: generation discipline


class TestGenerationDisciplineRule:
    RULES = (GenerationDisciplineRule(),)

    def test_table_mutation_outside_control_plane_flags(self):
        findings = lint(
            """
            def rogue_helper(pipeline):
                pipeline.stream_table.install(("a", 1), object())
                pipeline.replica_table.remove(("a", 1))
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) == 2
        assert new_rules(findings) == ["generation-discipline"]

    def test_control_plane_methods_are_sanctioned(self):
        findings = lint(
            """
            class PipelineControlPlane:
                def install_stream(self, key, entry):
                    self.stream_table.install(key, entry)
                    self.generation += 1
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert not [finding for finding in findings if finding.is_new]

    def test_table_internals_owned_by_tables_module(self):
        findings = lint(
            """
            class ExactMatchTable:
                def install(self, key, value):
                    self._entries[key] = value
            """,
            module="repro.dataplane.tables",
            rules=self.RULES,
        )
        assert not [finding for finding in findings if finding.is_new]

    def test_reaching_into_table_internals_elsewhere_flags(self):
        findings = lint(
            """
            def poke(table):
                table._entries["k"] = 1
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert new_rules(findings) == ["generation-discipline"]


# --------------------------------------------------------------------------- rule 4: determinism


class TestDeterminismRule:
    RULES = (DeterminismRule(),)

    def test_bare_random_and_wall_clock_flag(self):
        findings = lint(
            """
            import random
            import time

            def jitter():
                return random.random() + time.time()
            """,
            module="repro.netsim.link",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) == 2
        assert new_rules(findings) == ["determinism"]

    def test_seeded_random_instances_are_clean(self):
        findings = lint(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            module="repro.netsim.link",
            rules=self.RULES,
        )
        assert not findings

    def test_unseeded_random_instance_flags(self):
        findings = lint(
            """
            import random

            def make_rng():
                return random.Random()
            """,
            module="repro.netsim.link",
            rules=self.RULES,
        )
        assert new_rules(findings) == ["determinism"]

    def test_experiments_namespace_is_exempt(self):
        findings = lint(
            """
            import time

            def wall_clock_benchmark():
                return time.perf_counter()
            """,
            module="repro.experiments.batch_throughput",
            rules=self.RULES,
        )
        assert not findings

    def test_datetime_now_flags(self):
        findings = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            module="repro.scenario.library",
            rules=self.RULES,
        )
        assert new_rules(findings) == ["determinism"]


# --------------------------------------------------------------------------- rule 5: wire hygiene


class TestWireHygieneRule:
    RULES = (WireHygieneRule(),)

    def test_packet_construction_in_wire_path_flags(self):
        findings = lint(
            """
            class PipelineDatapath:
                def _process_media_wire(self, view):
                    packet = RtpPacket(ssrc=view.ssrc, seq=view.seq)
                    return view.to_packet(), packet
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) == 2
        assert new_rules(findings) == ["wire-hygiene"]

    def test_packetview_methods_must_stay_wire_native(self):
        findings = lint(
            """
            class PacketView:
                def rewrite_seq(self, seq):
                    return RtpPacket(seq=seq)

                def to_packet(self):
                    return RtpPacket(seq=self.seq)
            """,
            module="repro.rtp.wire",
            rules=self.RULES,
        )
        new = [finding for finding in findings if finding.is_new]
        # rewrite_seq flags; to_packet is the sanctioned object-model bridge
        assert len(new) == 1
        assert "rewrite_seq" in new[0].fingerprint

    def test_object_model_slow_path_is_out_of_scope(self):
        findings = lint(
            """
            class PipelineDatapath:
                def _process_media(self, packet):
                    return RtpPacket(ssrc=1, seq=2)
            """,
            module="repro.dataplane.pipeline",
            rules=self.RULES,
        )
        assert not findings

    def test_wirebatch_module_is_fast_path_everywhere(self):
        # the columnar module has no non-fast-path scope: construction and
        # conversion flag in any function, not just _process_media_wire names
        findings = lint(
            """
            def from_datagrams(datagrams):
                return [RtpPacket(ssrc=1, seq=0) for _ in datagrams]

            def replay_payloads(view, seqs):
                return [view.to_packet() for _ in seqs]
            """,
            module="repro.rtp.wirebatch",
            rules=self.RULES,
        )
        assert len([finding for finding in findings if finding.is_new]) == 2
        assert new_rules(findings) == ["wire-hygiene"]

    def test_wirebatch_attribute_reads_are_clean(self):
        # object rows read already-decoded RtpPacket attributes — that is
        # the sanctioned cheap path, only construction/conversion is flagged
        findings = lint(
            """
            def from_datagrams(datagrams):
                return [d.payload.ssrc for d in datagrams]
            """,
            module="repro.rtp.wirebatch",
            rules=self.RULES,
        )
        assert not findings

    def test_same_functions_outside_wirebatch_are_out_of_scope(self):
        findings = lint(
            """
            def from_datagrams(datagrams):
                return [RtpPacket(ssrc=1, seq=0) for _ in datagrams]
            """,
            module="repro.rtp.codecs",
            rules=self.RULES,
        )
        assert not findings


# --------------------------------------------------------------------------- suppression mechanics


class TestSuppressionMechanics:
    def test_comment_only_line_covers_next_line(self):
        findings = lint(
            """
            import random

            def jitter():
                # archlint: ignore[determinism]
                return random.random()
            """,
            module="repro.netsim.link",
            rules=(DeterminismRule(),),
        )
        assert len(findings) == 1 and findings[0].suppressed

    def test_bare_ignore_suppresses_all_rules(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()  # archlint: ignore
            """,
            module="repro.netsim.link",
            rules=(DeterminismRule(),),
        )
        assert len(findings) == 1 and findings[0].suppressed

    def test_ignore_for_other_rule_does_not_suppress(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()  # archlint: ignore[zero-pickle]
            """,
            module="repro.netsim.link",
            rules=(DeterminismRule(),),
        )
        assert len(findings) == 1 and findings[0].is_new

    def test_baseline_consumed_once_per_entry(self):
        source = """
        import random

        def jitter():
            return random.random() + random.random()
        """
        first = lint(source, module="repro.netsim.link", rules=(DeterminismRule(),))
        assert len(first) == 2
        # both findings share one fingerprint (same line); baseline count 1
        # grandfathers exactly one of them
        baseline = {("determinism", "<fixture>", first[0].fingerprint): 1}
        again = lint(source, module="repro.netsim.link", rules=(DeterminismRule(),), baseline=baseline)
        assert sorted(finding.baselined for finding in again) == [False, True]


# --------------------------------------------------------------------------- end to end


class TestEndToEnd:
    def test_src_is_clean_against_committed_baseline(self):
        baseline = load_baseline(REPO_ROOT / "tools" / "archlint" / "baseline.txt")
        assert len(baseline) <= 5, "baseline must stay small and justified"
        report = run_paths([str(REPO_ROOT / "src")], baseline=baseline)
        assert report.files_checked > 40
        assert report.ok, "\n".join(finding.render() for finding in report.new)
        assert not report.unused_baseline, "stale baseline entries should be pruned"

    def test_violating_fixture_trips_every_rule(self):
        fixture = REPO_ROOT / "tools" / "archlint" / "fixtures" / "violating.py"
        report = run_paths([str(fixture)])
        tripped = {finding.rule for finding in report.new}
        assert tripped == {rule.name for rule in ALL_RULES}

    def test_obs_fixture_trips_determinism(self):
        # the telemetry plane is ordinary repro.* simulation code: the
        # determinism rule must bite inside repro.obs exactly as it does in
        # the dataplane (wall-clock tracer stamps, RNG-based flow sampling)
        fixture = REPO_ROOT / "tools" / "archlint" / "fixtures" / "violating_obs.py"
        report = run_paths([str(fixture)])
        assert {finding.rule for finding in report.new} == {"determinism"}
        messages = [finding.message for finding in report.new]
        assert any("wall-clock read time.time()" in message for message in messages)
        assert any("random.random()" in message for message in messages)

    def test_obs_package_is_inside_determinism_jurisdiction(self):
        rule = DeterminismRule()
        assert rule._in_scope("repro.obs.tracing")
        assert rule._in_scope("repro.obs.registry")
        assert not rule._in_scope("repro.experiments.coordstats")

    def test_cluster_fixture_trips_determinism_and_pickle(self):
        # the federation layer is ordinary repro.* simulation code: a pickled
        # migration snapshot, a wall-clock drain deadline, or RNG placement
        # in repro.cluster must flag exactly as they would in the dataplane
        fixture = REPO_ROOT / "tools" / "archlint" / "fixtures" / "violating_cluster.py"
        report = run_paths([str(fixture)])
        assert {finding.rule for finding in report.new} == {"determinism", "zero-pickle"}
        messages = [finding.message for finding in report.new]
        assert any("pickle.dumps()" in message for message in messages)
        assert any("wall-clock read time.time()" in message for message in messages)
        assert any("random.random()" in message for message in messages)

    def test_cluster_package_is_inside_jurisdictions(self):
        determinism = DeterminismRule()
        assert determinism._in_scope("repro.cluster.trunk")
        assert determinism._in_scope("repro.cluster.snapshot")
        # no repro.cluster module may appear in the pickle whitelist: the
        # migration snapshot path must stay zero-pickle end to end
        assert not any(module.startswith("repro.cluster") for module in PICKLE_WHITELIST)

    def test_wirebatch_fixture_trips_wire_hygiene(self):
        # proves the extended jurisdiction bites: the fixture impersonates
        # repro.rtp.wirebatch via the module override and must produce both
        # a construction and a conversion finding
        fixture = REPO_ROOT / "tools" / "archlint" / "fixtures" / "violating_wirebatch.py"
        report = run_paths([str(fixture)])
        assert {finding.rule for finding in report.new} == {"wire-hygiene"}
        messages = [finding.message for finding in report.new]
        assert any("constructs RtpPacket" in message for message in messages)
        assert any("to_packet" in message for message in messages)

    def test_cli_exit_codes(self):
        clean = subprocess.run(
            [sys.executable, "-m", "tools.archlint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "0 new finding(s)" in clean.stdout

        dirty = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.archlint",
                "--no-baseline",
                "tools/archlint/fixtures",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert dirty.returncode == 1, dirty.stdout + dirty.stderr
        assert "new finding" in dirty.stdout

    def test_failure_output_offers_baseline_entries(self):
        fixture = REPO_ROOT / "tools" / "archlint" / "fixtures" / "violating.py"
        result = subprocess.run(
            [sys.executable, "-m", "tools.archlint", "--no-baseline", str(fixture)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        # every new finding should have a ready-to-paste baseline line
        report = run_paths([str(fixture)])
        for finding in report.new:
            assert format_baseline_entry(finding).split("\t")[0] in result.stdout
