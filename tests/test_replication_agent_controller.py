"""Unit tests for the replication manager, switch agent, and controller."""

import pytest

from repro.core.capacity import ReplicationDesign, RewriteVariant
from repro.core.controller import ScallopController, SignalingError
from repro.core.replication import ParticipantEndpoint, ReplicationManager
from repro.core.switch_agent import SwitchAgent
from repro.dataplane.pipeline import ForwardingMode, ScallopPipeline
from repro.netsim.datagram import Address, Datagram
from repro.rtp.av1 import DecodeTarget
from repro.rtp.rtcp import Remb
from repro.signaling.messages import SignalMessage, SignalType, join_message, leave_message
from repro.signaling.sdp import make_offer
from repro.stun.message import make_binding_request
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)


def endpoint(index, audio=True, video=True):
    return ParticipantEndpoint(
        participant_id=f"p{index}",
        address=Address(f"10.0.1.{index}", 6000 + index),
        egress_port=0,
        audio_ssrc=1000 + index * 10 if audio else None,
        video_ssrc=1001 + index * 10 if video else None,
    )


class TestReplicationManager:
    def setup_method(self):
        self.pipeline = ScallopPipeline(SFU)
        self.manager = ReplicationManager(self.pipeline)

    def test_two_party_meeting_uses_unicast(self):
        participants = [endpoint(1), endpoint(2)]
        state = self.manager.install_meeting("m", participants, ReplicationDesign.TWO_PARTY)
        assert state.trees == []
        entry = self.pipeline.stream_table.lookup((participants[0].address, participants[0].video_ssrc))
        assert entry.mode == ForwardingMode.UNICAST
        assert entry.unicast_receiver == participants[1].address

    def test_two_party_design_validation(self):
        with pytest.raises(ValueError):
            self.manager.install_meeting("m", [endpoint(1), endpoint(2), endpoint(3)], ReplicationDesign.TWO_PARTY)

    def test_nra_meeting_builds_one_tree_group(self):
        participants = [endpoint(i) for i in range(1, 4)]
        state = self.manager.install_meeting("m", participants, ReplicationDesign.NRA)
        assert len(state.trees) == 1
        assert self.pipeline.pre.num_trees == 1
        # every participant has stream entries installed for audio and video
        for participant in participants:
            for _kind, ssrc in participant.media_ssrcs():
                assert self.pipeline.stream_table.lookup((participant.address, ssrc)) is not None

    def test_two_nra_meetings_share_a_tree(self):
        self.manager.install_meeting("m1", [endpoint(i) for i in range(1, 4)], ReplicationDesign.NRA)
        self.manager.install_meeting("m2", [endpoint(i) for i in range(4, 7)], ReplicationDesign.NRA)
        assert self.pipeline.pre.num_trees == 1
        third = self.manager.install_meeting("m3", [endpoint(i) for i in range(7, 10)], ReplicationDesign.NRA)
        assert self.pipeline.pre.num_trees == 2  # third meeting opens a new tree
        assert third.l1_xid == 1

    def test_ra_r_meeting_builds_tree_per_quality(self):
        state = self.manager.install_meeting("m", [endpoint(i) for i in range(1, 4)], ReplicationDesign.RA_R)
        assert len(state.trees) == 3
        layers = sorted(t.layer for t in state.trees)
        assert layers == [0, 1, 2]

    def test_ra_sr_meeting_builds_tree_per_sender_pair_and_quality(self):
        state = self.manager.install_meeting("m", [endpoint(i) for i in range(1, 5)], ReplicationDesign.RA_SR)
        # 4 participants -> 2 sender pairs x 3 qualities = 6 trees
        assert len(state.trees) == 6

    def test_add_and_remove_participant(self):
        participants = [endpoint(i) for i in range(1, 4)]
        self.manager.install_meeting("m", participants, ReplicationDesign.NRA)
        newcomer = endpoint(9)
        self.manager.add_participant("m", newcomer)
        assert len(self.manager.meetings["m"].participants) == 4
        assert self.pipeline.stream_table.lookup((newcomer.address, newcomer.video_ssrc)) is not None
        self.manager.remove_participant("m", "p1")
        assert "p1" not in self.manager.meetings["m"].participants
        assert self.pipeline.stream_table.lookup((participants[0].address, participants[0].video_ssrc)) is None

    def test_remove_last_participant_removes_meeting(self):
        self.manager.install_meeting("m", [endpoint(1), endpoint(2)], ReplicationDesign.TWO_PARTY)
        self.manager.remove_participant("m", "p1")
        self.manager.remove_participant("m", "p2")
        assert "m" not in self.manager.meetings

    def test_migration_nra_to_ra_r(self):
        participants = [endpoint(i) for i in range(1, 4)]
        self.manager.install_meeting("m", participants, ReplicationDesign.NRA)
        trees_before = self.pipeline.pre.num_trees
        self.manager.migrate("m", ReplicationDesign.RA_R)
        state = self.manager.meetings["m"]
        assert state.design == ReplicationDesign.RA_R
        assert len(state.trees) == 3
        assert self.manager.migrations_performed == 1
        # ingress entries repointed to the new trees
        entry = self.pipeline.stream_table.lookup((participants[0].address, participants[0].video_ssrc))
        assert entry.mode == ForwardingMode.REPLICATE_BY_LAYER
        # old NRA tree group released
        assert self.pipeline.pre.num_trees >= trees_before  # new trees exist
        assert self.manager.meetings["m"].tree_group is not None

    def test_migration_to_same_design_is_noop(self):
        self.manager.install_meeting("m", [endpoint(i) for i in range(1, 4)], ReplicationDesign.NRA)
        self.manager.migrate("m", ReplicationDesign.NRA)
        assert self.manager.migrations_performed == 0

    def test_remove_meeting_releases_trees(self):
        self.manager.install_meeting("m", [endpoint(i) for i in range(1, 4)], ReplicationDesign.RA_R)
        self.manager.remove_meeting("m")
        assert self.pipeline.pre.num_trees == 0
        assert self.pipeline.pre.total_l1_nodes() == 0


class TestSwitchAgent:
    def setup_method(self):
        self.pipeline = ScallopPipeline(SFU)
        self.sent = []
        self.agent = SwitchAgent(self.pipeline, send_fn=self.sent.append, rewrite_variant=RewriteVariant.S_LM)
        self.participants = [endpoint(i) for i in range(1, 4)]
        self.agent.configure_meeting("m", self.participants, design=ReplicationDesign.NRA)

    def _remb_from(self, receiver, about_sender, bitrate):
        packet = Remb(sender_ssrc=9999, bitrate_bps=bitrate, media_ssrcs=(about_sender.video_ssrc,))
        datagram = Datagram(src=receiver.address, dst=SFU, payload=(packet,))
        self.agent.handle_cpu_packet(datagram)

    def test_configure_installs_feedback_rules(self):
        rule = self.pipeline.feedback_table.lookup(
            (self.participants[1].address, self.participants[0].video_ssrc)
        )
        assert rule is not None
        assert rule.sender == self.participants[0].address
        assert rule.forward_nack_pli

    def test_stun_request_answered(self):
        request = make_binding_request(bytes(12), "p1")
        self.agent.handle_cpu_packet(Datagram(src=self.participants[0].address, dst=SFU, payload=request))
        assert len(self.sent) == 1
        assert self.sent[0].dst == self.participants[0].address
        assert self.agent.counters.stun_handled == 1

    def test_low_remb_installs_adaptation_and_migrates(self):
        receiver, sender = self.participants[2], self.participants[0]
        self._remb_from(receiver, sender, bitrate=700_000)
        assert self.agent.decode_target_for(sender.participant_id, receiver.participant_id) == DecodeTarget.DT1
        entry = self.pipeline.adaptation_table.lookup((sender.video_ssrc, receiver.address))
        assert entry is not None
        assert entry.allowed_templates == frozenset({0, 1, 2})
        # the meeting was migrated off the NRA design once adaptation started
        assert self.agent.meeting_design("m") == ReplicationDesign.RA_R
        assert self.agent.counters.migrations == 1

    def test_recovering_remb_upgrades_templates(self):
        receiver, sender = self.participants[2], self.participants[0]
        self._remb_from(receiver, sender, bitrate=700_000)
        self._remb_from(receiver, sender, bitrate=2_500_000)
        entry = self.pipeline.adaptation_table.lookup((sender.video_ssrc, receiver.address))
        assert entry.allowed_templates == frozenset({0, 1, 2, 3, 4})

    def test_filter_function_selects_best_downlink(self):
        sender = self.participants[0]
        self._remb_from(self.participants[1], sender, bitrate=3_000_000)
        self._remb_from(self.participants[2], sender, bitrate=1_000_000)
        updates = self.agent.run_filter_function()
        assert updates > 0
        good = self.pipeline.feedback_table.lookup((self.participants[1].address, sender.video_ssrc))
        poor = self.pipeline.feedback_table.lookup((self.participants[2].address, sender.video_ssrc))
        assert good.forward_remb and not poor.forward_remb

    def test_extended_descriptor_analysis(self):
        sender = self.participants[0]
        encoder = SvcEncoder(seed=1)
        packetizer = RtpPacketizer(ssrc=sender.video_ssrc, seed=1)
        key_packet = packetizer.packetize(encoder.next_frame(0.0))[0]
        self.agent.handle_cpu_packet(Datagram(src=sender.address, dst=SFU, payload=key_packet))
        assert self.agent.counters.extended_descriptors_handled == 1

    def test_remove_participant_cleans_up(self):
        self.agent.remove_participant("m", "p3")
        assert "p3" not in self.agent.participants_in("m")


class TestController:
    def setup_method(self):
        self.pipeline = ScallopPipeline(SFU)
        self.agent = SwitchAgent(self.pipeline)
        self.controller = ScallopController(SFU, self.agent)

    def _join(self, participant_id, meeting_id="m", index=1):
        offer = make_offer(participant_id, f"10.0.1.{index}", 6000 + index, ssrc_base=index * 100)
        return self.controller.handle_signal(join_message(meeting_id, participant_id, offer))

    def test_join_returns_answer_with_sfu_candidates(self):
        reply = self._join("p1", index=1)
        assert reply is not None and reply.type == SignalType.ANSWER
        answer = reply.session_description()
        for section in answer.media:
            assert section.candidates[0].ip == SFU.ip
            assert section.candidates[0].port == SFU.port

    def test_two_party_meeting_gets_two_party_design(self):
        self._join("p1", index=1)
        self._join("p2", index=2)
        assert self.agent.meeting_design("m") == ReplicationDesign.TWO_PARTY
        assert self.controller.meeting_sizes() == {"m": 2}

    def test_third_participant_switches_to_nra(self):
        for index in range(1, 4):
            self._join(f"p{index}", index=index)
        assert self.agent.meeting_design("m") == ReplicationDesign.NRA
        assert self.controller.total_participants() == 3

    def test_leave_removes_participant_and_meeting(self):
        self._join("p1", index=1)
        self._join("p2", index=2)
        self.controller.handle_signal(leave_message("m", "p1"))
        assert self.controller.meeting_sizes() == {"m": 1}
        self.controller.handle_signal(leave_message("m", "p2"))
        assert self.controller.meeting_sizes() == {}
        assert self.controller.counters.meetings_closed == 1

    def test_media_event_for_unknown_participant_raises(self):
        with pytest.raises(SignalingError):
            self.controller.handle_signal(
                SignalMessage(type=SignalType.MEDIA_STARTED, meeting_id="m", participant_id="ghost", media_kind="video")
            )

    def test_join_without_sdp_raises(self):
        with pytest.raises(SignalingError):
            self.controller.handle_signal(
                SignalMessage(type=SignalType.JOIN, meeting_id="m", participant_id="p1")
            )
