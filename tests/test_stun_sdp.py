"""Unit tests for the STUN codec and the SDP/signaling substrate."""

import pytest

from repro.signaling.messages import (
    SignalMessage,
    SignalType,
    answer_message,
    join_message,
    leave_message,
    media_event,
)
from repro.signaling.sdp import (
    IceCandidate,
    SdpParseError,
    SessionDescription,
    make_answer,
    make_offer,
)
from repro.stun.message import (
    StunMessage,
    StunParseError,
    decode_xor_mapped_address,
    looks_like_stun,
    make_binding_request,
    make_binding_response,
)
from repro.rtp.packet import looks_like_rtp

TRANSACTION_ID = bytes(range(12))


class TestStun:
    def test_binding_request_round_trip(self):
        request = make_binding_request(TRANSACTION_ID, username="alice", priority=77)
        parsed = StunMessage.parse(request.serialize())
        assert parsed.is_request
        assert parsed.transaction_id == TRANSACTION_ID
        assert parsed.attribute(0x0006) == b"alice"

    def test_binding_response_round_trip(self):
        request = make_binding_request(TRANSACTION_ID, username="alice")
        response = make_binding_response(request, "192.168.1.10", 4242)
        parsed = StunMessage.parse(response.serialize())
        assert parsed.is_success_response
        assert decode_xor_mapped_address(parsed) == ("192.168.1.10", 4242)

    def test_looks_like_stun(self):
        request = make_binding_request(TRANSACTION_ID, username="alice")
        assert looks_like_stun(request.serialize())
        assert not looks_like_stun(b"\x80\x00\x00\x00\x00\x00\x00\x00")

    def test_stun_is_not_rtp(self):
        request = make_binding_request(TRANSACTION_ID, username="alice")
        assert not looks_like_rtp(request.serialize())

    def test_bad_cookie_rejected(self):
        data = bytearray(make_binding_request(TRANSACTION_ID, "a").serialize())
        data[4] = 0
        with pytest.raises(StunParseError):
            StunMessage.parse(bytes(data))

    def test_transaction_id_length_enforced(self):
        with pytest.raises(ValueError):
            StunMessage(method=1, msg_class=0, transaction_id=b"short")


class TestSdp:
    def test_offer_round_trip(self):
        offer = make_offer("p1", "10.0.0.2", 6000, ssrc_base=100, send_screen=True)
        parsed = SessionDescription.parse(offer.serialize())
        assert len(parsed.media) == 3
        kinds = [m.kind for m in parsed.media]
        assert kinds == ["audio", "video", "screen"]
        assert parsed.media[1].svc_mode == "L1T3"
        assert parsed.ssrcs() == [100, 101, 102]

    def test_candidate_round_trip(self):
        candidate = IceCandidate("1", 1, "udp", 2130706431, "10.0.0.2", 6000)
        assert IceCandidate.from_line(candidate.to_line()) == candidate

    def test_candidate_rewrite_points_to_sfu(self):
        offer = make_offer("p1", "10.0.0.2", 6000, ssrc_base=100)
        answer = make_answer(offer, "10.0.0.1", 5000)
        for section in answer.media:
            assert len(section.candidates) == 1
            assert section.candidates[0].ip == "10.0.0.1"
            assert section.candidates[0].port == 5000
        # SSRCs are untouched so the data plane can match on them
        assert answer.ssrcs() == offer.ssrcs()

    def test_parse_malformed_candidate(self):
        with pytest.raises(SdpParseError):
            IceCandidate.from_line("a=candidate:garbage")

    def test_audio_only_offer(self):
        offer = make_offer("p1", "10.0.0.2", 6000, ssrc_base=5, send_video=False)
        assert [m.kind for m in offer.media] == ["audio"]


class TestSignaling:
    def test_join_message_round_trip(self):
        offer = make_offer("p1", "10.0.0.2", 6000, ssrc_base=100)
        message = join_message("m1", "p1", offer)
        restored = SignalMessage.from_json(message.to_json())
        assert restored.type == SignalType.JOIN
        assert restored.meeting_id == "m1"
        parsed_offer = restored.session_description()
        assert parsed_offer is not None
        assert parsed_offer.ssrcs() == [100, 101]

    def test_leave_and_media_event(self):
        leave = leave_message("m1", "p1")
        assert leave.type == SignalType.LEAVE
        started = media_event("m1", "p1", "screen", started=True)
        stopped = media_event("m1", "p1", "screen", started=False)
        assert started.type == SignalType.MEDIA_STARTED
        assert stopped.type == SignalType.MEDIA_STOPPED

    def test_answer_message_carries_sdp(self):
        offer = make_offer("p1", "10.0.0.2", 6000, ssrc_base=100)
        answer = make_answer(offer, "10.0.0.1", 5000)
        message = answer_message("m1", "p1", answer)
        assert message.session_description() is not None
