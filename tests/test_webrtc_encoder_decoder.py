"""Unit tests for the SVC encoder, packetizer, audio source, and receiver."""

import pytest

from repro.rtp.av1 import extract_dependency_descriptor
from repro.rtp.packet import PT_AUDIO_OPUS, PT_VIDEO_AV1, RtpPacket
from repro.webrtc.decoder import AudioReceiveStream, VideoReceiveStream
from repro.webrtc.encoder import (
    AudioSource,
    L1T3_TEMPORAL_PATTERN,
    RtpPacketizer,
    SvcEncoder,
)


def encode_frames(encoder, packetizer, count, start_time=0.0):
    """Produce `count` frames worth of packets with realistic timing."""
    packets = []
    time = start_time
    for _ in range(count):
        frame = encoder.next_frame(time)
        packets.extend(packetizer.packetize(frame))
        time += encoder.frame_interval
    return packets


class TestSvcEncoder:
    def test_first_frame_is_keyframe(self):
        encoder = SvcEncoder(seed=1)
        frame = encoder.next_frame(0.0)
        assert frame.is_keyframe and frame.temporal_layer == 0 and frame.template_id == 0

    def test_temporal_pattern_follows_l1t3(self):
        encoder = SvcEncoder(seed=1)
        layers = [encoder.next_frame(i / 30).temporal_layer for i in range(9)]
        # after the key frame the 4-frame L1T3 pattern repeats
        assert layers[0] == 0
        assert layers[1:5] == list(L1T3_TEMPORAL_PATTERN)[1:] + [L1T3_TEMPORAL_PATTERN[0]]

    def test_bitrate_controls_frame_size(self):
        small = SvcEncoder(target_bitrate_bps=300_000, seed=1)
        large = SvcEncoder(target_bitrate_bps=3_000_000, seed=1)
        small_bytes = sum(small.next_frame(i / 30).size_bytes for i in range(1, 60))
        large_bytes = sum(large.next_frame(i / 30).size_bytes for i in range(1, 60))
        assert large_bytes > 5 * small_bytes

    def test_set_target_bitrate_clamped_to_max(self):
        encoder = SvcEncoder(target_bitrate_bps=1_000_000, seed=1)
        encoder.set_target_bitrate(50_000_000)
        assert encoder.target_bitrate_bps == 1_000_000
        encoder.set_target_bitrate(10)
        assert encoder.target_bitrate_bps == 50_000

    def test_keyframe_on_request(self):
        encoder = SvcEncoder(seed=1)
        for i in range(5):
            encoder.next_frame(i / 30)
        encoder.request_keyframe()
        assert encoder.next_frame(6 / 30).is_keyframe

    def test_periodic_keyframe(self):
        encoder = SvcEncoder(keyframe_interval_s=1.0, seed=1)
        frames = [encoder.next_frame(i / 30) for i in range(0, 120)]
        keyframes = [f for f in frames if f.is_keyframe]
        assert 3 <= len(keyframes) <= 5

    def test_approximate_output_bitrate(self):
        encoder = SvcEncoder(target_bitrate_bps=2_200_000, keyframe_interval_s=1000, seed=3)
        total = sum(encoder.next_frame(i / 30).size_bytes for i in range(1, 301))
        bitrate = total * 8 / 10.0
        assert bitrate == pytest.approx(2_200_000, rel=0.35)


class TestPacketizer:
    def test_sequence_numbers_are_consecutive(self):
        encoder = SvcEncoder(seed=2)
        packetizer = RtpPacketizer(ssrc=99, seed=2)
        packets = encode_frames(encoder, packetizer, 20)
        seqs = [p.sequence_number for p in packets]
        for previous, current in zip(seqs, seqs[1:]):
            assert current == (previous + 1) % 65_536

    def test_marker_set_on_last_packet_of_frame(self):
        encoder = SvcEncoder(seed=2)
        packetizer = RtpPacketizer(ssrc=99, seed=2)
        frame = encoder.next_frame(0.0)
        packets = packetizer.packetize(frame)
        assert packets[-1].marker
        assert all(not p.marker for p in packets[:-1])

    def test_descriptor_start_end_flags(self):
        encoder = SvcEncoder(seed=2)
        packetizer = RtpPacketizer(ssrc=99, seed=2)
        packets = packetizer.packetize(encoder.next_frame(0.0))
        first = extract_dependency_descriptor(packets[0].extension)
        last = extract_dependency_descriptor(packets[-1].extension)
        assert first.start_of_frame and last.end_of_frame
        assert first.is_extended  # key frame carries the template structure

    def test_payload_size_respects_mtu(self):
        encoder = SvcEncoder(target_bitrate_bps=4_000_000, seed=2)
        packetizer = RtpPacketizer(ssrc=99, max_payload_bytes=1_100, seed=2)
        packets = encode_frames(encoder, packetizer, 10)
        assert all(len(p.payload) <= 1_100 for p in packets)

    def test_all_packets_share_frame_timestamp(self):
        encoder = SvcEncoder(seed=2)
        packetizer = RtpPacketizer(ssrc=99, seed=2)
        packets = packetizer.packetize(encoder.next_frame(1.0))
        assert len({p.timestamp for p in packets}) == 1

    def test_video_payload_type(self):
        encoder = SvcEncoder(seed=2)
        packetizer = RtpPacketizer(ssrc=99, seed=2)
        assert all(p.payload_type == PT_VIDEO_AV1 for p in packetizer.packetize(encoder.next_frame(0.0)))


class TestAudioSource:
    def test_packet_rate_and_size(self):
        source = AudioSource(ssrc=1, seed=1)
        packets = [source.next_packet(i * 0.02) for i in range(100)]
        assert all(p.payload_type == PT_AUDIO_OPUS for p in packets)
        sizes = [p.size for p in packets]
        assert 60 < sum(sizes) / len(sizes) < 250

    def test_sequence_increments(self):
        source = AudioSource(ssrc=1, seed=1)
        first = source.next_packet(0.0)
        second = source.next_packet(0.02)
        assert second.sequence_number == (first.sequence_number + 1) % 65_536


class TestVideoReceiveStream:
    def _deliver(self, stream, packets, start=0.0, interval=1 / 30):
        time = start
        for packet in packets:
            stream.on_packet(packet, time)
            time += interval / max(len(packets), 1)

    def test_complete_frames_are_decoded(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 30)
        self._deliver(stream, packets)
        assert stream.frames_decoded == 30
        assert stream.keyframes_decoded >= 1
        assert not stream.frozen

    def test_gap_triggers_nack_list(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 5)
        dropped = packets[3]
        nacks = []
        for index, packet in enumerate(packets):
            if index == 3:
                continue
            nacks.extend(stream.on_packet(packet, index * 0.01))
        assert dropped.sequence_number in nacks
        assert dropped.sequence_number in stream.missing

    def test_late_packet_fills_gap(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 3)
        reordered = packets[:2] + packets[3:] + [packets[2]]
        self._deliver(stream, reordered)
        assert not stream.missing
        assert stream.frames_decoded == 3

    def test_same_packet_twice_is_benign(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 2)
        self._deliver(stream, packets + [packets[-1]])
        assert stream.benign_duplicates == 1
        assert not stream.frozen

    def test_conflicting_duplicate_freezes_until_keyframe(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 4)
        self._deliver(stream, packets)
        # different packet claiming an already-used sequence number
        conflict = packets[-1].with_sequence_number(packets[0].sequence_number)
        stream.on_packet(conflict, 1.0)
        assert stream.frozen
        decoded_before = stream.frames_decoded
        # more ordinary frames do not decode while frozen
        more = encode_frames(encoder, packetizer, 4, start_time=1.0)
        self._deliver(stream, more, start=1.0)
        assert stream.frames_decoded == decoded_before
        # a key frame unfreezes
        encoder.request_keyframe()
        recovery = encode_frames(encoder, packetizer, 1, start_time=2.0)
        self._deliver(stream, recovery, start=2.0)
        assert not stream.frozen
        assert stream.frames_decoded > decoded_before

    def test_jitter_increases_with_irregular_arrivals(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        smooth = VideoReceiveStream(ssrc=50)
        packets = encode_frames(encoder, packetizer, 60)
        for index, packet in enumerate(packets):
            smooth.on_packet(packet, index * 0.005)
        bursty = VideoReceiveStream(ssrc=50)
        import random

        rng = random.Random(1)
        for index, packet in enumerate(packets):
            bursty.on_packet(packet, index * 0.005 + rng.uniform(0, 0.05))
        assert bursty.jitter_ms > smooth.jitter_ms

    def test_frame_rate_series_reflects_rate(self):
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=50, seed=4)
        stream = VideoReceiveStream(ssrc=50)
        time = 0.0
        for _ in range(90):
            for packet in packetizer.packetize(encoder.next_frame(time)):
                stream.on_packet(packet, time)
            time += 1 / 30
        series = stream.frame_rate_series(bucket_s=1.0)
        assert series, "expected at least one bucket"
        rates = [fps for _t, fps in series[:-1]]
        assert all(25 <= fps <= 35 for fps in rates)


class TestAudioReceiveStream:
    def test_counters(self):
        source = AudioSource(ssrc=9, seed=1)
        stream = AudioReceiveStream(ssrc=9)
        for index in range(50):
            stream.on_packet(source.next_packet(index * 0.02), index * 0.02)
        assert stream.packets_received == 50
        assert stream.bytes_received > 0
        assert stream.jitter_ms >= 0.0
