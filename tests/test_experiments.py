"""Integration tests for the experiment harnesses (short configurations).

These run every table/figure harness with small parameters and assert the
qualitative results the paper reports; the benchmarks under ``benchmarks/``
run the same harnesses at full scale.
"""

import pytest

from repro.experiments import (
    OverloadConfig,
    RateAdaptationConfig,
    build_dataset,
    evaluate_loss_rate,
    headline_numbers,
    run_agent_bytes,
    run_capture_summary,
    run_concurrency,
    run_design_space_sweep,
    run_improvement_sweep,
    run_latency_comparison,
    run_overload_experiment,
    run_packet_accounting,
    run_rate_adaptation,
    run_resource_report,
    run_rewrite_overhead_sweep,
    run_streams_per_meeting,
    run_svc_adaptation_example,
)
from repro.experiments.table_packets import format_table
from repro.experiments.fig_scalability import format_design_space, format_headline


@pytest.fixture(scope="module")
def small_dataset():
    return build_dataset(num_meetings=400, seed=5)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_packet_accounting(duration_s=15.0)

    def test_data_plane_handles_most_packets(self, result):
        assert result.data_plane_packet_share > 0.93
        assert result.data_plane_byte_share > 0.99

    def test_rtp_dominates(self, result):
        assert result.row("RTP").packet_share > 0.90
        assert result.row("RTP-Video").byte_share > 0.90
        assert result.row("STUN").packet_share < 0.02

    def test_row_consistency(self, result):
        total = result.row("Total")
        control = result.row("Control-Plane")
        data = result.row("Data-Plane")
        assert total.packets == pytest.approx(control.packets + data.packets, rel=1e-6)

    def test_format_is_table_like(self, result):
        text = format_table(result)
        assert "RTP" in text and "STUN" in text and "Data plane handles" in text


class TestFigure19Latency:
    def test_scallop_forwarding_is_much_faster(self):
        result = run_latency_comparison(duration_s=6.0)
        assert result.median_improvement > 5.0
        assert result.scallop.median < 0.05        # ~12 us switch pipeline
        assert result.software.median > 0.1        # user-space forwarding


class TestFigure18Rewrite:
    def test_overhead_grows_then_stays_bounded(self):
        points = run_rewrite_overhead_sweep(loss_rates=[0.0, 0.1, 0.2, 0.5], num_frames=1_500)
        rates = {p.loss_rate: p.erroneous_retransmission_rate for p in points}
        assert rates[0.0] <= 0.02
        assert rates[0.1] <= 0.05
        assert rates[0.2] <= 0.10
        assert rates[0.5] <= 0.20
        assert all(p.duplicates_emitted == 0 for p in points)

    def test_s_lr_beats_s_lm_under_loss(self):
        lr = evaluate_loss_rate(0.2, variant="s_lr", num_frames=2_000)
        lm = evaluate_loss_rate(0.2, variant="s_lm", num_frames=2_000)
        assert lr.erroneous_retransmission_rate <= lm.erroneous_retransmission_rate + 0.01


class TestFigures15to17:
    def test_headlines_match_paper_scale(self):
        headline = headline_numbers()
        assert headline.nra_meetings == pytest.approx(128_000, rel=0.05)
        assert headline.ra_r_meetings == pytest.approx(42_700, rel=0.05)
        assert headline.ra_sr_meetings_10_participants == pytest.approx(4_300, rel=0.05)
        assert headline.two_party_meetings == pytest.approx(533_000, rel=0.01)
        assert headline.software_10_party_meetings == pytest.approx(192, rel=0.01)
        assert 2 < headline.improvement_min < 20
        assert 100 < headline.improvement_max < 700
        assert "128K" in format_headline(headline)

    def test_sweeps_cover_requested_sizes(self):
        improvement = run_improvement_sweep([2, 10, 50])
        assert [p.participants for p in improvement] == [2, 10, 50]
        design = run_design_space_sweep([2, 10, 50])
        assert len(format_design_space(design).splitlines()) == 4

    def test_shard_scaling_sweep_reports_efficiency(self):
        from repro.experiments import format_shard_scaling, run_shard_scaling_sweep

        points = run_shard_scaling_sweep(shard_counts=(1, 2), num_meetings=2, repeats=1)
        assert [p.n_shards for p in points] == [1, 2]
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].efficiency == pytest.approx(1.0)
        # serial shards share one interpreter: efficiency at k=2 is bounded
        # by the GIL (the sweep quantifies it, it cannot exceed ~1)
        assert 0.0 < points[1].efficiency <= 1.2
        assert points[1].speedup == pytest.approx(points[1].efficiency * 2)
        assert len(format_shard_scaling(points).splitlines()) == 3


class TestFigure14RateAdaptation:
    def test_constrained_participant_is_adapted_without_freezing(self):
        result = run_rate_adaptation(
            RateAdaptationConfig(total_duration_s=60.0, first_constraint_at_s=14.0, second_constraint_at_s=34.0, sample_interval_s=2.0)
        )
        assert result.adapted()
        assert result.freezes_at_constrained == 0
        assert result.constrained_frame_rate_fps < result.unconstrained_frame_rate_fps
        assert result.unconstrained_frame_rate_fps > 22.0
        # time series were recorded for every origin stream
        assert len(result.receive_frame_rates) == 2
        assert len(result.receive_bitrates_kbps) == 2


class TestFigures3and4Overload:
    def test_overload_collapses_qoe(self):
        config = OverloadConfig(
            num_meetings=4,
            participants_per_meeting=6,
            seconds_per_join=0.5,
            media_scale=0.12,
            saturation_participants=12,
        )
        result = run_overload_experiment(config)
        assert result.saturation_participants is not None

        # QoE is fine while the core still has headroom: the received frame
        # rate reaches (close to) the nominal rate at some point of the sweep
        peak_fps = max(s.normalized_frame_rate_fps for s in result.samples)
        peak_sample = next(s for s in result.samples if s.normalized_frame_rate_fps == peak_fps)
        assert peak_fps > 12.0

        # ... and collapses once the core is saturated (Figure 4)
        tail = result.samples[-3:]
        assert min(s.normalized_frame_rate_fps for s in tail) < 0.4 * peak_fps

        # tail jitter explodes past saturation (Figure 3)
        tail_jitter = max(s.p95_jitter_ms for s in tail)
        assert tail_jitter > 20.0
        assert tail_jitter > 10 * max(peak_sample.p95_jitter_ms, 0.5)

        # the series are exposed in the Figure 3 / Figure 4 layout
        assert len(result.jitter_series()) == len(result.samples)
        assert len(result.frame_rate_series()) == len(result.samples)


class TestTraceFigures:
    def test_streams_per_meeting_shape(self, small_dataset):
        result = run_streams_per_meeting(small_dataset)
        assert result.summary
        ten = result.median_for(10)
        if ten is not None:
            assert 20 <= ten <= result.upper_bound(10) + 50

    def test_concurrency(self, small_dataset):
        result = run_concurrency(small_dataset, step_s=3600.0)
        assert result.peak_participants >= result.peak_meetings > 0

    def test_agent_bytes_reduction(self, small_dataset):
        result = run_agent_bytes(small_dataset, step_s=6 * 3600.0)
        assert result.reduction_factor > 100

    def test_capture_summary(self, small_dataset):
        summary = run_capture_summary(small_dataset)
        assert summary.zoom_packets > 0
        assert summary.zoom_bitrate_bps > 0

    def test_svc_adaptation_example(self):
        figures = run_svc_adaptation_example()
        assert figures.receiver_rate_dropped()

    def test_resource_report(self, small_dataset):
        report = run_resource_report(small_dataset)
        assert report.peak_campus_egress_bps > 0
        assert report.max_utilization_egress_bps > report.peak_campus_egress_bps
        assert any(row.resource == "Egress Tput." for row in report.rows)
