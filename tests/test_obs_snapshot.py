"""Snapshot-level contracts of the telemetry plane: executor-invariant
metric folds, deterministic trace timelines across identically-seeded runs,
and the schema gate CI applies to ``--metrics-out`` snapshots."""

import json

import pytest

from repro.dataplane.sharding import ShardedScallopPipeline
from repro.experiments.batch_throughput import (
    SFU_ADDRESS,
    build_meeting_pipeline,
    media_ingress,
)
from repro.obs.bus import CORE_SERIES, SCHEMA, TelemetryBus
from repro.obs.export import (
    render_prometheus,
    render_table,
    to_json,
    validate_snapshot,
)
from repro.obs.hooks import ObsConfig
from repro.scenario.driver import build_scenario
from repro.scenario.spec import BackendSpec, Scenario, TrafficSpec


def canned_engine_snapshot(n_shards: int, executor: str) -> str:
    """Run identical canned traffic through one engine configuration and
    return the canonical snapshot JSON, minus the ``repro.transport.*``
    series (byte movement is real process-executor work, so those counters
    are legitimately executor-specific)."""
    engine = ShardedScallopPipeline(
        SFU_ADDRESS,
        n_shards=n_shards,
        executor=executor,
        obs=ObsConfig(trace_sample_rate=1, max_trace_records=4096),
    )
    try:
        engine, senders = build_meeting_pipeline(4, participants=4, pipeline=engine)
        traffic = media_ingress(senders, frames=6)
        engine.process_batch(traffic)
        bus = TelemetryBus()
        bus.add_engine(engine, sim_time_s=1.0)
        snapshot = bus.snapshot(sim_time_s=1.0)
    finally:
        engine.close()
    snapshot["series"] = {
        name: body
        for name, body in snapshot["series"].items()
        if not name.startswith("repro.transport.")
    }
    return to_json(snapshot)


class TestExecutorInvariance:
    """The ISSUE's headline acceptance bar: the same canned traffic must
    produce byte-identical metric snapshots no matter which shard executor
    ran it (modulo the transport byte counters, see above)."""

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_thread_executor_matches_serial(self, n_shards):
        assert canned_engine_snapshot(n_shards, "thread") == canned_engine_snapshot(
            n_shards, "serial"
        )

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_process_executor_matches_serial(self, n_shards):
        assert canned_engine_snapshot(n_shards, "process") == canned_engine_snapshot(
            n_shards, "serial"
        )

    def test_snapshot_actually_traced_something(self):
        snapshot = json.loads(canned_engine_snapshot(2, "serial"))
        assert snapshot["traces"], "sample_rate=1 must trace every media flow"
        assert snapshot["series"]["repro.trace.sampled_packets"]["value"] > 0


class TestScenarioTraceDeterminism:
    @staticmethod
    def run_once() -> str:
        scenario = Scenario.uniform(
            1,
            3,
            name="obs-trace-determinism",
            duration_s=2.0,
            seed=7,
            backend=BackendSpec(n_shards=2, obs=ObsConfig(trace_sample_rate=1)),
            traffic=TrafficSpec(frame_bursts=True),
        )
        with build_scenario(scenario) as run:
            run.run()
            return to_json(run.metrics_snapshot())

    def test_same_seed_same_trace_timeline(self):
        first = self.run_once()
        second = self.run_once()
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["schema"] == SCHEMA
        assert snapshot["traces"], "a 2 s media scenario at 1-in-1 must sample flows"
        # every span timeline covers the 12 us forwarding delay exactly
        for _, _, _, spans in snapshot["traces"]:
            assert sum(duration for _, _, duration in spans) == 12000


class TestSnapshotSchema:
    @pytest.fixture(scope="class")
    def snapshot(self):
        engine = ShardedScallopPipeline(
            SFU_ADDRESS, n_shards=2, executor="serial", profile=True, obs=True
        )
        try:
            engine, senders = build_meeting_pipeline(3, participants=4, pipeline=engine)
            engine.process_batch(media_ingress(senders, frames=4))
            bus = TelemetryBus()
            bus.add_engine(engine, sim_time_s=1.0)
            bus.add_latency_samples([12.5, 30.0, 47.5])
            return bus.snapshot(sim_time_s=1.0)
        finally:
            engine.close()

    def test_valid_snapshot_has_no_problems(self, snapshot):
        assert validate_snapshot(snapshot) == []
        for name in CORE_SERIES:
            assert name in snapshot["series"]

    def test_json_round_trip_is_lossless(self, snapshot):
        assert json.loads(to_json(snapshot)) == snapshot

    def test_missing_core_series_fails_validation(self, snapshot):
        broken = json.loads(to_json(snapshot))
        del broken["series"]["repro.coord.stage_ns.partition"]
        problems = validate_snapshot(broken)
        assert any("repro.coord.stage_ns.partition" in problem for problem in problems)

    def test_wrong_schema_and_nonfinite_values_fail_validation(self, snapshot):
        broken = json.loads(to_json(snapshot))
        broken["schema"] = "repro.obs/v0"
        broken["series"]["repro.dataplane.data_plane_packets"]["value"] = float("nan")
        problems = validate_snapshot(broken)
        assert any("schema mismatch" in problem for problem in problems)
        assert any("non-finite" in problem for problem in problems)
        assert validate_snapshot([]) == ["snapshot is not a JSON object"]

    def test_prometheus_rendering(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE repro_dataplane_data_plane_packets counter" in text
        assert "# TYPE repro_client_e2e_latency_ms histogram" in text
        assert 'repro_client_e2e_latency_ms_bucket{le="+Inf"} 3' in text
        assert "repro_client_e2e_latency_ms_count 3" in text

    def test_table_rendering(self, snapshot):
        table = render_table(snapshot)
        assert "repro.dataplane.shard0.pps" in table
        assert f"schema={SCHEMA}" in table


class TestObsCli:
    def write(self, tmp_path, snapshot):
        path = tmp_path / "snap.json"
        path.write_text(to_json(snapshot), encoding="utf-8")
        return str(path)

    @pytest.fixture()
    def good_snapshot(self):
        engine = ShardedScallopPipeline(SFU_ADDRESS, n_shards=1, profile=True, obs=True)
        try:
            engine, senders = build_meeting_pipeline(1, participants=3, pipeline=engine)
            engine.process_batch(media_ingress(senders, frames=2))
            bus = TelemetryBus()
            bus.add_engine(engine, sim_time_s=1.0)
            bus.add_latency_samples([25.0])
            return bus.snapshot(sim_time_s=1.0)
        finally:
            engine.close()

    def test_validate_accepts_a_complete_snapshot(self, tmp_path, good_snapshot, capsys):
        from repro.obs.__main__ import main

        assert main([self.write(tmp_path, good_snapshot), "--validate"]) == 0
        assert "snapshot OK" in capsys.readouterr().out

    def test_validate_rejects_a_broken_snapshot(self, tmp_path, good_snapshot, capsys):
        from repro.obs.__main__ import main

        good_snapshot["schema"] = "bogus"
        assert main([self.write(tmp_path, good_snapshot), "--validate"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_default_rendering_is_the_table(self, tmp_path, good_snapshot, capsys):
        from repro.obs.__main__ import main

        assert main([self.write(tmp_path, good_snapshot)]) == 0
        assert "repro.dataplane.shard0.pps" in capsys.readouterr().out
