"""Equivalence suite for the flow-sharded pipeline.

The contract: for ANY traffic and ANY control-plane churn,
``ShardedScallopPipeline(n_shards=k)`` must produce byte-identical
``PipelineResult`` streams, identical merged ``PipelineCounters``, identical
PRE/parser tallies, and identical ``ResourceAccountant.utilization()`` to the
single-datapath ``ScallopPipeline`` — for every k and for both execution
backends.  A property-style harness generates randomized meeting populations,
mixed traffic, and adaptation install/reinstall/remove churn from a seed and
replays the identical scenario against both engines.
"""

import dataclasses
import random

import pytest

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
)
from repro.dataplane.pipeline import (
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from repro.dataplane.pre import L2Port
from repro.dataplane.sharding import ShardedScallopPipeline, flow_shard
from repro.netsim.datagram import Address, Datagram
from repro.rtp.rtcp import Nack, Remb, SenderReport
from repro.stun.message import make_binding_request
from repro.webrtc.encoder import AudioSource, RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)


class MeetingScenario:
    """A deterministic multi-meeting scenario derived from one seed.

    ``configure`` installs the same meetings into any engine;
    ``churn_ops``/``traffic_chunks`` are plain data, so the identical op
    sequence can be replayed against the reference and the sharded engine
    (rewriters are constructed fresh per engine inside ``apply_op``).
    """

    def __init__(self, seed: int, num_meetings: int = 5):
        rng = random.Random(seed)
        self.meetings = []
        for meeting in range(num_meetings):
            participants = rng.randint(2, 5)
            addresses = [
                Address(f"10.{1 + meeting}.{rng.randint(0, 199)}.{index + 2}", 6000 + index)
                for index in range(participants)
            ]
            self.meetings.append(
                {
                    "id": f"meeting-{meeting}",
                    "addresses": addresses,
                    "video_ssrc": 10_000 + meeting * 10,
                    "audio_ssrc": 10_001 + meeting * 10,
                }
            )
        self.rng = rng

    def configure(self, pipeline):
        for meeting in self.meetings:
            mgid = pipeline.pre.create_tree()
            meeting["mgid"] = mgid
            for rid, address in enumerate(meeting["addresses"], start=1):
                pipeline.pre.add_node(
                    mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
                )
                pipeline.install_replica_target(
                    mgid, rid, ReplicaTarget(address=address, participant_id=f"{meeting['id']}-p{rid}")
                )
            sender = meeting["addresses"][0]
            entry = StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE,
                meeting_id=meeting["id"],
                sender=sender,
                mgid=mgid,
                rid=1,
                l2_xid=1,
            )
            pipeline.install_stream((sender, meeting["video_ssrc"]), entry)
            pipeline.install_stream((sender, meeting["audio_ssrc"]), entry)
        return pipeline

    def traffic_chunk(self, seed: int, frames: int = 6):
        """Mixed media/control traffic for all meetings, deterministically
        interleaved: video, audio, sender RTCP, feedback, STUN, and junk."""
        rng = random.Random(seed)
        datagrams = []
        for meeting in self.meetings:
            sender = meeting["addresses"][0]
            encoder = SvcEncoder(target_bitrate_bps=900_000, seed=seed ^ meeting["video_ssrc"])
            packetizer = RtpPacketizer(ssrc=meeting["video_ssrc"], seed=seed ^ meeting["video_ssrc"])
            for index in range(frames):
                for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                    datagrams.append(Datagram(src=sender, dst=SFU, payload=packet))
            audio = AudioSource(ssrc=meeting["audio_ssrc"], seed=seed)
            for index in range(frames // 2):
                datagrams.append(
                    Datagram(src=sender, dst=SFU, payload=audio.next_packet(index * 0.02))
                )
            datagrams.append(
                Datagram(src=sender, dst=SFU, payload=(SenderReport(sender_ssrc=meeting["video_ssrc"]),))
            )
            receiver = meeting["addresses"][-1]
            datagrams.append(
                Datagram(
                    src=receiver,
                    dst=SFU,
                    payload=(
                        Remb(2000, rng.uniform(3e5, 3e6), (meeting["video_ssrc"],)),
                        Nack(2000, meeting["video_ssrc"], (rng.randint(1, 50),)),
                    ),
                )
            )
            datagrams.append(
                Datagram(src=sender, dst=SFU, payload=make_binding_request(bytes(12), "prop"))
            )
            # junk flow: never installed, exercises table-miss caching
            stray = RtpPacketizer(ssrc=99_000 + meeting["mgid"], seed=seed)
            datagrams.append(
                Datagram(
                    src=receiver,
                    dst=SFU,
                    payload=stray.packetize(SvcEncoder(seed=seed).next_frame(0.0))[0],
                )
            )
        rng.shuffle(datagrams)
        return datagrams

    def churn_ops(self, seed: int):
        """A deterministic sequence of control-plane churn operations, each a
        (name, args) tuple interpreted by :func:`apply_op`."""
        rng = random.Random(seed)
        ops = []
        for meeting in self.meetings:
            receivers = meeting["addresses"][1:]
            target = rng.choice(receivers)
            variant = rng.choice(["lm", "lr"])
            templates = frozenset(rng.sample(range(6), rng.randint(1, 4)))
            ops.append(("install", meeting["video_ssrc"], target, templates, variant))
            if rng.random() < 0.5:
                ops.append(
                    (
                        "update",
                        meeting["video_ssrc"],
                        target,
                        frozenset(rng.sample(range(6), rng.randint(1, 4))),
                    )
                )
            if rng.random() < 0.4:
                ops.append(("remove", meeting["video_ssrc"], target))
            if rng.random() < 0.4:
                # reinstall with the other variant: swaps the register charge
                ops.append(
                    ("install", meeting["video_ssrc"], target, templates, "lr" if variant == "lm" else "lm")
                )
        return ops


def apply_op(pipeline, op):
    if op[0] == "install":
        _, ssrc, receiver, templates, variant = op
        rewriter_cls = SequenceRewriterLowMemory if variant == "lm" else SequenceRewriterLowRetransmission
        pipeline.install_adaptation(ssrc, receiver, templates, rewriter_cls(SkipCadence(1, 2)))
    elif op[0] == "update":
        _, ssrc, receiver, templates = op
        pipeline.update_adaptation_templates(ssrc, receiver, templates)
    elif op[0] == "remove":
        _, ssrc, receiver = op
        pipeline.remove_adaptation(ssrc, receiver)


def assert_results_identical(reference_results, sharded_results):
    assert len(reference_results) == len(sharded_results)
    for reference, sharded in zip(reference_results, sharded_results):
        assert reference.parse == sharded.parse
        assert reference.dropped_replicas == sharded.dropped_replicas
        assert reference.outputs == sharded.outputs
        for expected, actual in zip(reference.outputs, sharded.outputs):
            assert expected.to_bytes() == actual.to_bytes()
            assert dict(expected.meta) == dict(actual.meta)
        assert [c.to_bytes() for c in reference.cpu_copies] == [
            c.to_bytes() for c in sharded.cpu_copies
        ]


def assert_engines_agree(reference, sharded):
    assert dataclasses.asdict(reference.counters) == dataclasses.asdict(sharded.counters)
    assert reference.accountant.utilization() == sharded.accountant.utilization()
    assert reference.pre.replications_performed == sharded.pre.replications_performed
    assert reference.pre.copies_produced == sharded.pre.copies_produced
    assert reference.parser.packets_parsed == sharded.parser.packets_parsed
    assert reference.parser.cpu_punts == sharded.parser.cpu_punts


def run_scenario(n_shards: int, seed: int, executor: str = "serial"):
    """Replay one randomized scenario through both engines, interleaving
    traffic chunks with adaptation churn, comparing after every chunk."""
    scenario_a = MeetingScenario(seed)
    scenario_b = MeetingScenario(seed)
    reference = scenario_a.configure(ScallopPipeline(SFU))
    sharded = scenario_b.configure(
        ShardedScallopPipeline(SFU, n_shards=n_shards, executor=executor)
    )
    try:
        for phase in range(3):
            for op in scenario_a.churn_ops(seed * 101 + phase):
                apply_op(reference, op)
                apply_op(sharded, op)
            chunk = scenario_a.traffic_chunk(seed * 31 + phase)
            chunk_b = scenario_b.traffic_chunk(seed * 31 + phase)
            assert [d.to_bytes() for d in chunk] == [d.to_bytes() for d in chunk_b]
            reference_results = [reference.process(d) for d in chunk]
            sharded_results = sharded.process_batch(chunk_b)
            assert_results_identical(reference_results, sharded_results)
        assert_engines_agree(reference, sharded)
        assert reference.counters.adaptation_drops > 0  # churn actually suppressed packets
    finally:
        sharded.close()
    return reference, sharded


class TestShardedEquivalenceProperty:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [7, 19])
    def test_random_traffic_with_churn(self, n_shards, seed):
        run_scenario(n_shards, seed)

    def test_chunked_vs_whole_batch(self):
        scenario_a, scenario_b = MeetingScenario(5), MeetingScenario(5)
        whole = scenario_a.configure(ShardedScallopPipeline(SFU, n_shards=4))
        chunked = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=4))
        traffic = scenario_a.traffic_chunk(42)
        whole_results = whole.process_batch(traffic)
        chunked_results = []
        for start in range(0, len(traffic), 11):
            chunked_results.extend(chunked.process_batch(traffic[start : start + 11]))
        assert_results_identical(whole_results, chunked_results)
        assert dataclasses.asdict(whole.counters) == dataclasses.asdict(chunked.counters)

    def test_flow_partitioning_is_deterministic_and_total(self):
        addresses = [Address(f"10.0.{i}.{j}", 6000 + j) for i in range(4) for j in range(4)]
        for n_shards in (1, 2, 4, 8):
            for address in addresses:
                for ssrc in (1, 77, 10_000):
                    shard = flow_shard(address, ssrc, n_shards)
                    assert 0 <= shard < n_shards
                    assert shard == flow_shard(address, ssrc, n_shards)


class TestShardResourceAttribution:
    def test_per_shard_charges_sum_to_ledger(self):
        scenario = MeetingScenario(3)
        sharded = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4))
        for op in scenario.churn_ops(99):
            apply_op(sharded, op)
        attributed = sum(a.stream_tracker_cells_used for a in sharded.shard_accountants)
        assert attributed == sharded.accountant.stream_tracker_cells_used
        assert attributed > 0

    def test_charges_release_cleanly_per_shard(self):
        scenario = MeetingScenario(3)
        sharded = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4))
        installed = []
        for meeting in scenario.meetings:
            receiver = meeting["addresses"][1]
            sharded.install_adaptation(
                meeting["video_ssrc"], receiver, frozenset({0, 1}),
                SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
            )
            installed.append((meeting["video_ssrc"], receiver))
        for ssrc, receiver in installed:
            sharded.remove_adaptation(ssrc, receiver)
        assert sharded.accountant.stream_tracker_cells_used == 0
        assert all(a.stream_tracker_cells_used == 0 for a in sharded.shard_accountants)

    def test_attribution_follows_flow_owner(self):
        scenario = MeetingScenario(3)
        sharded = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4))
        meeting = scenario.meetings[0]
        sender, receiver = meeting["addresses"][0], meeting["addresses"][1]
        sharded.install_adaptation(
            meeting["video_ssrc"], receiver, frozenset({0}),
            SequenceRewriterLowMemory(SkipCadence(1, 2)),
        )
        owner = sharded.shard_for_flow(sender, meeting["video_ssrc"])
        assert sharded.shard_accountants[owner].stream_tracker_cells_used == 3
        assert sharded.shard_utilization()[owner]["stream_tracker_cells"] > 0


class TestShardedSfuEndToEnd:
    """The netsim ingest path routes bursts through the sharded engine; a
    sharded SFU must be indistinguishable from the reference SFU."""

    @staticmethod
    def run_testbed(n_shards):
        from repro.experiments import MeetingSetupConfig, build_scallop_testbed

        config = MeetingSetupConfig(
            num_meetings=3, participants_per_meeting=3, frame_bursts=True, n_shards=n_shards, seed=2
        )
        testbed = build_scallop_testbed(config)
        testbed.run_for(3.0)
        return testbed

    def test_sharded_sfu_simulation_identical_to_reference(self):
        reference = self.run_testbed(n_shards=1)
        sharded = self.run_testbed(n_shards=4)
        assert isinstance(sharded.sfu.pipeline, ShardedScallopPipeline)
        # byte-identical dataplane => the whole simulation unfolds identically
        assert dataclasses.asdict(sharded.sfu.stats) == dataclasses.asdict(reference.sfu.stats)
        assert dataclasses.asdict(sharded.sfu.pipeline.counters) == dataclasses.asdict(
            reference.sfu.pipeline.counters
        )
        for ref_client, sh_client in zip(reference.clients, sharded.clients):
            assert sh_client.packets_sent == ref_client.packets_sent
            for ssrc, stream in ref_client.video_receivers.items():
                assert sh_client.video_receivers[ssrc].frames_decoded == stream.frames_decoded

    def test_sharded_sfu_serves_media(self):
        testbed = self.run_testbed(n_shards=4)
        sfu = testbed.sfu
        assert sfu.stats.packets_out > 0
        assert sfu.data_plane_fraction()["packets"] > 0.8
        for client in testbed.clients:
            assert client.video_receivers, "every participant receives video"
        # traffic actually spread across shards
        busy = [shard for shard in sfu.pipeline.shards if shard.counters.data_plane_packets > 0]
        assert len(busy) >= 2
        testbed.close()  # releases pipeline backend resources via ScallopSfu.close


class TestProcessBackend:
    """The process-pool escape hatch must preserve the exact same contract
    (state ships to workers on control writes, rewriter state ships back)."""

    def test_random_traffic_with_churn_across_processes(self):
        run_scenario(2, seed=11, executor="process")

    def test_single_packet_process_shares_worker_state(self):
        # process() must route through the workers: rewriting a packet on
        # the coordinator would fork the sequence-rewriter state silently
        scenario_a, scenario_b = MeetingScenario(17, num_meetings=1), MeetingScenario(17, num_meetings=1)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=2, executor="process"))
        try:
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                meeting = scenario.meetings[0]
                engine.install_adaptation(
                    meeting["video_ssrc"],
                    meeting["addresses"][1],
                    frozenset({0, 1}),
                    SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
                )
            traffic_a = scenario_a.traffic_chunk(3, frames=4)
            traffic_b = scenario_b.traffic_chunk(3, frames=4)
            # interleave single-packet and batched processing
            reference_results = [reference.process(d) for d in traffic_a]
            sharded_results = [sharded.process(d) for d in traffic_b[:5]]
            sharded_results += sharded.process_batch(traffic_b[5:])
            assert_results_identical(reference_results, sharded_results)
        finally:
            sharded.close()

    def test_rewriter_state_survives_control_resync(self):
        # adaptation state mutated in a worker, then a control-plane write
        # forces a resync: the re-shipped snapshot must carry the mutated
        # rewriter, not a stale one (sequence spaces would fork otherwise)
        scenario_a, scenario_b = MeetingScenario(13, num_meetings=2), MeetingScenario(13, num_meetings=2)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=2, executor="process"))
        try:
            meeting = scenario_a.meetings[0]
            receiver = meeting["addresses"][1]
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                engine.install_adaptation(
                    scenario.meetings[0]["video_ssrc"],
                    scenario.meetings[0]["addresses"][1],
                    frozenset({0, 1}),
                    SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
                )
            first = scenario_a.traffic_chunk(1)
            assert_results_identical(
                [reference.process(d) for d in first],
                sharded.process_batch(scenario_b.traffic_chunk(1)),
            )
            # unrelated control write in meeting 1 -> full worker resync
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                engine.install_adaptation(
                    scenario.meetings[1]["video_ssrc"],
                    scenario.meetings[1]["addresses"][1],
                    frozenset({0}),
                    SequenceRewriterLowMemory(SkipCadence(1, 2)),
                )
            second = scenario_a.traffic_chunk(2)
            assert_results_identical(
                [reference.process(d) for d in second],
                sharded.process_batch(scenario_b.traffic_chunk(2)),
            )
            assert_engines_agree(reference, sharded)
        finally:
            sharded.close()
