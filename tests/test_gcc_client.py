"""Unit tests for receiver-side GCC and the simulated WebRTC client."""

import pytest

from repro.netsim.datagram import Address, Datagram
from repro.netsim.link import LinkProfile, Network
from repro.netsim.simulator import Simulator
from repro.rtp.rtcp import Nack, PictureLossIndication, Remb
from repro.webrtc.client import ClientConfig, WebRtcClient
from repro.webrtc.gcc import RemoteBitrateEstimator

A = Address("10.0.1.1", 6000)
B = Address("10.0.1.2", 6001)


class TestRemoteBitrateEstimator:
    def _feed_constant_rate(self, estimator, rate_bps, duration_s, queue_growth_s=0.0):
        packet_size = 1_200
        interval = packet_size * 8 / rate_bps
        time = 0.0
        extra = 0.0
        while time < duration_s:
            extra += queue_growth_s * interval
            estimator.on_packet(recv_time=time + extra, send_time=time, size_bytes=packet_size)
            time += interval

    def test_estimate_tracks_stable_rate(self):
        estimator = RemoteBitrateEstimator(initial_estimate_bps=500_000)
        self._feed_constant_rate(estimator, 2_000_000, 5.0)
        assert 1_000_000 <= estimator.estimate_bps <= 3_500_000

    def test_overuse_decreases_estimate(self):
        estimator = RemoteBitrateEstimator(initial_estimate_bps=3_000_000)
        # delay grows steadily: queue building up -> overuse
        self._feed_constant_rate(estimator, 2_000_000, 3.0, queue_growth_s=0.4)
        assert estimator.overuse_events > 0
        assert estimator.estimate_bps < 2_500_000

    def test_estimate_bounded_below(self):
        estimator = RemoteBitrateEstimator(initial_estimate_bps=100_000)
        self._feed_constant_rate(estimator, 60_000, 3.0, queue_growth_s=0.8)
        assert estimator.estimate_bps >= 50_000

    def test_incoming_rate_measurement(self):
        estimator = RemoteBitrateEstimator()
        self._feed_constant_rate(estimator, 1_000_000, 2.0)
        assert estimator.incoming_rate_bps(2.0) == pytest.approx(1_000_000, rel=0.2)

    def test_force_estimate_clamped(self):
        estimator = RemoteBitrateEstimator()
        estimator.force_estimate(10.0)
        assert estimator.estimate_bps == 50_000


def build_pair(seed=1, video_bitrate=800_000):
    """Two clients talking directly to each other (no SFU) over the network."""
    sim = Simulator()
    net = Network(sim, seed=seed)
    config_a = ClientConfig("a", "m", A, B, video_bitrate_bps=video_bitrate, seed=seed)
    config_b = ClientConfig("b", "m", B, A, video_bitrate_bps=video_bitrate, seed=seed + 1)
    a = WebRtcClient(config_a, sim, net)
    b = WebRtcClient(config_b, sim, net)
    net.attach(a)
    net.attach(b)
    return sim, net, a, b


class TestWebRtcClientPeerToPeer:
    def test_media_flows_between_clients(self):
        sim, net, a, b = build_pair()
        a.start()
        b.start()
        sim.run_for(5.0)
        stats_b = b.get_stats()
        assert len(stats_b.inbound_video) == 1
        assert stats_b.inbound_video[0].frames_per_second == pytest.approx(30.0, abs=5.0)
        assert len(stats_b.inbound_audio) == 1
        assert stats_b.inbound_audio[0].packets_received > 100

    def test_stun_rtt_measured(self):
        sim, net, a, b = build_pair()
        a.start()
        b.start()
        sim.run_for(10.0)
        assert len(a.rtt_samples_ms) >= 3
        assert all(sample > 0 for sample in a.rtt_samples_ms)

    def test_receiver_reports_and_remb_sent(self):
        sim, net, a, b = build_pair()
        a.start()
        b.start()
        sim.run_for(5.0)
        # a receives b's REMB about a's own video and adapts its encoder within bounds
        assert a.encoder.target_bitrate_bps <= a.encoder.max_bitrate_bps

    def test_offer_answer_changes_remote(self):
        sim, net, a, b = build_pair()
        offer = a.create_offer()
        assert offer.ssrcs() == [a.audio_ssrc, a.video_ssrc]
        rewritten = offer.with_rewritten_candidates("10.9.9.9", 1234)
        a.apply_answer(rewritten)
        assert a.remote == Address("10.9.9.9", 1234)

    def test_nack_triggers_retransmission(self):
        sim, net, a, b = build_pair()
        a.start()
        sim.run_for(1.0)
        # b asks for a retransmission of a packet a recently sent
        sent_seq = (a.packetizer._sequence_number - 1) % 65_536
        nack = Nack(sender_ssrc=b.video_ssrc, media_ssrc=a.video_ssrc, lost_sequence_numbers=(sent_seq,))
        a.handle_datagram(Datagram(src=B, dst=A, payload=(nack,)))
        assert a.nacks_received == 1
        assert a.retransmissions_sent == 1

    def test_pli_requests_keyframe(self):
        sim, net, a, b = build_pair()
        a.start()
        sim.run_for(1.0)
        pli = PictureLossIndication(sender_ssrc=b.video_ssrc, media_ssrc=a.video_ssrc)
        a.handle_datagram(Datagram(src=B, dst=A, payload=(pli,)))
        assert a.plis_received == 1
        assert a.encoder._keyframe_requested

    def test_remb_reduces_encoder_bitrate(self):
        sim, net, a, b = build_pair(video_bitrate=2_000_000)
        a.start()
        sim.run_for(1.0)
        remb = Remb(sender_ssrc=b.video_ssrc, bitrate_bps=400_000, media_ssrcs=(a.video_ssrc,))
        a.handle_datagram(Datagram(src=B, dst=A, payload=(remb,)))
        assert a.encoder.target_bitrate_bps == pytest.approx(400_000, rel=0.01)

    def test_lossy_downlink_produces_nacks(self):
        sim, net, a, b = build_pair()
        net.set_downlink_profile(B, LinkProfile(loss_rate=0.1, bandwidth_bps=50_000_000))
        a.start()
        b.start()
        sim.run_for(5.0)
        stats = b.get_stats()
        assert stats.inbound_video[0].nack_count > 0

    def test_stop_halts_media(self):
        sim, net, a, b = build_pair()
        a.start()
        sim.run_for(1.0)
        sent_before = a.packets_sent
        a.stop()
        sim.run_for(2.0)
        assert a.packets_sent - sent_before <= 2

    def test_stats_report_totals(self):
        sim, net, a, b = build_pair()
        a.start()
        b.start()
        sim.run_for(3.0)
        first = b.get_stats()
        sim.run_for(2.0)
        second = b.get_stats()
        assert second.total_inbound_bitrate_bps(first) > 100_000
        assert second.worst_video_jitter_ms() >= 0.0
        assert second.mean_video_fps() > 10
