"""Integration tests: full Scallop (controller + agent + data plane) on the
simulated network with real WebRTC client models."""

import pytest

from repro.core.capacity import ReplicationDesign, RewriteVariant
from repro.core.scallop import ScallopSfu
from repro.netsim.datagram import Address
from repro.netsim.link import LinkProfile, Network
from repro.netsim.simulator import Simulator
from repro.webrtc.client import ClientConfig, WebRtcClient

SFU_ADDR = Address("10.0.0.1", 5000)


def build_meeting(participants=3, video_bitrate=650_000, seed=1, thresholds=None):
    sim = Simulator()
    net = Network(sim, seed=seed)
    if thresholds is None:
        # scale the decode-target thresholds to the configured stream bitrate,
        # as an operator deploying Scallop would
        thresholds = (video_bitrate * 0.8, video_bitrate * 0.4)
    sfu = ScallopSfu(
        SFU_ADDR,
        sim,
        net,
        rewrite_variant=RewriteVariant.S_LR,
        adaptation_thresholds_bps=thresholds,
    )
    clients = []
    for index in range(participants):
        config = ClientConfig(
            participant_id=f"p{index + 1}",
            meeting_id="meeting-1",
            address=Address(f"10.0.1.{index + 1}", 6000 + index),
            remote=SFU_ADDR,
            video_bitrate_bps=video_bitrate,
            seed=seed * 100 + index,
        )
        client = WebRtcClient(config, sim, net)
        net.attach(client)
        sfu.join(client)
        clients.append(client)
    sfu.start()
    for client in clients:
        client.start()
    return sim, net, sfu, clients


class TestThreePartyMeeting:
    @pytest.fixture(scope="class")
    def meeting(self):
        sim, net, sfu, clients = build_meeting()
        sim.run_for(10.0)
        return sim, net, sfu, clients

    def test_all_participants_receive_all_other_streams(self, meeting):
        _sim, _net, _sfu, clients = meeting
        for client in clients:
            stats = client.get_stats()
            assert len(stats.inbound_video) == 2
            assert len(stats.inbound_audio) == 2

    def test_full_frame_rate_without_congestion(self, meeting):
        _sim, _net, _sfu, clients = meeting
        for client in clients:
            for stream in client.get_stats().inbound_video:
                assert stream.frames_per_second == pytest.approx(30.0, abs=4.0)
                assert stream.freeze_count == 0

    def test_most_packets_stay_in_data_plane(self, meeting):
        _sim, _net, sfu, _clients = meeting
        fractions = sfu.data_plane_fraction()
        assert fractions["packets"] > 0.9
        assert fractions["bytes"] > 0.99

    def test_controller_and_agent_saw_the_meeting(self, meeting):
        _sim, _net, sfu, _clients = meeting
        assert sfu.controller.counters.joins == 3
        assert sfu.agent.counters.remb_handled > 10
        assert sfu.agent.counters.stun_handled > 0
        assert sfu.agent.meeting_design("meeting-1") in (ReplicationDesign.NRA, ReplicationDesign.RA_R)

    def test_forwarding_latency_is_switch_like(self, meeting):
        _sim, _net, sfu, _clients = meeting
        assert sfu.forwarding_latency_samples_ms
        assert max(sfu.forwarding_latency_samples_ms) < 0.1  # well under 0.1 ms


class TestTwoPartyMeeting:
    def test_two_party_uses_unicast_design(self):
        sim, net, sfu, clients = build_meeting(participants=2)
        sim.run_for(5.0)
        assert sfu.agent.meeting_design("meeting-1") == ReplicationDesign.TWO_PARTY
        for client in clients:
            stats = client.get_stats()
            assert len(stats.inbound_video) == 1
            assert stats.inbound_video[0].frames_per_second == pytest.approx(30.0, abs=4.0)

    def test_no_replication_trees_allocated(self):
        _sim, _net, sfu, _clients = (lambda t: t)(build_meeting(participants=2))
        assert sfu.pipeline.pre.num_trees == 0


class TestRateAdaptationEndToEnd:
    def test_constrained_downlink_reduces_frame_rate_without_freezes(self):
        thresholds = (650_000 * 0.8, 650_000 * 0.4)
        sim, net, sfu, clients = build_meeting(participants=3, thresholds=thresholds)
        sim.run_for(15.0)
        constrained = clients[2]
        net.set_downlink_profile(
            constrained.address,
            LinkProfile(bandwidth_bps=1_200_000, propagation_delay_s=0.01, queue_limit_bytes=60_000),
        )
        sim.run_for(30.0)

        # at least one stream towards the constrained participant was adapted
        targets = [
            int(sfu.agent.decode_target_for(sender.config.participant_id, "p3"))
            for sender in clients[:2]
        ]
        assert min(targets) < 2

        now = sim.now
        adapted_rates = [s.frame_rate(4.0, now) for s in constrained.video_receivers.values()]
        assert min(adapted_rates) < 20.0          # reduced from 30 fps
        assert min(adapted_rates) > 5.0           # but still flowing
        assert all(s.freeze_events == 0 for s in constrained.video_receivers.values())
        assert all(not s.frozen for s in constrained.video_receivers.values())

        # the unconstrained participants keep full quality
        for client in clients[:2]:
            for stream in client.video_receivers.values():
                assert stream.frame_rate(4.0, now) > 22.0

    def test_adaptation_entries_installed_in_pipeline(self):
        thresholds = (650_000 * 0.8, 650_000 * 0.4)
        sim, net, sfu, clients = build_meeting(participants=3, thresholds=thresholds)
        sim.run_for(10.0)
        net.set_downlink_profile(
            clients[2].address,
            LinkProfile(bandwidth_bps=1_000_000, propagation_delay_s=0.01, queue_limit_bytes=50_000),
        )
        sim.run_for(20.0)
        assert len(sfu.pipeline.adaptation_table) >= 1
        assert sfu.agent.counters.decode_target_changes >= 1
        # adaptation implies the meeting was migrated off NRA
        assert sfu.agent.meeting_design("meeting-1") == ReplicationDesign.RA_R


class TestMembershipChurn:
    def test_participant_leaving_stops_their_stream(self):
        sim, net, sfu, clients = build_meeting(participants=3)
        sim.run_for(5.0)
        leaver = clients[2]
        sfu.leave(leaver)
        leaver.stop()
        packets_before = {
            c.config.participant_id: sum(s.packets_received for s in c.video_receivers.values())
            for c in clients[:2]
        }
        sim.run_for(3.0)
        for client in clients[:2]:
            received_from_leaver = client.video_receivers.get(leaver.video_ssrc)
            if received_from_leaver is not None:
                after = received_from_leaver.packets_received
                # no meaningful growth after the leave
                assert after - packets_before[client.config.participant_id] < after * 0.5

    def test_late_joiner_receives_media(self):
        sim, net, sfu, clients = build_meeting(participants=2)
        sim.run_for(3.0)
        config = ClientConfig(
            participant_id="p3",
            meeting_id="meeting-1",
            address=Address("10.0.1.9", 6009),
            remote=SFU_ADDR,
            video_bitrate_bps=650_000,
            seed=99,
        )
        late = WebRtcClient(config, sim, net)
        net.attach(late)
        sfu.join(late)
        late.start()
        sim.run_for(5.0)
        stats = late.get_stats()
        assert len(stats.inbound_video) == 2
        assert stats.mean_video_fps() > 15
        # and the meeting was promoted off the two-party design
        assert sfu.agent.meeting_design("meeting-1") != ReplicationDesign.TWO_PARTY
