"""Runtime shard-isolation sanitizer suite.

Three contracts: (1) the write barrier fires — any mutating method call or
attribute/item store through a datapath-held control-plane binding raises
:class:`ShardIsolationError` and lands in the isolation log; (2) the barrier
is transparent — sanitized runs are byte-identical to unsanitized runs on
the full equivalence scenario, with zero findings; (3) the canned
``churn_storm --smoke`` gate passes under ``REPRO_SANITIZE=1`` with output
byte-identical to the unsanitized run.
"""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dataplane.pipeline import ScallopPipeline
from repro.dataplane.sanitize import (
    IsolationLog,
    ShardIsolationError,
    WriteBarrierProxy,
    resolve_sanitize,
)
from repro.dataplane.sharding import ShardedScallopPipeline
from repro.netsim.datagram import Address

from test_sharded_pipeline import (
    MeetingScenario,
    apply_op,
    assert_engines_agree,
    assert_results_identical,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SFU = Address("10.0.0.1", 5000)


# --------------------------------------------------------------------------- the barrier fires


class TestWriteBarrier:
    def test_injected_cross_shard_table_write_raises(self):
        engine = ShardedScallopPipeline(SFU, n_shards=2, sanitize=True)
        with pytest.raises(ShardIsolationError, match="stream_table.install"):
            engine.shards[0].stream_table.install(("rogue", 1), object())
        findings = engine.isolation_findings()
        assert len(findings) == 1
        assert findings[0].target == "stream_table.install"
        assert findings[0].operation == "call"
        assert findings[0].shard_id == engine.shards[0].shard_id

    def test_attribute_store_on_pre_raises(self):
        engine = ShardedScallopPipeline(SFU, n_shards=2, sanitize=True)
        with pytest.raises(ShardIsolationError, match="setattr"):
            engine.shards[1].pre.copies_produced = 9
        findings = engine.isolation_findings()
        assert [finding.operation for finding in findings] == ["setattr"]
        assert findings[0].target == "pre.copies_produced"

    def test_control_method_call_from_datapath_handle_raises(self):
        pipeline = ScallopPipeline(SFU, sanitize=True)
        with pytest.raises(ShardIsolationError, match="control.install_stream"):
            pipeline.datapath.control.install_stream(("a", 1), object())
        assert len(pipeline.isolation_findings()) == 1

    def test_item_store_raises_and_is_logged(self):
        log = IsolationLog(shard_id=7)
        proxy = WriteBarrierProxy({"k": 1}, "stream_indices", log)
        assert proxy["k"] == 1  # reads forward
        assert "k" in proxy and len(proxy) == 1
        with pytest.raises(ShardIsolationError):
            proxy["k"] = 2
        with pytest.raises(ShardIsolationError):
            del proxy["k"]
        assert [violation.operation for violation in log.violations] == ["setitem", "delitem"]

    def test_sanctioned_reads_forward_and_are_counted(self):
        pipeline = ScallopPipeline(SFU, sanitize=True)
        assert pipeline.datapath.stream_table.lookup(("nobody", 0)) is None
        log = pipeline.datapath.isolation_log
        assert log.read_counts.get("stream_table.lookup", 0) == 1
        assert not log.violations

    def test_control_plane_write_path_is_untouched(self):
        # the engine facade's own control handle stays raw: the whole
        # sanctioned control API must work under the sanitizer
        scenario = MeetingScenario(5)
        engine = scenario.configure(ShardedScallopPipeline(SFU, n_shards=2, sanitize=True))
        for op in scenario.churn_ops(5):
            apply_op(engine, op)
        assert engine.isolation_findings() == []


# --------------------------------------------------------------------------- switch resolution


class TestSanitizeResolution:
    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert resolve_sanitize(False) is False
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert resolve_sanitize(True) is True

    def test_env_drives_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert resolve_sanitize(None) is False
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert resolve_sanitize(None) is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert resolve_sanitize(None) is True

    def test_unsanitized_pipeline_has_no_log(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        pipeline = ScallopPipeline(SFU)
        assert pipeline.datapath.isolation_log is None
        assert pipeline.isolation_findings() == []
        # explicit False wins even when the suite itself runs sanitized
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert ScallopPipeline(SFU, sanitize=False).datapath.isolation_log is None

    def test_env_enables_sanitizer_on_default_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        pipeline = ScallopPipeline(SFU)
        assert pipeline.datapath.isolation_log is not None
        with pytest.raises(ShardIsolationError):
            pipeline.datapath.pre.copies_produced = 1


# --------------------------------------------------------------------------- transparency


class TestSanitizedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_sanitized_run_byte_identical_with_zero_findings(self, n_shards):
        seed = 31
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        plain = scenario_a.configure(ShardedScallopPipeline(SFU, n_shards=n_shards))
        sanitized = scenario_b.configure(
            ShardedScallopPipeline(SFU, n_shards=n_shards, sanitize=True)
        )
        try:
            for phase in range(2):
                for op in scenario_a.churn_ops(seed + phase):
                    apply_op(plain, op)
                    apply_op(sanitized, op)
                chunk_a = scenario_a.traffic_chunk(seed * 3 + phase)
                chunk_b = scenario_b.traffic_chunk(seed * 3 + phase)
                assert_results_identical(
                    [plain.process(d) for d in chunk_a],
                    [sanitized.process(d) for d in chunk_b],
                )
            assert_engines_agree(plain, sanitized)
            assert sanitized.isolation_findings() == []
            # the barrier actually sat on the hot path: media lookups were
            # counted on every sanitized shard that saw traffic
            hot_reads = sum(
                shard.isolation_log.read_counts.get("stream_table.lookup", 0)
                for shard in sanitized.shards
            )
            assert hot_reads > 0
        finally:
            plain.close()
            sanitized.close()


# --------------------------------------------------------------------------- canned scenario gate


class TestChurnStormSmoke:
    def _run_smoke(self, extra_env):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_SANITIZE", None)
        env.update(extra_env)
        return subprocess.run(
            [sys.executable, "-m", "repro.scenario", "churn_storm", "--smoke"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )

    def test_smoke_passes_sanitized_and_output_is_byte_identical(self):
        plain = self._run_smoke({})
        sanitized = self._run_smoke({"REPRO_SANITIZE": "1"})
        assert plain.returncode == 0, plain.stderr
        assert sanitized.returncode == 0, sanitized.stderr
        assert "reconciliation: SFU state matches" in sanitized.stdout
        assert sanitized.stdout == plain.stdout
