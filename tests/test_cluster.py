"""Suite for ``repro.cluster`` (PR 10): multi-SFU federation.

Five layers:

* **cascade stat-identity** — the headline property: a meeting cascaded
  across two Scallop boxes over an inter-SFU trunk delivers *exactly* the
  same packets to every receiver (per-SSRC sequence sets and byte counts)
  as the identical meeting homed on one box.  Trunking must be invisible
  to the media plane.
* **flow-snapshot oracle continuity** — rate adaptation exported mid-stream
  from one control plane (``export_flow_state``) and imported into a fresh
  one continues the rewritten sequence space exactly where
  ``ideal_rewrite_sequence`` says it should be — in-flight wraparound state
  included.  This is the pipeline-level core of cross-SFU migration.
* **snapshot versioning** — a mismatched ``CONTROL_SNAPSHOT_VERSION`` is
  rejected loudly (naming both versions), and an export -> import -> export
  round trip is field-for-field identical.
* **live migration end to end** — a cascaded meeting live-migrates between
  boxes mid-run: no receiver ends with a sequence gap, no decoder-state
  corruption, and the migrated-away box drains back to its pre-meeting
  baseline fingerprint.
* **federation telemetry** — every snapshot carries the ``repro.trunk.*``
  series (zero-valued on a classic single-box engine), live trunk counters
  surface through ``TelemetryBus.add_engine``, and ``validate_snapshot``
  requires the federation series.
"""

import dataclasses

import pytest

from repro.cluster import (
    MeetingSnapshot,
    SfuCluster,
    snapshot_size_bytes,
    trunk_participant_id,
)
from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    ideal_rewrite_sequence,
)
from repro.dataplane.pipeline import (
    CONTROL_SNAPSHOT_VERSION,
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    SnapshotVersionError,
    StreamForwardingEntry,
    decode_flow_state,
)
from repro.dataplane.pre import L2Port
from repro.netsim.datagram import Address, Datagram
from repro.obs import CORE_SERIES, TelemetryBus, validate_snapshot
from repro.obs.bus import TRUNK_KEYS
from repro.scenario import (
    BackendSpec,
    MeetingSpec,
    Scenario,
    Schedule,
    TrafficSpec,
    build_scenario,
    federated_pair,
)
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)

#: Drain margin appended after every scenario horizon: media production is
#: stopped, then the simulation runs on so in-flight packets (including the
#: extra trunk hop) land and NACK-driven repairs complete before the
#: delivered sets are compared.
DRAIN_S = 1.0


# --------------------------------------------------------------------------- cascade stat-identity


def _identity_scenario(n_sfus: int) -> Scenario:
    """The same 4-party meeting, homed on one box or cascaded 2+2.

    ``adaptation_thresholds_bps=(0.0, 0.0)`` pins every receiver to the full
    decode target, so no layer is ever suppressed and the delivered packet
    sets must be *byte-identical* across topologies (suppression timing
    depends on REMB arrival, which the trunk hop legitimately shifts).
    """
    if n_sfus > 1:
        backend = BackendSpec.cluster(n_sfus=n_sfus, adaptation_thresholds_bps=(0.0, 0.0))
        cascade = (0, 0, 1, 1)
    else:
        backend = BackendSpec(kind="scallop", adaptation_thresholds_bps=(0.0, 0.0))
        cascade = None
    return Scenario(
        name=f"identity_{n_sfus}sfu",
        meetings=(
            MeetingSpec(participants=4, video_bitrate_bps=900_000.0, cascade=cascade),
        ),
        backend=backend,
        traffic=TrafficSpec(frame_bursts=True, wire_native=True),
        duration_s=4.0,
        seed=41,
    )


def _delivered_stats(run):
    """Per participant: {ssrc: (delivered sequence set, bytes)} — the
    receiver-observable truth the identity property compares."""
    rows = {}
    for client in run.clients:
        rows[client.config.participant_id] = {
            ssrc: (frozenset(stream.received_seqs), stream.bytes_received)
            for ssrc, stream in sorted(client.video_receivers.items())
        }
    return rows


def _run_quiesced(scenario: Scenario):
    """Run a scenario to its horizon, stop media production, and drain."""
    with build_scenario(scenario) as run:
        run.run()
        for client in run.clients:
            client.stop()
        run.run_for(DRAIN_S)
        problems = run.reconcile()
        delivered = _delivered_stats(run)
        trunk_packets = 0
        if isinstance(run.sfu, SfuCluster):
            trunk_packets = sum(m.trunk_stats.packets_in for m in run.sfu.members)
        return delivered, problems, trunk_packets


class TestCascadeStatIdentity:
    """A trunked meeting must be indistinguishable from a single-box one."""

    @pytest.fixture(scope="class")
    def runs(self):
        single = _run_quiesced(_identity_scenario(1))
        cascaded = _run_quiesced(_identity_scenario(2))
        return single, cascaded

    def test_both_topologies_reconcile(self, runs):
        (_, single_problems, _), (_, cascaded_problems, _) = runs
        assert single_problems == []
        assert cascaded_problems == []

    def test_media_actually_crossed_the_trunk(self, runs):
        (_, _, single_trunk), (_, _, cascaded_trunk) = runs
        assert single_trunk == 0
        assert cascaded_trunk > 0

    def test_delivered_streams_are_stat_identical(self, runs):
        (single, _, _), (cascaded, _, _) = runs
        assert set(single) == set(cascaded)
        for participant_id in single:
            assert cascaded[participant_id] == single[participant_id], (
                f"{participant_id}: cascaded delivery diverged from single-box"
            )
        # and the property is not vacuous: every receiver saw 3 remote
        # video streams with real traffic on each
        for streams in single.values():
            assert len(streams) == 3
            assert all(seqs and bytes_received > 0 for seqs, bytes_received in streams.values())


# --------------------------------------------------------------------------- flow-snapshot oracle continuity


def _build_adapted_pipeline(pipeline, rewriter_cls, allowed_templates):
    """One meeting on ``pipeline``: sender + 2 receivers, rate adaptation on
    receiver 1, packetizer pinned so the sequence space wraps mid-test."""
    sender = Address("10.6.0.2", 6000)
    receivers = [Address("10.6.0.3", 6001), Address("10.6.0.4", 6002)]
    ssrc = 55_000
    mgid = pipeline.pre.create_tree()
    for rid, address in enumerate([sender] + receivers, start=1):
        pipeline.pre.add_node(
            mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
        )
        pipeline.install_replica_target(
            mgid, rid, ReplicaTarget(address=address, participant_id=f"p{rid}")
        )
    pipeline.install_stream(
        (sender, ssrc),
        StreamForwardingEntry(
            mode=ForwardingMode.REPLICATE,
            meeting_id="oracle",
            sender=sender,
            mgid=mgid,
            rid=1,
            l2_xid=1,
        ),
    )
    if rewriter_cls is not None:
        pipeline.install_adaptation(
            ssrc, receivers[0], allowed_templates, rewriter_cls(SkipCadence(1, 2))
        )
    return sender, receivers, ssrc


class TestFlowSnapshotOracleContinuity:
    """``export_flow_state`` -> ``import_flow_state`` across control planes
    must leave the migrated flow's rewritten sequence space exactly where
    the oracle says — this is the dataplane half of cross-SFU migration."""

    @pytest.mark.parametrize(
        "rewriter_cls", [SequenceRewriterLowMemory, SequenceRewriterLowRetransmission]
    )
    def test_flow_continues_on_the_destination_box(self, rewriter_cls):
        allowed = frozenset({0, 1, 3, 4})  # suppresses the top temporal layer
        source = ScallopPipeline(Address("10.0.0.1", 5000))
        _sender, receivers, ssrc = _build_adapted_pipeline(
            source, rewriter_cls, allowed
        )
        # start ~60 packets before the 65535 -> 0 wrap so the wrap lands
        # in-flight, carried across the boxes inside the packed snapshot
        packetizer = RtpPacketizer(ssrc=ssrc, seed=1)
        packetizer._sequence_number = 65_470
        encoder = SvcEncoder(target_bitrate_bps=1_500_000, seed=1)
        adapted = receivers[0]
        sender = Address("10.6.0.2", 6000)

        events = []   # (seq, suppressed, lost) ground truth in arrival order
        emitted = []  # rewritten seq (or None) per event, from the outputs

        def feed(engine, batches, clock_base):
            for batch_index in range(batches):
                batch = []
                for frame_index in range(4):
                    frame = encoder.next_frame((clock_base + batch_index * 4 + frame_index) / 30)
                    for packet in packetizer.packetize(frame):
                        suppressed = (
                            packet.extension is not None
                            and frame.template_id not in allowed
                        )
                        events.append((packet.sequence_number, suppressed, False))
                        batch.append(Datagram(src=sender, dst=engine.sfu_address, payload=packet))
                for result in engine.process_batch(batch):
                    outs = [d for d in result.outputs if d.dst == adapted]
                    emitted.append(outs[0].payload.sequence_number if outs else None)

        feed(source, 6, 0)
        payload = source.export_flow_state()
        # the destination box: same meeting topology, NO pre-installed
        # adaptation — the imported snapshot must carry all of it
        destination = ScallopPipeline(Address("10.0.0.2", 5000))
        _build_adapted_pipeline(destination, None, allowed)
        assert destination.import_flow_state(payload) == 1
        feed(destination, 6, 24)

        assert emitted == ideal_rewrite_sequence(events)
        suppressed_count = sum(1 for _seq, s, _l in events if s)
        assert suppressed_count > 0, "the workload never exercised suppression"
        seqs = [seq for seq, _s, _l in events]
        assert max(seqs) > 65_000 and min(seqs) < 500, "the stream never wrapped"


# --------------------------------------------------------------------------- snapshot versioning


class TestSnapshotVersioning:
    def _exported(self, traffic_batches=3):
        engine = ScallopPipeline(SFU)
        _sender, _receivers, ssrc = _build_adapted_pipeline(
            engine, SequenceRewriterLowMemory, frozenset({0, 1, 3, 4})
        )
        packetizer = RtpPacketizer(ssrc=ssrc, seed=3)
        encoder = SvcEncoder(target_bitrate_bps=1_500_000, seed=3)
        sender = Address("10.6.0.2", 6000)
        for batch_index in range(traffic_batches):
            batch = []
            for frame_index in range(4):
                frame = encoder.next_frame((batch_index * 4 + frame_index) / 30)
                for packet in packetizer.packetize(frame):
                    batch.append(Datagram(src=sender, dst=SFU, payload=packet))
            engine.process_batch(batch)
        return engine.export_flow_state()

    def test_mismatched_version_is_rejected_loudly(self):
        payload = self._exported()
        tampered = dict(payload, version=99)
        with pytest.raises(SnapshotVersionError) as excinfo:
            decode_flow_state(tampered)
        message = str(excinfo.value)
        assert "99" in message
        assert str(CONTROL_SNAPSHOT_VERSION) in message

        fresh = ScallopPipeline(Address("10.0.0.2", 5000))
        _build_adapted_pipeline(fresh, None, frozenset())
        with pytest.raises(SnapshotVersionError):
            fresh.import_flow_state(tampered)
        # and nothing was half-restored before the version check fired
        assert len(fresh.adaptation_table) == 0

    def test_round_trip_is_field_for_field_identical(self):
        payload = self._exported()
        assert payload["version"] == CONTROL_SNAPSHOT_VERSION
        assert payload["flows"], "the export never captured the adapted flow"
        destination = ScallopPipeline(Address("10.0.0.2", 5000))
        _build_adapted_pipeline(destination, None, frozenset())
        destination.import_flow_state(payload)
        assert destination.export_flow_state() == payload

    def test_packed_records_are_zero_pickle_builtins(self):
        # the snapshot must JSON-shape down to builtins + packed bytes —
        # never a pickled object graph (archlint enforces this statically;
        # this pins it dynamically)
        payload = self._exported()
        for record in payload["flows"]:
            assert isinstance(record["rewriter"], bytes)
            assert isinstance(record["allowed_templates"], list)
            assert all(isinstance(t, int) for t in record["allowed_templates"])


# --------------------------------------------------------------------------- live migration end to end


def _migration_scenario() -> Scenario:
    duration = 4.0
    return Scenario(
        name="migration_lossfree",
        meetings=(
            MeetingSpec(
                participants=4, video_bitrate_bps=900_000.0, cascade=(0, 0, 1, 1)
            ),
        ),
        backend=BackendSpec.cluster(n_sfus=2, adaptation_thresholds_bps=(0.0, 0.0)),
        traffic=TrafficSpec(frame_bursts=True, wire_native=True),
        schedule=Schedule().migrate(duration * 0.5, 0, 1),
        duration_s=duration,
        seed=43,
    )


class TestLiveMigrationEndToEnd:
    """A cascaded meeting live-migrates onto one box mid-run: versioned
    snapshot shipped, rewriter registers adopted, stragglers drained —
    and no receiver can tell it happened."""

    @pytest.fixture(scope="class")
    def finished_run(self):
        with build_scenario(_migration_scenario()) as run:
            run.run()
            for client in run.clients:
                client.stop()
            run.run_for(DRAIN_S)
            yield run

    def test_migration_actually_fired(self, finished_run):
        cluster = finished_run.sfu
        assert isinstance(cluster, SfuCluster)
        assert cluster.members[1].trunk_stats.migrations_in == 1
        assert cluster.members[0].trunk_stats.migrations_out == 1
        assert cluster.members[0].trunk_stats.snapshot_bytes > 0
        assert any(m.startswith("migrate") for _at, m in finished_run.event_log)

    def test_no_receiver_lost_or_corrupted_a_packet(self, finished_run):
        for client in finished_run.clients:
            assert client.video_receivers, client.config.participant_id
            for ssrc, stream in client.video_receivers.items():
                who = f"{client.config.participant_id}/ssrc={ssrc}"
                assert stream.packets_received > 0, who
                assert stream.missing == set(), f"{who}: unrepaired gap across cutover"
                assert stream.duplicate_count == 0, f"{who}: decoder-corrupting duplicate"
                assert stream.freeze_events == 0, who

    def test_state_reconciles_across_boxes(self, finished_run):
        assert finished_run.reconcile() == []

    def test_migrated_away_box_returns_to_baseline(self, finished_run):
        cluster = finished_run.sfu
        finished_run.reconcile()  # flushes lingering trunks + straggler routes
        drained = cluster._fingerprint(cluster.members[0])
        assert drained == cluster._baselines[0]
        # the destination box is now the meeting's only home: no trunk
        # subscriptions survive the consolidation
        assert len(cluster.members[0].trunks.subscriptions) == 0
        assert len(cluster.members[1].trunks.subscriptions) == 0

    def test_summary_reports_the_federation(self, finished_run):
        summary = finished_run.summary()
        assert summary["sfu"] == "scallop-cluster"
        assert summary["n_sfus"] == 2
        assert summary["meeting_migrations"] == 1
        assert summary["snapshot_bytes_shipped"] > 0
        assert summary["trunk_packets_in"] > 0


# --------------------------------------------------------------------------- federated_pair canned scenario


class TestFederatedPairScenario:
    """The canned CI scenario: cascade + churn on both boxes + live
    migration, reconciled against the surviving cross-SFU population."""

    @pytest.fixture(scope="class")
    def finished_run(self):
        scenario = federated_pair(smoke=True)
        # arm the declarative telemetry knobs exactly as the CLI's
        # --metrics-out path does, so metrics_snapshot() carries the full
        # core schema (coordinator stage histograms included)
        scenario = dataclasses.replace(
            scenario, backend=dataclasses.replace(scenario.backend, profile=True, obs=True)
        )
        with build_scenario(scenario) as run:
            run.run()
            yield run

    def test_spec_shape(self):
        scenario = federated_pair(smoke=True)
        assert scenario.backend.kind == "scallop"
        assert scenario.backend.n_sfus == 2
        assert scenario.meetings[0].cascade == (0, 0, 1, 1)
        assert scenario.meetings[1].sfu == 1

    def test_churn_and_migration_happened(self, finished_run):
        kinds = {message.split()[0] for _at, message in finished_run.event_log}
        assert kinds == {"join", "leave", "migrate"}

    def test_cross_sfu_state_reconciles(self, finished_run):
        assert finished_run.reconcile() == []

    def test_summary_shows_trunk_traffic_and_migration(self, finished_run):
        summary = finished_run.summary()
        assert summary["sfu"] == "scallop-cluster"
        assert summary["trunk_packets_in"] > 0
        assert summary["meeting_migrations"] == 1

    def test_metrics_snapshot_is_schema_valid_with_live_trunk_series(self, finished_run):
        snapshot = finished_run.metrics_snapshot()
        assert validate_snapshot(snapshot) == []
        series = snapshot["series"]
        assert series["repro.trunk.packets_in"]["value"] > 0
        assert series["repro.trunk.migrations_in"]["value"] == 1
        assert series["repro.transport.pickle_fallback_records"]["value"] == 0


# --------------------------------------------------------------------------- federation telemetry


class TestTrunkTelemetry:
    def test_single_box_engine_pins_zero_valued_trunk_series(self):
        # a classic engine has no trunk_stats; the snapshot must still
        # carry the full repro.trunk.* namespace so dashboards built
        # against a cluster read unchanged against a single box
        engine = ScallopPipeline(SFU)
        bus = TelemetryBus()
        bus.add_engine(engine, sim_time_s=1.0)
        snapshot = bus.snapshot(sim_time_s=1.0)
        for key in TRUNK_KEYS:
            assert snapshot["series"][f"repro.trunk.{key}"]["value"] == 0
        assert snapshot["series"]["repro.trunk.subscriptions"]["value"] == 0.0

    def test_trunk_series_are_core_schema(self):
        assert "repro.trunk.packets_in" in CORE_SERIES
        assert "repro.trunk.subscriptions" in CORE_SERIES

    def test_subscriptions_gauge_accumulates_across_engines(self):
        class FakeStats:
            packets_in = 7
            bytes_in = 700
            stragglers_forwarded = 1
            migrations_in = 0
            migrations_out = 2
            snapshot_bytes = 4321
            subscriptions = 3

        first, second = ScallopPipeline(SFU), ScallopPipeline(Address("10.0.0.2", 5000))
        first.trunk_stats = FakeStats()
        second.trunk_stats = FakeStats()
        bus = TelemetryBus()
        bus.add_engine(first, sim_time_s=1.0)
        bus.add_engine(second, sim_time_s=1.0)
        series = bus.snapshot(sim_time_s=1.0)["series"]
        assert series["repro.trunk.packets_in"]["value"] == 14
        assert series["repro.trunk.snapshot_bytes"]["value"] == 8642
        # subscriptions is a gauge: per-engine values must *sum* into the
        # fleet total rather than the last engine overwriting the first
        assert series["repro.trunk.subscriptions"]["value"] == 6.0


# --------------------------------------------------------------------------- odds and ends


class TestClusterApiContract:
    def test_cluster_spec_validation(self):
        with pytest.raises(ValueError, match="n_sfus"):
            BackendSpec(kind="scallop", n_sfus=0)
        with pytest.raises(ValueError, match="scallop backend"):
            BackendSpec(kind="software", n_sfus=2)

    def test_trunk_participant_ids_are_namespaced(self):
        pid = trunk_participant_id(Address("10.0.0.2", 5000))
        assert pid.startswith("trunk:")

    def test_snapshot_size_accounts_packed_registers(self):
        engine = ScallopPipeline(SFU)
        _sender, _receivers, ssrc = _build_adapted_pipeline(
            engine, SequenceRewriterLowMemory, frozenset({0, 1, 3, 4})
        )
        packetizer = RtpPacketizer(ssrc=ssrc, seed=5)
        encoder = SvcEncoder(target_bitrate_bps=1_500_000, seed=5)
        sender = Address("10.6.0.2", 6000)
        batch = []
        for frame_index in range(4):
            frame = encoder.next_frame(frame_index / 30)
            for packet in packetizer.packetize(frame):
                batch.append(Datagram(src=sender, dst=SFU, payload=packet))
        engine.process_batch(batch)
        payload = engine.export_flow_state()
        packed = sum(len(record["rewriter"]) for record in payload["flows"])
        snapshot = MeetingSnapshot(
            meeting_id="m0",
            version=CONTROL_SNAPSHOT_VERSION,
            flows=payload,
            decode_targets=(("p1", "p2", 2, (0.1, 0.2)),),
        )
        assert packed > 0
        assert snapshot_size_bytes(snapshot) >= packed
