"""Equivalence and invalidation tests for the batched pipeline fast path.

The contract under test: ``process_batch`` must be observably identical to
calling ``process`` per packet — byte-identical outputs, equal CPU copies,
equal counters — while the memoized forwarding resolution must never serve
stale state after any control-plane write (including direct PRE mutations).
"""

import dataclasses

import pytest

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
)
from repro.dataplane.pipeline import (
    FeedbackRule,
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from repro.dataplane.pre import L2Port
from repro.netsim.datagram import Address, Datagram
from repro.rtp.rtcp import Nack, Remb, SenderReport
from repro.stun.message import make_binding_request
from repro.webrtc.encoder import AudioSource, RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)
ALICE = Address("10.0.1.1", 6000)
BOB = Address("10.0.1.2", 6001)
CAROL = Address("10.0.1.3", 6002)

VIDEO_SSRC = 1001
AUDIO_SSRC = 1000


def video_packets(frames=1, ssrc=VIDEO_SSRC, seed=1):
    encoder = SvcEncoder(target_bitrate_bps=600_000, seed=seed)
    packetizer = RtpPacketizer(ssrc=ssrc, seed=seed)
    packets = []
    for index in range(frames):
        packets.extend(packetizer.packetize(encoder.next_frame(index / 30)))
    return packets


def build_pipeline(mode=ForwardingMode.REPLICATE, with_adaptation=False, rewriter_cls=SequenceRewriterLowMemory):
    pipeline = ScallopPipeline(SFU)
    mgid = pipeline.pre.create_tree()
    for rid, address in enumerate([ALICE, BOB, CAROL], start=1):
        pipeline.pre.add_node(mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True)
        pipeline.install_replica_target(mgid, rid, ReplicaTarget(address=address, participant_id=str(rid)))
    entry = StreamForwardingEntry(
        mode=mode,
        meeting_id="m",
        sender=ALICE,
        mgid=mgid,
        mgid_by_layer={0: mgid, 1: mgid, 2: mgid} if mode == ForwardingMode.REPLICATE_BY_LAYER else None,
        rid=1,
        l2_xid=1,
        unicast_receiver=BOB,
    )
    pipeline.install_stream((ALICE, VIDEO_SSRC), entry)
    pipeline.install_stream((ALICE, AUDIO_SSRC), entry)
    if with_adaptation:
        pipeline.install_adaptation(VIDEO_SSRC, BOB, frozenset({0, 1, 2}), rewriter_cls(SkipCadence(1, 2)))
    return pipeline, mgid


def mixed_traffic(frames=24):
    traffic = [Datagram(src=ALICE, dst=SFU, payload=p) for p in video_packets(frames)]
    audio = AudioSource(ssrc=AUDIO_SSRC)
    for index in range(6):
        traffic.insert(5 * index, Datagram(src=ALICE, dst=SFU, payload=audio.next_packet(index * 0.02)))
    traffic.append(Datagram(src=ALICE, dst=SFU, payload=(SenderReport(sender_ssrc=VIDEO_SSRC),)))
    traffic.append(
        Datagram(src=BOB, dst=SFU, payload=(Remb(2002, 1e6, (VIDEO_SSRC,)), Nack(2002, VIDEO_SSRC, (5,))))
    )
    traffic.append(Datagram(src=ALICE, dst=SFU, payload=make_binding_request(bytes(12), "alice")))
    traffic.append(Datagram(src=BOB, dst=SFU, payload=video_packets(1, ssrc=9999)[0]))  # table miss
    return traffic


def assert_equivalent(per_packet_results, batch_results):
    assert len(per_packet_results) == len(batch_results)
    for reference, batched in zip(per_packet_results, batch_results):
        assert reference.parse == batched.parse
        assert reference.dropped_replicas == batched.dropped_replicas
        assert reference.forwarding_delay_s == batched.forwarding_delay_s
        assert len(reference.outputs) == len(batched.outputs)
        for expected, actual in zip(reference.outputs, batched.outputs):
            assert expected == actual
            assert expected.to_bytes() == actual.to_bytes()
            assert (expected.src, expected.dst) == (actual.src, actual.dst)
            assert expected.size == actual.size
            assert expected.kind == actual.kind
            assert expected.wire_size == actual.wire_size
            assert dict(expected.meta) == dict(actual.meta)
        assert [c.to_bytes() for c in reference.cpu_copies] == [c.to_bytes() for c in batched.cpu_copies]


class TestBatchEquivalence:
    @pytest.mark.parametrize("mode", [ForwardingMode.REPLICATE, ForwardingMode.REPLICATE_BY_LAYER, ForwardingMode.UNICAST])
    def test_outputs_byte_identical(self, mode):
        reference, _ = build_pipeline(mode=mode)
        batched, _ = build_pipeline(mode=mode)
        traffic = mixed_traffic()
        assert_equivalent([reference.process(d) for d in traffic], batched.process_batch(traffic))
        assert dataclasses.asdict(reference.counters) == dataclasses.asdict(batched.counters)

    @pytest.mark.parametrize("rewriter_cls", [SequenceRewriterLowMemory, SequenceRewriterLowRetransmission])
    def test_equivalent_with_rate_adaptation(self, rewriter_cls):
        reference, _ = build_pipeline(with_adaptation=True, rewriter_cls=rewriter_cls)
        batched, _ = build_pipeline(with_adaptation=True, rewriter_cls=rewriter_cls)
        traffic = mixed_traffic(frames=40)
        assert_equivalent([reference.process(d) for d in traffic], batched.process_batch(traffic))
        assert dataclasses.asdict(reference.counters) == dataclasses.asdict(batched.counters)
        assert reference.counters.adaptation_drops > 0  # the scenario exercises suppression

    def test_pre_counters_match(self):
        reference, _ = build_pipeline()
        batched, _ = build_pipeline()
        traffic = mixed_traffic()
        [reference.process(d) for d in traffic]
        batched.process_batch(traffic)
        assert reference.pre.replications_performed == batched.pre.replications_performed
        assert reference.pre.copies_produced == batched.pre.copies_produced
        assert reference.parser.packets_parsed == batched.parser.packets_parsed
        assert reference.parser.cpu_punts == batched.parser.cpu_punts

    def test_batch_in_chunks_equals_one_batch(self):
        one_shot, _ = build_pipeline(with_adaptation=True)
        chunked, _ = build_pipeline(with_adaptation=True)
        traffic = mixed_traffic()
        whole = one_shot.process_batch(traffic)
        parts = []
        for start in range(0, len(traffic), 7):
            parts.extend(chunked.process_batch(traffic[start : start + 7]))
        assert_equivalent(whole, parts)
        # per-packet and batched accounting flow through one helper
        # (PipelineCounters._add), so chunking must not perturb any tally
        assert dataclasses.asdict(one_shot.counters) == dataclasses.asdict(chunked.counters)

    def test_replica_meta_is_immutable_view(self):
        batched, _ = build_pipeline()
        packet = video_packets(3)[-1]
        result = batched.process_batch([Datagram(src=ALICE, dst=SFU, payload=packet, meta={"tx_time": 1.0})])[0]
        assert len(result.outputs) == 2
        meta = result.outputs[0].meta
        assert meta["tx_time"] == 1.0 and meta["origin"] == ALICE
        with pytest.raises(TypeError):
            meta["tampered"] = True


class TestBatchCacheInvalidation:
    def run_one(self, pipeline, packet):
        return pipeline.process_batch([Datagram(src=ALICE, dst=SFU, payload=packet)])[0]

    def test_replica_target_removal_reflected(self):
        pipeline, mgid = build_pipeline()
        packet = video_packets(3)[-1]
        assert {d.dst for d in self.run_one(pipeline, packet).outputs} == {BOB, CAROL}
        pipeline.remove_replica_target(mgid, 3)  # Carol's replica slot
        assert {d.dst for d in self.run_one(pipeline, packet).outputs} == {BOB}

    def test_direct_pre_mutation_reflected(self):
        pipeline, mgid = build_pipeline()
        packet = video_packets(3)[-1]
        assert len(self.run_one(pipeline, packet).outputs) == 2
        dave = Address("10.0.1.4", 6003)
        pipeline.pre.add_node(mgid, rid=4, ports=[L2Port(port=4, l2_xid=4)], l1_xid=1, prune_enabled=True)
        pipeline.install_replica_target(mgid, 4, ReplicaTarget(address=dave, participant_id="4"))
        assert dave in {d.dst for d in self.run_one(pipeline, packet).outputs}

    def test_stream_removal_reflected(self):
        pipeline, _ = build_pipeline()
        packet = video_packets(3)[-1]
        assert self.run_one(pipeline, packet).outputs
        pipeline.remove_stream((ALICE, VIDEO_SSRC))
        result = self.run_one(pipeline, packet)
        assert result.outputs == []
        assert pipeline.counters.table_misses >= 1

    def test_adaptation_install_reflected(self):
        pipeline, _ = build_pipeline()
        stream = video_packets(frames=16)
        pipeline.process_batch([Datagram(src=ALICE, dst=SFU, payload=p) for p in stream[:4]])
        pipeline.install_adaptation(
            VIDEO_SSRC, BOB, frozenset({0, 1, 2}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        results = pipeline.process_batch([Datagram(src=ALICE, dst=SFU, payload=p) for p in stream[4:]])
        assert any(r.dropped_replicas for r in results)  # Bob's top layer now suppressed

    def test_feedback_rules_unaffected_by_cache(self):
        # feedback is not cached; rules installed mid-stream apply immediately
        pipeline, _ = build_pipeline()
        remb = Datagram(src=BOB, dst=SFU, payload=(Remb(2002, 1e6, (VIDEO_SSRC,)),))
        assert pipeline.process_batch([remb])[0].outputs == []
        pipeline.install_feedback_rule(BOB, VIDEO_SSRC, FeedbackRule(sender=ALICE, forward_remb=True))
        assert [d.dst for d in pipeline.process_batch([remb])[0].outputs] == [ALICE]
