"""Unit tests for the trace generators, workload models, and analysis helpers."""

import math

import pytest

from repro.analysis.metrics import (
    LatencySummary,
    cdf,
    interarrival_jitter_ms,
    mean,
    median,
    percentile,
    rate_series,
    ratio,
)
from repro.rtp.av1 import DecodeTarget
from repro.trace.packet_trace import CampusPacketTrace, SvcAdaptationTrace
from repro.trace.workload import infrastructure_requirements, weekly_byte_comparison
from repro.trace.zoom_api import ZoomApiDataset, ZoomApiDatasetConfig


@pytest.fixture(scope="module")
def dataset():
    return ZoomApiDataset.generate(ZoomApiDatasetConfig(num_meetings=800, seed=7))


class TestZoomApiDataset:
    def test_reproducible(self, dataset):
        again = ZoomApiDataset.generate(ZoomApiDatasetConfig(num_meetings=800, seed=7))
        assert [m.max_participants for m in again.meetings] == [m.max_participants for m in dataset.meetings]

    def test_meeting_count_and_horizon(self, dataset):
        assert len(dataset.meetings) == 800
        horizon = dataset.config.duration_days * 86_400
        assert all(0 <= m.start_s <= horizon for m in dataset.meetings)
        assert all(120 <= m.duration_s <= 240 * 60 for m in dataset.meetings)

    def test_two_party_share_near_sixty_percent(self, dataset):
        assert dataset.two_party_share() == pytest.approx(0.60, abs=0.06)

    def test_streams_grow_superlinearly_with_participants(self, dataset):
        summary = dataset.streams_per_meeting_summary()
        small = [summary[n][1] for n in summary if 2 <= n <= 4]
        large = [summary[n][1] for n in summary if n >= 15]
        if small and large:
            assert max(large) > 5 * max(small)

    def test_streams_respect_quadratic_character(self, dataset):
        # the SFU stream count per meeting never exceeds 3 * N^2
        for meeting in dataset.meetings:
            n = meeting.max_participants
            assert meeting.streams_at_sfu() <= 3 * n * n

    def test_concurrency_series_consistent(self, dataset):
        series = dataset.concurrency_series(step_s=3600.0)
        assert series
        for _time, meetings, participants in series:
            assert participants >= meetings or meetings == 0

    def test_diurnal_structure(self, dataset):
        series = dataset.concurrency_series(step_s=3600.0)
        by_hour = {}
        for time_s, meetings, _p in series:
            hour = int(time_s // 3600) % 24
            by_hour.setdefault(hour, []).append(meetings)
        working = mean([mean(v) for h, v in by_hour.items() if 9 <= h <= 16])
        night = mean([mean(v) for h, v in by_hour.items() if h <= 5])
        assert working > 2 * night


class TestCampusPacketTrace:
    def test_capture_summary_magnitudes(self, dataset):
        trace = CampusPacketTrace(dataset)
        summary = trace.capture_summary(duration_s=12 * 3600.0, start_s=8 * 3600.0)
        assert summary.zoom_packets > 0
        assert summary.zoom_bytes > 0
        assert summary.rtp_media_streams > 0
        # average Zoom packet size should be in the realistic 300-1300 byte band
        average_size = summary.zoom_bytes / max(summary.zoom_packets, 1)
        assert 300 < average_size < 1300

    def test_offered_load_control_fraction(self, dataset):
        trace = CampusPacketTrace(dataset)
        series = trace.offered_load_series(0.0, 86_400.0, step_s=3600.0)
        for _t, media_bps, control_bps in series:
            if media_bps > 0:
                assert control_bps == pytest.approx(media_bps * 0.0035, rel=0.01)

    def test_peak_offered_load_positive(self, dataset):
        trace = CampusPacketTrace(dataset)
        media, control = trace.peak_offered_load(step_s=3600.0)
        assert media > control > 0


class TestSvcAdaptationTrace:
    def test_receiver_rate_drops_after_adaptation(self):
        trace = SvcAdaptationTrace(seed=3)
        receiver = trace.receiver_series(receiver=17, reduce_at_s=100.0, reduce_to=DecodeTarget.DT1)
        early = mean([s.rate_kbps for s in receiver.samples[40:90]])
        late = mean([s.rate_kbps for s in receiver.samples[150:200]])
        assert late < 0.85 * early

    def test_sender_keeps_all_layers(self):
        trace = SvcAdaptationTrace(seed=3)
        sender = trace.sender_series()
        assert all(set(s.bytes_by_layer) == {0, 1, 2} for s in sender.samples[30:])

    def test_layer_breakdown_consistent(self):
        trace = SvcAdaptationTrace(seed=3)
        receiver = trace.receiver_series(receiver=12, reduce_at_s=50.0, reduce_to=DecodeTarget.DT0)
        last = receiver.samples[-1]
        assert set(last.bytes_by_layer) == {0}
        assert last.total_bytes == pytest.approx(sum(last.bytes_by_layer.values()))


class TestWorkloadModels:
    def test_infrastructure_requirements(self, dataset):
        requirement = infrastructure_requirements(dataset)
        assert requirement.peak_concurrent_meetings > 0
        assert requirement.peak_concurrent_participants >= requirement.peak_concurrent_meetings
        assert requirement.software_servers_needed >= 1
        assert requirement.scallop_switches_needed == 1
        assert requirement.scallop_agent_share < requirement.software_nic_share

    def test_weekly_byte_comparison_shape(self, dataset):
        series = weekly_byte_comparison(dataset, step_s=6 * 3600.0)
        assert len(series) == 28
        peak_media = max(s[1] for s in series)
        peak_control = max(s[2] for s in series)
        assert peak_media > 100 * peak_control


class TestAnalysisMetrics:
    def test_percentile_and_median(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert median(values) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01, abs=0.1)
        assert percentile([7.0], 95) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_latency_summary(self):
        summary = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.median == 3.0
        assert summary.maximum == 100.0
        assert summary.p99 > summary.p95 >= summary.median

    def test_cdf_monotonic(self):
        points = cdf([5.0, 1.0, 3.0, 2.0, 4.0], points=5)
        values = [v for v, _f in points]
        fractions = [f for _v, f in points]
        assert values == sorted(values)
        assert fractions[-1] == 1.0
        assert all(0 < f <= 1 for f in fractions)

    def test_jitter_zero_for_constant_transit(self):
        arrivals = [0.1 * i + 0.05 for i in range(50)]
        timestamps = [0.1 * i for i in range(50)]
        assert interarrival_jitter_ms(arrivals, timestamps) == pytest.approx(0.0, abs=1e-9)

    def test_jitter_positive_for_variable_transit(self):
        arrivals = [0.1 * i + (0.01 if i % 2 else 0.05) for i in range(50)]
        timestamps = [0.1 * i for i in range(50)]
        assert interarrival_jitter_ms(arrivals, timestamps) > 1.0

    def test_rate_series(self):
        events = [0.1, 0.2, 0.3, 1.1, 1.2]
        series = rate_series(events, bucket_s=1.0)
        assert series[0][1] == pytest.approx(3.0)
        assert series[1][1] == pytest.approx(2.0)

    def test_ratio_handles_zero(self):
        assert ratio(1.0, 0.0) == math.inf
        assert ratio(0.0, 0.0) == 0.0
        assert ratio(4.0, 2.0) == 2.0
