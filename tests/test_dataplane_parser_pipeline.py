"""Unit tests for the ingress parser and the Scallop pipeline."""

import pytest

from repro.dataplane.parser import IngressParser, PacketClass
from repro.dataplane.pipeline import (
    FeedbackRule,
    ForwardingMode,
    ReplicaTarget,
    ScallopPipeline,
    StreamForwardingEntry,
)
from repro.dataplane.pre import L2Port
from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
)
from repro.netsim.datagram import Address, Datagram
from repro.rtp.av1 import extract_dependency_descriptor
from repro.rtp.rtcp import Nack, PictureLossIndication, ReceiverReport, Remb, ReportBlock, SenderReport, SourceDescription
from repro.stun.message import make_binding_request
from repro.webrtc.encoder import AudioSource, RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)
ALICE = Address("10.0.1.1", 6000)
BOB = Address("10.0.1.2", 6001)
CAROL = Address("10.0.1.3", 6002)

ALICE_VIDEO_SSRC = 1001
ALICE_AUDIO_SSRC = 1000


def video_packets(frames=1, ssrc=ALICE_VIDEO_SSRC, seed=1, bitrate=600_000):
    encoder = SvcEncoder(target_bitrate_bps=bitrate, seed=seed)
    packetizer = RtpPacketizer(ssrc=ssrc, seed=seed)
    packets = []
    for index in range(frames):
        packets.extend(packetizer.packetize(encoder.next_frame(index / 30)))
    return packets


class TestIngressParser:
    def test_classifies_audio_video(self):
        parser = IngressParser()
        video = video_packets(1)[1]
        result = parser.parse(Datagram(src=ALICE, dst=SFU, payload=video))
        assert result.packet_class == PacketClass.RTP_VIDEO
        assert result.template_id is not None
        audio = AudioSource(ssrc=ALICE_AUDIO_SSRC).next_packet(0.0)
        result = parser.parse(Datagram(src=ALICE, dst=SFU, payload=audio))
        assert result.packet_class == PacketClass.RTP_AUDIO

    def test_keyframe_extended_descriptor_punts_to_cpu(self):
        parser = IngressParser()
        key_packet = video_packets(1)[0]  # first packet of the key frame
        result = parser.parse(Datagram(src=ALICE, dst=SFU, payload=key_packet))
        assert result.has_extended_descriptor
        assert result.needs_cpu

    def test_ordinary_video_stays_in_data_plane(self):
        parser = IngressParser()
        packet = video_packets(3)[-1]  # a non-key frame packet
        result = parser.parse(Datagram(src=ALICE, dst=SFU, payload=packet))
        assert not result.needs_cpu

    def test_stun_needs_cpu(self):
        parser = IngressParser()
        stun = make_binding_request(bytes(12), "alice")
        result = parser.parse(Datagram(src=ALICE, dst=SFU, payload=stun))
        assert result.packet_class == PacketClass.STUN and result.needs_cpu

    def test_feedback_vs_sender_rtcp(self):
        parser = IngressParser()
        feedback = Datagram(src=ALICE, dst=SFU, payload=(Remb(1, 1e6, (2,)),))
        assert parser.parse(feedback).packet_class == PacketClass.RTCP_FEEDBACK
        sender_info = Datagram(src=ALICE, dst=SFU, payload=(SenderReport(1), SourceDescription()))
        assert parser.parse(sender_info).packet_class == PacketClass.RTCP_SENDER


def build_pipeline_with_meeting(mode=ForwardingMode.REPLICATE):
    """A pipeline with one 3-party meeting configured by hand."""
    pipeline = ScallopPipeline(SFU)
    mgid = pipeline.pre.create_tree()
    participants = {ALICE: 1, BOB: 2, CAROL: 3}
    for address, rid in participants.items():
        pipeline.pre.add_node(mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True)
        pipeline.install_replica_target(mgid, rid, ReplicaTarget(address=address, participant_id=str(rid)))
    entry = StreamForwardingEntry(
        mode=mode,
        meeting_id="m",
        sender=ALICE,
        mgid=mgid,
        rid=1,
        l2_xid=1,
        unicast_receiver=BOB,
    )
    pipeline.install_stream((ALICE, ALICE_VIDEO_SSRC), entry)
    pipeline.install_stream((ALICE, ALICE_AUDIO_SSRC), entry)
    return pipeline, mgid


class TestPipelineMediaPath:
    def test_video_replicated_to_other_participants(self):
        pipeline, _ = build_pipeline_with_meeting()
        packet = video_packets(3)[-1]
        result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=packet))
        destinations = sorted(str(d.dst) for d in result.outputs)
        assert destinations == sorted([str(BOB), str(CAROL)])
        # egress rewrote the source address to the SFU
        assert all(d.src == SFU for d in result.outputs)
        # media payload is an exact copy (Zoom-style forwarding)
        assert all(d.payload.ssrc == ALICE_VIDEO_SSRC for d in result.outputs)

    def test_unknown_stream_dropped(self):
        pipeline, _ = build_pipeline_with_meeting()
        packet = video_packets(1, ssrc=9999)[0]
        result = pipeline.process(Datagram(src=BOB, dst=SFU, payload=packet))
        assert result.outputs == []
        assert pipeline.counters.table_misses >= 1

    def test_keyframe_copied_to_cpu_and_forwarded(self):
        pipeline, _ = build_pipeline_with_meeting()
        key_packet = video_packets(1)[0]
        result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=key_packet))
        assert len(result.outputs) == 2
        assert len(result.cpu_copies) == 1

    def test_unicast_mode_skips_pre(self):
        pipeline, _ = build_pipeline_with_meeting(mode=ForwardingMode.UNICAST)
        packet = video_packets(3)[-1]
        replications_before = pipeline.pre.replications_performed
        result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=packet))
        assert [d.dst for d in result.outputs] == [BOB]
        assert pipeline.pre.replications_performed == replications_before

    def test_stun_goes_to_cpu_only(self):
        pipeline, _ = build_pipeline_with_meeting()
        stun = make_binding_request(bytes(12), "alice")
        result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=stun))
        assert result.outputs == [] and len(result.cpu_copies) == 1

    def test_sender_report_replicated_in_data_plane(self):
        pipeline, _ = build_pipeline_with_meeting()
        sr = Datagram(src=ALICE, dst=SFU, payload=(SenderReport(sender_ssrc=ALICE_VIDEO_SSRC),))
        result = pipeline.process(sr)
        assert len(result.outputs) == 2
        assert result.cpu_copies == []

    def test_counters_accumulate(self):
        pipeline, _ = build_pipeline_with_meeting()
        for packet in video_packets(5):
            pipeline.process(Datagram(src=ALICE, dst=SFU, payload=packet))
        assert pipeline.counters.data_plane_packets > 0
        assert pipeline.counters.replicas_out > 0


class TestPipelineAdaptation:
    def _install_adaptation(self, pipeline, allowed):
        rewriter = SequenceRewriterLowMemory(SkipCadence(1, 2))
        pipeline.install_adaptation(ALICE_VIDEO_SSRC, BOB, frozenset(allowed), rewriter)
        return rewriter

    def test_disallowed_templates_dropped_for_receiver(self):
        pipeline, _ = build_pipeline_with_meeting()
        self._install_adaptation(pipeline, {0, 1, 2})  # DT1: drop templates 3, 4
        dropped_to_bob = 0
        forwarded_to_bob = 0
        for packet in video_packets(frames=16):
            result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=packet))
            to_bob = [d for d in result.outputs if d.dst == BOB]
            descriptor = extract_dependency_descriptor(packet.extension)
            if descriptor.template_id in (3, 4):
                dropped_to_bob += 1 - len(to_bob)
            else:
                forwarded_to_bob += len(to_bob)
            # Carol (no adaptation entry) always receives a copy
            assert any(d.dst == CAROL for d in result.outputs)
        assert dropped_to_bob > 0
        assert forwarded_to_bob > 0
        assert pipeline.counters.adaptation_drops == dropped_to_bob

    def test_forwarded_sequence_numbers_are_continuous(self):
        pipeline, _ = build_pipeline_with_meeting()
        self._install_adaptation(pipeline, {0, 1, 2})
        received = []
        for packet in video_packets(frames=32):
            result = pipeline.process(Datagram(src=ALICE, dst=SFU, payload=packet))
            received.extend(d.payload.sequence_number for d in result.outputs if d.dst == BOB)
        gaps = [b - a for a, b in zip(received, received[1:])]
        assert all(gap == 1 for gap in gaps), f"gaps in rewritten space: {gaps}"

    def test_update_templates_requires_existing_entry(self):
        pipeline, _ = build_pipeline_with_meeting()
        with pytest.raises(KeyError):
            pipeline.update_adaptation_templates(ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}))

    def test_remove_adaptation_frees_index(self):
        pipeline, _ = build_pipeline_with_meeting()
        self._install_adaptation(pipeline, {0, 1})
        in_use_before = pipeline.stream_indices.in_use
        pipeline.remove_adaptation(ALICE_VIDEO_SSRC, BOB)
        assert pipeline.stream_indices.in_use == in_use_before - 1


class TestStreamStateAccounting:
    """Stream-tracker occupancy must reflect the rewriter's real register
    footprint (Table 3): 3 cells for S-LM, 6 for S-LR, released on removal."""

    def test_install_charges_real_state_cells(self):
        pipeline, _ = build_pipeline_with_meeting()
        assert pipeline.accountant.stream_tracker_cells_used == 0
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        assert pipeline.accountant.stream_tracker_cells_used == 3
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, CAROL, frozenset({0, 1}), SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        )
        assert pipeline.accountant.stream_tracker_cells_used == 3 + 6

    def test_remove_releases_state_cells(self):
        pipeline, _ = build_pipeline_with_meeting()
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}), SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        )
        pipeline.remove_adaptation(ALICE_VIDEO_SSRC, BOB)
        assert pipeline.accountant.stream_tracker_cells_used == 0

    def test_reinstall_swaps_charge_without_leaking(self):
        pipeline, _ = build_pipeline_with_meeting()
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0}), SequenceRewriterLowRetransmission(SkipCadence(3, 4))
        )
        assert pipeline.accountant.stream_tracker_cells_used == 6

    def test_same_size_swap_succeeds_at_full_occupancy(self):
        from repro.dataplane.resources import TofinoCapacities

        # at exactly S-LR capacity a 6-for-6 rewriter swap must not need
        # old+new cells transiently
        pipeline = ScallopPipeline(SFU, capacities=TofinoCapacities(stream_tracker_cells=6))
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}), SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        )
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0}), SequenceRewriterLowRetransmission(SkipCadence(3, 4))
        )
        assert pipeline.accountant.stream_tracker_cells_used == 6
        # shrinking swap frees the difference
        pipeline.install_adaptation(
            ALICE_VIDEO_SSRC, BOB, frozenset({0}), SequenceRewriterLowMemory(SkipCadence(1, 2))
        )
        assert pipeline.accountant.stream_tracker_cells_used == 3

    def test_failed_install_does_not_leak_charge(self):
        from repro.dataplane.tables import IndexAllocator, TableFull

        # exhaust the index pool so allocation fails *after* the accountant
        # charge: repeated failures must not accumulate phantom occupancy
        pipeline, _ = build_pipeline_with_meeting()
        pipeline.stream_indices = IndexAllocator(0)
        for _ in range(5):
            with pytest.raises(TableFull):
                pipeline.install_adaptation(
                    ALICE_VIDEO_SSRC, CAROL, frozenset({0}), SequenceRewriterLowMemory(SkipCadence(1, 2))
                )
        assert pipeline.accountant.stream_tracker_cells_used == 0
        assert pipeline.stream_indices.lookup((ALICE_VIDEO_SSRC, CAROL)) is None

    def test_install_remove_churn_is_stable(self):
        pipeline, _ = build_pipeline_with_meeting()
        for _ in range(100):
            pipeline.install_adaptation(
                ALICE_VIDEO_SSRC, BOB, frozenset({0, 1}), SequenceRewriterLowRetransmission(SkipCadence(1, 2))
            )
            pipeline.remove_adaptation(ALICE_VIDEO_SSRC, BOB)
        assert pipeline.accountant.stream_tracker_cells_used == 0
        assert pipeline.stream_indices.in_use == 0


class TestPipelineFeedbackPath:
    def test_remb_forwarded_only_when_selected(self):
        pipeline, _ = build_pipeline_with_meeting()
        remb = Datagram(src=BOB, dst=SFU, payload=(Remb(sender_ssrc=2002, bitrate_bps=1e6, media_ssrcs=(ALICE_VIDEO_SSRC,)),))
        # without any rule: copy to CPU only
        result = pipeline.process(remb)
        assert result.outputs == [] and len(result.cpu_copies) == 1
        # with a rule but forward_remb False: still CPU only
        pipeline.install_feedback_rule(BOB, ALICE_VIDEO_SSRC, FeedbackRule(sender=ALICE, forward_remb=False))
        assert pipeline.process(remb).outputs == []
        # once the filter function selects Bob's downlink, REMB reaches Alice
        pipeline.install_feedback_rule(BOB, ALICE_VIDEO_SSRC, FeedbackRule(sender=ALICE, forward_remb=True))
        outputs = pipeline.process(remb).outputs
        assert [d.dst for d in outputs] == [ALICE]

    def test_nack_and_pli_forwarded_to_sender(self):
        pipeline, _ = build_pipeline_with_meeting()
        pipeline.install_feedback_rule(BOB, ALICE_VIDEO_SSRC, FeedbackRule(sender=ALICE, forward_remb=False))
        nack = Datagram(src=BOB, dst=SFU, payload=(Nack(2002, ALICE_VIDEO_SSRC, (5,)),))
        pli = Datagram(src=BOB, dst=SFU, payload=(PictureLossIndication(2002, ALICE_VIDEO_SSRC),))
        assert [d.dst for d in pipeline.process(nack).outputs] == [ALICE]
        assert [d.dst for d in pipeline.process(pli).outputs] == [ALICE]

    def test_receiver_report_treated_like_remb(self):
        pipeline, _ = build_pipeline_with_meeting()
        pipeline.install_feedback_rule(BOB, ALICE_VIDEO_SSRC, FeedbackRule(sender=ALICE, forward_remb=True))
        rr = Datagram(
            src=BOB,
            dst=SFU,
            payload=(ReceiverReport(sender_ssrc=2002, report_blocks=(ReportBlock(ssrc=ALICE_VIDEO_SSRC),)),),
        )
        assert [d.dst for d in pipeline.process(rr).outputs] == [ALICE]
