"""The metrics registry: histograms, commutative folds, and the guarantee
that histogram percentiles cannot drift from the exact-sample estimator in
``repro.analysis.metrics``."""

import random

import pytest

from repro.analysis.metrics import LatencySummary, percentile
from repro.dataplane.loadstats import FlowLoadTracker
from repro.dataplane.rebalance import RebalancerConfig, ShardRebalancer
from repro.netsim.datagram import Address
from repro.obs.registry import (
    LATENCY_MS_BUCKETS,
    STAGE_NS_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram((10.0, 100.0))
        for value in (1.0, 10.0, 11.0, 100.0, 1e6):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(1e6 + 122.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5.0, 5.0))

    def test_merge_is_commutative(self):
        a, b = Histogram(STAGE_NS_BUCKETS), Histogram(STAGE_NS_BUCKETS)
        rng = random.Random(3)
        for _ in range(200):
            a.observe(rng.uniform(0.0, 30000.0))
            b.observe(rng.uniform(0.0, 30000.0))
        ab, ba = Histogram(STAGE_NS_BUCKETS), Histogram(STAGE_NS_BUCKETS)
        ab.merge(a), ab.merge(b)
        ba.merge(b), ba.merge(a)
        assert ab.counts == ba.counts
        assert ab.count == ba.count == 400
        assert ab.sum == pytest.approx(ba.sum)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(STAGE_NS_BUCKETS).merge(Histogram(LATENCY_MS_BUCKETS))

    def test_bucket_percentile_brackets_the_mass(self):
        hist = Histogram(LATENCY_MS_BUCKETS)
        for _ in range(100):
            hist.observe(7.0)  # all mass in the (5, 10] bucket
        assert 5.0 <= hist.percentile(50.0) <= 10.0
        assert hist.percentile(99.0) <= 10.0
        assert Histogram(LATENCY_MS_BUCKETS).percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(150.0)


class TestSamplePercentileExactness:
    """``Histogram.from_samples`` + ``sample_percentile`` must be bit-identical
    to ``analysis.metrics.percentile`` — the invariant that let the latency
    summary be re-expressed through histogram bucketing."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_matches_exact_estimator_on_random_samples(self, seed):
        rng = random.Random(seed)
        samples = [rng.uniform(0.1, 500.0) for _ in range(257)]
        # duplicates exercise the point-mass bucket counts
        samples += samples[:31]
        hist = Histogram.from_samples(samples)
        for q in (0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0):
            assert hist.sample_percentile(q) == percentile(samples, q)

    def test_single_sample_and_empty(self):
        assert Histogram.from_samples([7.0]).sample_percentile(95.0) == 7.0
        with pytest.raises(ValueError):
            Histogram.from_samples([])
        hist = Histogram((1.0,))
        with pytest.raises(ValueError):
            hist.sample_percentile(50.0)

    def test_overflow_mass_rejected(self):
        hist = Histogram((1.0,))
        hist.observe(2.0)  # overflow bucket: not point-mass
        with pytest.raises(ValueError):
            hist.sample_percentile(50.0)

    def test_percentile_edge_contract(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50.5
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 100.0) == 100
        assert percentile([7.0], 95) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([], 150)  # q validated before emptiness
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_latency_summary_through_histogram(self):
        rng = random.Random(11)
        samples = [rng.expovariate(1 / 40.0) for _ in range(500)]
        summary = LatencySummary.from_samples(samples)
        ordered = sorted(samples)
        assert summary.count == 500
        assert summary.minimum == ordered[0]
        assert summary.maximum == ordered[-1]
        assert summary.median == percentile(samples, 50.0)
        assert summary.p95 == percentile(samples, 95.0)
        assert summary.p99 == percentile(samples, 99.0)
        assert summary.mean == pytest.approx(sum(samples) / 500, rel=1e-12)
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("pkts"), registry.inc("pkts", 4)
        registry.set_gauge("occ", 0.5)
        hist = registry.histogram("lat", LATENCY_MS_BUCKETS)
        assert registry.histogram("lat", LATENCY_MS_BUCKETS) is hist
        with pytest.raises(ValueError):
            registry.histogram("lat", STAGE_NS_BUCKETS)
        hist.observe(3.0)
        series = registry.snapshot_series(prefix="x.")
        assert series["x.pkts"] == {"type": "counter", "value": 5}
        assert series["x.occ"] == {"type": "gauge", "value": 0.5}
        assert series["x.lat"]["count"] == 1

    def test_merge_is_commutative(self):
        def build(seed):
            registry = MetricsRegistry()
            rng = random.Random(seed)
            for _ in range(50):
                registry.inc(f"c{rng.randrange(4)}", rng.randrange(10))
                registry.histogram("h", STAGE_NS_BUCKETS).observe(rng.uniform(0, 3e4))
            return registry

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(build(1)), ab.merge(build(2))
        ba.merge(build(2)), ba.merge(build(1))
        assert ab.counters == ba.counters
        assert ab.histograms["h"].counts == ba.histograms["h"].counts

    def test_to_delta_drains_and_fold_restores(self):
        source = MetricsRegistry()
        source.inc("pkts", 9)
        source.set_gauge("occ", 0.25)
        hist = source.histogram("lat", LATENCY_MS_BUCKETS)
        hist.observe(3.0)
        delta = source.to_delta()
        # the source is reset for the next window, but hot-path call sites
        # keep their direct histogram reference — it must stay registered
        assert source.counters == {} and source.gauges == {}
        assert source.histograms["lat"] is hist and hist.count == 0
        sink = MetricsRegistry()
        sink.fold_delta(delta)
        assert sink.counters == {"pkts": 9}
        assert sink.gauges == {"occ": 0.25}
        assert sink.histograms["lat"].count == 1
        # delta is plain builtins (survives a process boundary untouched)
        import json

        json.dumps(delta)


class TestRebalancerDecisionTelemetry:
    @staticmethod
    def tracker_with(loads):
        n_shards = max(shard for shard, _ in loads) + 1
        tracker = FlowLoadTracker(n_shards=n_shards, alpha=1.0)
        counts, shards = {}, {}
        for index, (shard, rate) in enumerate(loads):
            key = (Address(f"10.1.{shard}.{index + 2}", 6000 + index), index)
            counts[key] = rate
            shards[key] = shard
        tracker.observe_batch(counts, shards)
        return tracker

    def test_counters_and_skew_gauges(self):
        config = RebalancerConfig(trigger_ratio=1.25, target_ratio=1.1)
        planner = ShardRebalancer(2, config)
        balanced = self.tracker_with([(0, 11), (1, 10)])
        assert not planner.plan(balanced)
        assert planner.plans_with_migrations == 0
        assert planner.last_observed_skew == planner.last_projected_skew
        skewed = self.tracker_with([(0, 30), (0, 10), (1, 10)])
        plan = planner.plan(skewed)
        assert plan.migrations
        assert planner.plans_with_migrations == 1
        assert planner.last_observed_skew == plan.observed_skew
        assert planner.last_projected_skew == plan.projected_skew < plan.observed_skew
        assert planner.decision_log == [
            (1, 0, pytest.approx(22 / 21), pytest.approx(22 / 21)),
            (2, len(plan.migrations), plan.observed_skew, plan.projected_skew),
        ]

    def test_decision_log_is_bounded(self):
        planner = ShardRebalancer(2)
        tracker = self.tracker_with([(0, 11), (1, 10)])
        for _ in range(ShardRebalancer.DECISION_LOG_LIMIT + 40):
            planner.plan(tracker)
        assert len(planner.decision_log) == ShardRebalancer.DECISION_LOG_LIMIT
        # newest entries survive; the front rolled off
        assert planner.decision_log[-1][0] == planner.epochs_planned
