"""Equivalence and round-trip suite for the zero-pickle shard transport.

Covers the three packed codecs in :mod:`repro.dataplane.shardcodec` (ingress
batches, result descriptions, rewriter register images), the rewriter state
codec in :mod:`repro.core.seqrewrite`, and the end-to-end contract: the
sharded engine fed packed wire-native ingress through either executor must be
byte-identical to the single-datapath reference engine fed object ingress —
for k in {1, 4} on both backends.  Also pins the transport's raison d'être:
per-batch serialization bytes shrink at least 5x against pickled object
graphs on media traffic.
"""

import dataclasses
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    pack_rewriter_state,
    unpack_rewriter_state,
)
from repro.dataplane.pipeline import ScallopPipeline
from repro.dataplane.shardcodec import (
    decode_ingress_batch,
    decode_result_batch,
    decode_tracker_updates,
    encode_ingress_batch,
    encode_result_batch,
    encode_tracker_updates,
)
from repro.dataplane.sharding import ShardedScallopPipeline, ShardTransportStats
from repro.netsim.datagram import Address, Datagram, PayloadKind
from repro.rtp.rtcp import Remb, SenderReport
from repro.rtp.wire import PacketView
from repro.stun.message import make_binding_request
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

from test_sharded_pipeline import MeetingScenario, apply_op

SFU = Address("10.0.0.1", 5000)


# --------------------------------------------------------------------------- ingress codec


def _mixed_batch():
    sender = Address("10.5.0.2", 6000)
    receiver = Address("10.5.0.3", 6001)
    encoder = SvcEncoder(seed=9)
    packetizer = RtpPacketizer(ssrc=321, seed=9)
    packets = packetizer.packetize(encoder.next_frame(0.0))
    batch = [
        Datagram(src=sender, dst=SFU, payload=packets[0], meta={"tx_time": 1.5}),
        Datagram(src=sender, dst=SFU, payload=PacketView.from_packet(packets[1])),
        Datagram(src=receiver, dst=SFU, payload=(SenderReport(sender_ssrc=321),), arrived_at=2.5),
        Datagram(
            src=receiver,
            dst=SFU,
            payload=(Remb(777, 1e6, (321,)),),
            arrived_at=3.25,
        ),
        Datagram(src=sender, dst=SFU, payload=make_binding_request(bytes(12), "user")),
        Datagram(src=receiver, dst=SFU, payload=b"\x99" * 17),  # junk, kind OTHER
    ]
    return batch


class TestIngressCodec:
    def test_round_trip_preserves_what_the_datapath_reads(self):
        batch = _mixed_batch()
        decoded = decode_ingress_batch(encode_ingress_batch(batch), SFU)
        assert len(decoded) == len(batch)
        for original, twin in zip(batch, decoded):
            assert twin.src == original.src
            assert twin.dst == SFU
            assert twin.size == original.size
            assert twin.kind == original.kind
        # RTP records become header-only views with identical header fields
        for index in (0, 1):
            original, twin = batch[index], decoded[index]
            view = twin.payload
            assert isinstance(view, PacketView)
            source = original.payload
            assert view.ssrc == source.ssrc
            assert view.sequence_number == source.sequence_number
            assert view.extension == source.extension
        # control traffic round-trips through its codecs with timing intact
        assert decoded[2].payload == batch[2].payload
        assert decoded[2].arrived_at == batch[2].arrived_at
        assert decoded[3].arrived_at == batch[3].arrived_at
        assert decoded[4].payload.transaction_id == batch[4].payload.transaction_id
        assert decoded[5].payload == batch[5].payload

    def test_stun_ships_wire_format_not_pickle(self):
        # STUN was the last ingress record type riding per-record pickle;
        # it now crosses as its real RFC 5389 wire format
        sender = Address("10.5.0.2", 6000)
        request = make_binding_request(b"\x07" * 12, "alice", priority=1234)
        batch = [Datagram(src=sender, dst=SFU, payload=request, arrived_at=1.75)]
        blob = encode_ingress_batch(batch)
        assert b"repro.stun" not in blob
        assert b"StunMessage" not in blob
        assert request.serialize() in blob
        twin = decode_ingress_batch(blob, SFU)[0]
        assert twin.kind == PayloadKind.STUN
        assert twin.size == batch[0].size
        assert twin.arrived_at == 1.75
        assert twin.payload.transaction_id == request.transaction_id
        assert twin.payload.is_request
        assert twin.payload.attributes == request.attributes

    def test_mixed_batch_has_no_pickled_ingress_records(self):
        # every regular payload type (RTP object/wire, RTCP, STUN, raw
        # bytes) has a wire-format record; pickle survives for exotica only
        batch = [d for d in _mixed_batch()]
        blob = encode_ingress_batch(batch)
        for marker in (b"repro.rtp", b"repro.stun", b"repro.netsim"):
            assert marker not in blob

    def test_payload_bytes_stay_home(self):
        # an RTP record costs its header plus a fixed few bytes — the media
        # payload must not be in the blob
        sender = Address("10.5.0.2", 6000)
        packet = RtpPacketizer(ssrc=1, seed=1).packetize(SvcEncoder(seed=1).next_frame(0.0))[0]
        blob = encode_ingress_batch([Datagram(src=sender, dst=SFU, payload=packet)])
        assert len(blob) < packet.header_length + 64
        assert packet.payload not in blob


# --------------------------------------------------------------------------- rewriter codec

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),    # sequence advance
        st.integers(min_value=0, max_value=2),     # frame advance
        st.booleans(),                             # forward?
    ),
    min_size=0,
    max_size=60,
)


class OddRewriter:
    """Protocol-conformant but unknown to the packed codec (module-level so
    the pickle fallback can serialize it)."""

    state_cells = 1

    def on_packet(self, seq, frame, forward):
        return seq


def _drive(rewriter, steps, seq0=65_500, frame0=65_530):
    """Feed a synthetic event stream (wrap-crossing seeds) and collect outputs."""
    outputs = []
    seq, frame = seq0, frame0
    for seq_step, frame_step, forward in steps:
        seq = (seq + seq_step) % 65536
        frame = (frame + frame_step) % 65536
        outputs.append(rewriter.on_packet(seq, frame, forward))
    return outputs


class TestRewriterStateCodec:
    @pytest.mark.parametrize("cls", [SequenceRewriterLowMemory, SequenceRewriterLowRetransmission])
    @given(before=events, after=events)
    @settings(max_examples=60, deadline=None)
    def test_clone_continues_identically(self, cls, before, after):
        original = cls(SkipCadence(1, 2))
        _drive(original, before)
        clone = unpack_rewriter_state(pack_rewriter_state(original))
        assert type(clone) is type(original)
        assert clone.cadence == original.cadence
        assert _drive(clone, after) == _drive(original, after)
        assert clone.packets_seen == original.packets_seen
        assert clone.packets_forwarded == original.packets_forwarded
        assert clone.packets_dropped_for_safety == original.packets_dropped_for_safety

    def test_packed_form_is_compact(self):
        rewriter = SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        rng = random.Random(5)
        _drive(rewriter, [(rng.randint(0, 3), rng.randint(0, 1), rng.random() < 0.6) for _ in range(500)])
        packed = pack_rewriter_state(rewriter)
        pickled = pickle.dumps(rewriter, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(packed) < len(pickled)

    def test_unknown_rewriter_class_rejected(self):
        class Custom:
            pass

        with pytest.raises(TypeError):
            pack_rewriter_state(Custom())

    def test_tracker_update_blob(self):
        lm = SequenceRewriterLowMemory(SkipCadence(0, 1))
        _drive(lm, [(1, 0, True)] * 5)
        blob = encode_tracker_updates({3: lm, 9: None, 11: OddRewriter()})
        updates = dict(decode_tracker_updates(blob))
        assert set(updates) == {3, 9, 11}
        assert updates[9] is None
        assert type(updates[3]) is SequenceRewriterLowMemory
        assert updates[3].packets_seen == 5
        assert type(updates[11]).__name__ == "OddRewriter"


# --------------------------------------------------------------------------- engine equivalence


def _wire_twin_chunk(chunk):
    """The same traffic with every RTP payload packed wire-natively."""
    from repro.rtp.packet import RtpPacket

    out = []
    for datagram in chunk:
        payload = datagram.payload
        if isinstance(payload, RtpPacket):
            out.append(dataclasses.replace(datagram, payload=PacketView.from_packet(payload)))
        else:
            out.append(datagram)
    return out


def assert_packed_results_match(reference_results, packed_results):
    assert len(reference_results) == len(packed_results)
    for expected, actual in zip(reference_results, packed_results):
        assert actual.parse == expected.parse
        assert actual.dropped_replicas == expected.dropped_replicas
        assert len(actual.outputs) == len(expected.outputs)
        for out_expected, out_actual in zip(expected.outputs, actual.outputs):
            assert out_actual.dst == out_expected.dst
            assert out_actual.size == out_expected.size
            assert out_actual.arrived_at == out_expected.arrived_at
            assert out_actual.to_bytes() == out_expected.to_bytes()
            assert dict(out_actual.meta) == dict(out_expected.meta)
        assert [c.to_bytes() for c in actual.cpu_copies] == [
            c.to_bytes() for c in expected.cpu_copies
        ]


class TestPackedBatchEquivalence:
    """Wire-native packed ingress through the sharded engine must match the
    object-model reference engine byte for byte — k in {1, 4}, both
    executors, across control-plane churn."""

    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_packed_vs_object_through_sharded_engine(self, n_shards, executor):
        seed = 23
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(
            ShardedScallopPipeline(SFU, n_shards=n_shards, executor=executor)
        )
        try:
            for phase in range(2):
                for op in scenario_a.churn_ops(seed * 7 + phase):
                    apply_op(reference, op)
                    apply_op(sharded, op)
                chunk = scenario_a.traffic_chunk(seed * 13 + phase)
                wire_chunk = _wire_twin_chunk(scenario_b.traffic_chunk(seed * 13 + phase))
                reference_results = [reference.process(d) for d in chunk]
                packed_results = sharded.process_batch(wire_chunk)
                assert_packed_results_match(reference_results, packed_results)
            assert dataclasses.asdict(reference.counters) == dataclasses.asdict(sharded.counters)
            assert reference.counters.adaptation_drops > 0
            if executor == "process":
                transport = sharded.transport_stats()
                assert transport is not None and transport["batches"] >= 1
                assert transport["batch_bytes_out"] > 0
                # the zero-pickle invariant, measured at runtime: canned
                # media/control traffic crosses the transport entirely on
                # packed codecs, never the whitelisted pickle fallback
                assert transport["pickle_fallback_records"] == 0
        finally:
            sharded.close()

    def test_process_executor_object_ingress_still_identical(self):
        # the packed transport must not require wire-native senders: plain
        # RtpPacket ingress crosses it too (headers re-packed on the fly)
        seed = 29
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=4, executor="process"))
        try:
            for op in scenario_a.churn_ops(seed):
                apply_op(reference, op)
                apply_op(sharded, op)
            chunk = scenario_a.traffic_chunk(seed)
            reference_results = [reference.process(d) for d in chunk]
            packed_results = sharded.process_batch(scenario_b.traffic_chunk(seed))
            # object ingress in, object outputs back: full Datagram equality
            for expected, actual in zip(reference_results, packed_results):
                assert actual.parse == expected.parse
                assert actual.outputs == expected.outputs
                assert [dict(o.meta) for o in actual.outputs] == [
                    dict(o.meta) for o in expected.outputs
                ]
        finally:
            sharded.close()


class TestPickleFallbackAccounting:
    """``pickle_fallback_records`` is the runtime cross-check of archlint's
    zero-pickle rule: zero on canned traffic, and honestly counted when an
    exotic payload or unknown rewriter really does take the fallback."""

    def test_canned_scenario_stays_pickle_free(self):
        seed = 41
        scenario = MeetingScenario(seed)
        sharded = scenario.configure(ShardedScallopPipeline(SFU, n_shards=4, executor="process"))
        try:
            for op in scenario.churn_ops(seed):
                apply_op(sharded, op)
            for phase in range(2):
                sharded.process_batch(scenario.traffic_chunk(seed + phase))
            transport = sharded.transport_stats()
            assert transport["batches"] >= 1
            assert transport["pickle_fallback_records"] == 0
        finally:
            sharded.close()

    def test_exotic_ingress_payload_is_counted(self):
        stats = ShardTransportStats()
        batch = _mixed_batch()
        blob = encode_ingress_batch(batch, stats=stats)
        assert stats.pickle_fallback_records == 0  # the mixed batch is all packed kinds
        # explicit size: the Datagram model itself can't size an exotic
        # payload (it would try to serialize it as an RTCP compound)
        exotic = Datagram(src=SFU, dst=SFU, payload=("not", "a", "wire", "type"), size=12)
        blob = encode_ingress_batch(batch + [exotic], stats=stats)
        assert stats.pickle_fallback_records == 1
        decoded = decode_ingress_batch(blob, SFU)
        assert decoded[-1].payload == ("not", "a", "wire", "type")

    def test_unknown_rewriter_class_is_counted_both_legs(self):
        encode_stats, decode_stats = ShardTransportStats(), ShardTransportStats()
        lm = SequenceRewriterLowMemory(SkipCadence(0, 1))
        blob = encode_tracker_updates({3: lm, 11: OddRewriter()}, stats=encode_stats)
        assert encode_stats.pickle_fallback_records == 1  # only the odd one
        updates = dict(decode_tracker_updates(blob, stats=decode_stats))
        assert decode_stats.pickle_fallback_records == 1
        assert isinstance(updates[11], OddRewriter)
        assert type(updates[3]) is SequenceRewriterLowMemory

    def test_stats_dict_exposes_the_counter(self):
        assert "pickle_fallback_records" in ShardTransportStats().as_dict()


class TestRtcpCompoundCodec:
    """The packed RTCP compound record (ROADMAP open item 3): control traffic
    crosses the shard transport as its real wire format, not pickle, and
    feedback fan-out results replay as packet indices against the
    coordinator's original compound objects."""

    @staticmethod
    def _feedback_pipeline():
        from repro.dataplane.pipeline import (
            FeedbackRule,
            ForwardingMode,
            ReplicaTarget,
            StreamForwardingEntry,
        )
        from repro.dataplane.pre import L2Port

        engine = ScallopPipeline(SFU)
        sender = Address("10.9.0.2", 6000)
        receivers = [Address("10.9.0.3", 6001), Address("10.9.0.4", 6002)]
        mgid = engine.pre.create_tree()
        for rid, address in enumerate([sender] + receivers, start=1):
            engine.pre.add_node(
                mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True
            )
            engine.install_replica_target(
                mgid, rid, ReplicaTarget(address=address, participant_id=f"p{rid}")
            )
        engine.install_stream(
            (sender, 99),
            StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE, meeting_id="m", sender=sender, mgid=mgid, rid=1, l2_xid=1
            ),
        )
        for receiver in receivers:
            engine.install_feedback_rule(
                receiver, 99, FeedbackRule(sender=sender, forward_remb=True, forward_nack_pli=True)
            )
        return engine, sender, receivers

    def test_rtcp_ingress_ships_wire_format_not_pickle(self):
        from repro.rtp.rtcp import Nack, PictureLossIndication, parse_compound

        receiver = Address("10.9.0.3", 6001)
        compound = (
            Remb(2000, 1_000_000.0, (99,)),
            Nack(2000, 99, (5, 6, 9)),
            PictureLossIndication(2000, 99),
        )
        batch = [Datagram(src=receiver, dst=SFU, payload=compound, arrived_at=1.25)]
        blob = encode_ingress_batch(batch)
        # a pickled tuple would embed the dataclass import paths; the wire
        # record must not
        assert b"repro.rtp.rtcp" not in blob
        assert b"Remb" not in blob
        decoded = decode_ingress_batch(blob, SFU)
        twin = decoded[0]
        assert twin.size == batch[0].size
        assert twin.arrived_at == batch[0].arrived_at
        assert [type(p) for p in twin.payload] == [type(p) for p in compound]
        # everything the datapath and agent read survives the wire round trip
        assert twin.payload[1].lost_sequence_numbers == (5, 6, 9)
        assert twin.payload[0].media_ssrcs == (99,)
        assert twin.payload[0].bitrate_bps == 1_000_000.0
        # and the record *is* the compound wire format
        assert parse_compound(batch[0].to_bytes()) == list(twin.payload)

    def test_feedback_fanout_packed_without_pickle_fallback(self):
        from repro.rtp.rtcp import Nack

        engine, sender, receivers = self._feedback_pipeline()
        compound = (
            Remb(2000, 1_000_000.0, (99,)),
            Nack(2000, 99, (7,)),
        )
        batch = [
            Datagram(src=receivers[0], dst=SFU, payload=compound, arrived_at=0.5),
            Datagram(src=receivers[1], dst=SFU, payload=(Nack(2001, 99, (8,)),)),
        ]
        results = engine.process_batch(batch)
        assert any(r.outputs for r in results), "feedback rules produced no fan-out"
        blob, fallback = encode_result_batch(results, batch)
        assert pickle.loads(fallback) == [], "feedback fell back to pickle"
        restored = decode_result_batch(blob, fallback, batch, SFU)
        assert_packed_results_match(results, restored)
        # replayed outputs alias the coordinator's original packet objects
        for original, twin in zip(results, restored):
            for out_original, out_twin in zip(original.outputs, twin.outputs):
                for packet_original, packet_twin in zip(out_original.payload, out_twin.payload):
                    assert packet_twin is packet_original
            if twin.cpu_copies:
                assert twin.cpu_copies[0] is batch[restored.index(twin)]

    def test_feedback_equivalent_to_pickle_path_through_process_executor(self):
        # end to end: a sharded process engine whose feedback crosses the
        # packed compound codec must match the reference engine that never
        # serializes anything (the pickle path's own reference)
        seed = 31
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=2, executor="process"))
        try:
            from repro.dataplane.pipeline import FeedbackRule

            for scenario, engine in ((scenario_a, reference), (scenario_b, sharded)):
                for meeting in scenario.meetings:
                    sender = meeting["addresses"][0]
                    for receiver in meeting["addresses"][1:]:
                        engine.install_feedback_rule(
                            receiver,
                            meeting["video_ssrc"],
                            FeedbackRule(sender=sender, forward_remb=True, forward_nack_pli=True),
                        )
            chunk = scenario_a.traffic_chunk(seed)
            reference_results = [reference.process(d) for d in chunk]
            sharded_results = sharded.process_batch(scenario_b.traffic_chunk(seed))
            assert_packed_results_match(reference_results, sharded_results)
            forwarded_feedback = sum(
                len(r.outputs)
                for r in reference_results
                if r.parse.packet_class.value == "rtcp_feedback"
            )
            assert forwarded_feedback > 0
        finally:
            sharded.close()


class TestTransportShrink:
    def test_media_batch_shrinks_at_least_5x_vs_pickle(self):
        sender = Address("10.7.0.2", 6000)
        encoder = SvcEncoder(target_bitrate_bps=2_200_000, seed=2)
        packetizer = RtpPacketizer(ssrc=555, seed=2)
        batch = []
        for index in range(12):
            for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                batch.append(Datagram(src=sender, dst=SFU, payload=packet))
        packed = encode_ingress_batch(batch)
        pickled = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(pickled) / len(packed) >= 5.0

    def test_result_direction_round_trip_and_shrink(self):
        engine = ScallopPipeline(SFU)
        from repro.dataplane.pipeline import ForwardingMode, ReplicaTarget, StreamForwardingEntry
        from repro.dataplane.pre import L2Port

        mgid = engine.pre.create_tree()
        addresses = [Address(f"10.8.0.{i + 2}", 6000 + i) for i in range(5)]
        for rid, address in enumerate(addresses, start=1):
            engine.pre.add_node(mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True)
            engine.install_replica_target(mgid, rid, ReplicaTarget(address=address, participant_id=f"p{rid}"))
        engine.install_stream(
            (addresses[0], 42),
            StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE, meeting_id="m", sender=addresses[0], mgid=mgid, rid=1, l2_xid=1
            ),
        )
        engine.install_adaptation(
            42, addresses[1], frozenset({0, 1}), SequenceRewriterLowRetransmission(SkipCadence(1, 2))
        )
        encoder = SvcEncoder(seed=4)
        packetizer = RtpPacketizer(ssrc=42, seed=4)
        batch = []
        for index in range(10):
            for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                batch.append(Datagram(src=addresses[0], dst=SFU, payload=packet))
        results = engine.process_batch(batch)
        blob, fallback = encode_result_batch(results, batch)
        restored = decode_result_batch(blob, fallback, batch, SFU)
        assert_packed_results_match(results, restored)
        pickled = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(pickled) / (len(blob) + len(fallback)) >= 5.0
