"""Suite for the declarative Scenario API (PR 5).

Four layers:

* **shim equivalence** — the deprecated flat builders
  (``build_scallop_testbed`` / ``build_software_testbed``) are thin shims
  constructing a ``Scenario`` internally; a shim-built testbed must be
  stat-identical to the directly-built scenario twin (same spec, same seed).
* **mid-run leave** — after a participant joins, triggers rate adaptation,
  and leaves, the control plane must return to the pre-join baseline:
  table entries, PRE trees/nodes, sequence-rewriter registers, stream
  indices, and accountant charges all reconcile to the surviving population.
* **schedule execution** — timed joins/leaves/link-profile phases fire at
  their times and are logged.
* **churn_storm end to end** — the canned churn scenario (joins + leaves +
  a link phase change on a sharded dataplane with rebalancing armed) runs to
  completion with per-meeting stats and a clean reconciliation.
"""

import dataclasses

import pytest

from repro.dataplane.sharding import ShardedScallopPipeline
from repro.experiments import (
    MeetingSetupConfig,
    build_scallop_testbed,
    build_software_testbed,
)
from repro.netsim.link import LinkProfile
from repro.scenario import (
    BackendSpec,
    MeetingSpec,
    Scenario,
    ScenarioRun,
    Schedule,
    TrafficSpec,
    build_scenario,
    churn_storm,
    degrading_uplink,
)
from repro.scenario.library import LOSSY_UPLINK

CONSTRAINED_DOWNLINK = LinkProfile(
    bandwidth_bps=1_000_000, propagation_delay_s=0.01, queue_limit_bytes=50_000
)


def _client_fingerprint(testbed):
    """Everything observable a client did/saw, in deterministic order."""
    rows = []
    for client in testbed.clients:
        streams = sorted(
            (ssrc, stream.packets_received, stream.frames_decoded)
            for ssrc, stream in client.video_receivers.items()
        )
        rows.append((client.config.participant_id, client.packets_sent, client.bytes_sent, streams))
    return rows


class TestShimEquivalence:
    """Same spec -> stat-identical testbed, shim or direct scenario."""

    def test_scallop_shim_equals_direct_scenario(self):
        config = MeetingSetupConfig(num_meetings=2, participants_per_meeting=3, seed=3)
        with pytest.deprecated_call():
            legacy = build_scallop_testbed(config)
        direct = build_scenario(config.to_scenario(BackendSpec(kind="scallop")))
        try:
            legacy.run_for(5.0)
            direct.run_for(5.0)
            assert dataclasses.asdict(legacy.sfu.stats) == dataclasses.asdict(direct.sfu.stats)
            assert _client_fingerprint(legacy) == _client_fingerprint(direct)
            assert legacy.sfu.pipeline.counters.data_plane_packets == (
                direct.sfu.pipeline.counters.data_plane_packets
            )
        finally:
            legacy.close()
            direct.close()

    def test_software_shim_equals_direct_scenario(self):
        config = MeetingSetupConfig(
            num_meetings=1, participants_per_meeting=3, seed=5, send_audio=False
        )
        with pytest.deprecated_call():
            legacy = build_software_testbed(config, cores=2)
        direct = build_scenario(config.to_scenario(BackendSpec(kind="software", cores=2)))
        with legacy, direct:
            legacy.run_for(4.0)
            direct.run_for(4.0)
            assert dataclasses.asdict(legacy.sfu.stats) == dataclasses.asdict(direct.sfu.stats)
            assert _client_fingerprint(legacy) == _client_fingerprint(direct)

    def test_shim_returns_scenario_run(self):
        with pytest.deprecated_call():
            testbed = build_scallop_testbed(MeetingSetupConfig(participants_per_meeting=2))
        with testbed:
            assert isinstance(testbed, ScenarioRun)
            assert testbed.scenario is not None
            assert testbed.scenario.meetings[0].participants == 2

    def test_cpu_punt_backend_alias(self):
        assert BackendSpec(kind="cpu-punt").kind == "software"
        with pytest.raises(ValueError):
            BackendSpec(kind="fpga")


def _control_snapshot(sfu):
    """Everything a leave must return to baseline (keys + counted charges)."""
    control = sfu.pipeline.control
    return {
        "trees": control.pre.num_trees,
        "l1_nodes": control.pre.total_l1_nodes(),
        "accountant_trees": control.accountant.trees_allocated,
        "accountant_l1_nodes": control.accountant.l1_nodes_allocated,
        "tracker_cells_charged": control.accountant.stream_tracker_cells_used,
        "stream_keys": sorted(key for key, _v in control.stream_table.entries()),
        "adaptation_keys": sorted(key for key, _v in control.adaptation_table.entries()),
        "feedback_keys": sorted(key for key, _v in control.feedback_table.entries()),
        "stream_indices_in_use": control.stream_indices.in_use,
        "used_tracker_registers": sorted(
            index for index, _v in control.stream_trackers.used_entries()
        ),
        "agent_participants": sorted(sfu.agent._participants),
    }


class TestMidRunLeave:
    def test_leave_returns_control_plane_to_prejoin_baseline(self):
        scenario = Scenario(
            name="leave-baseline",
            meetings=(MeetingSpec(participants=3, video_bitrate_bps=650_000.0),),
            default_meeting=MeetingSpec(video_bitrate_bps=650_000.0),
            backend=BackendSpec(
                adaptation_thresholds_bps=(650_000.0 * 0.8, 650_000.0 * 0.4)
            ),
            seed=9,
        )
        with build_scenario(scenario) as run:
            run.run_for(5.0)
            baseline = _control_snapshot(run.sfu)
            assert baseline["adaptation_keys"] == []  # no congestion yet

            # a fourth participant joins on a constrained downlink: the agent
            # installs adaptation entries (rewriter registers + accountant
            # charges) towards them
            joiner = run.add_participant(0)
            run.set_link(0, joiner.config.participant_id, downlink=CONSTRAINED_DOWNLINK)
            run.run_for(20.0)
            control = run.sfu.pipeline.control
            joiner_keys = [
                key for key, _v in control.adaptation_table.entries() if key[1] == joiner.address
            ]
            assert joiner_keys, "the constrained joiner never triggered adaptation"
            assert control.accountant.stream_tracker_cells_used > baseline["tracker_cells_charged"]
            assert run.sfu.pipeline.pre.total_l1_nodes() > baseline["l1_nodes"]

            # ... and leaves: every table entry, PRE node, register, stream
            # index, and accountant charge they consumed must be released
            run.leave(0, joiner.config.participant_id)
            run.run_for(2.0)
            after = _control_snapshot(run.sfu)
            assert after == baseline
            assert run.reconcile() == []

    def test_leave_stops_media_and_detaches_endpoint(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=3, video_bitrate_bps=650_000.0),), seed=4
        )
        with build_scenario(scenario) as run:
            run.run_for(3.0)
            leaver = run.clients[2]
            run.leave(0, 2)
            assert run.network.endpoint(leaver.address) is None
            assert leaver in run.departed and leaver not in run.clients
            packets_before = leaver.packets_sent
            run.run_for(2.0)
            # a detached client never sends again (pending NACK flushes and
            # periodic ticks become no-ops)
            assert leaver.packets_sent == packets_before
            assert run.reconcile() == []

    def test_leave_releases_placement_pins_and_tracker_rows(self):
        scenario = Scenario(
            name="leave-placement",
            meetings=(MeetingSpec(participants=3, video_bitrate_bps=650_000.0),),
            default_meeting=MeetingSpec(video_bitrate_bps=650_000.0),
            backend=BackendSpec(n_shards=4, rebalance=True),
            traffic=TrafficSpec(frame_bursts=True),  # telemetry observes batches
            seed=12,
        )
        with build_scenario(scenario) as run:
            run.run_for(2.0)
            joiner = run.add_participant(0)
            run.run_for(2.0)
            pipeline = run.sfu.pipeline
            # pin the joiner's video flow away from its hash-default shard,
            # the way the rebalancer would under sustained skew
            default = pipeline.shard_for_flow(joiner.address, joiner.video_ssrc)
            assert pipeline.migrate_flow(joiner.address, joiner.video_ssrc, (default + 1) % 4)
            assert pipeline.control.placement_of(joiner.address, joiner.video_ssrc) is not None
            assert any(key[0] == joiner.address for key in pipeline.load_tracker.flows)

            run.leave(0, joiner.config.participant_id)
            # the departed flow's pin is gone immediately (a later joiner
            # reusing the deterministic address inherits nothing); telemetry
            # rows were purged too (in-flight tail traffic may re-mint
            # decaying rows afterwards, which is bounded and harmless)
            assert pipeline.control.placement_of(joiner.address, joiner.video_ssrc) is None
            assert not any(key[0] == joiner.address for key in pipeline.load_tracker.flows)
            run.run_for(1.0)
            assert not any(
                key[0] == joiner.address
                for key, _shard in pipeline.control.placement_table.entries()
            )
            assert run.reconcile() == []

    def test_software_backend_leave_reconciles(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=3, video_bitrate_bps=650_000.0),),
            backend=BackendSpec(kind="software"),
            seed=6,
        )
        with build_scenario(scenario) as run:
            run.run_for(3.0)
            departed = run.leave(0, 1)
            assert departed is not None
            run.run_for(2.0)
            assert run.sfu.total_participants == 2
            assert run.reconcile() == []


class TestScheduleExecution:
    def test_events_fire_at_their_times_and_are_logged(self):
        scenario = Scenario(
            name="scripted",
            meetings=(MeetingSpec(participants=2, video_bitrate_bps=650_000.0),),
            default_meeting=MeetingSpec(video_bitrate_bps=650_000.0),
            schedule=(
                Schedule()
                .join(1.0, 0)
                .set_link(2.0, 0, 0, uplink=LOSSY_UPLINK)
                .leave(3.0, 0, 1)
            ),
            duration_s=4.0,
            seed=8,
        )
        with build_scenario(scenario) as run:
            run.run()
            kinds = [message.split()[0] for _at, message in run.event_log]
            assert kinds == ["join", "link", "leave"]
            times = [at for at, _m in run.event_log]
            assert times == pytest.approx([1.0, 2.0, 3.0])
            assert run.joins == 3 and run.leaves == 1
            assert len(run.clients) == 2
            # the link phase actually re-profiled the attached uplink
            survivor = run.find_client(0, 0)
            assert run.network.uplink(survivor.address).profile == LOSSY_UPLINK
            assert run.reconcile() == []

    def test_degrading_uplink_phases_apply_in_order(self):
        scenario = degrading_uplink(smoke=True)
        with build_scenario(scenario) as run:
            target = run.find_client(0, 0)
            run.run_for(scenario.duration_s * 0.4)
            assert run.network.uplink(target.address).profile == LOSSY_UPLINK
            run.run()  # continues to the horizon; recovery phase applied
            assert run.network.uplink(target.address).profile.loss_rate == 0.0

    def test_events_on_missing_participants_are_logged_as_drops(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=2, video_bitrate_bps=650_000.0),),
            schedule=(
                Schedule()
                .leave(1.0, 0, 7)                      # never existed
                .set_link(1.5, 0, 7, uplink=LOSSY_UPLINK)
            ),
            duration_s=2.0,
            seed=3,
        )
        with build_scenario(scenario) as run:
            run.run()
            drops = [message for _at, message in run.event_log if message.startswith("drop")]
            assert len(drops) == 2
            assert run.leaves == 0

    def test_find_client_is_read_only(self):
        scenario = Scenario(meetings=(), default_meeting=MeetingSpec(send_audio=False), seed=2)
        with build_scenario(scenario) as run:
            assert run.find_client("ghost", 0) is None
            # the failed lookup must not have claimed a meeting-order slot
            client = run.add_participant(0)
            assert client.config.meeting_id == "meeting-0"
            assert "ghost" not in run._meeting_order

    def test_out_of_order_integer_joins_do_not_alias(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=1, send_audio=False),),
            default_meeting=MeetingSpec(send_audio=False),
            seed=2,
        )
        with build_scenario(scenario) as run:
            late = run.add_participant(5)       # skips ahead of the spec
            then = run.add_participant(2)       # must NOT land in meeting-5
            assert late.config.meeting_id == "meeting-5"
            assert then.config.meeting_id == "meeting-2"
            # naming/addressing follow the stable integer reference
            assert late.config.participant_id == "m5-p0"
            assert then.config.participant_id == "m2-p0"
            assert run.find_client(5, 0) is late
            assert run.find_client(2, 0) is then

    def test_run_does_not_overshoot_the_horizon(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=2, send_video=False),),
            duration_s=3.0,
            seed=1,
        )
        with build_scenario(scenario) as run:
            run.run_for(2.0)
            run.run()  # to the horizon, not for another 3 s
            assert run.simulator.now == pytest.approx(3.0)
            run.run(1.5)  # explicit duration is relative
            assert run.simulator.now == pytest.approx(4.5)

    def test_uniform_respects_template_population(self):
        scenario = Scenario.uniform(num_meetings=2, meeting=MeetingSpec(participants=8))
        assert all(spec.participants == 8 for spec in scenario.meetings)
        sized = Scenario.uniform(num_meetings=2, participants_per_meeting=4)
        assert all(spec.participants == 4 for spec in sized.meetings)

    def test_events_beyond_horizon_warn_at_build(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=2, send_video=False),),
            schedule=Schedule().leave(5.0, 0, 0),
            duration_s=3.0,
        )
        with pytest.warns(UserWarning, match="past the scenario horizon"):
            run = build_scenario(scenario)
        run.close()

    def test_duplicate_meeting_ids_rejected(self):
        scenario = Scenario(
            meetings=(
                MeetingSpec(participants=2, meeting_id="foo"),
                MeetingSpec(participants=2, meeting_id="foo"),
            )
        )
        with pytest.raises(ValueError, match="duplicate meeting ids"):
            build_scenario(scenario)

    def test_dynamic_meetings_minted_from_default_spec(self):
        scenario = Scenario(
            meetings=(),
            default_meeting=MeetingSpec(video_bitrate_bps=500_000.0, send_audio=False),
            seed=2,
        )
        with build_scenario(scenario) as run:
            first = run.add_participant(0)
            second = run.add_participant(0)
            assert first.config.video_bitrate_bps == 500_000.0
            assert not first.config.send_audio
            assert {first.config.meeting_id, second.config.meeting_id} == {"meeting-0"}
            run.run_for(2.0)
            assert run.reconcile() == []


class TestContextManager:
    def test_close_runs_on_exception(self):
        scenario = Scenario(meetings=(MeetingSpec(participants=2),), seed=1)
        run = build_scenario(scenario)
        with pytest.raises(RuntimeError):
            with run:
                raise RuntimeError("mid-run failure")
        assert run.closed

    def test_close_reaches_sharded_backend(self):
        scenario = Scenario(
            meetings=(MeetingSpec(participants=2),),
            backend=BackendSpec(n_shards=2),
            seed=1,
        )
        with build_scenario(scenario) as run:
            assert isinstance(run.sfu.pipeline, ShardedScallopPipeline)
        assert run.closed


class TestChurnStormEndToEnd:
    """The acceptance scenario: joins + leaves + a link-profile phase change
    mid-simulation with rebalancing armed, ending with per-meeting stats and
    SFU state that reconciles to the surviving population."""

    @pytest.fixture(scope="class")
    def finished_run(self):
        scenario = churn_storm(smoke=True)
        with build_scenario(scenario) as run:
            run.run()
            yield run

    def test_churn_actually_happened(self, finished_run):
        run = finished_run
        assert run.joins > len(run.scenario.meetings) * 3  # scheduled joins fired
        assert run.leaves >= 3
        kinds = {message.split()[0] for _at, message in run.event_log}
        assert kinds == {"join", "leave", "link"}  # and nothing was dropped
        # the link phase change both degraded *and* recovered (its target
        # survives the leave waves)
        link_events = [m for _at, m in run.event_log if m.startswith("link")]
        assert len(link_events) == 2

    def test_rebalancing_was_armed_and_observed_traffic(self, finished_run):
        pipeline = finished_run.sfu.pipeline
        assert isinstance(pipeline, ShardedScallopPipeline)
        assert pipeline.load_tracker is not None
        assert pipeline.load_tracker.batches_observed > 0

    def test_survivors_still_receive_media(self, finished_run):
        stats = finished_run.meeting_stats()
        assert stats
        assert all(s.participants > 0 for s in stats.values())
        assert sum(s.video_packets_received for s in stats.values()) > 0

    def test_state_reconciles_to_surviving_population(self, finished_run):
        assert finished_run.reconcile() == []

    def test_summary_reports_the_run(self, finished_run):
        summary = finished_run.summary()
        assert summary["sfu"] == "scallop"
        assert summary["leaves"] == finished_run.leaves
        assert "migrations_applied" in summary


class TestScenarioCli:
    def test_cli_runs_and_reconciles(self, capsys):
        from repro.scenario.__main__ import main

        assert main(["steady", "--smoke", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "reconciliation" in out

    def test_cli_lists_library(self, capsys):
        from repro.scenario.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "steady",
            "churn_storm",
            "flash_crowd",
            "degrading_uplink",
            "zipf_hotset",
            "federated_pair",
        ):
            assert name in out
