"""Property tests for the columnar burst view (`repro.rtp.wirebatch`).

Three layers of guarantees:

1. **Bulk extraction is field-identical to per-packet accessors**: for any
   mixed burst (wire ``PacketView`` rows across random headers, CSRC lists,
   extensions, and padding; decoded ``RtpPacket`` rows; raw/control rows),
   every :class:`~repro.rtp.wirebatch.WireBatchView` column equals the value
   the per-packet accessor would have returned — the contract the module
   docstring promises.
2. **Bulk mutators match their per-packet counterparts**:
   ``set_sequence_numbers`` patches buffer and column together (and refuses
   non-wire rows); ``replay_payloads`` aliases unrewritten replicas and
   mints byte-identical copies to ``PacketView.with_sequence_number``.
3. **The memoized flow-key cache never changes a routing decision**: the
   partitioner's ``_crc_shard`` is asserted identical to the module-level
   :func:`~repro.dataplane.sharding.flow_shard`, and ``_shard_of_key``
   identical to ``shard_for_flow``, for pinned and unpinned flows, before
   and after live migrations (the assertion ``_crc_shard``'s docstring
   points at).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.sharding import ShardedScallopPipeline, flow_shard
from repro.netsim.datagram import Address, Datagram
from repro.rtp.extensions import ExtensionElement, encode_extensions
from repro.rtp.packet import SEQ_MOD, RtpHeaderExtension, RtpPacket
from repro.rtp.wire import PacketView
from repro.rtp.wirebatch import (
    RECORD_OBJECT,
    RECORD_OTHER,
    RECORD_WIRE,
    WireBatchView,
    replay_payloads,
)

SFU = Address("10.0.0.1", 5000)


# --------------------------------------------------------------------------- strategies

extension_elements = st.lists(
    st.builds(
        ExtensionElement,
        ext_id=st.integers(min_value=1, max_value=30),
        data=st.binary(min_size=1, max_size=24),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda e: e.ext_id,
)


@st.composite
def rtp_packets(draw):
    """Random RTP packets spanning CSRCs, extension profiles, and padding."""
    extension = None
    if draw(st.booleans()):
        extension = encode_extensions(draw(extension_elements))
    return RtpPacket(
        ssrc=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        sequence_number=draw(st.integers(min_value=0, max_value=SEQ_MOD - 1)),
        timestamp=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        payload_type=draw(st.integers(min_value=0, max_value=127)),
        marker=draw(st.booleans()),
        padding=draw(st.booleans()),
        csrcs=tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=0,
                    max_size=4,
                )
            )
        ),
        extension=extension,
        payload=draw(st.binary(min_size=0, max_size=64)),
    )


addresses = st.builds(
    Address,
    ip=st.sampled_from([f"10.1.0.{host}" for host in range(1, 7)]),
    port=st.sampled_from([4000, 4001, 4002]),
)

#: One burst row: an RTP packet plus how it rides the wire (``"wire"`` =
#: serialized ``PacketView``, ``"object"`` = decoded dataclass), or a raw
#: non-RTP payload (``"other"``).
burst_rows = st.lists(
    st.one_of(
        st.tuples(st.just("wire"), addresses, rtp_packets()),
        st.tuples(st.just("object"), addresses, rtp_packets()),
        st.tuples(
            st.just("other"), addresses, st.binary(min_size=1, max_size=40)
        ),
    ),
    min_size=1,
    max_size=12,
)


def build_burst(rows):
    datagrams = []
    for kind, src, body in rows:
        if kind == "wire":
            payload = PacketView(bytearray(body.serialize()))
        else:
            payload = body
        datagrams.append(Datagram(src=src, dst=SFU, payload=payload))
    return datagrams


# --------------------------------------------------------------------------- extraction


class TestColumnarExtraction:
    @given(rows=burst_rows)
    @settings(max_examples=60, deadline=None)
    def test_columns_match_per_packet_accessors(self, rows):
        datagrams = build_burst(rows)
        view = WireBatchView.from_datagrams(datagrams)
        assert len(view) == len(datagrams)
        assert view.datagrams is datagrams
        for index, datagram in enumerate(datagrams):
            assert view.sources[view.src_index[index]] == datagram.src
            assert view.wire_size[index] == datagram.size
            payload = datagram.payload
            if isinstance(payload, PacketView):
                assert view.kinds[index] == RECORD_WIRE
                assert view.ssrc[index] == payload.ssrc
                assert view.seq[index] == payload.sequence_number
                assert view.pt[index] == payload.payload_type
                assert view.marker[index] == (1 if payload.marker else 0)
            elif isinstance(payload, RtpPacket):
                assert view.kinds[index] == RECORD_OBJECT
                assert view.ssrc[index] == payload.ssrc
                assert view.seq[index] == payload.sequence_number
                assert view.pt[index] == payload.payload_type
                assert view.marker[index] == (1 if payload.marker else 0)
            else:
                assert view.kinds[index] == RECORD_OTHER
                assert view.ssrc[index] == -1
                assert view.seq[index] == -1
                assert view.pt[index] == -1
                assert view.marker[index] == 0

    @given(rows=burst_rows)
    @settings(max_examples=30, deadline=None)
    def test_sources_are_interned_per_burst(self, rows):
        datagrams = build_burst(rows)
        view = WireBatchView.from_datagrams(datagrams)
        # every distinct source appears exactly once, in first-seen order
        assert len(set(view.sources)) == len(view.sources)
        seen = []
        for datagram in datagrams:
            if datagram.src not in seen:
                seen.append(datagram.src)
        assert view.sources == seen

    def test_empty_burst(self):
        view = WireBatchView.from_datagrams([])
        assert len(view) == 0
        assert view.sources == []


# --------------------------------------------------------------------------- bulk mutators


class TestSetSequenceNumbers:
    @given(
        rows=burst_rows,
        seq_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_patches_buffer_and_column_together(self, rows, seq_seed):
        datagrams = build_burst(rows)
        view = WireBatchView.from_datagrams(datagrams)
        rng = random.Random(seq_seed)
        wire_rows = [i for i in range(len(view)) if view.kinds[i] == RECORD_WIRE]
        indices = [i for i in wire_rows if rng.random() < 0.5]
        seqs = [rng.randrange(0, 2 * SEQ_MOD) for _ in indices]
        untouched = {
            i: datagrams[i].payload.sequence_number
            for i in wire_rows
            if i not in set(indices)
        }
        view.set_sequence_numbers(indices, seqs)
        for index, seq in zip(indices, seqs):
            expected = seq % SEQ_MOD
            # the per-packet accessor re-reads the wire buffer: both the
            # buffer patch and the column update must have landed
            assert datagrams[index].payload.sequence_number == expected
            assert view.seq[index] == expected
        for index, seq in untouched.items():
            assert datagrams[index].payload.sequence_number == seq
            assert view.seq[index] == seq

    def test_rejects_object_and_other_rows(self):
        datagrams = build_burst(
            [
                (
                    "object",
                    Address("10.1.0.1", 4000),
                    RtpPacket(ssrc=7, payload_type=96, sequence_number=1, timestamp=0),
                ),
                ("other", Address("10.1.0.1", 4000), b"\x00\x01junk"),
            ]
        )
        view = WireBatchView.from_datagrams(datagrams)
        for index in range(2):
            try:
                view.set_sequence_numbers([index], [42])
            except TypeError:
                pass
            else:
                raise AssertionError(
                    f"row {index} (kind {view.kinds[index]}) accepted a bulk "
                    "seq patch; only wire rows may be patched"
                )


class TestReplayPayloads:
    @given(
        packet=rtp_packets(),
        seqs=st.lists(
            st.one_of(
                st.just(-1), st.integers(min_value=0, max_value=2 * SEQ_MOD)
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_with_sequence_number(self, packet, seqs):
        view = PacketView(bytearray(packet.serialize()))
        before = bytes(view.buf)
        out = replay_payloads(view, seqs)
        assert len(out) == len(seqs)
        for seq, replica in zip(seqs, out):
            if seq < 0:
                # unrewritten replicas alias the ingress view: same object,
                # preserving the payload sharing the in-process path produces
                assert replica is view
            else:
                assert replica is not view
                assert replica.buf is not view.buf
                reference = view.with_sequence_number(seq % SEQ_MOD)
                assert bytes(replica.buf) == bytes(reference.buf)
                assert replica.sequence_number == seq % SEQ_MOD
                assert replica.header_length == view.header_length
        # minting copies never mutates the ingress buffer
        assert bytes(view.buf) == before

    def test_copies_are_independent(self):
        packet = RtpPacket(
            ssrc=9, payload_type=96, sequence_number=100, timestamp=0, payload=b"frame"
        )
        view = PacketView(bytearray(packet.serialize()))
        first, second = replay_payloads(view, [200, 300])
        assert first.sequence_number == 200
        assert second.sequence_number == 300
        first.set_sequence_number(400)
        assert second.sequence_number == 300
        assert view.sequence_number == 100


# --------------------------------------------------------------------------- flow-key cache


class TestShardAssignmentIdentity:
    """The memoized CRC cache is routing-invisible (satellite of PR 8).

    ``_crc_shard``'s docstring points here: the bounded per-engine cache and
    the placement fast path must produce exactly the shard the uncached
    ``flow_shard`` / ``shard_for_flow`` pair would have picked.
    """

    def _flows(self, count=64, seed=8):
        rng = random.Random(seed)
        return [
            (
                Address(f"10.2.{rng.randrange(4)}.{rng.randrange(1, 30)}", 4000 + rng.randrange(8)),
                rng.randrange(2**32),
            )
            for _ in range(count)
        ]

    def test_crc_shard_matches_flow_shard(self):
        engine = ShardedScallopPipeline(SFU, n_shards=4, executor="serial")
        try:
            flows = self._flows()
            for src, ssrc in flows:
                assert engine._crc_shard(src, ssrc) == flow_shard(src, ssrc, 4)
            # second pass is all cache hits — answers must not drift
            for src, ssrc in flows:
                assert engine._crc_shard(src, ssrc) == flow_shard(src, ssrc, 4)
            assert len(engine._crc_cache) == len({f for f in flows})
        finally:
            engine.close()

    def test_shard_of_key_matches_shard_for_flow_across_migrations(self):
        engine = ShardedScallopPipeline(SFU, n_shards=4, executor="serial")
        try:
            flows = self._flows(count=32, seed=81)
            engine._sync_placement_cache()
            for src, ssrc in flows:
                assert engine._shard_of_key((src, ssrc)) == engine.shard_for_flow(src, ssrc)
            # pin a third of the flows away from their CRC default
            pinned = flows[::3]
            for src, ssrc in pinned:
                target = (flow_shard(src, ssrc, 4) + 1) % 4
                assert engine.migrate_flow(src, ssrc, target)
            engine._sync_placement_cache()
            for src, ssrc in flows:
                expected = engine.shard_for_flow(src, ssrc)
                assert engine._shard_of_key((src, ssrc)) == expected
                if (src, ssrc) in set(pinned):
                    assert expected == (flow_shard(src, ssrc, 4) + 1) % 4
                else:
                    assert expected == flow_shard(src, ssrc, 4)
            # unpin: routing must fall back to the CRC default everywhere
            for src, ssrc in pinned:
                engine.control.remove_placement(src, ssrc)
            engine._sync_placement_cache()
            for src, ssrc in flows:
                assert engine._shard_of_key((src, ssrc)) == flow_shard(src, ssrc, 4)
        finally:
            engine.close()

    def test_cache_bound_is_enforced(self):
        engine = ShardedScallopPipeline(SFU, n_shards=2, executor="serial")
        try:
            limit = engine.FLOW_SHARD_CACHE_LIMIT
            engine.FLOW_SHARD_CACHE_LIMIT = 8
            src = Address("10.3.0.1", 4000)
            for ssrc in range(40):
                engine._crc_shard(src, ssrc)
                assert len(engine._crc_cache) <= 8
            # the cache keeps answering correctly through clears
            for ssrc in range(40):
                assert engine._crc_shard(src, ssrc) == flow_shard(src, ssrc, 2)
        finally:
            engine.FLOW_SHARD_CACHE_LIMIT = limit
            engine.close()
