"""Packet-lifecycle tracing: deterministic flow sampling, integer span
timelines that always sum to the forwarding delay, and the drain/fold
transport that keeps worker and coordinator state disjoint."""

from zlib import crc32

import pytest

from repro.obs.hooks import DatapathObs, ObsConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    STAGES,
    PacketTracer,
    flow_trace_key,
    sorted_trace_records,
)


def make_tracer(**kwargs):
    registry = MetricsRegistry()
    return PacketTracer(registry, **kwargs), registry


class TestSampling:
    def test_classify_is_pure_crc32(self):
        tracer, _ = make_tracer(sample_rate=64)
        for ssrc in range(200):
            expected = crc32(f"10.0.0.2:6000/{ssrc}".encode()) % 64 == 0
            assert tracer.classify(("k", ssrc), "10.0.0.2", 6000, ssrc) is expected
            # memoized under the caller's key
            assert tracer.trace_memo[("k", ssrc)] is expected

    def test_sample_rate_one_traces_every_flow(self):
        tracer, _ = make_tracer(sample_rate=1)
        assert tracer.wants("a", "10.0.0.2", 6000, 1)
        assert tracer.wants("b", "10.0.0.3", 6001, 2)

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            make_tracer(sample_rate=0)

    def test_memo_is_bounded_with_clear_on_full(self, monkeypatch):
        monkeypatch.setattr(PacketTracer, "MEMO_LIMIT", 8)
        tracer, _ = make_tracer(sample_rate=64)
        for index in range(50):
            tracer.classify(index, "10.0.0.2", 6000, index)
            assert len(tracer.trace_memo) <= 8
        # re-derivation after a clear cannot flip any decision
        assert tracer.classify(3, "10.0.0.2", 6000, 3) is (
            crc32(b"10.0.0.2:6000/3") % 64 == 0
        )

    def test_disabled_obs_memo_also_bounded(self, monkeypatch):
        monkeypatch.setattr(PacketTracer, "MEMO_LIMIT", 8)
        obs = DatapathObs(ObsConfig(trace_sample_rate=0))
        assert obs.tracer is None
        for index in range(50):
            assert obs.classify(index, "10.0.0.2", 6000, index) is False
            assert len(obs.trace_memo) <= 8


class TestSpanTimeline:
    def record_one(self, tracer, **overrides):
        kwargs = dict(
            ip="10.0.0.2", port=6000, ssrc=7, seq=100, arrived_at=1.5,
            size=1200, parse_hit=True, flow_hit=True, replicas=3,
            dropped=0, adapted=False,
        )
        kwargs.update(overrides)
        tracer.record_media(**kwargs)
        return tracer.records[-1]

    def test_spans_cover_the_forwarding_delay_exactly(self):
        tracer, _ = make_tracer(sample_rate=1, forwarding_delay_s=12e-6)
        for replicas in (0, 1, 3, 9):
            for parse_hit in (True, False):
                for adapted in (True, False):
                    arrival_ns, flow, seq, spans = self.record_one(
                        tracer, replicas=replicas, parse_hit=parse_hit, adapted=adapted
                    )
                    assert [stage for stage, _, _ in spans] == list(STAGES)
                    assert sum(duration for _, _, duration in spans) == 12000
                    offset = 0
                    for _, span_offset, duration in spans:
                        assert span_offset == offset  # contiguous, no gaps
                        offset += duration
        assert flow == flow_trace_key("10.0.0.2", 6000, 7)
        assert arrival_ns == 1_500_000_000

    def test_work_weights_widen_the_right_stages(self):
        tracer, _ = make_tracer(sample_rate=1)

        def durations(**overrides):
            spans = self.record_one(tracer, **overrides)[3]
            return {stage: duration for stage, _, duration in spans}

        hit = durations(parse_hit=True, replicas=1)
        miss = durations(parse_hit=False, replicas=1)
        fanned = durations(parse_hit=True, replicas=9)
        assert miss["parse"] > hit["parse"]
        assert fanned["pre_expand"] > hit["pre_expand"]

    def test_histograms_and_counters_feed_the_registry(self):
        tracer, registry = make_tracer(sample_rate=1)
        self.record_one(tracer)
        self.record_one(tracer)
        assert registry.counters["repro.trace.sampled_packets"] == 2
        for stage in STAGES:
            assert registry.histograms[f"repro.trace.stage_ns.{stage}"].count == 2
        assert registry.histograms["repro.trace.packet_bytes"].sum == 2400.0

    def test_record_cap_spills_to_counters_not_memory(self):
        tracer, registry = make_tracer(sample_rate=1, max_records=3)
        for seq in range(5):
            self.record_one(tracer, seq=seq)
        assert len(tracer.records) == 3
        assert registry.counters["repro.trace.records_dropped"] == 2
        # the stage histograms kept absorbing the overflow packets
        assert registry.histograms["repro.trace.stage_ns.ingress"].count == 5

    def test_clockless_process_path_anchors_at_zero(self):
        tracer, _ = make_tracer(sample_rate=1)
        arrival_ns, _, _, _ = self.record_one(tracer, arrived_at=None)
        assert arrival_ns == 0


class TestDrainAndFold:
    def sampled_obs(self, **config):
        config.setdefault("trace_sample_rate", 1)
        return DatapathObs(ObsConfig(**config))

    def record(self, obs, seq, arrived_at=2.0):
        obs.record_media(
            "10.0.0.2", 6000, 7, seq, arrived_at, 900,
            parse_hit=True, flow_hit=True, replicas=2, dropped=0, adapted=False,
        )

    def test_to_delta_drains_and_fold_restores(self):
        worker = self.sampled_obs()
        self.record(worker, seq=1)
        self.record(worker, seq=2)
        delta = worker.to_delta()
        assert worker.tracer.records == []  # drained: nothing double-counts
        assert worker.registry.counters == {}
        coordinator = self.sampled_obs()
        coordinator.fold_delta(delta)
        assert len(coordinator.tracer.records) == 2
        assert coordinator.registry.counters["repro.trace.sampled_packets"] == 2

    def test_fold_respects_the_record_cap(self):
        worker = self.sampled_obs(max_trace_records=8)
        for seq in range(8):
            self.record(worker, seq=seq)
        delta = worker.to_delta()
        coordinator = self.sampled_obs(max_trace_records=3)
        coordinator.fold_delta(delta)
        assert len(coordinator.tracer.records) == 3
        assert coordinator.registry.counters["repro.trace.records_dropped"] == 5

    def test_merge_from_is_read_only(self):
        a, b = self.sampled_obs(), self.sampled_obs()
        self.record(a, seq=1)
        self.record(b, seq=2)
        merged = self.sampled_obs()
        merged.merge_from(a)
        merged.merge_from(b)
        assert len(merged.tracer.records) == 2
        assert len(a.tracer.records) == 1 and len(b.tracer.records) == 1
        assert a.registry.counters["repro.trace.sampled_packets"] == 1

    def test_sorted_trace_records_restores_total_order(self):
        obs = self.sampled_obs()
        self.record(obs, seq=5, arrived_at=3.0)
        self.record(obs, seq=1, arrived_at=1.0)
        self.record(obs, seq=9, arrived_at=1.0)
        shuffled = list(reversed(obs.tracer.records))
        ordered = sorted_trace_records(shuffled)
        assert [record[0] for record in ordered] == sorted(r[0] for r in shuffled)
        assert ordered == sorted_trace_records(obs.tracer.records)
