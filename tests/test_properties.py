"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
    ideal_rewrite_map,
)
from repro.dataplane.pre import L2Port, PacketReplicationEngine
from repro.dataplane.tables import IndexAllocator
from repro.rtp.extensions import ExtensionElement, decode_extensions, encode_extensions
from repro.rtp.packet import RtpHeaderExtension, RtpPacket, seq_add, seq_delta
from repro.rtp.rtcp import Nack, Remb, parse_compound
from repro.stun.message import StunMessage, make_binding_request

common_settings = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)


# ---------------------------------------------------------------------------
# Wire-format round trips
# ---------------------------------------------------------------------------

rtp_packets = st.builds(
    RtpPacket,
    payload_type=st.integers(min_value=0, max_value=127),
    sequence_number=st.integers(min_value=0, max_value=65_535),
    timestamp=st.integers(min_value=0, max_value=2**32 - 1),
    ssrc=st.integers(min_value=0, max_value=2**32 - 1),
    marker=st.booleans(),
    csrcs=st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=15).map(tuple),
    extension=st.one_of(
        st.none(),
        st.builds(
            RtpHeaderExtension,
            profile=st.just(0xBEDE),
            data=st.integers(min_value=0, max_value=8).map(lambda words: b"\x00" * (4 * words)),
        ),
    ),
    payload=st.binary(max_size=1400),
)


@common_settings
@given(packet=rtp_packets)
def test_rtp_serialize_parse_round_trip(packet):
    assert RtpPacket.parse(packet.serialize()) == packet


@common_settings
@given(
    elements=st.lists(
        st.builds(
            ExtensionElement,
            ext_id=st.integers(min_value=1, max_value=14),
            data=st.binary(min_size=1, max_size=16),
        ),
        max_size=4,
    )
)
def test_extension_elements_round_trip(elements):
    assert decode_extensions(encode_extensions(elements)) == elements


@common_settings
@given(
    bitrate=st.floats(min_value=1_000, max_value=5e8, allow_nan=False),
    ssrcs=st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=4).map(tuple),
)
def test_remb_bitrate_precision(bitrate, ssrcs):
    parsed = parse_compound(Remb(sender_ssrc=1, bitrate_bps=bitrate, media_ssrcs=ssrcs).serialize())[0]
    assert abs(parsed.bitrate_bps - bitrate) <= max(bitrate * 0.01, 1.0)
    assert parsed.media_ssrcs == ssrcs


@common_settings
@given(lost=st.lists(st.integers(min_value=0, max_value=65_535), min_size=1, max_size=40, unique=True))
def test_nack_round_trip_preserves_lost_set(lost):
    parsed = parse_compound(Nack(1, 2, tuple(lost)).serialize())[0]
    assert set(parsed.lost_sequence_numbers) == set(lost)


@common_settings
@given(
    transaction_id=st.binary(min_size=12, max_size=12),
    username=st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=16),
)
def test_stun_round_trip(transaction_id, username):
    request = make_binding_request(transaction_id, username)
    parsed = StunMessage.parse(request.serialize())
    assert parsed.transaction_id == transaction_id
    assert parsed.attribute(0x0006) == username.encode()


# ---------------------------------------------------------------------------
# Sequence arithmetic and rewriting invariants
# ---------------------------------------------------------------------------


@common_settings
@given(seq=st.integers(min_value=0, max_value=65_535), delta=st.integers(min_value=-30_000, max_value=30_000))
def test_seq_delta_inverts_seq_add(seq, delta):
    assert seq_delta(seq_add(seq, delta), seq) == delta


@st.composite
def rewrite_histories(draw):
    """Random frame-structured packet histories with suppression, loss, and reordering."""
    num_frames = draw(st.integers(min_value=4, max_value=60))
    packets_per_frame = draw(st.integers(min_value=1, max_value=4))
    decode_target = draw(st.integers(min_value=0, max_value=2))
    start_seq = draw(st.integers(min_value=0, max_value=65_535))
    events = []
    seq = start_seq
    for frame in range(num_frames):
        layer = (0, 2, 1, 2)[frame % 4]
        suppressed = layer > decode_target
        for _ in range(packets_per_frame):
            lost = draw(st.booleans()) and draw(st.booleans())  # ~25% loss
            events.append((seq, frame, suppressed, lost))
            seq = (seq + 1) % 65_536
    return decode_target, events


@common_settings
@given(history=rewrite_histories(), use_lr=st.booleans())
def test_rewriters_never_emit_duplicates(history, use_lr):
    decode_target, events = history
    cadence = SkipCadence.for_decode_target(decode_target)
    rewriter = (SequenceRewriterLowRetransmission if use_lr else SequenceRewriterLowMemory)(cadence)
    emitted = []
    for seq, frame, suppressed, lost in events:
        if lost:
            continue
        out = rewriter.on_packet(seq, frame, forward=not suppressed)
        if out is not None:
            emitted.append(out)
    assert len(emitted) == len(set(emitted))


@common_settings
@given(history=rewrite_histories())
def test_rewriter_matches_oracle_without_loss(history):
    """With no loss and no reordering the heuristic must be exactly ideal."""
    decode_target, events = history
    cadence = SkipCadence.for_decode_target(decode_target)
    rewriter = SequenceRewriterLowRetransmission(cadence)
    ideal = ideal_rewrite_map([(seq, suppressed, False) for seq, _f, suppressed, _l in events])
    for seq, frame, suppressed, _lost in events:
        out = rewriter.on_packet(seq, frame, forward=not suppressed)
        assert out == ideal[seq]


@common_settings
@given(history=rewrite_histories())
def test_ideal_map_has_no_gaps_over_suppression(history):
    _target, events = history
    mapping = ideal_rewrite_map([(seq, suppressed, lost) for seq, _f, suppressed, lost in events])
    kept = [v for (seq, _f, suppressed, _l), v in zip(events, mapping.values()) if not suppressed]
    assert kept == [(kept[0] + i) % 65_536 for i in range(len(kept))]


# ---------------------------------------------------------------------------
# PRE and allocator invariants
# ---------------------------------------------------------------------------


@common_settings
@given(
    num_participants=st.integers(min_value=2, max_value=12),
    sender_index=st.integers(min_value=0, max_value=11),
)
def test_pre_never_replicates_to_sender(num_participants, sender_index):
    sender_index %= num_participants
    pre = PacketReplicationEngine()
    mgid = pre.create_tree()
    for index in range(num_participants):
        pre.add_node(mgid, rid=index + 1, ports=[L2Port(port=index + 1, l2_xid=index + 1)])
    replicas = pre.replicate(mgid, rid=sender_index + 1, l2_xid=sender_index + 1)
    ports = [r.egress_port for r in replicas]
    assert sender_index + 1 not in ports
    assert len(ports) == num_participants - 1


@common_settings
@given(keys=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=32, unique=True))
def test_index_allocator_assigns_unique_indices(keys):
    allocator = IndexAllocator(64)
    indices = [allocator.allocate(key) for key in keys]
    assert len(set(indices)) == len(keys)
    for key in keys:
        allocator.release(key)
    assert allocator.in_use == 0
