"""Unit tests for the CPU model and the split-proxy software SFU baseline."""

import pytest

from repro.baseline.cpu import CpuCore, CpuPool
from repro.baseline.software_sfu import SoftwareSfu
from repro.netsim.datagram import Address, Datagram
from repro.netsim.link import Network
from repro.netsim.simulator import Simulator
from repro.rtp.rtcp import Nack, Remb
from repro.stun.message import make_binding_request
from repro.webrtc.client import ClientConfig, WebRtcClient

SFU = Address("10.0.0.1", 5000)


class TestCpuCore:
    def test_service_time_grows_with_size(self):
        core = CpuCore(seed=1)
        assert core.service_time(10_000) > core.service_time(100)

    def test_delay_under_light_load_is_small(self):
        core = CpuCore(seed=1)
        delays = [core.process(1_000, now=t * 0.1) for t in range(50)]
        assert all(d is not None for d in delays)
        assert sum(delays) / len(delays) < 0.002

    def test_queueing_under_heavy_load(self):
        core = CpuCore(base_cost_s=0.001, per_byte_cost_s=0.0, seed=1)
        # submit far more than 1/0.001 = 1000 packets/s worth of work at t=0
        delays = [core.process(1_000, now=0.0) for _ in range(100)]
        completed = [d for d in delays if d is not None]
        assert completed[-1] > completed[0]

    def test_overload_drops(self):
        core = CpuCore(base_cost_s=0.01, queue_limit_s=0.05, seed=1)
        results = [core.process(1_000, now=0.0) for _ in range(100)]
        assert any(r is None for r in results)
        assert core.stats.packets_dropped > 0

    def test_utilization_increases_with_load(self):
        idle = CpuCore(seed=1)
        idle.process(100, now=0.0)
        busy = CpuCore(base_cost_s=0.001, seed=1)
        for index in range(500):
            busy.process(1_000, now=index * 0.001)
        assert busy.utilization(0.5) > idle.utilization(0.5)


class TestCpuPool:
    def test_flow_affinity(self):
        pool = CpuPool(cores=4, seed=1)
        assert pool.core_for(5) is pool.core_for(5)
        assert pool.core_for(1) is not pool.core_for(2)

    def test_total_stats_aggregates(self):
        pool = CpuPool(cores=2, seed=1)
        pool.process(0, 500, now=0.0)
        pool.process(1, 500, now=0.0)
        assert pool.total_stats().packets_processed == 2

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            CpuPool(cores=0)


def build_meeting(participants=3, video_bitrate=2_000_000, seed=2):
    sim = Simulator()
    net = Network(sim, seed=seed)
    sfu = SoftwareSfu(SFU, sim, net, cores=4)
    clients = []
    for index in range(participants):
        config = ClientConfig(
            participant_id=f"p{index}",
            meeting_id="m",
            address=Address(f"10.0.1.{index + 1}", 6000 + index),
            remote=SFU,
            video_bitrate_bps=video_bitrate,
            seed=seed + index,
        )
        client = WebRtcClient(config, sim, net)
        net.attach(client)
        sfu.join(client)
        clients.append(client)
    return sim, net, sfu, clients


class TestSoftwareSfu:
    def test_media_forwarded_to_all_other_participants(self):
        sim, net, sfu, clients = build_meeting()
        for client in clients:
            client.start()
        sim.run_for(5.0)
        for client in clients:
            stats = client.get_stats()
            assert len(stats.inbound_video) == 2
            assert stats.mean_video_fps() > 20
        assert sfu.stats.packets_out > sfu.stats.packets_in

    def test_participants_never_receive_their_own_stream(self):
        sim, net, sfu, clients = build_meeting()
        for client in clients:
            client.start()
        sim.run_for(2.0)
        for client in clients:
            assert client.video_ssrc not in client.video_receivers

    def test_remb_terminated_not_forwarded(self):
        sim, net, sfu, clients = build_meeting()
        sender, receiver = clients[0], clients[1]
        receiver_remb = Remb(
            sender_ssrc=receiver.video_ssrc, bitrate_bps=300_000, media_ssrcs=(sender.video_ssrc,)
        )
        before = sender.encoder.target_bitrate_bps
        sfu.handle_datagram(Datagram(src=receiver.config.address, dst=SFU, payload=(receiver_remb,)))
        sim.run_for(1.0)
        # the split proxy adapts itself instead of telling the sender to slow down
        assert sender.encoder.target_bitrate_bps == before
        assert sfu.stats.feedback_handled >= 1

    def test_remb_reduces_forwarded_layers(self):
        sim, net, sfu, clients = build_meeting(video_bitrate=800_000)
        sender, receiver = clients[0], clients[2]
        for client in clients:
            client.start()
        sim.run_for(2.0)
        low_remb = Remb(sender_ssrc=receiver.video_ssrc, bitrate_bps=100_000, media_ssrcs=(sender.video_ssrc,))
        sfu.handle_datagram(Datagram(src=receiver.config.address, dst=SFU, payload=(low_remb,)))
        sim.run_for(4.0)
        stream = receiver.video_receivers.get(sender.video_ssrc)
        assert stream is not None
        # the stream from that sender is now delivered at a reduced frame rate
        # (the split proxy drops enhancement layers towards this receiver)
        assert 3.0 < stream.frame_rate(2.0, sim.now) < 20.0

    def test_stun_answered(self):
        sim, net, sfu, clients = build_meeting()
        client = clients[0]
        request = make_binding_request(bytes(12), "p0")
        client._stun_pending[bytes(12)] = 0.0
        net.send(Datagram(src=client.config.address, dst=SFU, payload=request))
        sim.run_for(1.0)
        assert client.rtt_samples_ms

    def test_nack_answered_from_cache(self):
        sim, net, sfu, clients = build_meeting()
        sender, receiver = clients[0], clients[1]
        sender.start()
        sim.run_for(1.0)
        forwarded = receiver.video_receivers.get(sender.video_ssrc)
        assert forwarded is not None
        # ask for the last sequence number the receiver saw, as if it were lost
        seq = forwarded.highest_seq
        nack = Nack(sender_ssrc=receiver.video_ssrc, media_ssrc=sender.video_ssrc, lost_sequence_numbers=(seq,))
        out_before = sfu.stats.packets_out
        sfu.handle_datagram(Datagram(src=receiver.config.address, dst=SFU, payload=(nack,)))
        sim.run_for(0.5)
        assert sfu.stats.packets_out > out_before

    def test_leave_stops_forwarding(self):
        sim, net, sfu, clients = build_meeting()
        for client in clients:
            client.start()
        sim.run_for(1.0)
        sfu.leave(clients[2])
        received_before = clients[2].packets_sent
        assert sfu.meeting_size("m") == 2
        assert sfu.total_participants == 2

    def test_forwarding_latency_recorded(self):
        sim, net, sfu, clients = build_meeting()
        clients[0].start()
        sim.run_for(1.0)
        assert sfu.forwarding_latency_samples_ms
        assert all(sample >= 0 for sample in sfu.forwarding_latency_samples_ms)
