"""Unit tests for the RTCP codec (SR/RR/SDES/REMB/NACK/PLI, compound packets)."""

import pytest

from repro.rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    ReportBlock,
    RtcpParseError,
    SenderReport,
    SourceDescription,
    classify_rtcp,
    parse_compound,
    serialize_compound,
)
from repro.rtp.packet import is_rtcp


class TestSenderReport:
    def test_round_trip(self):
        report = SenderReport(
            sender_ssrc=111,
            ntp_timestamp=0x0123456789ABCDEF,
            rtp_timestamp=90_000,
            packet_count=1_000,
            octet_count=1_000_000,
        )
        parsed = parse_compound(report.serialize())
        assert parsed == [report]

    def test_round_trip_with_report_blocks(self):
        block = ReportBlock(ssrc=7, fraction_lost=10, cumulative_lost=55, highest_sequence=1234, jitter=90)
        report = SenderReport(sender_ssrc=1, report_blocks=(block,))
        parsed = parse_compound(report.serialize())[0]
        assert parsed.report_blocks == (block,)

    def test_classified_as_rtcp(self):
        assert is_rtcp(SenderReport(sender_ssrc=1).serialize())


class TestReceiverReport:
    def test_round_trip(self):
        block = ReportBlock(ssrc=9, fraction_lost=2, cumulative_lost=3, highest_sequence=77, jitter=5)
        report = ReceiverReport(sender_ssrc=2, report_blocks=(block,))
        assert parse_compound(report.serialize()) == [report]

    def test_empty_blocks(self):
        report = ReceiverReport(sender_ssrc=5)
        assert parse_compound(report.serialize()) == [report]


class TestSourceDescription:
    def test_round_trip(self):
        sdes = SourceDescription(chunks=((42, "participant-1"), (43, "participant-2")))
        parsed = parse_compound(sdes.serialize())[0]
        assert parsed.chunks == sdes.chunks


class TestFeedback:
    def test_nack_round_trip_contiguous(self):
        nack = Nack(sender_ssrc=1, media_ssrc=2, lost_sequence_numbers=(100, 101, 102))
        parsed = parse_compound(nack.serialize())[0]
        assert set(parsed.lost_sequence_numbers) == {100, 101, 102}

    def test_nack_round_trip_sparse(self):
        lost = (10, 30, 300)
        nack = Nack(sender_ssrc=1, media_ssrc=2, lost_sequence_numbers=lost)
        parsed = parse_compound(nack.serialize())[0]
        assert set(parsed.lost_sequence_numbers) == set(lost)

    def test_pli_round_trip(self):
        pli = PictureLossIndication(sender_ssrc=3, media_ssrc=4)
        assert parse_compound(pli.serialize()) == [pli]

    def test_remb_round_trip_small_bitrate(self):
        remb = Remb(sender_ssrc=1, bitrate_bps=250_000, media_ssrcs=(10,))
        parsed = parse_compound(remb.serialize())[0]
        assert parsed.media_ssrcs == (10,)
        assert parsed.bitrate_bps == pytest.approx(250_000, rel=0.01)

    def test_remb_round_trip_large_bitrate(self):
        remb = Remb(sender_ssrc=1, bitrate_bps=25_000_000, media_ssrcs=(10, 11))
        parsed = parse_compound(remb.serialize())[0]
        assert parsed.bitrate_bps == pytest.approx(25_000_000, rel=0.01)

    def test_remb_exponent_encoding_precision(self):
        for bitrate in (1_000, 100_000, 1_234_567, 987_654_321):
            parsed = parse_compound(Remb(1, bitrate, (2,)).serialize())[0]
            assert parsed.bitrate_bps == pytest.approx(bitrate, rel=0.01)


class TestCompound:
    def test_compound_round_trip(self):
        packets = [
            ReceiverReport(sender_ssrc=1, report_blocks=(ReportBlock(ssrc=9),)),
            Remb(sender_ssrc=1, bitrate_bps=500_000, media_ssrcs=(9,)),
        ]
        data = serialize_compound(packets)
        parsed = parse_compound(data)
        assert len(parsed) == 2
        assert isinstance(parsed[0], ReceiverReport)
        assert isinstance(parsed[1], Remb)

    def test_parse_bad_version_raises(self):
        data = bytearray(SenderReport(sender_ssrc=1).serialize())
        data[0] = 0x00
        with pytest.raises(RtcpParseError):
            parse_compound(bytes(data))

    def test_parse_truncated_raises(self):
        data = SenderReport(sender_ssrc=1).serialize()
        with pytest.raises(RtcpParseError):
            parse_compound(data[:-2])

    def test_classify(self):
        assert classify_rtcp(SenderReport(1)) == "SR"
        assert classify_rtcp(ReceiverReport(1)) == "RR"
        assert classify_rtcp(SourceDescription()) == "SDES"
        assert classify_rtcp(Remb(1, 1.0)) == "REMB"
        assert classify_rtcp(Nack(1, 2)) == "NACK"
        assert classify_rtcp(PictureLossIndication(1, 2)) == "PLI"
