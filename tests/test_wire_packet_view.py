"""Property tests for the wire-native packet path.

Three layers of guarantees:

1. :class:`~repro.rtp.wire.PacketView` round-trips byte-exactly with the
   object codec (:class:`~repro.rtp.packet.RtpPacket`) across random headers,
   CSRC lists, one-/two-byte extension profiles, and padding.
2. In-place rewriting (sequence number / SSRC / timestamp / DD frame number)
   patches exactly the targeted bytes.
3. The pipeline's wire fast path is indistinguishable from the object path:
   identical serialized outputs, destinations, metas, drops, and counters for
   identical ingress — per packet and per batch, with and without sequence
   rewriting — and a wire-native end-to-end testbed unfolds identically to an
   object-model one.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.seqrewrite import (
    SequenceRewriterLowMemory,
    SequenceRewriterLowRetransmission,
    SkipCadence,
)
from repro.dataplane.parser import IngressParser
from repro.dataplane.pipeline import ScallopPipeline
from repro.netsim.datagram import Address, Datagram, PayloadKind
from repro.rtp.av1 import DependencyDescriptor, dependency_descriptor_element
from repro.rtp.extensions import (
    EXT_ID_AV1_DEPENDENCY_DESCRIPTOR,
    ExtensionElement,
    encode_extensions,
)
from repro.rtp.packet import RtpHeaderExtension, RtpPacket, RtpParseError
from repro.rtp.wire import PacketView, pack_rtp_header
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

SFU = Address("10.0.0.1", 5000)


# --------------------------------------------------------------------------- strategies

#: Elements drawn wide enough that ``encode_extensions`` picks the one-byte
#: profile for some examples and the two-byte profile for others (ids > 14 or
#: payloads > 16 bytes force two-byte, exactly as libwebrtc does).
extension_elements = st.lists(
    st.builds(
        ExtensionElement,
        ext_id=st.integers(min_value=1, max_value=30),
        data=st.binary(min_size=1, max_size=24),
    ),
    min_size=0,
    max_size=3,
    unique_by=lambda e: e.ext_id,
)


@st.composite
def rtp_packets(draw):
    elements = draw(extension_elements)
    extension = encode_extensions(elements) if elements else None
    return RtpPacket(
        payload_type=draw(st.integers(min_value=0, max_value=127)),
        sequence_number=draw(st.integers(min_value=0, max_value=0xFFFF)),
        timestamp=draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
        ssrc=draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
        marker=draw(st.booleans()),
        csrcs=tuple(draw(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=15))),
        extension=extension,
        payload=draw(st.binary(max_size=64)),
    )


# --------------------------------------------------------------------------- round trips


class TestPacketViewRoundTrip:
    @given(packet=rtp_packets())
    @settings(max_examples=200, deadline=None)
    def test_accessors_match_object_model(self, packet):
        view = PacketView.from_packet(packet)
        assert view.payload_type == packet.payload_type
        assert view.sequence_number == packet.sequence_number
        assert view.timestamp == packet.timestamp
        assert view.ssrc == packet.ssrc
        assert view.marker == packet.marker
        assert view.csrcs == packet.csrcs
        assert view.csrc_count == len(packet.csrcs)
        assert view.extension == packet.extension
        assert view.has_extension == (packet.extension is not None)
        assert view.header_length == packet.header_length
        assert view.payload == packet.payload
        assert view.size == packet.size == len(bytes(view))

    @given(packet=rtp_packets())
    @settings(max_examples=200, deadline=None)
    def test_to_packet_round_trip(self, packet):
        view = PacketView.from_packet(packet)
        assert view.to_packet() == packet
        assert bytes(view) == packet.serialize()
        # a view over the serialized bytes is the same view
        assert PacketView(packet.serialize()) == view

    @given(packet=rtp_packets(), pad_len=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_padding_matches_parse_semantics(self, packet, pad_len):
        # craft a padded wire image by hand (the object serializer never pads)
        raw = bytearray(packet.serialize())
        raw[0] |= 0x20
        raw += bytes(pad_len - 1) + bytes([pad_len])
        view = PacketView(bytes(raw))
        assert view.padding
        assert view.size == packet.size + pad_len
        assert view.sequence_number == packet.sequence_number
        # decode-once agrees with the object codec's canonical (stripped) form
        assert view.to_packet() == RtpPacket.parse(bytes(raw))

    @given(packet=rtp_packets())
    @settings(max_examples=100, deadline=None)
    def test_header_region_codec(self, packet):
        view = PacketView.from_packet(packet)
        header = pack_rtp_header(packet)
        assert header == view.header_bytes()
        # a truncated (header-only) view still answers every header question
        truncated = PacketView(header)
        assert truncated.is_truncated()
        assert truncated.sequence_number == packet.sequence_number
        assert truncated.ssrc == packet.ssrc
        assert truncated.extension == packet.extension
        assert truncated.payload == b""

    def test_datagram_from_wire_matches_from_bytes(self):
        # the wire-native ingress boundary must classify raw UDP payloads
        # exactly like the object-model one; only RTP's representation differs
        from repro.rtp.rtcp import SenderReport, serialize_compound
        from repro.stun.message import make_binding_request

        src, dst = Address("10.0.0.9", 7000), SFU
        packet = RtpPacketizer(ssrc=88, seed=8).packetize(SvcEncoder(seed=8).next_frame(0.0))[0]
        samples = [
            packet.serialize(),
            serialize_compound([SenderReport(sender_ssrc=88)]),
            make_binding_request(bytes(12), "user").serialize(),
            b"\x05garbage-that-is-not-rtp",
        ]
        for raw in samples:
            wire = Datagram.from_wire(src, dst, raw)
            reference = Datagram.from_bytes(src, dst, raw)
            assert wire.kind == reference.kind
            assert wire.size == reference.size
            assert wire.to_bytes() == reference.to_bytes()
            if wire.kind is PayloadKind.RTP:
                assert isinstance(wire.payload, PacketView)
                assert wire.payload.to_packet() == reference.payload
            else:
                assert wire.payload == reference.payload

    def test_rejects_non_rtp(self):
        for bad in (b"", b"\x00" * 4, b"\x00" * 12, b"\xff" + b"\x00" * 11):
            try:
                PacketView(bad)
            except RtpParseError:
                continue
            raise AssertionError(f"accepted non-RTP buffer {bad!r}")


class TestInPlaceRewriting:
    def _media_packet(self, frame_number=7, template_id=2):
        descriptor = DependencyDescriptor(
            start_of_frame=True, end_of_frame=False, template_id=template_id, frame_number=frame_number
        )
        extension = encode_extensions([dependency_descriptor_element(descriptor)])
        return RtpPacket(
            payload_type=45,
            sequence_number=100,
            timestamp=9000,
            ssrc=0xABCD,
            extension=extension,
            payload=b"\x55" * 40,
        )

    def test_set_fields_patch_only_their_bytes(self):
        packet = self._media_packet()
        view = PacketView.from_packet(packet).mutable_copy()
        before = bytes(view)
        view.set_sequence_number(0xBEEF)
        view.set_ssrc(0x11223344)
        view.set_timestamp(0xCAFEBABE)
        after = bytes(view)
        assert view.sequence_number == 0xBEEF
        assert view.ssrc == 0x11223344
        assert view.timestamp == 0xCAFEBABE
        # nothing but the three fields changed
        diff = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert set(diff) <= set(range(2, 12))
        assert view.to_packet() == dataclasses.replace(
            packet, sequence_number=0xBEEF, ssrc=0x11223344, timestamp=0xCAFEBABE
        )

    def test_with_sequence_number_copies(self):
        view = PacketView.from_packet(self._media_packet())
        rewritten = view.with_sequence_number(4242)
        assert rewritten.sequence_number == 4242
        assert view.sequence_number == 100  # original untouched
        assert rewritten.to_packet() == view.to_packet().with_sequence_number(4242)

    def test_set_frame_number_patches_descriptor(self):
        packet = self._media_packet(frame_number=7)
        view = PacketView.from_packet(packet).mutable_copy()
        view.set_frame_number(999, EXT_ID_AV1_DEPENDENCY_DESCRIPTOR)
        reparsed = view.to_packet()
        from repro.rtp.av1 import extract_dependency_descriptor

        descriptor = extract_dependency_descriptor(reparsed.extension)
        assert descriptor is not None and descriptor.frame_number == 999
        # header fields untouched
        assert view.sequence_number == packet.sequence_number
        assert view.payload == packet.payload

    def test_set_frame_number_requires_descriptor(self):
        packet = RtpPacket(payload_type=111, sequence_number=1, timestamp=2, ssrc=3, payload=b"x")
        view = PacketView.from_packet(packet).mutable_copy()
        try:
            view.set_frame_number(1, EXT_ID_AV1_DEPENDENCY_DESCRIPTOR)
        except RtpParseError:
            return
        raise AssertionError("patched a frame number into a packet without a DD")

    def test_immutable_buffer_rejects_mutation(self):
        view = PacketView.from_packet(self._media_packet())  # bytes-backed
        try:
            view.set_sequence_number(1)
        except TypeError:
            return
        raise AssertionError("mutated an immutable buffer")


# --------------------------------------------------------------------------- parser equivalence


class TestWireParserEquivalence:
    @given(packet=rtp_packets())
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_wire_parse_equals_object_parse(self, packet):
        object_parser = IngressParser()
        wire_parser = IngressParser()
        expected = object_parser.parse_rtp_cached(packet)
        actual = wire_parser.parse_rtp_cached_wire_twin(packet)
        assert actual == expected

    def test_real_av1_stream_parses_identically_and_hits_cache(self):
        encoder = SvcEncoder(seed=3)
        packetizer = RtpPacketizer(ssrc=404, seed=3)
        packets = []
        for index in range(8):
            packets.extend(packetizer.packetize(encoder.next_frame(index / 30)))
        object_parser, wire_parser = IngressParser(), IngressParser()
        for packet in packets:
            expected = object_parser.parse_rtp_cached(packet)
            actual = wire_parser.parse_rtp_wire_cached(PacketView.from_packet(packet))
            assert actual == expected
        assert wire_parser.packets_parsed == object_parser.packets_parsed
        assert wire_parser.cpu_punts == object_parser.cpu_punts
        assert wire_parser.parse_cache_hits == object_parser.parse_cache_hits


# parse_rtp_wire_cached takes a view; give the property test a tiny adapter so
# both parsers see logically identical input
def _wire_twin(self, packet):
    return self.parse_rtp_wire_cached(PacketView.from_packet(packet))


IngressParser.parse_rtp_cached_wire_twin = _wire_twin


# --------------------------------------------------------------------------- pipeline equivalence


def _build_adapted_pipeline(pipeline=None):
    """Two meetings, three receivers each, with rate adaptation + rewriters
    installed on two receivers (one S-LM, one S-LR) so the wire path's
    in-place rewrite and drop branches are exercised."""
    from repro.dataplane.pipeline import ForwardingMode, ReplicaTarget, StreamForwardingEntry
    from repro.dataplane.pre import L2Port

    pipeline = pipeline or ScallopPipeline(SFU)
    senders = []
    for meeting in range(2):
        mgid = pipeline.pre.create_tree()
        addresses = [Address(f"10.9.{meeting}.{i + 2}", 6000 + i) for i in range(4)]
        for rid, address in enumerate(addresses, start=1):
            pipeline.pre.add_node(mgid, rid=rid, ports=[L2Port(port=rid, l2_xid=rid)], l1_xid=1, prune_enabled=True)
            pipeline.install_replica_target(mgid, rid, ReplicaTarget(address=address, participant_id=f"m{meeting}-p{rid}"))
        ssrc = 5_000 + meeting
        pipeline.install_stream(
            (addresses[0], ssrc),
            StreamForwardingEntry(
                mode=ForwardingMode.REPLICATE, meeting_id=f"m{meeting}", sender=addresses[0],
                mgid=mgid, rid=1, l2_xid=1,
            ),
        )
        pipeline.install_adaptation(ssrc, addresses[1], frozenset({0, 1, 2}), SequenceRewriterLowRetransmission(SkipCadence(1, 2)))
        pipeline.install_adaptation(ssrc, addresses[2], frozenset({0, 1}), SequenceRewriterLowMemory(SkipCadence(1, 2)))
        senders.append((addresses[0], ssrc))
    return pipeline, senders


def _media(senders, frames=10, wire=False):
    traffic = []
    for address, ssrc in senders:
        encoder = SvcEncoder(target_bitrate_bps=1_000_000, seed=ssrc)
        packetizer = RtpPacketizer(ssrc=ssrc, seed=ssrc)
        for index in range(frames):
            for packet in packetizer.packetize(encoder.next_frame(index / 30)):
                payload = PacketView.from_packet(packet) if wire else packet
                traffic.append(Datagram(src=address, dst=SFU, payload=payload, meta={"tx_time": index / 30}))
    return traffic


def assert_wire_results_match(object_results, wire_results):
    assert len(object_results) == len(wire_results)
    for expected, actual in zip(object_results, wire_results):
        assert actual.parse == expected.parse
        assert actual.dropped_replicas == expected.dropped_replicas
        assert len(actual.outputs) == len(expected.outputs)
        for out_expected, out_actual in zip(expected.outputs, actual.outputs):
            assert out_actual.dst == out_expected.dst
            assert out_actual.src == out_expected.src
            assert out_actual.size == out_expected.size
            assert out_actual.kind is PayloadKind.RTP
            assert out_actual.arrived_at == out_expected.arrived_at
            assert out_actual.to_bytes() == out_expected.to_bytes()
            assert dict(out_actual.meta) == dict(out_expected.meta)
        assert [c.to_bytes() for c in actual.cpu_copies] == [
            c.to_bytes() for c in expected.cpu_copies
        ]


class TestWirePipelineEquivalence:
    def test_batch_outputs_byte_identical_with_rewriting(self):
        object_pipeline, senders = _build_adapted_pipeline()
        wire_pipeline, _ = _build_adapted_pipeline()
        object_results = object_pipeline.process_batch(_media(senders, wire=False))
        wire_results = wire_pipeline.process_batch(_media(senders, wire=True))
        assert_wire_results_match(object_results, wire_results)
        assert dataclasses.asdict(object_pipeline.counters) == dataclasses.asdict(wire_pipeline.counters)
        assert object_pipeline.parser.cpu_punts == wire_pipeline.parser.cpu_punts
        assert object_pipeline.parser.packets_parsed == wire_pipeline.parser.packets_parsed
        # rewriting actually happened (drops prove suppressed templates)
        assert object_pipeline.counters.adaptation_drops > 0

    def test_per_packet_process_equals_batch(self):
        reference, senders = _build_adapted_pipeline()
        wire_single, _ = _build_adapted_pipeline()
        traffic_obj = _media(senders, wire=False)
        traffic_wire = _media(senders, wire=True)
        object_results = [reference.process(d) for d in traffic_obj]
        wire_results = [wire_single.process(d) for d in traffic_wire]
        assert_wire_results_match(object_results, wire_results)
        assert dataclasses.asdict(reference.counters) == dataclasses.asdict(wire_single.counters)

    def test_junk_wire_flow_counts_table_miss(self):
        pipeline, _ = _build_adapted_pipeline()
        stray = RtpPacketizer(ssrc=99_999, seed=1).packetize(SvcEncoder(seed=1).next_frame(0.0))[0]
        result = pipeline.process(Datagram(src=Address("10.66.0.1", 6000), dst=SFU, payload=PacketView.from_packet(stray)))
        assert not result.outputs and not result.cpu_copies
        assert pipeline.counters.table_misses == 1


class TestWireNativeEndToEnd:
    """A wire-native testbed must unfold identically to an object-model one:
    encode once at the sender, rewrite in place at the SFU, decode once at
    the receiver — with every stat, jitter, and frame count unchanged."""

    @staticmethod
    def _run(wire_native):
        from repro.experiments import MeetingSetupConfig, build_scallop_testbed

        testbed = build_scallop_testbed(
            MeetingSetupConfig(
                num_meetings=2, participants_per_meeting=3, frame_bursts=True,
                wire_native=wire_native, seed=6,
            )
        )
        testbed.run_for(2.5)
        return testbed

    def test_simulation_identical_to_object_model(self):
        reference = self._run(False)
        wire = self._run(True)
        assert dataclasses.asdict(wire.sfu.stats) == dataclasses.asdict(reference.sfu.stats)
        assert dataclasses.asdict(wire.sfu.pipeline.counters) == dataclasses.asdict(
            reference.sfu.pipeline.counters
        )
        for ref_client, wire_client in zip(reference.clients, wire.clients):
            assert wire_client.packets_sent == ref_client.packets_sent
            assert wire_client.bytes_sent == ref_client.bytes_sent
            for ssrc, stream in ref_client.video_receivers.items():
                twin = wire_client.video_receivers[ssrc]
                assert twin.frames_decoded == stream.frames_decoded
                assert abs(twin.jitter_rtp_units - stream.jitter_rtp_units) < 1e-9
        reference.close()
        wire.close()
