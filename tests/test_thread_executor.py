"""Equivalence suite for the free-threaded (in-process) shard executor.

The ``"thread"`` executor drives the same share-nothing ``PipelineDatapath``
shards as the process pool, but over one shared control plane with
persistent per-shard worker threads — no snapshots, no codec, no register
shipping.  The contract is identical to the other two executors: for ANY
traffic and ANY control-plane churn, outputs must be byte-identical to the
unsharded reference pipeline, merged counters and ledger utilization must
match exactly, and a sanitized run must produce zero isolation findings.
This suite mirrors the process-executor coverage in
``test_sharded_pipeline.py``/``test_rebalance.py`` point for point: the
randomized churn property for k in {1, 2, 4, 8}, the single-packet path,
live migration mid-stream (which for this executor is a placement-table
write and nothing else), and sanitizer transparency.
"""

import dataclasses

import pytest

from repro.core.seqrewrite import SequenceRewriterLowRetransmission, SkipCadence
from repro.dataplane.pipeline import ScallopPipeline
from repro.dataplane.sharding import (
    ShardedScallopPipeline,
    ThreadShardRunner,
    validate_executor,
)
from repro.netsim.datagram import Address

from test_sharded_pipeline import (
    MeetingScenario,
    apply_op,
    assert_engines_agree,
    assert_results_identical,
    run_scenario,
)

SFU = Address("10.0.0.1", 5000)


class TestThreadExecutorEquivalence:
    """The PR 2 property harness, verbatim, on ``executor="thread"``."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [7, 19])
    def test_random_traffic_with_churn(self, n_shards, seed):
        _, sharded = run_scenario(n_shards, seed, executor="thread")
        assert isinstance(sharded._runner, ThreadShardRunner)

    def test_single_packet_path(self):
        # process() must route through the shard threads' datapaths, not a
        # coordinator-side shortcut with forked rewriter state
        scenario_a, scenario_b = MeetingScenario(17, num_meetings=1), MeetingScenario(17, num_meetings=1)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=2, executor="thread"))
        try:
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                meeting = scenario.meetings[0]
                engine.install_adaptation(
                    meeting["video_ssrc"],
                    meeting["addresses"][1],
                    frozenset({0, 1}),
                    SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
                )
            traffic_a = scenario_a.traffic_chunk(3, frames=4)
            traffic_b = scenario_b.traffic_chunk(3, frames=4)
            reference_results = [reference.process(d) for d in traffic_a]
            sharded_results = [sharded.process(d) for d in traffic_b[:5]]
            sharded_results += sharded.process_batch(traffic_b[5:])
            assert_results_identical(reference_results, sharded_results)
        finally:
            sharded.close()

    def test_live_migration_is_a_placement_write(self):
        # migrating a flow between in-process shards moves no state: the
        # register views alias the same rewriter objects, so results stay
        # byte-identical across the migration with zero shipped bytes
        scenario_a, scenario_b = MeetingScenario(13, num_meetings=2), MeetingScenario(13, num_meetings=2)
        reference = scenario_a.configure(ScallopPipeline(SFU))
        sharded = scenario_b.configure(ShardedScallopPipeline(SFU, n_shards=2, executor="thread"))
        try:
            for engine, scenario in ((reference, scenario_a), (sharded, scenario_b)):
                meeting = scenario.meetings[0]
                engine.install_adaptation(
                    meeting["video_ssrc"],
                    meeting["addresses"][1],
                    frozenset({0, 1}),
                    SequenceRewriterLowRetransmission(SkipCadence(1, 2)),
                )
            assert_results_identical(
                [reference.process(d) for d in scenario_a.traffic_chunk(1)],
                sharded.process_batch(scenario_b.traffic_chunk(1)),
            )
            meeting = scenario_b.meetings[0]
            sender, ssrc = meeting["addresses"][0], meeting["video_ssrc"]
            assert sharded.migrate_flow(sender, ssrc, 1 - sharded.shard_for_flow(sender, ssrc))
            assert_results_identical(
                [reference.process(d) for d in scenario_a.traffic_chunk(2)],
                sharded.process_batch(scenario_b.traffic_chunk(2)),
            )
            assert_engines_agree(reference, sharded)
            # the in-process runner has no transport: nothing was serialized
            assert sharded.transport_stats() is None
        finally:
            sharded.close()

    def test_close_is_idempotent_and_joins_workers(self):
        sharded = ShardedScallopPipeline(SFU, n_shards=4, executor="thread")
        sharded.process_batch([])
        sharded.close()
        sharded.close()


class TestThreadExecutorSanitized:
    def test_sanitized_run_byte_identical_with_zero_findings(self):
        seed = 31
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        plain = scenario_a.configure(ShardedScallopPipeline(SFU, n_shards=4, executor="thread"))
        sanitized = scenario_b.configure(
            ShardedScallopPipeline(SFU, n_shards=4, executor="thread", sanitize=True)
        )
        try:
            for phase in range(2):
                for op in scenario_a.churn_ops(seed + phase):
                    apply_op(plain, op)
                    apply_op(sanitized, op)
                assert_results_identical(
                    plain.process_batch(scenario_a.traffic_chunk(seed * 3 + phase)),
                    sanitized.process_batch(scenario_b.traffic_chunk(seed * 3 + phase)),
                )
            assert_engines_agree(plain, sanitized)
            assert sanitized.isolation_findings() == []
        finally:
            plain.close()
            sanitized.close()


class TestExecutorValidation:
    """Satellite: one source of truth for executor names, reused everywhere."""

    def test_unknown_executor_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown shard executor"):
            ShardedScallopPipeline(SFU, n_shards=2, executor="fibers")

    def test_backend_spec_reuses_the_same_validator(self):
        from repro.scenario.spec import BackendSpec

        engine_error = None
        try:
            validate_executor("fibers")
        except ValueError as error:
            engine_error = str(error)
        with pytest.raises(ValueError) as spec_error:
            BackendSpec(kind="scallop", n_shards=2, shard_executor="fibers")
        assert engine_error is not None
        assert str(spec_error.value) == engine_error

    def test_known_executors_accepted(self):
        for name in ("serial", "thread", "process"):
            validate_executor(name)


class TestThreadExecutorScenarioCli:
    """CI runs ``churn_storm --smoke --executor thread``; keep the override
    honest here so a CLI regression cannot silently drop the coverage."""

    def test_churn_storm_smoke_on_thread_executor(self, capsys):
        from repro.scenario.__main__ import main

        assert main(["churn_storm", "--smoke", "--executor", "thread"]) == 0
        out = capsys.readouterr().out
        assert "reconciliation: SFU state matches the surviving population" in out

    def test_executor_override_is_validated(self):
        from repro.scenario.__main__ import main

        with pytest.raises(ValueError, match="unknown shard executor"):
            main(["churn_storm", "--smoke", "--executor", "fibers"])
