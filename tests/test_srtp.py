"""Suite for the SRTP-shaped per-packet protection profile.

Three layers:

* unit tests for :class:`repro.rtp.srtp.SrtpProfile` itself — round trips
  in both key directions, tamper/truncation/wrong-direction rejection,
  determinism, and picklability (the profile rides in process-executor
  control snapshots);
* the datapath contract: a sharded engine built with ``srtp=`` unprotects
  wire-native ingress (counting, not crashing, on auth failure) and
  re-protects every egress replica under the egress keys, byte-identically
  across all three executors;
* the scenario surface: ``TrafficSpec.srtp`` demands ``wire_native`` and
  the scallop backend, and a full simulated run with protection armed ends
  with media flowing and zero receive-side auth failures.
"""

import dataclasses
import pickle

import pytest

from repro.dataplane.pipeline import ScallopPipeline
from repro.dataplane.sharding import ShardedScallopPipeline
from repro.netsim.datagram import Address
from repro.rtp.srtp import AUTH_TAG_BYTES, SrtpProfile
from repro.rtp.wire import PacketView
from repro.webrtc.encoder import RtpPacketizer, SvcEncoder

from test_sharded_pipeline import (
    MeetingScenario,
    assert_engines_agree,
    assert_results_identical,
)

SFU = Address("10.0.0.1", 5000)
PROFILE = SrtpProfile(b"test-master-key")


def sample_buffer(ssrc: int = 0xDECAFBAD) -> bytes:
    packet = RtpPacketizer(ssrc=ssrc, seed=3).packetize(SvcEncoder(seed=3).next_frame(0.0))[0]
    return bytes(PacketView.from_packet(packet).buf)


def protect_chunk(chunk, profile):
    """Wire-native twin of an object-model traffic chunk, media protected
    under the client->SFU ingress keys (what a real sender would emit)."""
    out = []
    for datagram in chunk:
        payload = datagram.payload
        if hasattr(payload, "sequence_number"):  # RtpPacket media
            view = PacketView.from_packet(payload)
            out.append(
                dataclasses.replace(datagram, payload=PacketView(profile.protect_ingress(view)))
            )
        else:
            out.append(datagram)
    return out


class TestSrtpProfileUnit:
    def test_round_trip_both_directions(self):
        buf = sample_buffer()
        for protect, unprotect in (
            (PROFILE.protect_ingress, PROFILE.unprotect_ingress),
            (PROFILE.protect_egress, PROFILE.unprotect_egress),
        ):
            wire = protect(buf)
            assert len(wire) == PROFILE.protected_size(len(buf))
            assert wire[:12] == buf[:12]  # header stays cleartext
            assert unprotect(wire) == buf

    def test_payload_actually_ciphered(self):
        buf = sample_buffer()
        wire = PROFILE.protect_ingress(buf)
        header_len = PacketView(buf).header_length
        assert wire[header_len : len(buf)] != buf[header_len:]

    def test_tampered_packet_rejected(self):
        wire = bytearray(PROFILE.protect_ingress(sample_buffer()))
        wire[-AUTH_TAG_BYTES - 1] ^= 0x01  # flip one ciphertext bit
        assert PROFILE.unprotect_ingress(bytes(wire)) is None

    def test_truncated_packet_rejected(self):
        wire = PROFILE.protect_ingress(sample_buffer())
        assert PROFILE.unprotect_ingress(wire[: 12 + AUTH_TAG_BYTES - 1]) is None
        assert PROFILE.unprotect_ingress(b"") is None

    def test_wrong_direction_keys_rejected(self):
        wire = PROFILE.protect_ingress(sample_buffer())
        assert PROFILE.unprotect_egress(wire) is None

    def test_wrong_master_key_rejected(self):
        wire = PROFILE.protect_ingress(sample_buffer())
        assert SrtpProfile(b"other-key").unprotect_ingress(wire) is None

    def test_deterministic_per_rounds_setting(self):
        buf = sample_buffer()
        r2 = SrtpProfile(b"k", rounds=2)
        assert r2.protect_ingress(buf) == SrtpProfile(b"k", rounds=2).protect_ingress(buf)
        # more rounds = different keystream, but still a clean round trip
        assert r2.protect_ingress(buf) != SrtpProfile(b"k", rounds=1).protect_ingress(buf)
        assert r2.unprotect_ingress(r2.protect_ingress(buf)) == buf

    def test_profile_pickles_identically(self):
        profile = SrtpProfile(b"k", rounds=3)
        clone = pickle.loads(pickle.dumps(profile))
        assert clone == profile
        buf = sample_buffer()
        assert clone.protect_egress(buf) == profile.protect_egress(buf)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SrtpProfile(b"")
        with pytest.raises(ValueError):
            SrtpProfile(b"k", rounds=0)
        with pytest.raises(ValueError):
            SrtpProfile(b"k", auth_tag_bytes=21)


class TestSrtpDatapath:
    def test_egress_replicas_verify_under_egress_keys(self):
        scenario = MeetingScenario(23)
        engine = scenario.configure(ScallopPipeline(SFU, srtp=PROFILE))
        chunk = protect_chunk(scenario.traffic_chunk(23, frames=4), PROFILE)
        results = [engine.process(d) for d in chunk]
        media_out = 0
        for result in results:
            for output in result.outputs:
                if isinstance(output.payload, PacketView):
                    assert PROFILE.unprotect_egress(output.payload.buf) is not None
                    media_out += 1
        assert media_out > 0
        assert engine.counters.srtp_auth_failures == 0

    def test_tampered_ingress_counted_and_dropped(self):
        scenario = MeetingScenario(23)
        engine = scenario.configure(ScallopPipeline(SFU, srtp=PROFILE))
        chunk = protect_chunk(scenario.traffic_chunk(23, frames=2), PROFILE)
        victim = next(i for i, d in enumerate(chunk) if isinstance(d.payload, PacketView))
        wire = bytearray(bytes(chunk[victim].payload.buf))
        wire[-1] ^= 0xFF
        chunk[victim] = dataclasses.replace(chunk[victim], payload=PacketView(bytes(wire)))
        results = [engine.process(d) for d in chunk]
        assert engine.counters.srtp_auth_failures == 1
        assert results[victim].outputs == []

    @pytest.mark.parametrize("executor,n_shards", [("thread", 4), ("process", 2)])
    def test_executors_byte_identical_under_srtp(self, executor, n_shards):
        seed = 29
        scenario_a, scenario_b = MeetingScenario(seed), MeetingScenario(seed)
        reference = scenario_a.configure(ScallopPipeline(SFU, srtp=PROFILE))
        sharded = scenario_b.configure(
            ShardedScallopPipeline(SFU, n_shards=n_shards, executor=executor, srtp=PROFILE)
        )
        try:
            for phase in range(2):
                chunk_a = protect_chunk(scenario_a.traffic_chunk(seed + phase, frames=4), PROFILE)
                chunk_b = protect_chunk(scenario_b.traffic_chunk(seed + phase, frames=4), PROFILE)
                assert_results_identical(
                    [reference.process(d) for d in chunk_a],
                    sharded.process_batch(chunk_b),
                )
            assert_engines_agree(reference, sharded)
            assert reference.counters.srtp_auth_failures == 0
        finally:
            sharded.close()


class TestSrtpScenarioSurface:
    def test_spec_requires_wire_native(self):
        from repro.scenario.spec import TrafficSpec

        with pytest.raises(ValueError, match="wire_native"):
            TrafficSpec(srtp=PROFILE)
        TrafficSpec(srtp=PROFILE, wire_native=True)  # valid

    def test_software_backend_rejects_srtp(self):
        from repro.scenario.driver import build_scenario
        from repro.scenario.spec import BackendSpec, MeetingSpec, Scenario, TrafficSpec

        scenario = Scenario(
            name="srtp-on-software",
            meetings=(MeetingSpec(participants=2),),
            backend=BackendSpec(kind="software"),
            traffic=TrafficSpec(wire_native=True, srtp=PROFILE),
            duration_s=1.0,
            seed=5,
        )
        with pytest.raises(ValueError, match="scallop backend"):
            build_scenario(scenario)

    def test_protected_scenario_end_to_end(self):
        # client protects with ingress keys -> datapath re-keys to egress ->
        # receivers verify: media must flow with zero rx auth failures
        from repro.scenario.driver import build_scenario
        from repro.scenario.spec import BackendSpec, MeetingSpec, Scenario, TrafficSpec

        scenario = Scenario(
            name="srtp-end-to-end",
            meetings=tuple(MeetingSpec(participants=3) for _ in range(2)),
            backend=BackendSpec(kind="scallop", n_shards=2, shard_executor="thread"),
            traffic=TrafficSpec(wire_native=True, frame_bursts=True, srtp=PROFILE),
            duration_s=3.0,
            seed=9,
        )
        with build_scenario(scenario) as run:
            run.run()
            assert run.reconcile() == []
            assert run.sfu.stats.packets_out > 0
            for client in run.clients:
                assert client.srtp_rx_auth_failures == 0
            received = sum(
                stream.packets_received
                for client in run.clients
                for stream in client.video_receivers.values()
            )
            assert received > 0
            assert run.sfu.pipeline.counters.srtp_auth_failures == 0
