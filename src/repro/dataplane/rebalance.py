"""Load-aware shard placement policy: skew in, migration plans out.

This is the *policy* leg of the telemetry -> policy -> migration control loop.
:class:`~repro.dataplane.loadstats.FlowLoadTracker` supplies smoothed per-flow
and per-shard packet rates; this module turns observed skew into an explicit
:class:`MigrationPlan` — a list of ``flow -> shard`` moves — that the sharded
engine executes at the next batch boundary
(:meth:`~repro.dataplane.sharding.ShardedScallopPipeline.apply_migrations`).
The policy never touches engine state itself, so it is trivially unit-testable
and the same planner drives both executors.

The algorithm is **greedy hottest-flow-to-coldest-shard**: while the plan's
projected load still leaves the hottest shard above target, take the hottest
movable flow on the (projected) hottest shard and move it to the (projected)
coldest shard.  Greedy is the right tool here: placements are re-decided every
epoch against fresh telemetry, so an optimal one-shot bin packing would be
stale by its second epoch anyway, and greedy's worst case (a flow bigger than
the per-shard mean, which no placement can fix) is detected and skipped.

Stability knobs (all on :class:`RebalancerConfig`) — rebalancers oscillate
unless they are deliberately damped, so every decision is gated three ways:

``trigger_ratio`` / ``target_ratio`` (hysteresis)
    The planner does nothing until max/mean per-shard load exceeds
    ``trigger_ratio`` (the high-water mark), and once planning it stops as
    soon as the projected ratio falls below ``target_ratio`` (the low-water
    mark, strictly smaller).  The gap between the two is the hysteresis band:
    a system balanced to ``target_ratio`` must drift all the way past
    ``trigger_ratio`` before the planner acts again, so borderline skew
    cannot cause migration every epoch.

``migration_budget`` (churn bound per epoch)
    At most this many flows move per plan.  Each migration invalidates the
    engine's flow-routing cache and, under the process executor, ships the
    flow's rewriter register images to the destination worker — bounded churn
    keeps that cost strictly amortized.  Whatever skew the budget leaves
    behind is picked up next epoch, by which time the telemetry has also seen
    the effect of this epoch's moves.

``cooldown_epochs`` (per-flow damping)
    A flow that just moved may not move again for this many epochs.  Without
    it, two near-equal hot flows can ping-pong between two shards on
    alternating epochs while the EWMA catches up with their last move.

``min_flow_rate``
    Flows below this smoothed rate are never moved: their contribution is
    noise-level, and migrating them spends budget without moving load.

``egress_weight``
    How strongly a flow's *replica fan-out* counts toward its load.  Packet
    rate alone under-weights senders in big meetings: a 10-participant
    meeting costs ~3x the egress replication of a 3-participant one at equal
    ingress rate.  The telemetry tracks a per-flow egress EWMA
    (:attr:`~repro.dataplane.loadstats.FlowLoadRow.egress_rate`, fed from the
    replicas each batch actually produced), and every planning quantity —
    shard loads, trigger/target ratios, flow ranking, the hot/cold gap — uses
    ``rate + egress_weight * egress_rate``, so the policy balances the work
    the SFU performs (egress replication), not just ingress packet counts.
    ``0.0`` restores pure ingress-rate balancing.

Every decision is projected, not measured: within one plan the planner moves
flows against its own running projection of per-shard load, so a single plan
cannot overshoot by moving three hot flows onto the same cold shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .loadstats import FlowKey, FlowLoadTracker


@dataclass(frozen=True)
class RebalancerConfig:
    """Knobs of the placement policy (see the module docstring for rationale)."""

    #: Decide placements every this many observed batches.
    epoch_batches: int = 8
    #: High-water mark: plan only when max/mean shard load exceeds this.
    trigger_ratio: float = 1.25
    #: Low-water mark: stop moving once the projected ratio falls below this.
    target_ratio: float = 1.10
    #: Maximum flows migrated per epoch.
    migration_budget: int = 4
    #: Epochs a freshly migrated flow is pinned before it may move again.
    cooldown_epochs: int = 2
    #: Smoothed load units below which a flow is never worth moving.
    min_flow_rate: float = 0.5
    #: EWMA smoothing factor handed to the telemetry tracker.
    ewma_alpha: float = 0.3
    #: Weight of a flow's egress replica fan-out in its load contribution
    #: (``weight = rate + egress_weight * egress_rate``); 0 = ingress only.
    egress_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.epoch_batches < 1:
            raise ValueError("epoch_batches must be >= 1")
        if not self.target_ratio >= 1.0:
            raise ValueError("target_ratio must be >= 1.0")
        if self.trigger_ratio <= self.target_ratio:
            raise ValueError("trigger_ratio must exceed target_ratio (hysteresis band)")
        if self.migration_budget < 1:
            raise ValueError("migration_budget must be >= 1")
        if self.egress_weight < 0.0:
            raise ValueError("egress_weight must be >= 0 (0 = ingress-only balancing)")


@dataclass(frozen=True)
class FlowMigration:
    """One planned move: ``flow`` leaves ``from_shard`` for ``to_shard``."""

    flow: FlowKey
    from_shard: int
    to_shard: int
    #: Smoothed load units (packets + weighted egress replicas per batch)
    #: the move transfers (diagnostics).
    rate: float


@dataclass
class MigrationPlan:
    """The policy's output for one epoch."""

    migrations: List[FlowMigration] = field(default_factory=list)
    #: max/mean shard-load ratio the plan was computed against.
    observed_skew: float = 1.0
    #: Projected max/mean ratio after all planned moves execute.
    projected_skew: float = 1.0

    def __bool__(self) -> bool:
        return bool(self.migrations)


class ShardRebalancer:
    """Greedy hottest-flow-to-coldest-shard planner with hysteresis."""

    #: Retained decision-log entries; epochs beyond this roll off the front.
    DECISION_LOG_LIMIT = 256

    def __init__(self, n_shards: int, config: Optional[RebalancerConfig] = None) -> None:
        self.n_shards = n_shards
        self.config = config or RebalancerConfig()
        self.epochs_planned = 0
        self.flows_migrated = 0
        #: Epochs whose plan actually contained moves (vs. hysteresis no-ops).
        self.plans_with_migrations = 0
        #: Skew the most recent plan observed / projected (telemetry gauges).
        self.last_observed_skew = 1.0
        self.last_projected_skew = 1.0
        #: Bounded per-epoch decision trail: ``(epoch, moves, observed skew,
        #: projected skew)`` tuples, newest last.
        self.decision_log: List[Tuple[int, int, float, float]] = []

    def plan(self, tracker: FlowLoadTracker) -> MigrationPlan:
        """Compute this epoch's migrations from the tracker's smoothed rates.

        Pure function of the telemetry (plus the planner's own tallies): it
        mutates no engine state and returns an empty plan whenever the skew
        sits inside the hysteresis band or nothing movable would improve it.
        """
        config = self.config
        self.epochs_planned += 1
        # loads are egress-weighted: a shard hosting few-but-fanned-out flows
        # ranks as hot even when its ingress packet rate looks moderate
        loads = tracker.shard_weights(config.egress_weight)
        total = sum(loads)
        if self.n_shards >= 2 and total > 0.0:
            observed = max(loads) / (total / self.n_shards)
        else:
            observed = 1.0
        plan = MigrationPlan(observed_skew=observed, projected_skew=observed)
        if self.n_shards < 2 or total <= 0.0:
            return self._note_decision(plan)
        mean = total / self.n_shards
        if max(loads) / mean <= config.trigger_ratio:
            # inside the hysteresis band: leave placement alone
            return self._note_decision(plan)

        cooldown_floor = tracker.batches_observed - config.cooldown_epochs * config.epoch_batches
        moved: set = set()
        for _ in range(config.migration_budget):
            hot = max(range(self.n_shards), key=loads.__getitem__)
            cold = min(range(self.n_shards), key=loads.__getitem__)
            if loads[hot] / mean <= config.target_ratio:
                break  # reached the low-water mark: stop early
            candidate = self._best_move(tracker, hot, cold, loads, moved, cooldown_floor)
            if candidate is None:
                break  # nothing movable improves the projection
            key, rate = candidate
            loads[hot] -= rate
            loads[cold] += rate
            moved.add(key)
            plan.migrations.append(
                FlowMigration(flow=key, from_shard=hot, to_shard=cold, rate=rate)
            )
        plan.projected_skew = max(loads) / mean
        self.flows_migrated += len(plan.migrations)
        if plan.migrations:
            self.plans_with_migrations += 1
        return self._note_decision(plan)

    def _note_decision(self, plan: MigrationPlan) -> MigrationPlan:
        """Record the epoch's outcome (bounded) and pass the plan through."""
        self.last_observed_skew = plan.observed_skew
        self.last_projected_skew = plan.projected_skew
        log = self.decision_log
        log.append(
            (self.epochs_planned, len(plan.migrations), plan.observed_skew, plan.projected_skew)
        )
        if len(log) > self.DECISION_LOG_LIMIT:
            del log[: len(log) - self.DECISION_LOG_LIMIT]
        return plan

    def _best_move(
        self,
        tracker: FlowLoadTracker,
        hot: int,
        cold: int,
        loads: Sequence[float],
        moved: set,
        cooldown_floor: int,
    ) -> Optional[Tuple[FlowKey, float]]:
        """The heaviest flow on ``hot`` whose move to ``cold`` shrinks the gap.

        A move only helps while the transferred load is smaller than the
        hot/cold gap; moving more than the gap just relabels which shard
        is hot (the ping-pong the cooldown also guards against).  Flows still
        in cooldown, below the noise floor, or already moved this epoch are
        skipped.  Load is the egress-weighted flow weight, so the planner
        prefers moving a big meeting's sender over an equally chatty sender
        whose fan-out is small.
        """
        gap = loads[hot] - loads[cold]
        if gap <= 0.0:
            return None
        egress_weight = self.config.egress_weight
        for key, row in tracker.hottest_flows(
            hot, min_rate=self.config.min_flow_rate, egress_weight=egress_weight
        ):
            if key in moved:
                continue
            if row.last_migrated_batch >= cooldown_floor and row.last_migrated_batch >= 0:
                continue
            weight = row.weight(egress_weight)
            if weight < gap:  # strictly shrinks the hot/cold gap
                return key, weight
        return None
