"""Runtime shard-isolation sanitizer: write-barrier proxies over the
datapath's view of control-plane state.

archlint (``tools/archlint``) enforces the share-nothing discipline at the
AST level, but static analysis cannot see mutations through aliased
references (``table = self.stream_table; table.install(...)``).  This module
is the dynamic half of the same invariant: an opt-in debug mode that wraps
each :class:`~repro.dataplane.pipeline.PipelineDatapath`'s read-mostly
control-plane bindings (``pre``, the four hot tables, and ``control``
itself) in :class:`WriteBarrierProxy` objects.  Reads forward transparently
— ``lookup``/``peek``/``read``/``replicate`` and the PRE's sanctioned
data-plane accounting behave identically, so sanitized runs stay
byte-identical to unsanitized ones — while any mutating method call or
attribute store from datapath-held references raises
:class:`ShardIsolationError` and lands in a per-shard
:class:`IsolationLog` consumable by tests.

Enable it with ``REPRO_SANITIZE=1`` in the environment (reaches process-pool
shard workers too, which rebuild their datapaths from a forked environment)
or explicitly via ``ShardedScallopPipeline(..., sanitize=True)`` /
``ScallopPipeline(..., sanitize=True)``.  The engines' own control handles
stay unwrapped — the control plane mutating its own state is the sanctioned
path — so the whole existing control API works unchanged under the
sanitizer.

Why this matters now: under the GIL a stray cross-shard write is benign
interleaving; under free-threaded CPython (the ROADMAP's next scaling step)
it is a data race.  The sanitizer makes such writes loud while they are
still deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "IsolationLog",
    "IsolationViolation",
    "ShardIsolationError",
    "WriteBarrierProxy",
    "resolve_sanitize",
    "sanitize_datapath",
]


class ShardIsolationError(RuntimeError):
    """A datapath-held reference attempted a control-plane mutation."""


@dataclass(frozen=True)
class IsolationViolation:
    """One blocked mutation attempt, as recorded in the access log."""

    shard_id: int
    target: str  # e.g. "stream_table.install"
    operation: str  # "call" | "setattr" | "setitem" | "delitem" | "delattr"
    detail: str

    def render(self) -> str:
        return f"shard {self.shard_id}: {self.operation} {self.target} ({self.detail})"


@dataclass
class IsolationLog:
    """Per-shard cross-shard access log.

    ``read_counts`` tallies every method fetched through a write barrier
    (the datapath's traffic into shared control-plane structures — cheap to
    record, and enough for tests to assert the barrier actually sits on the
    hot path), ``violations`` records every blocked mutation attempt before
    the :class:`ShardIsolationError` is raised.
    """

    shard_id: int
    read_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[IsolationViolation] = field(default_factory=list)

    def note_read(self, target: str) -> None:
        self.read_counts[target] = self.read_counts.get(target, 0) + 1

    def violation(self, target: str, operation: str, detail: str) -> ShardIsolationError:
        """Record a blocked mutation and mint the error for the caller to
        raise (record-then-raise, so the log survives the exception)."""
        record = IsolationViolation(
            shard_id=self.shard_id, target=target, operation=operation, detail=detail
        )
        self.violations.append(record)
        return ShardIsolationError(
            f"shard isolation violated: {record.render()} — datapath code must "
            "not mutate control-plane state; route the write through a "
            "PipelineControlPlane method"
        )


#: Method names blocked by the write barrier.  A *superset* of archlint's
#: ``MUTATING_METHODS`` (tools/archlint/rules.py): every control-plane write
#: API plus the generic container mutators, plus the worker-local replica API
#: (``build_worker_datapath``/``apply_tracker_images``), which process-pool
#: workers may call on their own unpickled replica but a datapath must never
#: reach through its shared-control proxy.  Conspicuously absent: ``lookup``,
#: ``peek``, ``read``, ``entries``, ``replicate``, ``expand``,
#: ``note_replication``, ``write_stamp`` — the sanctioned data-plane surface.
BLOCKED_METHODS = frozenset(
    {
        "install",
        "install_many",
        "remove",
        "write",
        "clear",
        "allocate",
        "release",
        "create_tree",
        "destroy_tree",
        "add_node",
        "remove_node",
        "install_stream",
        "remove_stream",
        "install_replica_target",
        "remove_replica_target",
        "install_adaptation",
        "update_adaptation_templates",
        "remove_adaptation",
        "install_feedback_rule",
        "remove_feedback_rule",
        "install_placement",
        "remove_placement",
        "remove_placements_for",
        "reattribute_ssrc_charges",
        "set_charge_scope_router",
        "attach_datapath",
        "build_worker_datapath",
        "apply_tracker_images",
        "_write_tracker",
        "allocate_stream_state",
        "release_stream_state",
        "allocate_tree",
        "release_tree",
        "defer_version_bumps",
        "commit_version_bumps",
        "defer_generation_bumps",
        "commit_generation_bumps",
        "batched_writes",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "append",
        "extend",
    }
)


class WriteBarrierProxy:
    """Transparent read proxy that raises on mutation.

    Attribute reads and non-mutating method calls forward to the wrapped
    object (its internal counters — table ``lookups``/``hits``, PRE tallies —
    advance exactly as without the proxy, which is what keeps sanitized runs
    byte-identical).  Mutating method calls, attribute stores, and item
    stores raise :class:`ShardIsolationError` after logging.
    """

    __slots__ = ("_wbp_target", "_wbp_label", "_wbp_log")

    def __init__(self, target: object, label: str, log: IsolationLog) -> None:
        object.__setattr__(self, "_wbp_target", target)
        object.__setattr__(self, "_wbp_label", label)
        object.__setattr__(self, "_wbp_log", log)

    # -- reads forward -------------------------------------------------------

    def __getattr__(self, name: str):
        target = object.__getattribute__(self, "_wbp_target")
        value = getattr(target, name)
        if callable(value):
            label = object.__getattribute__(self, "_wbp_label")
            log = object.__getattribute__(self, "_wbp_log")
            qualified = f"{label}.{name}"
            if name in BLOCKED_METHODS:
                def _blocked(*args, **kwargs):
                    raise log.violation(
                        qualified,
                        "call",
                        f"args={args!r}"[:200],
                    )

                return _blocked
            log.note_read(qualified)
        return value

    def __getitem__(self, key):
        return object.__getattribute__(self, "_wbp_target")[key]

    def __contains__(self, key) -> bool:
        return key in object.__getattribute__(self, "_wbp_target")

    def __len__(self) -> int:
        return len(object.__getattribute__(self, "_wbp_target"))

    def __iter__(self):
        return iter(object.__getattribute__(self, "_wbp_target"))

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_wbp_target")
        label = object.__getattribute__(self, "_wbp_label")
        return f"<sanitized {label}: {target!r}>"

    # -- writes raise --------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        log = object.__getattribute__(self, "_wbp_log")
        label = object.__getattribute__(self, "_wbp_label")
        raise log.violation(f"{label}.{name}", "setattr", f"value={value!r}"[:200])

    def __delattr__(self, name: str) -> None:
        log = object.__getattribute__(self, "_wbp_log")
        label = object.__getattribute__(self, "_wbp_label")
        raise log.violation(f"{label}.{name}", "delattr", "")

    def __setitem__(self, key, value) -> None:
        log = object.__getattribute__(self, "_wbp_log")
        label = object.__getattribute__(self, "_wbp_label")
        raise log.violation(f"{label}[{key!r}]", "setitem", f"value={value!r}"[:200])

    def __delitem__(self, key) -> None:
        log = object.__getattribute__(self, "_wbp_log")
        label = object.__getattribute__(self, "_wbp_label")
        raise log.violation(f"{label}[{key!r}]", "delitem", "")


def resolve_sanitize(flag) -> bool:
    """Resolve the tri-state sanitize switch: an explicit ``True``/``False``
    wins; ``None`` defers to the ``REPRO_SANITIZE`` environment variable
    (which is what reaches process-pool shard workers)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


#: The datapath attributes wrapped by :func:`sanitize_datapath` — the
#: read-mostly control-plane bindings established in
#: ``PipelineDatapath.__init__`` (``trackers`` stays raw: it is the shard's
#: own register view, and control-plane fan-out writes to it through the raw
#: datapath attribute, not through the shard's proxy).
SANITIZED_BINDINGS = ("control", "pre", "stream_table", "replica_table", "adaptation_table", "feedback_table")


def sanitize_datapath(datapath) -> IsolationLog:
    """Install write barriers over a datapath's control-plane bindings.

    Called from ``PipelineDatapath.__init__`` after the read-mostly aliases
    are bound; returns the shard's :class:`IsolationLog`.  Only the
    *datapath-held* references are wrapped — the engine facade and the
    control plane keep raw handles, so the sanctioned write path is
    untouched.
    """
    log = IsolationLog(shard_id=datapath.shard_id)
    for name in SANITIZED_BINDINGS:
        setattr(datapath, name, WriteBarrierProxy(getattr(datapath, name), name, log))
    return log
