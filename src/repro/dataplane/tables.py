"""Match-action tables and register arrays of the data-plane model.

These are deliberately simple: an exact-match table is a bounded dictionary
whose entries are installed by the control plane; a register array is a
bounded list of mutable cells accessed by index.  What matters for fidelity is
that (1) only the control plane writes table entries, (2) the data plane can
only read/update registers by index in a streaming fashion, and (3) sizes are
bounded by the SRAM budget — all three properties are relied on by Scallop's
design and enforced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class TableFull(RuntimeError):
    """Raised when installing an entry into a full table."""


class ExactMatchTable(Generic[K, V]):
    """A bounded exact-match (SRAM) table installed by the control plane."""

    def __init__(self, name: str, max_entries: int) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: Dict[K, V] = {}
        self.lookups = 0
        self.hits = 0
        #: Monotonic write-generation counter; bumped on every install/remove
        #: so data-plane caches keyed on table contents can detect staleness.
        self.version = 0
        #: Version-bump deferral (control-plane write batching): while
        #: deferred, writes mutate entries immediately but the generation
        #: moves only once, at :meth:`commit_version_bumps`.
        self._version_deferred = False
        self._pending_bump = False

    def install(self, key: K, value: V) -> None:
        """Install or overwrite an entry (control-plane operation)."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise TableFull(f"table {self.name} is full ({self.max_entries} entries)")
        self._entries[key] = value
        self._bump_version()

    def remove(self, key: K) -> None:
        if self._entries.pop(key, None) is not None:
            self._bump_version()

    def _bump_version(self) -> None:
        if self._version_deferred:
            self._pending_bump = True
        else:
            self.version += 1

    def defer_version_bumps(self) -> None:
        """Start coalescing generation bumps (see
        :meth:`~repro.dataplane.pipeline.PipelineControlPlane.batched_writes`)."""
        self._version_deferred = True

    def commit_version_bumps(self) -> None:
        """Stop coalescing; if anything was written, bump the generation once."""
        self._version_deferred = False
        if self._pending_bump:
            self._pending_bump = False
            self.version += 1

    def lookup(self, key: K) -> Optional[V]:
        """Data-plane lookup; returns None on a table miss."""
        self.lookups += 1
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        return value

    def peek(self, key: K) -> Optional[V]:
        """Control-plane read: same result as :meth:`lookup` without
        perturbing the data-plane ``lookups``/``hits`` tallies."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def entries(self) -> Iterator[Tuple[K, V]]:
        return iter(self._entries.items())

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.max_entries if self.max_entries else 0.0


class RegisterArray(Generic[V]):
    """A bounded array of register cells, read-modify-written by the data plane.

    The control plane assigns indices (collision-free, per §6.3); the data
    plane may only access one cell per packet per array, which is how the real
    pipeline works and why the sequence-rewrite state is split across six
    arrays accessed in order.
    """

    def __init__(self, name: str, size: int, initial: Optional[V] = None) -> None:
        self.name = name
        self.size = size
        self._cells: List[Optional[V]] = [initial] * size
        self._used = size if initial is not None else 0
        self.accesses = 0

    def read(self, index: int) -> Optional[V]:
        self._check_index(index)
        self.accesses += 1
        return self._cells[index]

    def peek(self, index: int) -> Optional[V]:
        """Control-plane read that does not count as a data-plane access."""
        self._check_index(index)
        return self._cells[index]

    def write(self, index: int, value: Optional[V]) -> None:
        self._check_index(index)
        self.accesses += 1
        old = self._cells[index]
        if old is None and value is not None:
            self._used += 1
        elif old is not None and value is None:
            self._used -= 1
        self._cells[index] = value

    def clear(self, index: int) -> None:
        self.write(index, None)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register index {index} out of range for {self.name}[{self.size}]")

    def used_cells(self) -> int:
        return self._used

    def used_entries(self) -> Iterator[Tuple[int, V]]:
        """Iterate the occupied cells as (index, value) pairs."""
        if self._used:
            for index, cell in enumerate(self._cells):
                if cell is not None:
                    yield index, cell


class IndexAllocator:
    """Collision-free stream-index allocation managed by the control plane.

    The paper's control plane guarantees zero hash collisions by assigning
    each new stream a unique index in the Stream Index match-action table so
    that every cell of the Stream Tracker register arrays is usable.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._free: List[int] = list(range(size - 1, -1, -1))
        self._allocated: Dict[Hashable, int] = {}

    def allocate(self, key: Hashable) -> int:
        """Allocate (or return the existing) index for a stream key."""
        if key in self._allocated:
            return self._allocated[key]
        if not self._free:
            raise TableFull("no free stream indices")
        index = self._free.pop()
        self._allocated[key] = index
        return index

    def release(self, key: Hashable) -> None:
        index = self._allocated.pop(key, None)
        if index is not None:
            self._free.append(index)

    def lookup(self, key: Hashable) -> Optional[int]:
        return self._allocated.get(key)

    @property
    def in_use(self) -> int:
        return len(self._allocated)

    @property
    def available(self) -> int:
        return len(self._free)
