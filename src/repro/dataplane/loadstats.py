"""Per-flow / per-shard load telemetry for the placement control loop.

The sharded engine (:class:`~repro.dataplane.sharding.ShardedScallopPipeline`)
partitions ingress bursts across share-nothing datapath shards with a static
CRC32 flow hash.  That hash knows nothing about load: a handful of hot senders
(big meetings, high frame rates) can pin one shard at a multiple of its
siblings' packet rate while the hash keeps feeding it.  This module is the
*telemetry* leg of the closed telemetry -> policy -> migration loop that fixes
that: it observes every batch at the partitioning point, folds the counts into
exponentially-weighted moving averages, and exposes the smoothed per-flow and
per-shard rates that the placement policy
(:mod:`repro.dataplane.rebalance`) decides over.

Design notes:

* **EWMA over raw counts.**  Batch sizes follow instantaneous simulation load
  (NIC-style moderation upstream), so raw per-batch counts are spiky.  The
  tracker smooths with ``rate = alpha * batch_count + (1 - alpha) * rate``
  per observed batch, which converges on the per-batch packet rate while
  damping one-off bursts; ``alpha`` trades reactivity against stability and
  is owned by the policy config.
* **Flows are the unit of placement.**  A flow is the partition key the engine
  already routes on — ``(source address, SSRC)`` for RTP media, ``(source
  address, -1)`` for a sender's control traffic — so the tracker's per-flow
  rows are directly actionable: every row *can* be migrated.
* **Shard rows combine traffic with occupancy.**  ``shard_rates`` is derived
  from the same flow observations (so policy math is self-consistent), while
  :meth:`observe_shard_load` folds in the
  ``shard_load()``/:class:`~repro.dataplane.resources.ShardResourceAccountant`
  attribution views.  Occupancy is surfaced as diagnostics
  (:meth:`FlowLoadTracker.snapshot`) today; the policy ranks by packet rate
  only — weighing occupancy into the ranking is a ROADMAP open item.
* **Bounded.**  Junk traffic mints unknown flow keys; the tracker keeps at
  most ``max_flows`` rows and evicts the coldest when full, which is safe
  because a flow cold enough to be evicted is by definition not a migration
  candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netsim.datagram import Address

#: A placement-addressable flow: ``(source address, ssrc)`` with ``ssrc=-1``
#: for non-RTP control traffic of that source.
FlowKey = Tuple[Address, int]


@dataclass
class FlowLoadRow:
    """Smoothed load state of one flow."""

    shard: int
    rate: float = 0.0           # EWMA packets per batch (ingress)
    #: EWMA *replicas* per batch: the flow's egress fan-out.  A sender in a
    #: 10-participant meeting costs ~3x the egress work of one in a
    #: 3-participant meeting at equal ingress rate; this term is what lets
    #: the placement policy balance egress work, not just ingress packets.
    egress_rate: float = 0.0
    packets_total: int = 0      # lifetime packet count (diagnostics)
    last_seen_batch: int = 0    # batch index of the last observation
    #: Batch index of the flow's last migration (policy cooldown input).
    last_migrated_batch: int = -1

    def weight(self, egress_weight: float = 0.0) -> float:
        """The flow's load contribution: ingress rate plus weighted fan-out."""
        return self.rate + egress_weight * self.egress_rate


class FlowLoadTracker:
    """EWMA-smoothed per-flow and per-shard packet-load telemetry.

    Fed by the sharded engine once per processed batch with the per-flow
    packet counts it already computed while partitioning (so telemetry costs
    one dict pass per batch, not per packet).  All rates are in packets per
    observed batch.
    """

    def __init__(self, n_shards: int, alpha: float = 0.3, max_flows: int = 4096) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.alpha = alpha
        self.max_flows = max_flows
        self.batches_observed = 0
        self.flows: Dict[FlowKey, FlowLoadRow] = {}
        #: EWMA packets per batch per shard, derived from the same per-flow
        #: observations the policy ranks, so the two views cannot disagree.
        self.shard_rates: List[float] = [0.0] * n_shards
        #: Latest occupancy attribution per shard (fed from ``shard_load()``).
        self.shard_occupancy: List[float] = [0.0] * n_shards

    # ------------------------------------------------------------------ feeding

    def observe_batch(
        self,
        flow_counts: Mapping[FlowKey, int],
        flow_shards: Mapping[FlowKey, int],
        flow_replicas: Optional[Mapping[FlowKey, int]] = None,
    ) -> None:
        """Fold one batch's per-flow packet counts into the moving averages.

        ``flow_counts`` maps each flow seen this batch to its packet count;
        ``flow_shards`` maps it to the shard that processed it (the engine's
        current placement); ``flow_replicas`` (optional) maps it to the
        egress replicas the batch produced for it, feeding the per-flow
        fan-out EWMA the policy's egress weighting reads.  Flows *not* seen
        this batch decay toward zero.
        """
        self.batches_observed += 1
        batch = self.batches_observed
        alpha = self.alpha
        decay = 1.0 - alpha
        flows = self.flows

        shard_totals = [0.0] * self.n_shards
        for key, count in flow_counts.items():
            shard = flow_shards[key]
            replicas = flow_replicas.get(key, 0) if flow_replicas is not None else 0
            row = flows.get(key)
            if row is None:
                if len(flows) >= self.max_flows:
                    self._evict_coldest()
                row = flows[key] = FlowLoadRow(shard=shard)
                row.rate = float(count)
                row.egress_rate = float(replicas)
            else:
                row.rate = alpha * count + decay * row.rate
                row.egress_rate = alpha * replicas + decay * row.egress_rate
                row.shard = shard
            row.packets_total += count
            row.last_seen_batch = batch
        # decay flows silent this batch (they contributed 0 packets)
        for key, row in flows.items():
            if row.last_seen_batch != batch:
                row.rate *= decay
                row.egress_rate *= decay
            shard_totals[row.shard] += row.rate
        for shard in range(self.n_shards):
            self.shard_rates[shard] = shard_totals[shard]

    def observe_shard_load(self, rows: Sequence[Mapping[str, float]]) -> None:
        """Fold the engine's ``shard_load()`` occupancy attribution in."""
        for row in rows:
            shard = int(row["shard"])
            if 0 <= shard < self.n_shards:
                self.shard_occupancy[shard] = float(row["stream_tracker_occupancy"])

    def forget_flows(self, src: Address) -> int:
        """Drop every tracked flow of ``src`` (participant leave); the rows
        would only decay toward zero otherwise, and a later joiner reusing
        the address must start from fresh telemetry."""
        stale = [key for key in self.flows if key[0] == src]
        for key in stale:
            del self.flows[key]
        return len(stale)

    def note_migration(self, key: FlowKey, to_shard: int) -> None:
        """Record that a flow was just migrated (policy cooldown anchor)."""
        row = self.flows.get(key)
        if row is not None:
            row.shard = to_shard
            row.last_migrated_batch = self.batches_observed

    def _evict_coldest(self) -> None:
        coldest = min(self.flows, key=lambda key: self.flows[key].rate)
        del self.flows[coldest]

    # ------------------------------------------------------------------ reading

    def skew_ratio(self) -> float:
        """Max/mean per-shard smoothed packet rate (1.0 = perfectly even)."""
        total = sum(self.shard_rates)
        if total <= 0.0 or self.n_shards < 2:
            return 1.0
        mean = total / self.n_shards
        return max(self.shard_rates) / mean

    def shard_weights(self, egress_weight: float = 0.0) -> List[float]:
        """Per-shard load including the egress fan-out term.

        With ``egress_weight=0`` this equals :attr:`shard_rates` (ingress
        packets only); a positive weight folds each flow's replica fan-out
        in, so the policy balances the work the SFU actually performs —
        egress replication — not just ingress packet counts.
        """
        totals = [0.0] * self.n_shards
        for row in self.flows.values():
            totals[row.shard] += row.weight(egress_weight)
        return totals

    def hottest_flows(
        self, shard: int, min_rate: float = 0.0, egress_weight: float = 0.0
    ) -> List[Tuple[FlowKey, FlowLoadRow]]:
        """Flows currently placed on ``shard``, heaviest first.

        Ranking and the noise floor both use :meth:`FlowLoadRow.weight`, so
        with an egress weight a modest-ingress/huge-fan-out sender outranks
        a chattier sender whose meeting is small.
        """
        rows = [
            (key, row)
            for key, row in self.flows.items()
            if row.shard == shard and row.weight(egress_weight) > min_rate
        ]
        rows.sort(key=lambda item: item[1].weight(egress_weight), reverse=True)
        return rows

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic snapshot (benchmarks and the example CLI print this)."""
        return {
            "batches_observed": self.batches_observed,
            "flows_tracked": len(self.flows),
            "shard_rates": [round(rate, 3) for rate in self.shard_rates],
            "shard_occupancy": list(self.shard_occupancy),
            "skew_ratio": round(self.skew_ratio(), 4),
        }
