"""Flow-sharded Scallop pipeline: N share-nothing datapaths, one control plane.

Scallop's scaling argument is that per-flow packet operations are independent
(the Scalable Commutativity Rule): two packets of different ``(src, ssrc)``
flows touch disjoint forwarding, adaptation, and rewriter state.  The sharded
engine exploits that by partitioning every ingress burst with a deterministic
``hash(src, ssrc) % n_shards`` and running each partition through its own
:class:`~repro.dataplane.pipeline.PipelineDatapath` — private parser, private
counters, private flow-resolution caches, private sequence-rewriter register
view — while a single :class:`~repro.dataplane.pipeline.PipelineControlPlane`
remains the only shared state (tables and PRE configuration are read-mostly;
control-plane writes fan out and bump generations that each shard observes
independently).  Results are reassembled in input order, byte-identical to
the unsharded pipeline; resource charges land in one global
:class:`~repro.dataplane.resources.ResourceAccountant` ledger with per-shard
attribution views.

Execution backends
------------------

``serial`` (default) runs the shards in-process, one after another.  This
models the partitioning and keeps all state live, but offers no wall-clock
speedup: the shards' Python bytecode all contends for one interpreter and one
GIL, so k serial shards do the same work as one datapath plus partitioning
overhead.  That bound is a property of CPython, not of the architecture — the
per-shard state is already share-nothing.

``thread`` drives the same in-process datapaths from a persistent per-shard
worker-thread pool (:class:`ThreadShardRunner`): no snapshots, no codec, no
register shipping — state is shared, so a migration is nothing beyond the
coordinator's placement-table write.  On GIL builds it is correct but
GIL-bound (byte-identical to serial, verified under churn and live
migration); on free-threaded CPython (3.13t+, PEP 703) the shards genuinely
run in parallel, which is where the share-nothing discipline CI enforces
(archlint + the runtime sanitizer) pays off as wall-clock speedup.  The one
piece of shared state a datapath's packet path *writes* — PRE and table
lookup accounting — is accumulated in per-datapath local stats and folded
back at the batch barrier (see
:class:`~repro.dataplane.pipeline.DatapathLocalStats`).

``process`` is the escape hatch for real parallelism: each shard is pinned to
its own single-worker process pool holding a replica of the control plane
(resynchronized whenever any control-plane write generation moves).  Batches
cross the process boundary through the **zero-pickle packed transport**
(:mod:`repro.dataplane.shardcodec`): each shard receives one flat
length-prefixed blob carrying only what the datapath reads — source address,
wire size, and the RTP header region; media payload bytes never leave the
coordinator.  Results return as packed rewrite descriptions (destination +
optional rewritten sequence number per replica) that the coordinator replays
against the original payloads it kept, and mutated sequence-rewriter state
returns as packed register images
(:func:`repro.core.seqrewrite.pack_rewriter_state`) folded into the canonical
registers after every batch.  Pickle survives in exactly two places: the rare
control-plane snapshot on generation change, and per-record fallbacks for
traffic the packed forms cannot express (RTCP feedback fan-out, exotic
rewriter classes).  Per-batch transport volume is tracked in
:attr:`ProcessShardRunner.transport` so benchmarks can compare it against the
old pickled object graphs.

Load-aware placement
--------------------

The flow -> shard map is a **two-level lookup**: a generation-stamped
placement exception table owned by the control plane
(:attr:`~repro.dataplane.pipeline.PipelineControlPlane.placement_table`)
consulted first, with the deterministic CRC32 hash as the default for every
flow not pinned there.  :meth:`ShardedScallopPipeline.enable_rebalancing`
closes the loop around it: per-flow packet counts collected while
partitioning feed an EWMA tracker (:mod:`repro.dataplane.loadstats`), a
greedy hysteresis-damped policy (:mod:`repro.dataplane.rebalance`) turns
observed skew into migration plans, and :meth:`ShardedScallopPipeline.migrate_flow`
executes them at batch boundaries — the migrating sender's rewriter register
state follows the flow (shared objects in ``serial`` mode; packed
:func:`~repro.core.seqrewrite.pack_rewriter_state` images shipped to the
destination worker in ``process`` mode), so outputs remain byte-identical to
the unsharded pipeline across every migration epoch.
"""

from __future__ import annotations

import pickle
import threading
import zlib
from dataclasses import dataclass, field as dataclass_field
from queue import SimpleQueue
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..netsim.datagram import Address, Datagram
from ..obs.hooks import DatapathObs, ObsConfig
from ..obs.registry import SIZE_BYTES_BUCKETS, MetricsRegistry
from ..rtp.packet import RtpPacket
from ..rtp.wire import PacketView
from ..rtp.wirebatch import WireBatchView
from .loadstats import FlowKey, FlowLoadTracker
from .rebalance import MigrationPlan, RebalancerConfig, ShardRebalancer
from .pipeline import (
    ControlPlaneFacade,
    PipelineControlPlane,
    PipelineCounters,
    PipelineDatapath,
    PipelineResult,
)
from .resources import (
    DEFAULT_CAPACITIES,
    ShardResourceAccountant,
    TofinoCapacities,
)
from .sanitize import IsolationViolation, resolve_sanitize
from .shardcodec import (
    ShardBlobWriter,
    decode_ingress_batch,
    decode_result_batch,
    decode_tracker_updates,
    encode_ingress_batch,
    encode_result_batch,
    encode_tracker_updates,
)
from .tables import RegisterArray


def flow_shard(src: Address, ssrc: int, n_shards: int) -> int:
    """Deterministic flow -> shard mapping.

    Uses CRC32 over the canonical flow string rather than Python's ``hash``:
    string hashing is randomized per interpreter (PYTHONHASHSEED), and the
    process backend needs the coordinator and every worker to agree on the
    partitioning across process boundaries and across runs.
    """
    return zlib.crc32(f"{src.ip}:{src.port}/{ssrc}".encode("ascii")) % n_shards


#: The shard execution backends, in cost order (see module docstring).
VALID_EXECUTORS = ("serial", "thread", "process")


def validate_executor(executor: str) -> str:
    """Validate a shard-executor name; returns it unchanged.

    The single source of truth for the executor vocabulary:
    :class:`ShardedScallopPipeline` validates through this function and the
    scenario layer's ``BackendSpec`` imports it, so the error text and the
    accepted set cannot drift between the engine and the spec.
    """
    if executor not in VALID_EXECUTORS:
        raise ValueError(
            f"unknown shard executor: {executor!r} (expected one of "
            f"{', '.join(VALID_EXECUTORS)})"
        )
    return executor


@dataclass(frozen=True)
class ShardParserStats:
    """Aggregated ingress-parser tallies across all shards."""

    packets_parsed: int
    cpu_punts: int
    parse_cache_hits: int


class SerialShardRunner:
    """Run each shard's partition inline on the calling thread."""

    def __init__(self, engine: "ShardedScallopPipeline") -> None:
        self._engine = engine

    def run_batches(self, partitions: Sequence[List[Datagram]]) -> List[List[PipelineResult]]:
        shards = self._engine.shards
        return [
            shards[shard_id].process_batch(partition) if partition else []
            for shard_id, partition in enumerate(partitions)
        ]

    def on_flow_migrated(self, src: Address, ssrc: int, to_shard: int) -> None:
        """No state to move: in-process shard register views alias the same
        rewriter objects (control-plane fan-out writes one object to every
        view), so the migrated flow's state is already wherever it lands."""

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------------- thread backend


class ThreadShardRunner:
    """Dispatch shard partitions to a persistent per-shard worker-thread pool.

    The shards are the very same in-process :class:`PipelineDatapath` objects
    the serial runner drives, over the one shared control plane — so there
    are no snapshots, no transport codec, and no register shipping, and a
    live migration needs nothing beyond the coordinator's placement-table
    write.  Each shard gets one long-lived daemon thread fed through a
    :class:`queue.SimpleQueue` pair; the coordinator dispatches every
    non-empty partition, then joins them in shard order (a batch barrier).

    Correctness rests on the share-nothing discipline CI already enforces
    (archlint + the runtime sanitizer): a datapath's packet path reads
    shared control state but writes only its own private state — except for
    pure accounting (PRE replication tallies, table ``lookups``/``hits``),
    which thread-mode datapaths accumulate in per-datapath local stats
    (``PipelineDatapath.local_stats`` / ``ShardTableView``) that
    :meth:`_fold_local_stats` sums into the shared structures at the
    barrier.  The folds are commutative sums, so every counter lands exactly
    where serial execution would have put it and outputs stay
    byte-identical for any shard count.

    Under the GIL the threads interleave without overlapping, so throughput
    matches serial minus queue overhead; on free-threaded CPython (3.13t+)
    the same code runs shards in parallel.  The parallelism benchmark
    records ``sys._is_gil_enabled()`` next to every measurement so the two
    regimes are never compared against each other.
    """

    def __init__(self, engine: "ShardedScallopPipeline") -> None:
        self._engine = engine
        n = engine.n_shards
        self._threads: List[Optional[threading.Thread]] = [None] * n
        self._tasks: List[SimpleQueue] = [SimpleQueue() for _ in range(n)]
        self._done: List[SimpleQueue] = [SimpleQueue() for _ in range(n)]

    def _ensure_thread(self, shard_id: int) -> None:
        if self._threads[shard_id] is None:
            thread = threading.Thread(
                target=self._shard_main,
                args=(shard_id,),
                name=f"scallop-shard-{shard_id}",
                daemon=True,
            )
            self._threads[shard_id] = thread
            thread.start()

    def _shard_main(self, shard_id: int) -> None:
        """Worker-thread loop: run this shard's partitions until told to stop.

        Touches only the shard's own datapath (whose packet path keeps all
        shared-counter accounting in local stats); exceptions are shipped to
        the coordinator and re-raised there, keeping the thread alive.
        """
        datapath = self._engine.shards[shard_id]
        tasks = self._tasks[shard_id]
        done = self._done[shard_id]
        while True:
            partition = tasks.get()
            if partition is None:
                return
            try:
                done.put(("ok", datapath.process_batch(partition)))
            except BaseException as error:  # noqa: BLE001 - relayed to coordinator
                done.put(("err", error))

    def run_batches(self, partitions: Sequence[List[Datagram]]) -> List[List[PipelineResult]]:
        engine = self._engine
        active = [shard_id for shard_id, partition in enumerate(partitions) if partition]
        results: List[List[PipelineResult]] = [[] for _ in partitions]
        try:
            if len(active) <= 1:
                # nothing to overlap: run inline on the coordinator thread
                # (shared in-process state makes this indistinguishable from
                # the worker thread running it) and skip the queue round trip
                for shard_id in active:
                    results[shard_id] = engine.shards[shard_id].process_batch(
                        partitions[shard_id]
                    )
            else:
                for shard_id in active:
                    self._ensure_thread(shard_id)
                    self._tasks[shard_id].put(partitions[shard_id])
                first_error: Optional[BaseException] = None
                for shard_id in active:
                    status, payload = self._done[shard_id].get()
                    if status == "ok":
                        results[shard_id] = payload
                    elif first_error is None:
                        first_error = payload
                if first_error is not None:
                    raise first_error
        finally:
            # barrier: every worker is idle again, fold the per-shard tallies
            # of shared-counter accounting into the shared structures (also on
            # error, so partial tallies are not carried into the next batch)
            self._fold_local_stats()
        return results

    def _fold_local_stats(self) -> None:
        """Fold per-datapath local accounting into the shared structures.

        Runs on the coordinator thread with all workers quiesced.  Sums are
        commutative, so the shared PRE tallies and table ``lookups``/``hits``
        equal what serial execution of the same packets would have produced.
        """
        pre = self._engine.control.pre
        for shard in self._engine.shards:
            local = shard.local_stats
            if local is not None and local.replications_performed:
                pre.replications_performed += local.replications_performed
                pre.copies_produced += local.copies_produced
                local.replications_performed = 0
                local.copies_produced = 0
            for view in shard.table_views:
                if view.lookups:
                    view.table.lookups += view.lookups
                    view.table.hits += view.hits
                    view.lookups = 0
                    view.hits = 0

    def on_flow_migrated(self, src: Address, ssrc: int, to_shard: int) -> None:
        """No state to move, exactly like the serial runner: all shard
        register views alias the same rewriter objects, so the placement
        write that triggered this call *is* the whole migration."""

    def close(self) -> None:
        for shard_id, thread in enumerate(self._threads):
            if thread is not None:
                self._tasks[shard_id].put(None)
        for shard_id, thread in enumerate(self._threads):
            if thread is not None:
                thread.join(timeout=5.0)
                self._threads[shard_id] = None


# ----------------------------------------------------------------------------- process backend

#: Worker-process shard state, keyed by shard id.  Each shard is pinned to a
#: dedicated single-worker pool, so a worker only ever sees one shard id.
_WORKER_SHARDS: Dict[int, "_WorkerShardState"] = {}


@dataclass
class _WorkerShardState:
    stamp: Tuple[int, ...]
    control: PipelineControlPlane
    datapath: PipelineDatapath
    #: Result-encode buffer recycled across this worker's batches (the
    #: worker-side twin of the runner's per-shard ingress writers).
    result_writer: ShardBlobWriter = dataclass_field(default_factory=ShardBlobWriter)


def _worker_process_batch(
    shard_id: int,
    stamp: Tuple[int, ...],
    control_blob: Optional[bytes],
    batch_blob: bytes,
    migration_blob: Optional[bytes] = None,
):
    """Process one packed shard batch inside a worker process.

    ``batch_blob`` is the zero-pickle ingress blob
    (:func:`~repro.dataplane.shardcodec.encode_ingress_batch`); the worker
    reconstructs header-only datagram views, runs them through its datapath,
    and returns ``(results_blob, fallback_blob, counters, parser_delta,
    pre_delta, tracker_blob, obs_delta)``, where the blobs are the packed
    result and rewriter-register codecs and the deltas cover exactly this
    batch (``obs_delta`` is ``None`` unless observability is armed).

    ``migration_blob`` carries packed rewriter register images
    (:func:`~repro.dataplane.shardcodec.encode_tracker_updates`) for flows the
    control plane just migrated *onto* this shard: the coordinator's canonical
    registers hold their latest state (mutated on whichever shard owned them
    last), and the images are applied before any packet of this batch runs, so
    a migrated flow's sequence space continues exactly where it left off —
    with no control-plane snapshot (and therefore no pickle) involved.
    """
    state = _WORKER_SHARDS.get(shard_id)
    if state is None or state.stamp != stamp:
        if control_blob is None:
            raise RuntimeError(
                f"shard {shard_id}: worker state stale at stamp {stamp} but no control snapshot shipped"
            )
        control: PipelineControlPlane = pickle.loads(control_blob)
        # sanctioned worker-local replica API: the replica attaches its own
        # datapath inside a control-plane method, so worker code performs no
        # control mutations of its own (archlint holds it to the same
        # zero-mutation rule as the datapaths — no baseline entries needed)
        datapath = control.build_worker_datapath(shard_id)
        state = _WorkerShardState(stamp=stamp, control=control, datapath=datapath)
        _WORKER_SHARDS[shard_id] = state
    if migration_blob is not None:
        # migrated-in rewriter state lands in this worker's register file
        # (the datapath shares the control replica's canonical array)
        state.control.apply_tracker_images(decode_tracker_updates(migration_blob))
    datapath = state.datapath
    datapath.counters = PipelineCounters()
    parser = datapath.parser
    parsed0, punts0, hits0 = parser.packets_parsed, parser.cpu_punts, parser.parse_cache_hits
    pre = state.control.pre
    repl0, copies0 = pre.replications_performed, pre.copies_produced
    datapath.touched_tracker_indices.clear()

    datagrams = decode_ingress_batch(batch_blob, state.control.sfu_address)
    results = datapath.process_batch(datagrams)
    # under srtp the worker re-protects every egress replica, so results are
    # never expressible as (dst, seq) rewrite replays of the originals the
    # coordinator kept — force the per-record fallback encoding instead
    results_blob, fallback_blob = encode_result_batch(
        results, datagrams, replayable=state.control.srtp is None,
        writer=state.result_writer,
    )

    trackers = state.control.stream_trackers
    tracker_blob = encode_tracker_updates(
        {index: trackers.peek(index) for index in datapath.touched_tracker_indices}
    )
    parser_delta = (
        parser.packets_parsed - parsed0,
        parser.cpu_punts - punts0,
        parser.parse_cache_hits - hits0,
    )
    pre_delta = (pre.replications_performed - repl0, pre.copies_produced - copies0)
    # observability delta: plain builtins (dicts/lists/ints), drained so
    # worker-side and coordinator-side obs state stay disjoint; rides the
    # executor's own return channel exactly like ``counters``
    obs_delta = datapath.obs.to_delta() if datapath.obs is not None else None
    return (
        results_blob,
        fallback_blob,
        datapath.counters,
        parser_delta,
        pre_delta,
        tracker_blob,
        obs_delta,
    )


@dataclass
class ShardTransportStats:
    """Bytes crossing the coordinator/worker boundary (per runner lifetime).

    ``batch_bytes_out`` counts packed ingress blobs, ``result_bytes_in`` the
    packed result + fallback blobs, ``tracker_bytes_in`` the packed rewriter
    register images, ``migration_bytes_out`` the packed register images
    shipped to a migration's destination worker (zero-pickle, measured so the
    cost of placement churn is visible), and ``snapshot_bytes_out`` the
    pickled control-plane snapshots (shipped only on generation change).  The
    shard benchmark compares these against ``pickle.dumps`` of the same
    object graphs to quantify the transport shrink.

    ``pickle_fallback_records`` counts the individual records that crossed
    the boundary through a whitelisted pickle fallback (exotic ingress
    payloads, inexpressible results, unknown rewriter classes) — the runtime
    cross-check of archlint's zero-pickle whitelist.  For every canned
    scenario it must stay 0 (asserted in ``tests/test_shard_transport.py``);
    a nonzero value means some regular traffic type silently fell off the
    packed transport.  Control-plane snapshots are deliberate pickle, not a
    fallback, and are tracked separately in ``snapshots_shipped``.
    """

    batches: int = 0
    batch_bytes_out: int = 0
    result_bytes_in: int = 0
    tracker_bytes_in: int = 0
    migration_bytes_out: int = 0
    migrations_shipped: int = 0
    snapshot_bytes_out: int = 0
    snapshots_shipped: int = 0
    pickle_fallback_records: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "batch_bytes_out": self.batch_bytes_out,
            "result_bytes_in": self.result_bytes_in,
            "tracker_bytes_in": self.tracker_bytes_in,
            "migration_bytes_out": self.migration_bytes_out,
            "migrations_shipped": self.migrations_shipped,
            "snapshot_bytes_out": self.snapshot_bytes_out,
            "snapshots_shipped": self.snapshots_shipped,
            "pickle_fallback_records": self.pickle_fallback_records,
        }


class ProcessShardRunner:
    """Dispatch shard partitions to per-shard single-worker process pools.

    Shard state must stay pinned to one OS process (rewriter registers and
    parse caches live there between batches), so each shard gets its own
    ``ProcessPoolExecutor(max_workers=1)`` rather than one shared pool whose
    scheduler could bounce a shard between workers.  Partitions ship as
    packed ingress blobs and come back as packed rewrite descriptions that
    are replayed against the original datagrams (kept coordinator-side), so
    media payload bytes never cross the process boundary in either direction.
    """

    def __init__(self, engine: "ShardedScallopPipeline") -> None:
        self._engine = engine
        self._executors: List[Optional[object]] = [None] * engine.n_shards
        self._shipped_stamp: List[Optional[Tuple[int, ...]]] = [None] * engine.n_shards
        #: Register indices whose state must ship to a shard's worker before
        #: its next batch (flows migrated onto that shard since its last
        #: dispatch); drained into a packed tracker-image blob per dispatch.
        self._pending_migrations: List[Set[int]] = [set() for _ in range(engine.n_shards)]
        #: Per-shard ingress-encode buffers recycled across batches: steady
        #: state packs every batch into an already-sized bytearray.
        self._encode_writers: List[ShardBlobWriter] = [
            ShardBlobWriter() for _ in range(engine.n_shards)
        ]
        self.transport = ShardTransportStats()
        #: Blob-size distributions behind the scalar byte counters (per-batch
        #: observations, so the cost is one bisect per dispatch, not per
        #: packet); surfaced through the telemetry bus as
        #: ``repro.transport.*_blob_bytes`` histograms.
        self.transport_obs = MetricsRegistry()
        self._batch_blob_hist = self.transport_obs.histogram(
            "repro.transport.batch_blob_bytes", SIZE_BYTES_BUCKETS
        )
        self._result_blob_hist = self.transport_obs.histogram(
            "repro.transport.result_blob_bytes", SIZE_BYTES_BUCKETS
        )

    def on_flow_migrated(self, src: Address, ssrc: int, to_shard: int) -> None:
        """Queue the migrating flow's rewriter register images for the
        destination worker.  The coordinator's canonical registers are current
        (every batch folds worker mutations back), so the images are read at
        dispatch time and cross as packed state — never pickle."""
        indices = self._engine.control.tracker_indices_for_ssrc(ssrc)
        if indices:
            self._pending_migrations[to_shard].update(indices)

    def _executor(self, shard_id: int):
        executor = self._executors[shard_id]
        if executor is None:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=1)
            self._executors[shard_id] = executor
        return executor

    def run_batches(self, partitions: Sequence[List[Datagram]]) -> List[List[PipelineResult]]:
        engine = self._engine
        stamp = engine.control_stamp()
        snapshot: Optional[bytes] = None
        transport = self.transport
        futures: Dict[int, object] = {}
        trackers = engine.control.stream_trackers
        # stage profile: the codec passes run on the coordinator thread
        # inside the dispatch window; time them separately so the Amdahl
        # serial fraction can attribute them (profile is the engine's
        # CoordinatorStats, or None for the uninstrumented default)
        profile = engine.coordinator_stats
        clock = profile.clock if profile is not None else None
        for shard_id, partition in enumerate(partitions):
            if not partition:
                continue
            blob = None
            if self._shipped_stamp[shard_id] != stamp:
                if snapshot is None:
                    snapshot = pickle.dumps(engine.control)
                blob = snapshot
                self._shipped_stamp[shard_id] = stamp
                transport.snapshot_bytes_out += len(snapshot)
                transport.snapshots_shipped += 1
            migration_blob = None
            pending = self._pending_migrations[shard_id]
            if pending:
                if blob is None:
                    # zero-pickle migration: ship the flow's current register
                    # images read off the coordinator's canonical array
                    migration_blob = encode_tracker_updates(
                        {index: trackers.peek(index) for index in pending}, stats=transport
                    )
                    transport.migration_bytes_out += len(migration_blob)
                    transport.migrations_shipped += 1
                # a full snapshot (blob is not None) already carries the
                # canonical registers, migrated state included
                pending.clear()
            # srtp workers must authenticate and decrypt, so they need the
            # full wire bytes; plain workers read only the header region
            if clock is None:
                batch_blob = encode_ingress_batch(
                    partition, stats=transport,
                    full_payload=engine.control.srtp is not None,
                    writer=self._encode_writers[shard_id],
                    size_histogram=self._batch_blob_hist,
                )
            else:
                e0 = clock()
                batch_blob = encode_ingress_batch(
                    partition, stats=transport,
                    full_payload=engine.control.srtp is not None,
                    writer=self._encode_writers[shard_id],
                    size_histogram=self._batch_blob_hist,
                )
                profile.note_stage("encode", clock() - e0)
            transport.batches += 1
            transport.batch_bytes_out += len(batch_blob)
            futures[shard_id] = self._executor(shard_id).submit(
                _worker_process_batch, shard_id, stamp, blob, batch_blob, migration_blob
            )
        all_results: List[List[PipelineResult]] = [[] for _ in partitions]
        for shard_id, future in futures.items():
            (
                results_blob,
                fallback_blob,
                counters,
                parser_delta,
                pre_delta,
                tracker_blob,
                obs_delta,
            ) = future.result()
            transport.result_bytes_in += len(results_blob) + len(fallback_blob)
            transport.tracker_bytes_in += len(tracker_blob)
            if clock is None:
                all_results[shard_id] = decode_result_batch(
                    results_blob, fallback_blob, partitions[shard_id], engine.sfu_address,
                    stats=transport, size_histogram=self._result_blob_hist,
                )
            else:
                r0 = clock()
                all_results[shard_id] = decode_result_batch(
                    results_blob, fallback_blob, partitions[shard_id], engine.sfu_address,
                    stats=transport, size_histogram=self._result_blob_hist,
                )
                profile.note_stage("replay", clock() - r0)
            shard = engine.shards[shard_id]
            shard.counters.merge(counters)
            parser = shard.parser
            parser.packets_parsed += parser_delta[0]
            parser.cpu_punts += parser_delta[1]
            parser.parse_cache_hits += parser_delta[2]
            engine.pre.replications_performed += pre_delta[0]
            engine.pre.copies_produced += pre_delta[1]
            engine.control.apply_tracker_images(
                decode_tracker_updates(tracker_blob, stats=transport)
            )
            if obs_delta is not None and shard.obs is not None:
                # fold the worker's per-batch obs delta into the coordinator
                # shard's registry/trace buffer: commutative sums, so the
                # snapshot equals what serial execution would have produced
                shard.obs.fold_delta(obs_delta)
        return all_results

    def close(self) -> None:
        for executor in self._executors:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
        self._executors = [None] * self._engine.n_shards
        self._shipped_stamp = [None] * self._engine.n_shards
        self._pending_migrations = [set() for _ in range(self._engine.n_shards)]


class ShardedScallopPipeline(ControlPlaneFacade):
    """N flow-partitioned datapaths behind the one-pipeline API.

    Drop-in replacement for :class:`~repro.dataplane.pipeline.ScallopPipeline`:
    the whole control surface (table installs, adaptation lifecycle, feedback
    rules) and both data-path entry points (``process``/``process_batch``)
    behave identically, and the outputs are byte-for-byte the same as the
    single-datapath engine for any shard count.  ``counters`` aggregates the
    per-shard tallies on read; ``utilization()`` reads the single global
    resource ledger that all shards charge through.
    """

    def __init__(
        self,
        sfu_address: Address,
        n_shards: int = 2,
        capacities: TofinoCapacities = DEFAULT_CAPACITIES,
        executor: str = "serial",
        rebalance: bool = False,
        rebalance_config: Optional[RebalancerConfig] = None,
        sanitize: Optional[bool] = None,
        srtp: Optional[object] = None,
        profile: bool = False,
        obs: Union[bool, ObsConfig, None] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        validate_executor(executor)
        self.sfu_address = sfu_address
        self.n_shards = n_shards
        self.executor = executor
        #: Shard-isolation sanitizer switch (``None`` defers to
        #: ``REPRO_SANITIZE``); resolved once so every shard agrees.  Under
        #: the process executor the env var is what reaches the workers —
        #: they rebuild their datapaths from a forked environment.
        self.sanitize = resolve_sanitize(sanitize)
        # observability knob: True arms the defaults, an ObsConfig arms it
        # verbatim; the config rides the control plane (and therefore its
        # pickled snapshot), so process workers arm identically
        if obs is True:
            obs_config: Optional[ObsConfig] = ObsConfig()
        elif obs:
            obs_config = obs
        else:
            obs_config = None
        self.control = PipelineControlPlane(sfu_address, capacities, srtp=srtp, obs=obs_config)
        self.shard_accountants = [
            ShardResourceAccountant(self.control.accountant, shard_id)
            for shard_id in range(n_shards)
        ]
        self.shards: List[PipelineDatapath] = []
        for shard_id in range(n_shards):
            datapath = PipelineDatapath(
                self.control,
                trackers=RegisterArray(
                    f"stream_tracker/shard{shard_id}", size=capacities.stream_tracker_cells
                ),
                shard_id=shard_id,
                sanitize=self.sanitize,
                # thread-mode datapaths keep shared-counter accounting in
                # per-shard local stats, folded at the batch barrier
                local_stats=executor == "thread",
            )
            self.control.attach_datapath(datapath)
            self.shards.append(datapath)
        self.control.set_charge_scope_router(self._charge_scope_for_ssrc)
        # control API and table/register/ledger delegation shared with
        # ScallopPipeline via ControlPlaneFacade, so the switch agent and
        # replication manager are oblivious to sharding
        self._bind_control_api()

        self._flow_shard_cache: Dict[Tuple[Address, int], int] = {}
        #: Memoized CRC32 of each flow's canonical string.  Placement-blind,
        #: so it survives migration-driven cache drops: the per-flow f-string
        #: encode + crc is paid once per engine lifetime, not once per
        #: placement epoch (bounded like the routing cache).
        self._crc_cache: Dict[Tuple[Address, int], int] = {}
        #: Flows with a placement-table exception; rebuilt on version bump so
        #: the partitioner consults the placement dict only for pinned flows
        #: and default-routed flows stay on the pure CRC path.
        self._pinned_flows: Set[Tuple[Address, int]] = set()
        #: Placement-table generation the flow-routing cache was built at;
        #: a migration bumps the table version and the cache drops wholesale
        #: at the next batch boundary (two-level lookups are cheap to rebuild).
        self._placement_version = self.control.placement_table.version
        self._rebuild_pinned_flows()
        #: Optional Amdahl stage profile (attach a
        #: :class:`repro.experiments.coordstats.CoordinatorStats`); ``None``
        #: keeps the data path free of timing instrumentation.  ``profile=
        #: True`` attaches one declaratively; the import is deferred to here
        #: because ``repro.experiments`` imports the dataplane at module load
        #: (the reverse edge is only safe at call time).
        self.coordinator_stats = None
        if profile:
            from ..experiments.coordstats import CoordinatorStats

            self.coordinator_stats = CoordinatorStats()
        if executor == "process":
            self._runner = ProcessShardRunner(self)
        elif executor == "thread":
            self._runner = ThreadShardRunner(self)
        else:
            self._runner = SerialShardRunner(self)

        # telemetry -> policy -> migration loop (off by default: telemetry
        # costs one per-flow tally pass per batch on the partitioning path)
        self.load_tracker: Optional[FlowLoadTracker] = None
        self.rebalancer: Optional[ShardRebalancer] = None
        self.migrations_applied = 0
        if rebalance or rebalance_config is not None:
            self.enable_rebalancing(rebalance_config)

    # ------------------------------------------------------------------ partitioning

    def shard_for_flow(self, src: Address, ssrc: int) -> int:
        """The shard that currently owns flow ``(src, ssrc)``.

        Two-level lookup: the control plane's placement exception table wins
        (flows the rebalancer has migrated), everything else falls through to
        the deterministic CRC32 default.  Per-flow rewriter state follows the
        owner across migrations (see :meth:`migrate_flow`).
        """
        pinned = self.control.placement_table.peek((src, ssrc))
        if pinned is not None and 0 <= pinned < self.n_shards:
            return pinned
        return self._crc_shard(src, ssrc)

    #: Bound on the flow->shard cache (junk traffic must not grow it forever).
    FLOW_SHARD_CACHE_LIMIT = 1 << 16

    @staticmethod
    def _flow_key(datagram: Datagram) -> Tuple[Address, int]:
        payload = datagram.payload
        # non-RTP traffic (RTCP compounds, STUN, junk) has no media SSRC; it
        # partitions by source only, which keeps one sender's control traffic
        # ordered within a shard.  Wire-native views partition exactly like
        # their object twins (same SSRC off the buffer), so mixed-encoding
        # traffic of one flow always lands on one shard.
        ssrc = payload.ssrc if isinstance(payload, (RtpPacket, PacketView)) else -1
        return (datagram.src, ssrc)

    def _crc_shard(self, src: Address, ssrc: int) -> int:
        """CRC32 default shard, served from the memoized per-flow hash.

        Identical to :func:`flow_shard` for every flow (asserted in
        ``tests/test_wirebatch.py``): only the f-string encode + CRC is
        memoized, the modulus is applied on read.
        """
        key = (src, ssrc)
        cache = self._crc_cache
        crc = cache.get(key)
        if crc is None:
            if len(cache) >= self.FLOW_SHARD_CACHE_LIMIT:
                cache.clear()
            crc = cache[key] = zlib.crc32(f"{src.ip}:{src.port}/{ssrc}".encode("ascii"))
        return crc % self.n_shards

    def _shard_of_key(self, key: Tuple[Address, int]) -> int:
        shard = self._flow_shard_cache.get(key)
        if shard is None:
            if len(self._flow_shard_cache) >= self.FLOW_SHARD_CACHE_LIMIT:
                self._flow_shard_cache.clear()
            if key in self._pinned_flows:
                # placement exception: consult the table (validated bounds)
                shard = self.shard_for_flow(key[0], key[1])
            else:
                # default route: pure CRC, the placement dict is never probed
                shard = self._crc_shard(key[0], key[1])
            self._flow_shard_cache[key] = shard
        return shard

    def _shard_of(self, datagram: Datagram) -> int:
        return self._shard_of_key(self._flow_key(datagram))

    def _rebuild_pinned_flows(self) -> None:
        self._pinned_flows = {key for key, _shard in self.control.placement_table.entries()}

    def _sync_placement_cache(self) -> None:
        """Drop the flow-routing cache if the placement table moved (its
        version stamps every migration, exactly like the match-action
        tables' write generations stamp datapath caches).  The pinned-flow
        set rebuilds from the same trigger; the CRC memo is placement-blind
        and survives."""
        version = self.control.placement_table.version
        if version != self._placement_version:
            self._flow_shard_cache.clear()
            self._rebuild_pinned_flows()
            self._placement_version = version

    def _charge_scope_for_ssrc(self, sender_ssrc: int) -> Optional[ShardResourceAccountant]:
        """Route a stream-state charge to the accountant view of the shard
        that owns the sender's flow (unknown senders stay unattributed; the
        global ledger is charged either way)."""
        src = self.control.ssrc_owner(sender_ssrc)
        if src is None:
            return None
        return self.shard_accountants[self.shard_for_flow(src, sender_ssrc)]

    def control_stamp(self) -> Tuple[int, ...]:
        """Write generation over *all* control state (wider than the flow
        caches' stamp: worker replicas must also refresh on feedback/ssrc
        table writes, which the in-process shards read live).  The placement
        table is deliberately absent: workers never read placement (the
        coordinator partitions), so a migration must not force a snapshot —
        migrated rewriter state ships as packed register images instead."""
        control = self.control
        return (
            control.stream_table.version,
            control.replica_table.version,
            control.adaptation_table.version,
            control.feedback_table.version,
            control.ssrc_table.version,
            control.pre.generation,
        )

    # ------------------------------------------------------------------ data path

    def process(self, datagram: Datagram) -> PipelineResult:
        """Run one packet through the shard that owns its flow."""
        if not isinstance(self._runner, SerialShardRunner):
            # process: shard state (rewriter registers, caches) lives in the
            # worker processes; processing inline on the coordinator would
            # fork the sequence-rewriter state without any stamp change to
            # resync it.  thread: state is in-process, but routing through
            # the batch path keeps the local-stats fold at every barrier.
            return self.process_batch([datagram])[0]
        self._sync_placement_cache()
        return self.shards[self._shard_of(datagram)].process(datagram)

    def process_batch(self, datagrams: Sequence[Datagram]) -> List[PipelineResult]:
        """Partition a burst by flow, process per shard, reassemble in input
        order (byte-identical to the unsharded pipeline).

        When rebalancing is enabled the batch is also a telemetry sample and
        a migration opportunity: per-flow packet counts collected during
        partitioning feed the EWMA tracker, and every ``epoch_batches``-th
        batch the policy may migrate flows — strictly *after* this batch's
        results are complete, so a flow is never split across shards within
        one batch and outputs stay byte-identical across placement changes.
        """
        stats = self.coordinator_stats
        if self.n_shards == 1 and isinstance(self._runner, SerialShardRunner):
            if stats is None:
                return self.shards[0].process_batch(datagrams)
            # single-shard serial has no partition/reassemble work: the whole
            # burst is one dispatch
            clock = stats.clock
            t0 = clock()
            results = self.shards[0].process_batch(datagrams)
            stats.note_stage("dispatch", clock() - t0)
            stats.note_batch(len(datagrams))
            return results
        clock = stats.clock if stats is not None else None
        t0 = clock() if clock is not None else 0
        self._sync_placement_cache()
        # Columnar partition: one bulk pass lifts src/ssrc off every record,
        # then bucketing runs on per-burst interned ints.  The burst-local
        # memo resolves each unique (source, ssrc) pair exactly once per
        # burst — Address hashing and the engine-level caches are consulted
        # per flow, not per packet.
        view = WireBatchView.from_datagrams(datagrams)
        sources = view.sources
        src_index = view.src_index
        ssrc_col = view.ssrc
        shard_of_key = self._shard_of_key
        partitions: List[List[Datagram]] = [[] for _ in range(self.n_shards)]
        slots: List[List[int]] = [[] for _ in range(self.n_shards)]
        tracker = self.load_tracker
        if tracker is None:
            burst_shards: Dict[Tuple[int, int], int] = {}
            get_shard = burst_shards.get
            for index, datagram in enumerate(datagrams):
                bkey = (src_index[index], ssrc_col[index])
                shard = get_shard(bkey)
                if shard is None:
                    shard = burst_shards[bkey] = shard_of_key(
                        (sources[bkey[0]], bkey[1])
                    )
                partitions[shard].append(datagram)
                slots[shard].append(index)
        else:
            # telemetry folds into the same pass: per-flow packet counts and
            # owner shards accumulate as the burst buckets, keyed by the same
            # burst-local memo (one flow-key tuple built per flow per burst)
            resolved: Dict[Tuple[int, int], Tuple[FlowKey, int]] = {}
            get_resolved = resolved.get
            flow_counts: Dict[FlowKey, int] = {}
            flow_shards: Dict[FlowKey, int] = {}
            #: flow key of every partitioned datagram, parallel to the
            #: partitions, so the post-run replica tally needs no re-hash
            keys_by_shard: List[List[FlowKey]] = [[] for _ in range(self.n_shards)]
            for index, datagram in enumerate(datagrams):
                bkey = (src_index[index], ssrc_col[index])
                entry = get_resolved(bkey)
                if entry is None:
                    fkey = (sources[bkey[0]], bkey[1])
                    shard = shard_of_key(fkey)
                    resolved[bkey] = (fkey, shard)
                    flow_counts[fkey] = 1
                    flow_shards[fkey] = shard
                else:
                    fkey, shard = entry
                    flow_counts[fkey] += 1
                partitions[shard].append(datagram)
                slots[shard].append(index)
                keys_by_shard[shard].append(fkey)
        if clock is not None:
            t1 = clock()
            stats.note_stage("partition", t1 - t0)
        else:
            t1 = 0
        shard_results = self._runner.run_batches(partitions)
        if clock is not None:
            t2 = clock()
            stats.note_stage("dispatch", t2 - t1)
        else:
            t2 = 0
        results: List[Optional[PipelineResult]] = [None] * len(datagrams)
        for shard, indices in enumerate(slots):
            for slot, result in zip(indices, shard_results[shard]):
                results[slot] = result
        if tracker is not None:
            # egress telemetry: replicas each flow's packets produced this
            # batch (one zip pass over results already in hand), feeding the
            # policy's egress-weighted flow ranking
            flow_replicas: Dict[FlowKey, int] = {}
            for shard, keys in enumerate(keys_by_shard):
                for key, result in zip(keys, shard_results[shard]):
                    replicas = len(result.outputs)
                    if replicas:
                        flow_replicas[key] = flow_replicas.get(key, 0) + replicas
            tracker.observe_batch(flow_counts, flow_shards, flow_replicas)
            self._maybe_rebalance()
        if clock is not None:
            stats.note_stage("reassemble", clock() - t2)
            stats.note_batch(len(datagrams))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ placement control loop

    def enable_rebalancing(self, config: Optional[RebalancerConfig] = None) -> None:
        """Arm the telemetry -> policy -> migration loop on this engine."""
        config = config or RebalancerConfig()
        self.load_tracker = FlowLoadTracker(self.n_shards, alpha=config.ewma_alpha)
        self.rebalancer = ShardRebalancer(self.n_shards, config)

    #: Smoothed packets/batch below which a *pinned* flow counts as silent
    #: and its placement exception is garbage-collected (see
    #: :meth:`_gc_stale_placements`).  Reaching it from any real rate takes
    #: dozens of silent batches, so a live-but-bursty flow is never swept.
    STALE_PIN_RATE = 0.01

    def _maybe_rebalance(self) -> None:
        """Run the placement policy at epoch boundaries (between batches)."""
        rebalancer = self.rebalancer
        tracker = self.load_tracker
        if rebalancer is None or tracker is None:
            return
        if tracker.batches_observed % rebalancer.config.epoch_batches:
            return
        tracker.observe_shard_load(self.shard_load())
        plan = rebalancer.plan(tracker)
        if plan:
            self.apply_migrations(plan)
        self._gc_stale_placements()

    def _gc_stale_placements(self) -> None:
        """Drop placement exceptions whose flows have gone silent.

        A departed participant's flow can be pinned moments before (or, via
        in-flight traffic, moments after) its leave; the leave path purges
        pins by address, but a pin minted from the decaying tail would
        otherwise live forever.  Silent pins are released by *migrating the
        flow back to its hash-default shard* rather than deleting the table
        entry, so rewriter state (were the flow to resurrect) ships
        correctly under the process executor too.
        """
        tracker = self.load_tracker
        if tracker is None:
            return
        stale: List[Tuple[Address, int]] = []
        for key, _shard in self.control.placement_table.entries():
            row = tracker.flows.get(key)
            if row is None or row.rate < self.STALE_PIN_RATE:
                stale.append(key)
        for src, ssrc in stale:
            self.migrate_flow(src, ssrc, flow_shard(src, ssrc, self.n_shards))

    def apply_migrations(self, plan: MigrationPlan) -> int:
        """Execute a migration plan; returns how many flows actually moved."""
        applied = 0
        for migration in plan.migrations:
            src, ssrc = migration.flow
            if self.migrate_flow(src, ssrc, migration.to_shard):
                applied += 1
        return applied

    def migrate_flow(self, src: Address, ssrc: int, to_shard: int) -> bool:
        """Live-migrate flow ``(src, ssrc)`` to ``to_shard`` at the next batch
        boundary.

        Installs (or, when the target is the flow's CRC32 default, removes)
        the placement exception — bumping the placement generation, which
        drops the flow-routing cache — re-attributes the flow's stream-state
        occupancy to the destination shard's accountant view, and hands the
        runner the flow's rewriter register indices so the process executor
        ships their packed images to the destination worker with its next
        batch.  Safe while traffic is in flight because routing is only read
        at batch partitioning time: the current batch completed with the old
        placement, the next one sees the new placement and the moved state.
        """
        if not 0 <= to_shard < self.n_shards:
            raise ValueError(f"shard {to_shard} out of range for {self.n_shards} shards")
        if self.shard_for_flow(src, ssrc) == to_shard:
            return False
        if flow_shard(src, ssrc, self.n_shards) == to_shard:
            # moving "back home": the default hash already says to_shard, so
            # the exception entry is redundant — drop it instead of pinning
            self.control.remove_placement(src, ssrc)
        else:
            self.control.install_placement(src, ssrc, to_shard)
        self._runner.on_flow_migrated(src, ssrc, to_shard)
        if ssrc >= 0:
            self.control.reattribute_ssrc_charges(ssrc)
        if self.load_tracker is not None:
            self.load_tracker.note_migration((src, ssrc), to_shard)
        self.migrations_applied += 1
        return True

    def forget_endpoint(self, src: Address) -> int:
        """Release per-flow placement state of a departed endpoint: its
        placement-table pins (the exception table would otherwise grow
        without bound under join/leave churn) and its load-tracker rows.
        Returns the number of placement exceptions removed."""
        removed = self.control.remove_placements_for(src)
        if self.load_tracker is not None:
            self.load_tracker.forget_flows(src)
        return removed

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release backend resources (worker processes, for ``process``)."""
        self._runner.close()

    def __enter__(self) -> "ShardedScallopPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ aggregated datapath state

    @property
    def counters(self) -> PipelineCounters:
        """Merged snapshot of all shard counters (equals the unsharded
        pipeline's counters for identical traffic)."""
        merged = PipelineCounters()
        for shard in self.shards:
            merged.merge(shard.counters)
        return merged

    @property
    def parser(self) -> ShardParserStats:
        """Aggregated parser tallies (``packets_parsed``/``cpu_punts`` match
        the unsharded pipeline; cache hits depend on the partitioning)."""
        return self.parser_stats()

    def parser_stats(self) -> ShardParserStats:
        return ShardParserStats(
            packets_parsed=sum(shard.parser.packets_parsed for shard in self.shards),
            cpu_punts=sum(shard.parser.cpu_punts for shard in self.shards),
            parse_cache_hits=sum(shard.parser.parse_cache_hits for shard in self.shards),
        )

    def shard_utilization(self) -> List[Dict[str, float]]:
        """Per-shard attribution of the globally-ledgered resource usage."""
        return [accountant.utilization() for accountant in self.shard_accountants]

    def shard_load(self) -> List[Dict[str, float]]:
        """Per-shard skew report: packet/replica counts next to occupancy.

        One row per shard, combining the datapath's traffic tallies with the
        shard accountant's occupancy attribution — the observable the
        placement control loop (:meth:`enable_rebalancing`) acts on, surfaced
        in ``BENCH_shard_throughput.json``.
        """
        rows: List[Dict[str, float]] = []
        for shard, accountant in zip(self.shards, self.shard_accountants):
            counters = shard.counters
            rows.append(
                {
                    "shard": shard.shard_id,
                    "data_plane_packets": counters.data_plane_packets,
                    "cpu_packets": counters.cpu_packets,
                    "replicas_out": counters.replicas_out,
                    "stream_tracker_cells": accountant.stream_tracker_cells_used,
                    "stream_tracker_occupancy": accountant.utilization()["stream_tracker_cells"],
                }
            )
        return rows

    def merged_obs(self) -> Optional[DatapathObs]:
        """Snapshot-time merge of every shard's observability state.

        Read-only fold into a fresh :class:`~repro.obs.hooks.DatapathObs`
        (the shards keep accumulating); ``None`` when observability is not
        armed.  Safe to call between batches for any executor: serial/thread
        shards are quiescent at that point, and process-worker deltas were
        folded into the coordinator-side shard objects at the batch barrier.
        """
        armed = [shard.obs for shard in self.shards if shard.obs is not None]
        if not armed:
            return None
        merged = DatapathObs(self.control.obs_config)
        for obs in armed:
            merged.merge_from(obs)
        return merged

    def transport_stats(self) -> Optional[Dict[str, int]]:
        """Coordinator/worker transport volume (``None`` for the serial
        executor, which moves no bytes)."""
        runner = self._runner
        if isinstance(runner, ProcessShardRunner):
            return runner.transport.as_dict()
        return None

    @property
    def transport_obs(self) -> Optional[MetricsRegistry]:
        """Blob-size histogram registry (process executor only)."""
        runner = self._runner
        if isinstance(runner, ProcessShardRunner):
            return runner.transport_obs
        return None

    def isolation_findings(self) -> List[IsolationViolation]:
        """Blocked control-plane mutation attempts across all shards, as
        recorded by the shard-isolation sanitizer (empty when it is off or
        nothing fired).  In-process executors (serial, thread) only:
        worker-process logs stay in the workers — a violation there still
        raises, failing the batch loudly on the coordinator."""
        findings: List[IsolationViolation] = []
        for shard in self.shards:
            log = shard.isolation_log
            if log is not None:
                findings.extend(log.violations)
        return findings
