"""Tofino-like programmable data-plane model (parser, tables, PRE, pipeline)."""

from .resources import (
    DEFAULT_CAPACITIES,
    ResourceAccountant,
    ResourceExhausted,
    ResourceUsage,
    TofinoCapacities,
    table3_rows,
)
from .resources import attribution_skew
from .tables import ExactMatchTable, IndexAllocator, RegisterArray, TableFull
from .pre import L1Node, L2Port, MulticastTree, PacketReplicationEngine, Replica
from .parser import IngressParser, PacketClass, ParseResult
from .resources import ShardResourceAccountant
from .pipeline import (
    AdaptationEntry,
    FeedbackRule,
    ForwardingMode,
    PipelineControlPlane,
    PipelineCounters,
    PipelineDatapath,
    PipelineResult,
    ReplicaTarget,
    ScallopPipeline,
    SequenceRewriter,
    StreamForwardingEntry,
    SWITCH_FORWARDING_DELAY_S,
)
from .loadstats import FlowLoadRow, FlowLoadTracker
from .rebalance import FlowMigration, MigrationPlan, RebalancerConfig, ShardRebalancer
from .sanitize import IsolationLog, IsolationViolation, ShardIsolationError
from .sharding import ShardedScallopPipeline, flow_shard

__all__ = [
    "DEFAULT_CAPACITIES",
    "ResourceAccountant",
    "ResourceExhausted",
    "ResourceUsage",
    "TofinoCapacities",
    "attribution_skew",
    "table3_rows",
    "ExactMatchTable",
    "IndexAllocator",
    "RegisterArray",
    "TableFull",
    "L1Node",
    "L2Port",
    "MulticastTree",
    "PacketReplicationEngine",
    "Replica",
    "IngressParser",
    "PacketClass",
    "ParseResult",
    "AdaptationEntry",
    "FeedbackRule",
    "ForwardingMode",
    "PipelineControlPlane",
    "PipelineCounters",
    "PipelineDatapath",
    "PipelineResult",
    "ReplicaTarget",
    "ScallopPipeline",
    "SequenceRewriter",
    "FlowLoadRow",
    "FlowLoadTracker",
    "FlowMigration",
    "IsolationLog",
    "IsolationViolation",
    "ShardIsolationError",
    "MigrationPlan",
    "RebalancerConfig",
    "ShardRebalancer",
    "ShardResourceAccountant",
    "ShardedScallopPipeline",
    "StreamForwardingEntry",
    "SWITCH_FORWARDING_DELAY_S",
    "flow_shard",
]
