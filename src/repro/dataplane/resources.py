"""Tofino resource model: capacities, per-feature usage, and Table 3 output.

The reproduction cannot run P4 on an ASIC, but the paper's scalability results
(§6.3, §7.2, Table 3, Figures 15-17) are *arithmetic over documented hardware
capacities*.  This module centralizes those capacities and the usage accounting
so that both the behavioural pipeline model and the analytic capacity models in
:mod:`repro.core.capacity` draw from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TofinoCapacities:
    """Hardware capacities of the Tofino2 target used in the paper."""

    #: Multicast trees (multicast group ids, "T" in the paper).
    max_multicast_trees: int = 65_536
    #: Total level-1 nodes across the PRE (2^24).
    max_l1_nodes: int = 16_777_216
    #: Replication ids available per tree.
    max_rids_per_tree: int = 65_536
    #: Register cells per stream-tracker table; with control-plane managed,
    #: collision-free indices all cells are usable (paper §6.3).
    stream_tracker_cells: int = 65_536
    #: Exact-match (SRAM) entries available to the address-rewrite tables.
    exact_match_entries: int = 1_066_000
    #: Total switching capacity in bits per second (12.8 Tbit/s Tofino2).
    switch_bandwidth_bps: float = 12.8e12
    #: Number of front-panel ports (used only for sanity checks).
    num_ports: int = 64
    #: Ingress/egress pipeline stages available.
    max_stages_ingress: int = 20
    max_stages_egress: int = 20
    #: Maximum parser depth (header bytes reachable), per paper Appendix E the
    #: program uses depth 27 in ingress.
    max_parse_depth: int = 32

    #: Meetings aggregated into one replication tree in the NRA design ("m").
    meetings_per_tree: int = 2
    #: Number of media qualities / decode targets ("q", L1T3 -> 3).
    num_qualities: int = 3


DEFAULT_CAPACITIES = TofinoCapacities()


@dataclass(frozen=True)
class ResourceUsage:
    """One row of Table 3: a resource, its scaling class, and utilization."""

    resource: str
    scaling: str              # "fixed" | "linear" | "quadratic"
    peak_campus_load: str     # utilization under peak campus load
    max_utilization: str      # utilization at maximum supported load


#: Fixed-scaling utilization percentages reported in Table 3 of the paper.
#: These come from the P4 compiler report of the authors' program; we reuse
#: them verbatim as the model's per-feature footprint so that the pipeline
#: model can refuse configurations that would not fit on real hardware.
TABLE3_FIXED_USAGE: Dict[str, float] = {
    "PHV containers": 17.9,
    "Exact xbars": 5.66,
    "Ternary xbars": 2.52,
    "Hash bits": 4.62,
    "Hash dist. units": 6.94,
    "VLIW instr.": 7.29,
    "Logical table ID": 21.87,
    "SRAM": 6.77,
    "TCAM": 1.38,
}

PARSING_DEPTH_USED = {"ingress": 27, "egress": 7}
STAGES_USED = {"ingress": 7, "egress": 5}


class ResourceAccountant:
    """Tracks dynamic resource consumption of a running Scallop data plane.

    Fixed resources (stages, PHV, crossbars, ...) are attributes of the
    compiled program and do not change with load; dynamic resources (trees,
    L1 nodes, stream-tracker cells, SRAM entries, egress throughput) grow with
    the number of meetings/participants and are tracked here.
    """

    def __init__(self, capacities: TofinoCapacities = DEFAULT_CAPACITIES) -> None:
        self.capacities = capacities
        self.trees_allocated = 0
        self.l1_nodes_allocated = 0
        self.stream_tracker_cells_used = 0
        self.exact_match_entries_used = 0
        self.egress_bps = 0.0

    # -- allocation hooks -------------------------------------------------------

    def allocate_tree(self, l1_nodes: int) -> None:
        if self.trees_allocated + 1 > self.capacities.max_multicast_trees:
            raise ResourceExhausted("multicast trees exhausted")
        if self.l1_nodes_allocated + l1_nodes > self.capacities.max_l1_nodes:
            raise ResourceExhausted("L1 nodes exhausted")
        self.trees_allocated += 1
        self.l1_nodes_allocated += l1_nodes

    def release_tree(self, l1_nodes: int) -> None:
        self.trees_allocated = max(0, self.trees_allocated - 1)
        self.l1_nodes_allocated = max(0, self.l1_nodes_allocated - l1_nodes)

    def allocate_stream_state(self, cells: int = 1) -> None:
        if self.stream_tracker_cells_used + cells > self.capacities.stream_tracker_cells:
            raise ResourceExhausted("stream tracker cells exhausted")
        self.stream_tracker_cells_used += cells

    def release_stream_state(self, cells: int = 1) -> None:
        self.stream_tracker_cells_used = max(0, self.stream_tracker_cells_used - cells)

    def allocate_match_entries(self, entries: int) -> None:
        if self.exact_match_entries_used + entries > self.capacities.exact_match_entries:
            raise ResourceExhausted("exact-match entries exhausted")
        self.exact_match_entries_used += entries

    def release_match_entries(self, entries: int) -> None:
        self.exact_match_entries_used = max(0, self.exact_match_entries_used - entries)

    # -- reporting ---------------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        """Fractional utilization of each dynamic resource."""
        caps = self.capacities
        return {
            "multicast_trees": self.trees_allocated / caps.max_multicast_trees,
            "l1_nodes": self.l1_nodes_allocated / caps.max_l1_nodes,
            "stream_tracker_cells": self.stream_tracker_cells_used / caps.stream_tracker_cells,
            "exact_match_entries": self.exact_match_entries_used / caps.exact_match_entries,
            "egress_bandwidth": self.egress_bps / caps.switch_bandwidth_bps,
        }


class ResourceExhausted(RuntimeError):
    """Raised when a hardware resource budget would be exceeded."""


class ShardResourceAccountant:
    """Per-shard charge/release view routed through one global ledger.

    The sharded pipeline partitions flows across datapath shards, but the
    Tofino capacities are a property of the one physical switch: every
    allocation must be admission-checked against the single global
    :class:`ResourceAccountant`.  This view forwards all charge/release
    traffic to that ledger while keeping a per-shard tally, so operators can
    see how occupancy distributes across shards without the ledger ever
    being split.  The attribution is *live*: when the placement control loop
    migrates a flow, the control plane re-routes its cells to the destination
    shard's view (:meth:`note_stream_state`), so occupancy skew read through
    :func:`attribution_skew` always reflects the current placement.
    """

    def __init__(self, ledger: ResourceAccountant, shard_id: int) -> None:
        self.ledger = ledger
        self.shard_id = shard_id
        self.stream_tracker_cells_used = 0
        self.exact_match_entries_used = 0

    # -- forwarding allocation hooks (ledger-checked) ---------------------------

    def allocate_stream_state(self, cells: int = 1) -> None:
        self.ledger.allocate_stream_state(cells)
        self.stream_tracker_cells_used += cells

    def release_stream_state(self, cells: int = 1) -> None:
        self.ledger.release_stream_state(cells)
        self.stream_tracker_cells_used = max(0, self.stream_tracker_cells_used - cells)

    def allocate_match_entries(self, entries: int) -> None:
        self.ledger.allocate_match_entries(entries)
        self.exact_match_entries_used += entries

    def release_match_entries(self, entries: int) -> None:
        self.ledger.release_match_entries(entries)
        self.exact_match_entries_used = max(0, self.exact_match_entries_used - entries)

    # -- attribution-only adjustments -------------------------------------------

    def note_stream_state(self, cells_delta: int) -> None:
        """Re-attribute already-ledgered cells to this shard (used when the
        control plane retags an existing charge — adaptation reinstalls and
        live flow migrations; the global ledger total is unchanged)."""
        self.stream_tracker_cells_used = max(0, self.stream_tracker_cells_used + cells_delta)

    # -- reporting ---------------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        """This shard's share of the *global* capacity (sums over shards plus
        any unattributed control-plane charges equal the ledger's numbers)."""
        caps = self.ledger.capacities
        return {
            "stream_tracker_cells": self.stream_tracker_cells_used / caps.stream_tracker_cells,
            "exact_match_entries": self.exact_match_entries_used / caps.exact_match_entries,
        }


def attribution_skew(accountants: "List[ShardResourceAccountant]") -> float:
    """Max/mean stream-tracker occupancy across shard attribution views.

    1.0 means perfectly even state placement.  A diagnostic reduction for
    operators and tests; the placement policy itself currently ranks flows by
    packet rate only (folding occupancy into the ranking is a ROADMAP open
    item).  Returns 1.0 when nothing is attributed (no skew to speak of).
    """
    cells = [accountant.stream_tracker_cells_used for accountant in accountants]
    total = sum(cells)
    if not cells or total <= 0:
        return 1.0
    return max(cells) / (total / len(cells))


def table3_rows(
    peak_campus_egress_bps: float = 1.2e9,
    max_egress_bps: float = 197e9,
) -> List[ResourceUsage]:
    """Regenerate the rows of Table 3.

    Fixed rows come from the compiled-program footprint; the egress-throughput
    row scales quadratically with participants and is parameterized by the
    campus-peak and maximum-utilization workloads.
    """
    rows: List[ResourceUsage] = [
        ResourceUsage(
            resource="Parsing depth",
            scaling="fixed",
            peak_campus_load=f"Ing. {PARSING_DEPTH_USED['ingress']}, Eg. {PARSING_DEPTH_USED['egress']}",
            max_utilization="=",
        ),
        ResourceUsage(
            resource="No. of stages",
            scaling="fixed",
            peak_campus_load=f"Ing. {STAGES_USED['ingress']}, Eg. {STAGES_USED['egress']}",
            max_utilization="=",
        ),
    ]
    for name, pct in TABLE3_FIXED_USAGE.items():
        rows.append(
            ResourceUsage(resource=name, scaling="fixed", peak_campus_load=f"{pct:.2f}%", max_utilization="=")
        )
    rows.append(
        ResourceUsage(
            resource="Egress Tput.",
            scaling="quadratic",
            peak_campus_load=f"{peak_campus_egress_bps / 1e9:.1f} Gb/s",
            max_utilization=f"{max_egress_bps / 1e9:.0f} Gb/s",
        )
    )
    return rows
