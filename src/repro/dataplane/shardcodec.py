"""Packed shard-transport codecs: zero-pickle batches across process shards.

The process executor of :class:`~repro.dataplane.sharding.ShardedScallopPipeline`
used to ship every batch as ``pickle.dumps`` of datagram object graphs —
``RtpPacket`` dataclasses, payload bytes and all — and get pickled
``PipelineResult`` graphs back.  ROADMAP named that serialization tax as the
reason parallel sharding didn't pay off.  This module replaces it with a
wire-native transport built on one observation (the same one the paper builds
the whole SFU on): **the datapath never reads media payload bytes**.  Only
headers cross the process boundary.

Three codecs, all flat length-prefixed buffers (big-endian structs, no
framework):

``encode_ingress_batch`` / ``decode_ingress_batch``
    One blob per shard per batch.  RTP media ships as ``(src, size, header
    region)`` — the payload stays on the coordinator, and the worker
    reconstructs a truncated :class:`~repro.rtp.wire.PacketView` whose header
    accessors are all the datapath touches.  Every record carries an intern-
    table index for its source address.  RTCP compounds ship as
    length-prefixed *wire-format* compound records
    (:func:`~repro.rtp.rtcp.serialize_compound`), decoded back through the
    real codec on the worker — the shard transport speaks RTCP, not pickle.
    STUN ships the same way: the real RFC 5389 wire format
    (:meth:`~repro.stun.message.StunMessage.serialize`), re-parsed on the
    worker, so *no ingress record type pickles* anymore; raw junk bytes ship
    verbatim.

``encode_result_batch`` / ``decode_result_batch``
    Results come back as *rewrite descriptions*, not packets: per input
    record, the packed form is the parse fields plus, per replica, the
    destination address id and an optional rewritten sequence number.  The
    coordinator re-minting the outputs from the **original** payloads it kept
    makes the round trip exact — object-model ingress yields object-model
    outputs, wire-native ingress yields wire-native outputs, and CPU copies
    alias the original ingress datagram (true aliasing, which pickle could
    never give back).  RTCP feedback fan-out — per-receiver *subsets* of the
    ingress compound — packs as destination + packet indices into that
    compound, replayed against the coordinator's original packet objects
    (index-based, so the lossy REMB mantissa encoding never touches the
    replayed floats).  Only results genuinely outside the description
    language fall back to one pickled ``PipelineResult`` each.

``encode_tracker_updates`` / ``decode_tracker_updates``
    Mutated sequence-rewriter registers return as packed register images
    (:func:`repro.core.seqrewrite.pack_rewriter_state`) instead of pickled
    rewriter objects; unknown rewriter classes fall back to pickle per cell.

Pickle remains in exactly two places, both deliberate: the rare control-plane
snapshot on generation change (shipped by the runner, not this codec), and
the per-record fallbacks above (exotic payload types only — every regular
ingress record type now crosses as its real wire format).

Record headers pack and unpack through precompiled multi-field
:class:`struct.Struct` singletons — one call per record (and one per
replica) rather than a chain of single-field calls; profiled as the
coordinator's dominant replay cost at high shard counts.  Two SRTP-driven
modes bend the defaults: ``encode_ingress_batch(..., full_payload=True)``
ships whole wire buffers (workers must authenticate payload bytes), and
``encode_result_batch(..., replayable=False)`` routes media results through
the pickled fallback because SRTP re-protection makes the coordinator's
original bytes unable to stand in for worker egress.

Both encoders assemble into a :class:`ShardBlobWriter` — a preallocated,
grow-only ``bytearray`` that records pack straight into (``pack_into`` at a
cursor, no per-record ``bytes`` temporaries beyond the payload slices
themselves).  Callers that encode every batch (the process runner per shard
coordinator-side, the worker loop result-side) hold one writer per shard and
recycle it across batches, so steady state allocates one output ``bytes``
per blob and nothing else.  To let the writer stream records without
knowing the address table up front, blobs lay out as ``u32 count | u32
body_len | body | addr table`` — the interner's table lands *after* the body
and ``body_len`` backpatches into the header.  Encoder and decoder ship in
this one module and travel together into workers via the control snapshot's
import, so the layout is version-paired by construction; no cross-version
blob ever decodes.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.datagram import Address, Datagram, PayloadKind
from ..rtp.packet import RtpPacket
from ..rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    SenderReport,
    SourceDescription,
    parse_compound,
    serialize_compound,
)
from ..rtp.wire import PacketView, pack_rtp_header
from ..rtp.wirebatch import replay_payloads
from ..stun.message import StunMessage
from .parser import PacketClass, ParseResult
from .pipeline import SWITCH_FORWARDING_DELAY_S, PipelineResult

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")
_BLOB_HDR = struct.Struct("!II")  # record count, body length (addr table after body)

# Precompiled multi-field record structs for the hot encode/decode loops:
# one struct call per record (or per replica) instead of a chain of
# single-field packs/unpacks.  The byte layout is identical to the previous
# field-at-a-time form — only the number of Python-level calls changes.
_ING_RTP_REC = struct.Struct("!BHIH")   # tag, src_id, wire size, region len
_ING_CTRL_PREFIX = struct.Struct("!BHI")  # tag, src_id, wire size
_RES_REC_HDR = struct.Struct("!BHH")    # rflags, dropped_replicas, n_outputs
_RES_FB_HDR = struct.Struct("!HH")      # dropped_replicas, n_outputs
_RES_OUT_SEQ = struct.Struct("!HBH")    # dst_id, 1, rewritten seq
_RES_OUT_NOSEQ = struct.Struct("!HB")   # dst_id, 0  (also: fb dst_id, n_packets)

# ingress record tags
_ING_RTP_HEADER = 0     # header-only wire record (payload stays home)
_ING_RAW_BYTES = 1      # opaque payload bytes, shipped verbatim
_ING_PICKLED = 2        # typed control payload (exotic types only)
_ING_RTCP_COMPOUND = 3  # wire-format RTCP compound (serialize_compound)
_ING_STUN = 4           # wire-format STUN message (RFC 5389 serialize/parse)

# result record tags
_RES_PACKED = 0
_RES_PICKLED = 1
_RES_FEEDBACK = 2       # RTCP feedback fan-out: dst + compound packet indices

#: The closed set of RTCP packet types whose wire codec round-trips count and
#: order exactly (so index-based feedback results stay aligned); anything else
#: in a compound falls back to the pickled record form.
_RTCP_WIRE_TYPES = (
    SenderReport,
    ReceiverReport,
    SourceDescription,
    Nack,
    PictureLossIndication,
    Remb,
)

#: Stable wire order of the :class:`PacketClass` enum (appending is fine,
#: reordering is not — both ends of the transport share this module).
_PACKET_CLASSES: Tuple[PacketClass, ...] = (
    PacketClass.RTP_VIDEO,
    PacketClass.RTP_AUDIO,
    PacketClass.RTCP_SENDER,
    PacketClass.RTCP_FEEDBACK,
    PacketClass.STUN,
    PacketClass.UNKNOWN,
)
_CLASS_INDEX: Dict[PacketClass, int] = {cls: i for i, cls in enumerate(_PACKET_CLASSES)}


class _AddressInterner:
    """Assigns dense u16 ids to addresses while encoding a blob."""

    __slots__ = ("ids", "addresses")

    def __init__(self) -> None:
        self.ids: Dict[Address, int] = {}
        self.addresses: List[Address] = []

    def intern(self, address: Address) -> int:
        index = self.ids.get(address)
        if index is None:
            index = len(self.addresses)
            self.ids[address] = index
            self.addresses.append(address)
        return index

    def encode(self) -> bytes:
        out = bytearray(_U16.pack(len(self.addresses)))
        for address in self.addresses:
            ip = address.ip.encode("ascii")
            out += _U8.pack(len(ip))
            out += ip
            out += _U16.pack(address.port)
        return bytes(out)


class ShardBlobWriter:
    """Preallocated, grow-only encode buffer recycled across batches.

    Records pack straight into the buffer at a cursor (``pack_into``), the
    buffer doubles geometrically when a record would overflow it and never
    shrinks, and :meth:`take` snapshots the written prefix as the outgoing
    ``bytes`` in one slice copy.  One writer per shard, held by whoever
    encodes every batch (the process runner on the coordinator, the worker
    loop for results), turns steady-state encoding into zero-allocation
    cursor writes plus the single unavoidable output copy.
    """

    __slots__ = ("buf", "cursor")

    def __init__(self, initial: int = 1 << 16) -> None:
        self.buf = bytearray(initial)
        self.cursor = 0

    def reset(self) -> None:
        self.cursor = 0

    def _reserve(self, n: int) -> bytearray:
        """Grow (in place, at least doubling) until ``n`` more bytes fit."""
        need = self.cursor + n
        buf = self.buf
        if need > len(buf):
            buf += b"\x00" * max(need - len(buf), len(buf))
        return buf

    def pack(self, st: struct.Struct, *values) -> None:
        size = st.size
        st.pack_into(self._reserve(size), self.cursor, *values)
        self.cursor += size

    def write(self, data) -> None:
        n = len(data)
        buf = self._reserve(n)
        cursor = self.cursor
        buf[cursor : cursor + n] = data
        self.cursor = cursor + n

    def patch_u32(self, offset: int, value: int) -> None:
        """Backpatch a u32 written earlier (the body-length header field)."""
        _U32.pack_into(self.buf, offset, value)

    def take(self) -> bytes:
        """Snapshot the written prefix; the buffer stays for the next batch."""
        return bytes(memoryview(self.buf)[: self.cursor])


def _decode_addresses(blob: bytes, cursor: int) -> Tuple[List[Address], int]:
    (count,) = _U16.unpack_from(blob, cursor)
    cursor += 2
    addresses: List[Address] = []
    for _ in range(count):
        ip_len = blob[cursor]
        cursor += 1
        ip = blob[cursor : cursor + ip_len].decode("ascii")
        cursor += ip_len
        (port,) = _U16.unpack_from(blob, cursor)
        cursor += 2
        addresses.append(Address(ip, port))
    return addresses, cursor


# --------------------------------------------------------------------------- ingress direction


def encode_ingress_batch(
    datagrams: Sequence[Datagram],
    stats=None,
    full_payload: bool = False,
    writer: Optional[ShardBlobWriter] = None,
    size_histogram=None,
) -> bytes:
    """Pack one shard partition into a single transport blob.

    ``stats`` (a :class:`~repro.dataplane.sharding.ShardTransportStats`, or
    anything with a ``pickle_fallback_records`` attribute) counts every
    record that falls back to pickle — zero for all regular traffic types.

    ``full_payload=True`` ships the *entire* wire buffer of a
    :class:`PacketView` instead of the header region, in the same record
    form (the decoder is oblivious — the reconstructed view just is not
    truncated).  The process runner sets it when the control plane carries
    an SRTP profile: workers must see payload and auth tag to authenticate,
    so the header-only optimisation is off by construction there.

    ``writer`` reuses a caller-held :class:`ShardBlobWriter` (one per shard,
    recycled across batches) instead of allocating a fresh buffer per call.

    ``size_histogram`` (a :class:`~repro.obs.registry.Histogram`, or anything
    with ``observe``) receives the finished blob's size — one observation per
    blob, feeding the ``repro.transport.batch_blob_bytes`` distribution.
    """
    if writer is None:
        writer = ShardBlobWriter(initial=1 << 12)
    else:
        writer.reset()
    interner = _AddressInterner()
    writer.pack(_BLOB_HDR, len(datagrams), 0)  # body_len backpatched below
    intern = interner.intern
    pack = writer.pack
    write = writer.write
    rtp_rec = _ING_RTP_REC
    for datagram in datagrams:
        payload = datagram.payload
        src_id = intern(datagram.src)
        if isinstance(payload, PacketView):
            region = payload.buf if full_payload else payload.header_bytes()
            pack(rtp_rec, _ING_RTP_HEADER, src_id, datagram.size, len(region))
            write(region)
        elif isinstance(payload, RtpPacket):
            header = pack_rtp_header(payload)
            pack(rtp_rec, _ING_RTP_HEADER, src_id, datagram.size, len(header))
            write(header)
        elif isinstance(payload, bytes):
            pack(_ING_CTRL_PREFIX, _ING_RAW_BYTES, src_id, datagram.size)
            write(_encode_arrival(datagram.arrived_at))
            pack(_U32, len(payload))
            write(payload)
        elif isinstance(payload, (tuple, list)) and payload and all(
            isinstance(packet, _RTCP_WIRE_TYPES) for packet in payload
        ):
            # RTCP compound: ship the real wire format, not a pickled tuple
            compound = serialize_compound(payload)
            pack(_ING_CTRL_PREFIX, _ING_RTCP_COMPOUND, src_id, datagram.size)
            write(_encode_arrival(datagram.arrived_at))
            pack(_U32, len(compound))
            write(compound)
        elif isinstance(payload, StunMessage):
            # STUN crosses as its real wire format too (the last ingress
            # record type that used to ride per-record pickle)
            wire = payload.serialize()
            pack(_ING_CTRL_PREFIX, _ING_STUN, src_id, datagram.size)
            write(_encode_arrival(datagram.arrived_at))
            pack(_U32, len(wire))
            write(wire)
        else:
            # whitelisted fallback: exotic payload types only, and counted
            if stats is not None:
                stats.pickle_fallback_records += 1
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            pack(_ING_CTRL_PREFIX, _ING_PICKLED, src_id, datagram.size)
            write(_encode_arrival(datagram.arrived_at))
            pack(_U32, len(blob))
            write(blob)
    writer.patch_u32(4, writer.cursor - _BLOB_HDR.size)
    write(interner.encode())
    if size_histogram is not None:
        size_histogram.observe(float(writer.cursor))
    return writer.take()


def _encode_arrival(arrived_at: Optional[float]) -> bytes:
    if arrived_at is None:
        return _U8.pack(0)
    return _U8.pack(1) + _F64.pack(arrived_at)


def _decode_arrival(blob: bytes, cursor: int) -> Tuple[Optional[float], int]:
    flag = blob[cursor]
    cursor += 1
    if not flag:
        return None, cursor
    (value,) = _F64.unpack_from(blob, cursor)
    return value, cursor + 8


def decode_ingress_batch(blob: bytes, dst: Address) -> List[Datagram]:
    """Reconstruct a worker-side view of the partition.

    RTP records become datagrams whose payload is a truncated
    :class:`PacketView` (header region only); their declared wire size rides
    in ``Datagram.size``, which is the only size the datapath reads.  ``dst``
    is the SFU's own address (ingress datagrams are always addressed to it,
    and the datapath never reads it).
    """
    count, body_len = _BLOB_HDR.unpack_from(blob, 0)
    cursor = _BLOB_HDR.size
    addresses, _end = _decode_addresses(blob, cursor + body_len)
    datagrams: List[Datagram] = []
    mint = Datagram.from_fields
    rtp_kind = PayloadKind.RTP
    rtp_rec = _ING_RTP_REC.unpack_from
    ctrl_prefix = _ING_CTRL_PREFIX.unpack_from
    for _ in range(count):
        tag = blob[cursor]
        if tag == _ING_RTP_HEADER:
            # whole record header in one struct call — this is the hot loop
            _tag, src_id, size, header_len = rtp_rec(blob, cursor)
            cursor += _ING_RTP_REC.size
            src = addresses[src_id]
            view = PacketView(blob[cursor : cursor + header_len])
            cursor += header_len
            datagrams.append(
                mint(
                    {
                        "src": src,
                        "dst": dst,
                        "payload": view,
                        "size": size,
                        "kind": rtp_kind,
                        "sent_at": 0.0,
                        "arrived_at": None,
                        "meta": {},
                    }
                )
            )
            continue
        _tag, src_id, size = ctrl_prefix(blob, cursor)
        cursor += _ING_CTRL_PREFIX.size
        src = addresses[src_id]
        arrived_at, cursor = _decode_arrival(blob, cursor)
        (length,) = _U32.unpack_from(blob, cursor)
        cursor += 4
        chunk = blob[cursor : cursor + length]
        cursor += length
        if tag == _ING_RAW_BYTES:
            payload = chunk
        elif tag == _ING_RTCP_COMPOUND:
            payload = tuple(parse_compound(chunk))
        elif tag == _ING_STUN:
            payload = StunMessage.parse(chunk)
        else:
            payload = pickle.loads(chunk)
        datagrams.append(
            Datagram(src=src, dst=dst, payload=payload, size=size, arrived_at=arrived_at)
        )
    return datagrams


# --------------------------------------------------------------------------- result direction

_PFLAG_SSRC = 1 << 0
_PFLAG_TEMPLATE = 1 << 1
_PFLAG_FRAME = 1 << 2
_PFLAG_START = 1 << 3
_PFLAG_END = 1 << 4
_PFLAG_EXTENDED = 1 << 5
_PFLAG_NEEDS_CPU = 1 << 6

_RFLAG_CPU_COPY = 1 << 0


def encode_result_batch(
    results: Sequence[PipelineResult],
    inputs: Sequence[Datagram],
    replayable: bool = True,
    writer: Optional[ShardBlobWriter] = None,
) -> Tuple[bytes, bytes]:
    """Pack a shard's results as rewrite descriptions against ``inputs``.

    Returns ``(blob, fallback_blob)``: results expressible as "replicate the
    input payload to these destinations, rewriting these sequence numbers"
    are packed; the rest (feedback fan-out) land pickled, in order, in
    ``fallback_blob``.

    ``replayable=False`` says the coordinator's originals can *not* stand in
    for the worker's media outputs — the SRTP datapath re-protects each
    egress replica with the egress session keys, so replaying a ``(dst,
    seq)`` description against the coordinator's ingress bytes would mint
    the wrong packet.  Media results then take the per-record pickled
    fallback (counted honestly in the transport stats); aliasing control
    records (RTCP sender replication, feedback fan-out) still pack, since
    their payloads really are the ingress objects.
    """
    if writer is None:
        writer = ShardBlobWriter(initial=1 << 12)
    else:
        writer.reset()
    interner = _AddressInterner()
    writer.pack(_BLOB_HDR, len(results), 0)  # body_len backpatched below
    pack = writer.pack
    write = writer.write
    fallbacks: List[PipelineResult] = []
    for result, ingress in zip(results, inputs):
        if result.parse.packet_class is PacketClass.RTCP_FEEDBACK:
            packed = _try_pack_feedback(result, ingress, interner)
            tag = _RES_FEEDBACK
        else:
            packed = _try_pack_result(result, ingress, interner, replayable)
            tag = _RES_PACKED
        if packed is None:
            pack(_U8, _RES_PICKLED)
            fallbacks.append(result)
        else:
            pack(_U8, tag)
            write(packed)
    writer.patch_u32(4, writer.cursor - _BLOB_HDR.size)
    write(interner.encode())
    blob = writer.take()
    fallback_blob = pickle.dumps(fallbacks, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, fallback_blob


def _pack_parse(parse: ParseResult) -> bytes:
    """Pack the shared ParseResult prefix of a result record."""
    pflags = 0
    extras = bytearray()
    if parse.ssrc is not None:
        pflags |= _PFLAG_SSRC
        extras += _U32.pack(parse.ssrc)
    if parse.template_id is not None:
        pflags |= _PFLAG_TEMPLATE
        extras += _U8.pack(parse.template_id)
    if parse.frame_number is not None:
        pflags |= _PFLAG_FRAME
        extras += _U16.pack(parse.frame_number)
    if parse.start_of_frame:
        pflags |= _PFLAG_START
    if parse.end_of_frame:
        pflags |= _PFLAG_END
    if parse.has_extended_descriptor:
        pflags |= _PFLAG_EXTENDED
    if parse.needs_cpu:
        pflags |= _PFLAG_NEEDS_CPU
    out = bytearray()
    out += _U8.pack(_CLASS_INDEX[parse.packet_class])
    out += _U8.pack(pflags)
    out += extras
    out += _U16.pack(parse.parse_depth)
    return bytes(out)


def _try_pack_feedback(
    result: PipelineResult, ingress: Datagram, interner: _AddressInterner
) -> Optional[bytes]:
    """Pack an RTCP feedback fan-out as per-destination packet indices.

    Feedback outputs are per-receiver *subsets* of the ingress compound, so
    the packed form is ``dst + indices into that compound``; the coordinator
    replays the indices against the original packet objects it kept (exact by
    construction — no re-serialization of the packets themselves).
    """
    if len(result.cpu_copies) != 1 or result.cpu_copies[0] is not ingress:
        return None
    compound = ingress.payload
    if not isinstance(compound, (tuple, list)) or len(compound) > 255:
        return None
    index_of = {id(packet): index for index, packet in enumerate(compound)}
    outputs: List[Tuple[int, List[int]]] = []
    for output in result.outputs:
        packets = output.payload
        if not isinstance(packets, (tuple, list)) or len(packets) > 255:
            return None
        indices: List[int] = []
        for packet in packets:
            index = index_of.get(id(packet))
            if index is None:
                return None
            indices.append(index)
        outputs.append((interner.intern(output.dst), indices))

    out = bytearray(_pack_parse(result.parse))
    out += _RES_FB_HDR.pack(result.dropped_replicas, len(outputs))
    for dst_id, indices in outputs:
        out += _RES_OUT_NOSEQ.pack(dst_id, len(indices))
        out += bytes(indices)
    return bytes(out)


def _try_pack_result(
    result: PipelineResult,
    ingress: Datagram,
    interner: _AddressInterner,
    replayable: bool = True,
) -> Optional[bytes]:
    parse = result.parse
    if len(result.cpu_copies) > 1:
        return None
    if result.cpu_copies and result.cpu_copies[0] is not ingress:
        return None
    in_payload = ingress.payload
    outputs: List[Tuple[int, Optional[int]]] = []
    for output in result.outputs:
        out_payload = output.payload
        if out_payload is in_payload:
            outputs.append((interner.intern(output.dst), None))
        elif not replayable:
            # the worker's egress bytes differ from anything the coordinator
            # can reconstruct (SRTP re-protection) — ship the real result
            return None
        elif isinstance(out_payload, (PacketView, RtpPacket)) and isinstance(
            in_payload, (PacketView, RtpPacket)
        ):
            outputs.append((interner.intern(output.dst), out_payload.sequence_number))
        else:
            return None

    out = bytearray(_pack_parse(parse))
    out += _RES_REC_HDR.pack(
        _RFLAG_CPU_COPY if result.cpu_copies else 0,
        result.dropped_replicas,
        len(outputs),
    )
    for dst_id, seq in outputs:
        if seq is None:
            out += _RES_OUT_NOSEQ.pack(dst_id, 0)
        else:
            out += _RES_OUT_SEQ.pack(dst_id, 1, seq)
    return bytes(out)


def decode_result_batch(
    blob: bytes,
    fallback_blob: bytes,
    inputs: Sequence[Datagram],
    sfu_address: Address,
    stats=None,
    size_histogram=None,
) -> List[PipelineResult]:
    """Replay packed rewrite descriptions against the coordinator's originals.

    ``inputs`` must be the exact partition the batch was encoded from (same
    order); packed outputs are minted from each original datagram's payload,
    so the reconstructed results are indistinguishable from in-process shard
    execution — including payload object sharing between an input and its
    unrewritten replicas.

    ``size_histogram`` receives the combined inbound blob size (packed +
    fallback) per batch, feeding ``repro.transport.result_blob_bytes``.
    """
    from types import MappingProxyType

    if size_histogram is not None:
        size_histogram.observe(float(len(blob) + len(fallback_blob)))
    fallbacks: List[PipelineResult] = pickle.loads(fallback_blob)
    fallback_iter = iter(fallbacks)
    count, body_len = _BLOB_HDR.unpack_from(blob, 0)
    cursor = _BLOB_HDR.size
    addresses, _end = _decode_addresses(blob, cursor + body_len)
    results: List[PipelineResult] = []
    mint = Datagram.from_fields
    rtp_kind = PayloadKind.RTP
    media_classes = (PacketClass.RTP_VIDEO, PacketClass.RTP_AUDIO)
    u16_at = _U16.unpack_from
    u32_at = _U32.unpack_from
    rec_hdr = _RES_REC_HDR.unpack_from
    fb_hdr = _RES_FB_HDR.unpack_from
    out_hdr = _RES_OUT_NOSEQ.unpack_from
    # frozen ParseResults repeat per stream (every non-boundary packet of a
    # frame parses identically), so intern them by their packed record bytes
    # instead of paying the frozen-dataclass __init__ per packet
    parse_cache: Dict[bytes, ParseResult] = {}
    # shared meta views, reusable whenever the ingress datagram carried no
    # meta of its own (the origin fields depend only on the flow)
    meta_cache: Dict[Tuple[Address, Optional[int]], object] = {}
    for index in range(count):
        tag = blob[cursor]
        cursor += 1
        if tag == _RES_PICKLED:
            # whitelisted fallback (feedback fan-out the packed form can't
            # express), counted coordinator-side where the stats live
            if stats is not None:
                stats.pickle_fallback_records += 1
            results.append(next(fallback_iter))
            continue
        ingress = inputs[index]
        parse_start = cursor
        pflags = blob[cursor + 1]
        cursor += 2
        ssrc = template_id = frame_number = None
        if pflags & _PFLAG_SSRC:
            (ssrc,) = u32_at(blob, cursor)
            cursor += 4
        if pflags & _PFLAG_TEMPLATE:
            template_id = blob[cursor]
            cursor += 1
        if pflags & _PFLAG_FRAME:
            (frame_number,) = u16_at(blob, cursor)
            cursor += 2
        cursor += 2  # parse_depth consumed below only on a cache miss
        parse_key = blob[parse_start:cursor]
        parse = parse_cache.get(parse_key)
        if parse is None:
            (parse_depth,) = u16_at(blob, cursor - 2)
            parse = ParseResult(
                packet_class=_PACKET_CLASSES[blob[parse_start]],
                ssrc=ssrc,
                template_id=template_id,
                frame_number=frame_number,
                start_of_frame=bool(pflags & _PFLAG_START),
                end_of_frame=bool(pflags & _PFLAG_END),
                has_extended_descriptor=bool(pflags & _PFLAG_EXTENDED),
                needs_cpu=bool(pflags & _PFLAG_NEEDS_CPU),
                parse_depth=parse_depth,
            )
            parse_cache[parse_key] = parse
        cls = parse.packet_class
        if tag == _RES_FEEDBACK:
            # feedback fan-out: replay packet indices against the original
            # compound the coordinator kept (per-receiver subsets, aliased)
            dropped, n_outputs = fb_hdr(blob, cursor)
            cursor += 4
            result = PipelineResult(parse=parse)
            result.dropped_replicas = dropped
            result.cpu_copies.append(ingress)
            if n_outputs:
                compound = ingress.payload
                arrived_at = ingress.arrived_at
                egress_schedule = (
                    None if arrived_at is None else arrived_at + SWITCH_FORWARDING_DELAY_S
                )
                for _ in range(n_outputs):
                    dst_id, n_packets = out_hdr(blob, cursor)
                    cursor += 3
                    packets = tuple(
                        compound[blob[cursor + offset]] for offset in range(n_packets)
                    )
                    cursor += n_packets
                    result.outputs.append(
                        Datagram(
                            src=sfu_address,
                            dst=addresses[dst_id],
                            payload=packets,
                            arrived_at=egress_schedule,
                        )
                    )
            results.append(result)
            continue
        rflags, dropped, n_outputs = rec_hdr(blob, cursor)
        cursor += 5

        result = PipelineResult(parse=parse)
        result.dropped_replicas = dropped
        if rflags & _RFLAG_CPU_COPY:
            result.cpu_copies.append(ingress)

        if n_outputs:
            payload = ingress.payload
            arrived_at = ingress.arrived_at
            egress_schedule = (
                None if arrived_at is None else arrived_at + SWITCH_FORWARDING_DELAY_S
            )
            if cls in media_classes:
                # replica size follows the reference paths: the object fast
                # path stamps packet.size, the wire path the datagram size
                out_size = payload.size if isinstance(payload, RtpPacket) else ingress.size
                if ingress.meta:
                    shared_meta = MappingProxyType(
                        dict(ingress.meta, origin=ingress.src, origin_ssrc=ssrc)
                    )
                else:
                    meta_key = (ingress.src, ssrc)
                    shared_meta = meta_cache.get(meta_key)
                    if shared_meta is None:
                        shared_meta = meta_cache[meta_key] = MappingProxyType(
                            {"origin": ingress.src, "origin_ssrc": ssrc}
                        )
                # decode the replica descriptors into parallel dst/seq lists
                # (-1 marks an unrewritten alias of the ingress payload) ...
                dsts: List[Address] = []
                seqs: List[int] = []
                for _ in range(n_outputs):
                    dst_id, has_seq = out_hdr(blob, cursor)
                    cursor += 3
                    dsts.append(addresses[dst_id])
                    if has_seq:
                        (seq,) = _U16.unpack_from(blob, cursor)
                        cursor += 2
                        seqs.append(seq)
                    else:
                        seqs.append(-1)
                # ... then mint the payloads in one batched pass: wire
                # records go through the columnar bulk replay (one buffer
                # copy + seq patch per rewritten replica, aliasing for the
                # rest), object records through the dataclass rewrite
                if isinstance(payload, PacketView):
                    payloads = replay_payloads(payload, seqs)
                else:
                    payloads = [
                        payload if seq < 0 else payload.with_sequence_number(seq)
                        for seq in seqs
                    ]
                fields = {
                    "src": sfu_address,
                    "dst": None,
                    "payload": payload,
                    "size": out_size,
                    "kind": rtp_kind,
                    "sent_at": 0.0,
                    "arrived_at": egress_schedule,
                    "meta": shared_meta,
                }
                outputs = result.outputs
                for dst, out_payload in zip(dsts, payloads):
                    instance = dict(fields)
                    instance["dst"] = dst
                    instance["payload"] = out_payload
                    outputs.append(mint(instance))
            else:
                # sender-side RTCP replication: every replica shares the
                # ingress payload and carries no meta (reference behaviour)
                for _ in range(n_outputs):
                    dst_id, has_seq = out_hdr(blob, cursor)
                    cursor += 3
                    if has_seq:
                        cursor += 2
                    result.outputs.append(
                        Datagram(
                            src=sfu_address,
                            dst=addresses[dst_id],
                            payload=payload,
                            arrived_at=egress_schedule,
                        )
                    )
        results.append(result)
    return results


# --------------------------------------------------------------------------- rewriter registers

_TRK_NONE = 0
_TRK_PACKED = 1
_TRK_PICKLED = 2


def encode_tracker_updates(updates: Dict[int, object], stats=None) -> bytes:
    """Pack ``register index -> rewriter`` mutations (None clears a cell)."""
    from ..core.seqrewrite import pack_rewriter_state

    out = bytearray(_U32.pack(len(updates)))
    for index, rewriter in updates.items():
        out += _U32.pack(index)
        if rewriter is None:
            out += _U8.pack(_TRK_NONE)
            continue
        try:
            blob = pack_rewriter_state(rewriter)
            out += _U8.pack(_TRK_PACKED)
        except TypeError:
            # whitelisted fallback: rewriter classes outside the packed
            # register-image format, counted per cell
            if stats is not None:
                stats.pickle_fallback_records += 1
            blob = pickle.dumps(rewriter, protocol=pickle.HIGHEST_PROTOCOL)
            out += _U8.pack(_TRK_PICKLED)
        out += _U32.pack(len(blob))
        out += blob
    return bytes(out)


def decode_tracker_updates(blob: bytes, stats=None) -> List[Tuple[int, object]]:
    from ..core.seqrewrite import unpack_rewriter_state

    (count,) = _U32.unpack_from(blob, 0)
    cursor = 4
    updates: List[Tuple[int, object]] = []
    for _ in range(count):
        (index,) = _U32.unpack_from(blob, cursor)
        tag = blob[cursor + 4]
        cursor += 5
        if tag == _TRK_NONE:
            updates.append((index, None))
            continue
        (length,) = _U32.unpack_from(blob, cursor)
        cursor += 4
        chunk = blob[cursor : cursor + length]
        cursor += length
        if tag == _TRK_PACKED:
            updates.append((index, unpack_rewriter_state(chunk)))
        else:
            # inbound leg of the per-cell rewriter fallback, counted
            # coordinator-side (workers decode migration blobs without stats)
            if stats is not None:
                stats.pickle_fallback_records += 1
            updates.append((index, pickle.loads(chunk)))
    return updates
