"""The data-plane parser model (paper Appendix E).

The Tofino parser walks a largely static parse graph with limited lookahead
and bounded depth.  Scallop's program classifies UDP payloads into RTP media,
RTCP, and STUN by looking at the first bits, then — for RTP video — walks the
header-extension elements up to a bounded depth to find the AV1 dependency
descriptor and extract its template id.  Anything beyond those capabilities
(extended descriptors carrying a template structure, STUN's TLV attributes,
RTCP compound payloads) must be punted to the switch CPU.

This module reproduces exactly that capability envelope, operating on the same
byte layouts as the real protocols (via the codecs in :mod:`repro.rtp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from ..netsim.datagram import Datagram, PayloadKind
from ..rtp.av1 import DependencyDescriptor
from ..rtp.extensions import (
    EXT_ID_AV1_DEPENDENCY_DESCRIPTOR,
    decode_extensions,
)
from ..rtp.packet import PT_AUDIO_OPUS, RtpPacket
from ..rtp.wire import PacketView
from ..rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    RtcpPacket,
    SenderReport,
    SourceDescription,
)
from ..stun.message import StunMessage

#: Maximum number of header-extension elements the parse graph can traverse
#: before running out of parser states (the depth-aware tree of Appendix E).
MAX_EXTENSION_ELEMENTS = 4
#: Maximum dependency-descriptor bytes the parser can pull into PHV; the
#: mandatory DD prefix fits, an extended descriptor with a template structure
#: does not.
MAX_DD_BYTES_PARSEABLE = 4


class PacketClass(str, Enum):
    """The classification the ingress parser produces for every packet."""

    RTP_VIDEO = "rtp_video"
    RTP_AUDIO = "rtp_audio"
    RTCP_SENDER = "rtcp_sender"       # SR / SDES: originates at a media sender
    RTCP_FEEDBACK = "rtcp_feedback"   # RR / REMB / NACK / PLI: from a receiver
    STUN = "stun"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ParseResult:
    """What the ingress parser extracted from one packet."""

    packet_class: PacketClass
    ssrc: Optional[int] = None
    template_id: Optional[int] = None
    frame_number: Optional[int] = None
    start_of_frame: bool = False
    end_of_frame: bool = False
    has_extended_descriptor: bool = False
    needs_cpu: bool = False
    parse_depth: int = 0
    #: ``packet_class.value`` precomputed at construction: the batch paths
    #: key per-packet accounting tallies on it, and reading it through the
    #: enum's ``DynamicClassAttribute`` descriptor costs a call per packet.
    #: Derived, so it never disagrees with ``packet_class``.
    class_value: str = ""
    #: ``packet_class is RTP_VIDEO``, precomputed for the same reason.
    is_video: bool = False
    #: Whether the pipeline must copy this packet to the switch CPU
    #: (``needs_cpu and has_extended_descriptor``), precomputed likewise.
    cpu_copy: bool = False

    def __post_init__(self) -> None:
        if not self.class_value:
            object.__setattr__(self, "class_value", self.packet_class.value)
        object.__setattr__(self, "is_video", self.packet_class is PacketClass.RTP_VIDEO)
        object.__setattr__(self, "cpu_copy", self.needs_cpu and self.has_extended_descriptor)


class IngressParser:
    """The bounded-capability parser at the front of the ingress pipeline."""

    #: Bound on the memoized-parse cache used by the batch fast path.
    PARSE_CACHE_LIMIT = 8192

    def __init__(
        self,
        max_extension_elements: int = MAX_EXTENSION_ELEMENTS,
        max_dd_bytes: int = MAX_DD_BYTES_PARSEABLE,
    ) -> None:
        self.max_extension_elements = max_extension_elements
        self.max_dd_bytes = max_dd_bytes
        self.packets_parsed = 0
        self.cpu_punts = 0
        self._rtp_parse_cache: dict = {}
        self.parse_cache_hits = 0

    def parse(self, datagram: Datagram) -> ParseResult:
        """Classify a datagram and extract the fields the pipeline matches on."""
        self.packets_parsed += 1
        if datagram.kind == PayloadKind.STUN:
            self.cpu_punts += 1
            return ParseResult(packet_class=PacketClass.STUN, needs_cpu=True)
        if datagram.kind == PayloadKind.RTCP:
            return self._parse_rtcp(datagram)
        if datagram.kind == PayloadKind.RTP and isinstance(
            datagram.payload, (RtpPacket, PacketView)
        ):
            # _parse_rtp reads only payload_type/ssrc/extension, which both
            # the object model and the wire-native view expose identically
            return self._parse_rtp(datagram.payload)
        return ParseResult(packet_class=PacketClass.UNKNOWN, needs_cpu=True)

    def parse_rtp_cached(self, packet: RtpPacket) -> ParseResult:
        """Memoized RTP parse used by the batch fast path.

        The parse outcome is fully determined by the payload type, the SSRC,
        and the raw header-extension bytes, so packets of the same stream
        whose extension block repeats (every non-boundary packet of a frame,
        and RTX copies) reuse the frozen :class:`ParseResult` instead of
        walking the extension elements again.  Punt/parse counters advance
        exactly as on the uncached path so the accounting stays identical.
        """
        extension = packet.extension
        if extension is None:
            key = (packet.ssrc, packet.payload_type)
        else:
            # flatten to (profile, bytes): bytes cache their hash, the frozen
            # dataclass recomputes it on every lookup
            key = (packet.ssrc, packet.payload_type, extension.profile, extension.data)
        return self._memoized_parse(key, packet)

    def parse_rtp_wire_cached(self, view: PacketView) -> ParseResult:
        """Memoized RTP parse for wire-native packets (the zero-decode path).

        Shares the memo dictionary (and key space) with
        :meth:`parse_rtp_cached`: the key is the tuple of exactly the bytes
        the parse outcome depends on, so mixed wire/object traffic of the
        same stream hits one cache.  The header fields are read straight off
        the buffer; only a cache miss walks the extension elements (through
        the same :meth:`_parse_rtp` the object path uses, so the resulting
        :class:`ParseResult` is identical field for field).
        """
        return self._memoized_parse(view.parse_key(), view)

    def _memoized_parse(self, key: tuple, packet: "RtpPacket | PacketView") -> ParseResult:
        """Shared cache lookup + punt/parse accounting for both RTP fast
        paths (object and wire build only the key differently)."""
        cached = self._rtp_parse_cache.get(key)
        if cached is not None:
            self.packets_parsed += 1
            if cached.needs_cpu:
                self.cpu_punts += 1
            self.parse_cache_hits += 1
            return cached
        result = self._parse_rtp(packet)
        self.packets_parsed += 1
        if len(self._rtp_parse_cache) >= self.PARSE_CACHE_LIMIT:
            self._rtp_parse_cache.clear()
        self._rtp_parse_cache[key] = result
        return result

    # -- RTP -----------------------------------------------------------------------

    def _parse_rtp(self, packet: "RtpPacket | PacketView") -> ParseResult:
        if packet.payload_type == PT_AUDIO_OPUS:
            return ParseResult(packet_class=PacketClass.RTP_AUDIO, ssrc=packet.ssrc, parse_depth=12)

        template_id: Optional[int] = None
        frame_number: Optional[int] = None
        start = end = False
        extended = False
        needs_cpu = False
        depth = 12

        elements = decode_extensions(packet.extension)
        for index, element in enumerate(elements):
            depth += 2 + len(element.data)
            if index >= self.max_extension_elements:
                # the parse graph ran out of landing states; give up on the DD
                needs_cpu = False
                break
            if element.ext_id != EXT_ID_AV1_DEPENDENCY_DESCRIPTOR:
                continue
            try:
                descriptor = DependencyDescriptor.parse_prefix(element.data)
            except ValueError:
                needs_cpu = True
                break
            template_id = descriptor.template_id
            frame_number = descriptor.frame_number
            start = descriptor.start_of_frame
            end = descriptor.end_of_frame
            if len(element.data) > self.max_dd_bytes:
                # extended descriptor (template structure) - data plane cannot
                # parse it; the packet is still forwarded, but a copy goes to
                # the switch agent for SVC analysis.
                extended = True
                needs_cpu = True
            break

        if needs_cpu:
            self.cpu_punts += 1
        # Minted via __new__ + a prepared __dict__: the AV1 dependency
        # descriptor makes video extension bytes distinct per frame, so this
        # runs on every parse-cache miss and the frozen-dataclass __init__
        # (one object.__setattr__ per field) is the dominant cost.  The dict
        # carries every field, including the derived ones __post_init__
        # computes, so the result is field-identical to the constructor's.
        result = ParseResult.__new__(ParseResult)
        object.__setattr__(
            result,
            "__dict__",
            {
                "packet_class": PacketClass.RTP_VIDEO,
                "ssrc": packet.ssrc,
                "template_id": template_id,
                "frame_number": frame_number,
                "start_of_frame": start,
                "end_of_frame": end,
                "has_extended_descriptor": extended,
                "needs_cpu": needs_cpu,
                "parse_depth": depth,
                "class_value": "rtp_video",
                "is_video": True,
                "cpu_copy": needs_cpu and extended,
            },
        )
        return result

    # -- RTCP ----------------------------------------------------------------------

    def _parse_rtcp(self, datagram: Datagram) -> ParseResult:
        packets: Sequence[RtcpPacket] = datagram.payload  # type: ignore[assignment]
        has_sender_info = any(isinstance(p, (SenderReport, SourceDescription)) for p in packets)
        has_feedback = any(
            isinstance(p, (ReceiverReport, Remb, Nack, PictureLossIndication)) for p in packets
        )
        ssrc = None
        for p in packets:
            if isinstance(p, (SenderReport, ReceiverReport, Remb, Nack, PictureLossIndication)):
                ssrc = p.sender_ssrc
                break
        if has_feedback:
            # feedback needs analysis by the agent (REMB filter, rate control);
            # the data plane forwards it per installed rules and copies it to CPU
            self.cpu_punts += 1
            return ParseResult(packet_class=PacketClass.RTCP_FEEDBACK, ssrc=ssrc, needs_cpu=True, parse_depth=8)
        if has_sender_info:
            return ParseResult(packet_class=PacketClass.RTCP_SENDER, ssrc=ssrc, parse_depth=8)
        self.cpu_punts += 1
        return ParseResult(packet_class=PacketClass.UNKNOWN, ssrc=ssrc, needs_cpu=True, parse_depth=8)
