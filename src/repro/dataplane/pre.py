"""Packet Replication Engine (PRE) model.

Mirrors the three-level replication hierarchy of the Tofino PRE described in
§6.3 and Figure 13 of the paper:

* A **multicast tree** (identified by an MGID) contains **L1 nodes**.
* Each L1 node has a node id (unique across the PRE), a replication id (RID,
  unique within a tree), an optional **L1 exclusion id (XID)** with a pruning
  flag, and points to a set of **egress ports** (the L2 level).
* Each L2 port membership can carry an **L2 XID**.

When the ingress pipeline submits a packet it supplies the packet's MGID, an
optional L1 XID and an (RID, L2 XID) pair.  The PRE then:

* copies the packet to every L1 node of the tree **except** nodes whose
  pruning flag is set and whose XID equals the packet's L1 XID (this is how
  Scallop keeps meeting M1's packets away from meeting M2's participants when
  two meetings share a tree), and
* for the node whose RID equals the packet's RID, suppresses the copy to the
  egress port matching the packet's L2 XID (this is how a sender is prevented
  from receiving its own packet).

Resource limits (64K trees, 2^24 L1 nodes, 64K RIDs/tree) are enforced through
a :class:`~repro.dataplane.resources.ResourceAccountant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .resources import DEFAULT_CAPACITIES, ResourceAccountant, ResourceExhausted


@dataclass(frozen=True)
class L2Port:
    """An egress port membership of an L1 node, with optional L2 XID."""

    port: int
    l2_xid: Optional[int] = None


@dataclass
class L1Node:
    """A level-1 node of a multicast tree."""

    node_id: int
    rid: int
    ports: Tuple[L2Port, ...]
    l1_xid: Optional[int] = None
    prune_enabled: bool = False


@dataclass(frozen=True)
class Replica:
    """One packet copy produced by the PRE."""

    rid: int
    egress_port: int


@dataclass
class MulticastTree:
    """A multicast group: an MGID plus its set of L1 nodes."""

    mgid: int
    nodes: Dict[int, L1Node] = field(default_factory=dict)

    def rids(self) -> Set[int]:
        return {node.rid for node in self.nodes.values()}


class PacketReplicationEngine:
    """The PRE: tree management (control plane) + replication (data plane)."""

    def __init__(self, accountant: Optional[ResourceAccountant] = None) -> None:
        self.accountant = accountant or ResourceAccountant(DEFAULT_CAPACITIES)
        self._trees: Dict[int, MulticastTree] = {}
        self._next_node_id = 1
        self._next_mgid = 1
        self.replications_performed = 0
        self.copies_produced = 0
        #: Monotonic generation counter bumped on every tree/node mutation so
        #: forwarding caches built on replication results can detect staleness.
        self.generation = 0
        self._generation_deferred = False
        self._pending_bump = False

    def _bump_generation(self) -> None:
        if self._generation_deferred:
            self._pending_bump = True
        else:
            self.generation += 1

    def defer_generation_bumps(self) -> None:
        """Coalesce generation bumps during control-plane write batching."""
        self._generation_deferred = True

    def commit_generation_bumps(self) -> None:
        self._generation_deferred = False
        if self._pending_bump:
            self._pending_bump = False
            self.generation += 1

    # ------------------------------------------------------------------ control API

    def create_tree(self) -> int:
        """Allocate a new multicast tree and return its MGID."""
        self.accountant.allocate_tree(l1_nodes=0)
        mgid = self._next_mgid
        self._next_mgid += 1
        self._trees[mgid] = MulticastTree(mgid=mgid)
        self._bump_generation()
        return mgid

    def destroy_tree(self, mgid: int) -> None:
        """Deallocate a tree and all its L1 nodes."""
        tree = self._trees.pop(mgid, None)
        if tree is None:
            return
        self._bump_generation()
        self.accountant.release_tree(l1_nodes=len(tree.nodes))
        # the tree slot itself was accounted with 0 nodes at creation; node
        # counts were added per add_node call, so balance them out here
        self.accountant.l1_nodes_allocated = max(
            0, self.accountant.l1_nodes_allocated
        )

    def add_node(
        self,
        mgid: int,
        rid: int,
        ports: Iterable[L2Port],
        l1_xid: Optional[int] = None,
        prune_enabled: bool = False,
    ) -> int:
        """Add an L1 node to a tree; returns the PRE-wide node id."""
        tree = self._require_tree(mgid)
        port_tuple = tuple(ports)
        if not port_tuple:
            raise ValueError("an L1 node must reference at least one egress port")
        if rid in tree.rids() and any(n.rid == rid for n in tree.nodes.values()):
            # multiple nodes may share an RID only if they serve distinct ports;
            # Scallop never does this, so reject to catch configuration bugs.
            raise ValueError(f"RID {rid} already present in tree {mgid}")
        if rid >= self.accountant.capacities.max_rids_per_tree:
            raise ResourceExhausted("RID space exhausted for tree")
        if self.accountant.l1_nodes_allocated + 1 > self.accountant.capacities.max_l1_nodes:
            raise ResourceExhausted("L1 nodes exhausted")
        node_id = self._next_node_id
        self._next_node_id += 1
        tree.nodes[node_id] = L1Node(
            node_id=node_id,
            rid=rid,
            ports=port_tuple,
            l1_xid=l1_xid,
            prune_enabled=prune_enabled,
        )
        self.accountant.l1_nodes_allocated += 1
        self._bump_generation()
        return node_id

    def remove_node(self, mgid: int, node_id: int) -> None:
        tree = self._require_tree(mgid)
        if tree.nodes.pop(node_id, None) is not None:
            self._bump_generation()
            self.accountant.l1_nodes_allocated = max(0, self.accountant.l1_nodes_allocated - 1)

    def tree(self, mgid: int) -> MulticastTree:
        return self._require_tree(mgid)

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    def total_l1_nodes(self) -> int:
        return sum(len(tree.nodes) for tree in self._trees.values())

    # ------------------------------------------------------------------ data-plane API

    def expand(
        self,
        mgid: int,
        l1_xid: Optional[int] = None,
        rid: Optional[int] = None,
        l2_xid: Optional[int] = None,
    ) -> List[Replica]:
        """The pure replication tree walk: L1/L2 pruning, **no accounting**.

        Reads only immutable-per-generation tree structure, so concurrent
        datapaths may call it freely; callers that own the data-plane tally
        (:meth:`replicate`, or a thread-mode datapath accumulating
        per-shard local stats) account the replication themselves.
        """
        tree = self._require_tree(mgid)
        replicas: List[Replica] = []
        for node in tree.nodes.values():
            if node.prune_enabled and l1_xid is not None and node.l1_xid == l1_xid:
                continue
            for port in node.ports:
                if (
                    rid is not None
                    and l2_xid is not None
                    and node.rid == rid
                    and port.l2_xid == l2_xid
                ):
                    continue
                replicas.append(Replica(rid=node.rid, egress_port=port.port))
        return replicas

    def replicate(
        self,
        mgid: int,
        l1_xid: Optional[int] = None,
        rid: Optional[int] = None,
        l2_xid: Optional[int] = None,
    ) -> List[Replica]:
        """Replicate a packet through a tree, applying L1 and L2 pruning.

        ``l1_xid`` prunes whole L1 nodes (other meetings sharing the tree);
        the (``rid``, ``l2_xid``) pair prunes the sender's own copy.
        """
        replicas = self.expand(mgid, l1_xid=l1_xid, rid=rid, l2_xid=l2_xid)
        self.replications_performed += 1
        self.copies_produced += len(replicas)
        return replicas

    def note_replication(self, copies: int) -> None:
        """Data-plane accounting for a replication served from a datapath's
        memoized resolution: advances the same counters :meth:`replicate`
        would have, so cache-hit replay and the uncached path tally
        identically.  This is PRE data-plane API — the sanctioned way for a
        datapath to account a replication without writing PRE attributes
        directly (which the share-nothing rule and the shard-isolation
        sanitizer both reject)."""
        self.replications_performed += 1
        self.copies_produced += copies

    def note_replications(self, count: int, copies: int) -> None:
        """Bulk :meth:`note_replication`: fold ``count`` memoized
        replications that produced ``copies`` total copies in one call.  The
        batch path accumulates cache-hit replays locally and folds them at
        the batch boundary, so the counters advance exactly as ``count``
        individual calls would have."""
        self.replications_performed += count
        self.copies_produced += copies

    # ------------------------------------------------------------------ helpers

    def _require_tree(self, mgid: int) -> MulticastTree:
        tree = self._trees.get(mgid)
        if tree is None:
            raise KeyError(f"unknown multicast tree: {mgid}")
        return tree
