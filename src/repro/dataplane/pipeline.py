"""The Scallop switch pipeline: ingress parsing/matching, PRE replication, and
egress rewriting.

This is the behavioural model of the ~2000 lines of P4 the paper describes
(§6): per packet it can only

* parse the bounded set of fields in :class:`~repro.dataplane.parser.IngressParser`,
* look up exact-match tables that the control plane installed beforehand,
* invoke the :class:`~repro.dataplane.pre.PacketReplicationEngine`, and
* in egress, rewrite addresses and sequence numbers using per-stream register
  state and drop packets whose SVC template id the receiver's decode target
  excludes.

Everything else (STUN, RTCP feedback analysis, extended AV1 descriptors) is
copied or punted to the switch CPU, which is exactly the split Table 1
quantifies.

Architecturally the model is split the way the paper splits the system:

* :class:`PipelineControlPlane` owns everything the switch agent writes —
  match-action tables, the PRE configuration, stream-index allocation, the
  sequence-rewriter register file, and resource accounting.  All writes fan
  out to every attached datapath (per-shard register copies), so a datapath
  never blocks on another datapath's state.
* :class:`PipelineDatapath` is the per-packet engine: it holds only
  read-mostly references into the control plane plus private state (parser,
  counters, memoized flow resolution, its rewriter register view).  Per-flow
  operations commute (the Scalable Commutativity Rule), so datapaths can be
  replicated into shards that share nothing but the control plane — see
  :class:`~repro.dataplane.sharding.ShardedScallopPipeline`.
* :class:`ScallopPipeline` is the single-datapath composition of the two,
  preserving the original one-object API used throughout the repo.

The datapath can be driven per packet (:meth:`PipelineDatapath.process`, the
reference path) or per burst (:meth:`PipelineDatapath.process_batch`, the fast
path used by multi-meeting sweeps).  Both produce byte-identical outputs; the
batch path amortizes parsing and table-lookup work behind caches that are
invalidated on every control-plane write (tracked through per-table write
generations, compared against the datapath's own generation stamp).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Protocol, Sequence, Set, Tuple

from ..netsim.datagram import Address, Datagram, PayloadKind
from ..obs.hooks import DatapathObs, ObsConfig
from ..rtp.packet import RTP_HEADER_LEN, RtpPacket
from ..rtp.wire import PacketView
from ..rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    RtcpPacket,
    SenderReport,
    SourceDescription,
)
from .parser import IngressParser, PacketClass, ParseResult
from .pre import L2Port, PacketReplicationEngine, Replica
from .resources import DEFAULT_CAPACITIES, ResourceAccountant, TofinoCapacities
from .sanitize import IsolationViolation, resolve_sanitize, sanitize_datapath
from .tables import ExactMatchTable, IndexAllocator, RegisterArray

#: Fixed pipeline traversal latency of the switch (ingress + PRE + egress).
#: Tofino-class devices forward in well under a microsecond; the slightly
#: larger constant accounts for port serialization of ~1 KB packets and keeps
#: the Figure 19 comparison conservative.
SWITCH_FORWARDING_DELAY_S = 12e-6

#: Version stamp on exported control-plane flow snapshots
#: (:meth:`PipelineControlPlane.export_flow_state`).  Bumped whenever the
#: record layout changes; :meth:`~PipelineControlPlane.import_flow_state`
#: refuses a mismatched snapshot loudly rather than guessing at field
#: semantics across versions.
CONTROL_SNAPSHOT_VERSION = 1


class SnapshotVersionError(RuntimeError):
    """A control-plane flow snapshot was produced under a different layout
    version than the restoring pipeline understands."""


def decode_flow_state(payload: dict) -> List[Tuple[Address, int, FrozenSet[int], "SequenceRewriter"]]:
    """Validate and decode a flow snapshot produced by
    :meth:`PipelineControlPlane.export_flow_state`.

    The single version-enforcement point for every restore path (direct
    :meth:`~PipelineControlPlane.import_flow_state` and the cluster
    migration's agent-level adoption): a mismatched version raises
    :class:`SnapshotVersionError` naming both versions.  Returns
    ``(sender_ssrc, receiver, allowed_templates, rewriter)`` tuples with the
    rewriters rebuilt from their packed register images.
    """
    from ..core.seqrewrite import unpack_rewriter_state

    version = payload.get("version")
    if version != CONTROL_SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"flow snapshot version {version!r} does not match this control "
            f"plane's CONTROL_SNAPSHOT_VERSION {CONTROL_SNAPSHOT_VERSION!r}"
        )
    records = []
    for record in payload["flows"]:
        records.append(
            (
                record["sender_ssrc"],
                Address(record["receiver_ip"], record["receiver_port"]),
                frozenset(record["allowed_templates"]),
                unpack_rewriter_state(record["rewriter"]),
            )
        )
    return records


class SequenceRewriter(Protocol):
    """Per-stream sequence-number rewriting state machine (S-LM / S-LR).

    The pipeline calls :meth:`on_packet` for every packet of a rate-adapted
    (sender -> receiver) stream in arrival order.  ``forward`` is False when
    the SFU is suppressing the packet for rate adaptation.  The return value
    is the rewritten sequence number, or ``None`` if the packet must not be
    forwarded (either because it was suppressed or because forwarding it would
    risk emitting a duplicate sequence number).
    """

    def on_packet(self, sequence_number: int, frame_number: int, forward: bool) -> Optional[int]:
        ...

    @property
    def state_cells(self) -> int:
        """Register cells this rewriter occupies per stream (Table 3)."""
        ...


class ForwardingMode(str, Enum):
    """How a sender's media stream is distributed."""

    UNICAST = "unicast"                  # two-party optimization, no PRE
    REPLICATE = "replicate"              # single tree (NRA)
    REPLICATE_BY_LAYER = "replicate_by_layer"  # per-quality trees (RA-R / RA-SR)


@dataclass(frozen=True)
class StreamForwardingEntry:
    """Ingress match-action entry for one sender media stream."""

    mode: ForwardingMode
    meeting_id: str
    sender: Address
    mgid: Optional[int] = None
    mgid_by_layer: Optional[Dict[int, int]] = None
    l1_xid: Optional[int] = None
    rid: Optional[int] = None
    l2_xid: Optional[int] = None
    unicast_receiver: Optional[Address] = None


@dataclass(frozen=True)
class ReplicaTarget:
    """Egress mapping from a PRE replica to the receiver it addresses."""

    address: Address
    participant_id: str


@dataclass(frozen=True)
class AdaptationEntry:
    """Egress match-action entry controlling rate adaptation per receiver."""

    stream_index: int
    allowed_templates: FrozenSet[int]


@dataclass(frozen=True)
class FeedbackRule:
    """Forwarding rule for receiver feedback about one media SSRC."""

    sender: Address
    forward_remb: bool = False   # set by the switch agent's filter function
    forward_nack_pli: bool = True


@dataclass
class PipelineCounters:
    """Packet/byte accounting used by Table 1, Figure 22 and the tests.

    Both the per-packet path (:meth:`account`) and the batch path (a tally
    accumulated with :meth:`accumulate` and folded in with
    :meth:`account_tally`) route through the single :meth:`_add` helper, so
    the two accounting paths cannot drift apart.
    """

    data_plane_packets: int = 0
    data_plane_bytes: int = 0
    cpu_packets: int = 0
    cpu_bytes: int = 0
    replicas_out: int = 0
    adaptation_drops: int = 0
    table_misses: int = 0
    #: Ingress packets whose SRTP auth tag failed verification (tampered or
    #: wrongly keyed); such packets are accounted and then dropped without
    #: producing replicas, mirroring a real SFU's auth-before-forward order.
    srtp_auth_failures: int = 0
    by_class_packets: Dict[str, int] = field(default_factory=dict)
    by_class_bytes: Dict[str, int] = field(default_factory=dict)

    def account(self, packet_class: PacketClass, size: int, to_cpu: bool) -> None:
        self._add(packet_class.value, to_cpu, 1, size)

    @staticmethod
    def accumulate(
        tally: Dict[Tuple[str, bool], List[int]], label: str, to_cpu: bool, size: int
    ) -> None:
        """Accumulate one packet into a batch accounting tally (the batch
        path's deferred equivalent of :meth:`account`)."""
        entry = tally.get((label, to_cpu))
        if entry is None:
            tally[(label, to_cpu)] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size

    def account_tally(self, tally: Dict[Tuple[str, bool], List[int]]) -> None:
        """Fold a batch's accumulated ``(label, to_cpu) -> [packets, bytes]``
        tallies in; equivalent to calling :meth:`account` per packet."""
        for (label, to_cpu), (packets, size) in tally.items():
            self._add(label, to_cpu, packets, size)

    def merge(self, other: "PipelineCounters") -> None:
        """Fold another counter set in (used to aggregate shard counters)."""
        self.data_plane_packets += other.data_plane_packets
        self.data_plane_bytes += other.data_plane_bytes
        self.cpu_packets += other.cpu_packets
        self.cpu_bytes += other.cpu_bytes
        self.replicas_out += other.replicas_out
        self.adaptation_drops += other.adaptation_drops
        self.table_misses += other.table_misses
        self.srtp_auth_failures += other.srtp_auth_failures
        for label, packets in other.by_class_packets.items():
            self.by_class_packets[label] = self.by_class_packets.get(label, 0) + packets
        for label, size in other.by_class_bytes.items():
            self.by_class_bytes[label] = self.by_class_bytes.get(label, 0) + size

    def _add(self, label: str, to_cpu: bool, packets: int, size: int) -> None:
        self.by_class_packets[label] = self.by_class_packets.get(label, 0) + packets
        self.by_class_bytes[label] = self.by_class_bytes.get(label, 0) + size
        if to_cpu:
            self.cpu_packets += packets
            self.cpu_bytes += size
        else:
            self.data_plane_packets += packets
            self.data_plane_bytes += size


@dataclass
class PipelineResult:
    """The outcome of processing one ingress packet."""

    parse: ParseResult
    outputs: List[Datagram] = field(default_factory=list)
    cpu_copies: List[Datagram] = field(default_factory=list)
    dropped_replicas: int = 0
    forwarding_delay_s: float = SWITCH_FORWARDING_DELAY_S


class _CachedResolution:
    """Memoized outcome of ingress match + PRE replication for one flow.

    ``targets`` pairs every egress target with its rate-adaptation entry (or
    ``None``), saving the per-replica adaptation-table lookup on the hot path.
    ``raw_replicas`` is the PRE copy count before egress filtering (``None``
    for unicast flows, which never enter the PRE) and ``replica_misses`` the
    number of replica-table misses; both are replayed into the counters on
    every cache hit so the accounting is indistinguishable from the uncached
    per-packet path.

    ``addresses``/``has_adaptation`` are derived once at build time: when no
    target of the flow carries an adaptation entry (or the packet is audio,
    which adaptation never touches), the fan-out loop iterates the bare
    address tuple with none of the per-replica adaptation checks.
    ``meta_proxy`` lazily holds the flow's shared replica-meta view (origin
    fields depend only on the flow), built by the first meta-less packet and
    reused by every later one — the same sharing the packed shard transport's
    replay does per flow.
    """

    __slots__ = (
        "targets",
        "raw_replicas",
        "replica_misses",
        "addresses",
        "has_adaptation",
        "meta_proxy",
    )

    def __init__(
        self,
        targets: Tuple[Tuple[ReplicaTarget, Optional[AdaptationEntry]], ...],
        raw_replicas: Optional[int],
        replica_misses: int,
    ) -> None:
        self.targets = targets
        self.raw_replicas = raw_replicas
        self.replica_misses = replica_misses
        self.addresses = tuple(target.address for target, _adaptation in targets)
        self.has_adaptation = any(adaptation is not None for _target, adaptation in targets)
        self.meta_proxy: Optional[MappingProxyType] = None


class _FlowFastState:
    """Per-flow slot of the batch fast path's merged lookup cache.

    One ``(src, ssrc)`` dictionary probe per packet serves what used to be
    two (entry cache, then ``(src, ssrc, layer)`` resolution cache): the
    stream-table entry, whether the flow replicates by layer at all, and the
    per-layer cached resolutions.  ``entry is None`` memoizes a table miss
    (every packet of an unknown flow still bumps ``table_misses``, exactly
    like the uncached path).  Non-layered flows — every flow whose entry does
    not replicate by per-layer multicast groups — keep their single
    resolution in ``res0`` with no layer computation at all.
    """

    __slots__ = ("entry", "layered", "res0", "by_layer", "traced")

    def __init__(self, entry: Optional["StreamForwardingEntry"]) -> None:
        self.entry = entry
        self.layered = bool(
            entry is not None
            and entry.mode == ForwardingMode.REPLICATE_BY_LAYER
            and entry.mgid_by_layer
        )
        self.res0: Optional[_CachedResolution] = None
        self.by_layer: Optional[Dict[int, _CachedResolution]] = {} if self.layered else None
        # lifecycle-tracer sampling decision, a pure function of the flow
        # key: stamped at cache-fill time so the steady-state per-packet
        # probe is one slot load, not a memo-dict lookup
        self.traced = False


class PipelineControlPlane:
    """Everything the switch agent writes: tables, PRE, registers, resources.

    The control plane is the single writer of all match-action and register
    state.  Datapaths (one for :class:`ScallopPipeline`, N for the sharded
    engine) attach themselves via :meth:`attach_datapath`; every
    sequence-rewriter register write then fans out to each attached datapath's
    register view, and every table/PRE write bumps the corresponding write
    generation so datapath caches invalidate on their next batch.

    Resource charges land in one global :class:`ResourceAccountant` ledger.
    When a charge-scope router is installed (sharded mode), per-flow stream
    state is additionally attributed to the owning shard's
    :class:`~repro.dataplane.resources.ShardResourceAccountant` view.
    """

    def __init__(
        self,
        sfu_address: Address,
        capacities: TofinoCapacities = DEFAULT_CAPACITIES,
        srtp: Optional[object] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        self.sfu_address = sfu_address
        self.capacities = capacities
        self.accountant = ResourceAccountant(capacities)
        self.pre = PacketReplicationEngine(self.accountant)
        #: Optional observability config.  Plain frozen-dataclass data, so it
        #: survives the control-plane snapshot pickle: process-executor worker
        #: replicas arm their datapaths' obs state from this exactly like the
        #: coordinator does, which keeps instrumentation executor-invariant.
        self.obs_config = obs
        #: Optional :class:`~repro.rtp.srtp.SrtpProfile`.  When set, the
        #: wire-native media path authenticates and decrypts each ingress
        #: packet and re-protects every egress replica.  Datapaths bind it
        #: read-only (the profile is stateless per packet); it is a plain
        #: picklable value, so process-executor control snapshots carry it.
        self.srtp = srtp

        self.stream_table: ExactMatchTable[Tuple[Address, int], StreamForwardingEntry] = ExactMatchTable(
            "stream_forwarding", max_entries=capacities.exact_match_entries
        )
        self.replica_table: ExactMatchTable[Tuple[int, int], ReplicaTarget] = ExactMatchTable(
            "replica_targets", max_entries=capacities.exact_match_entries
        )
        self.adaptation_table: ExactMatchTable[Tuple[int, Address], AdaptationEntry] = ExactMatchTable(
            "rate_adaptation", max_entries=capacities.stream_tracker_cells
        )
        self.feedback_table: ExactMatchTable[Tuple[Address, int], FeedbackRule] = ExactMatchTable(
            "feedback_rules", max_entries=capacities.exact_match_entries
        )
        self.ssrc_table: ExactMatchTable[int, Address] = ExactMatchTable(
            "ssrc_owner", max_entries=capacities.exact_match_entries
        )
        #: Placement exception table for the sharded engine's two-level flow
        #: routing: flows absent here follow the default CRC32 hash, flows
        #: present are pinned to the recorded shard id.  Owned by the control
        #: plane and generation-stamped like the match-action tables, so the
        #: engine's flow-routing cache invalidates on every placement write;
        #: deliberately *not* part of :meth:`write_stamp` — datapath packet
        #: processing never reads placement, only the partitioner does, so a
        #: migration must not invalidate datapath caches or force a worker
        #: snapshot reship.
        self.placement_table: ExactMatchTable[Tuple[Address, int], int] = ExactMatchTable(
            "flow_placement", max_entries=capacities.exact_match_entries
        )

        self.stream_indices = IndexAllocator(capacities.stream_tracker_cells)
        #: Canonical rewriter register file; shard datapaths hold fanned-out
        #: copies so their packet path never reads another shard's registers.
        self.stream_trackers: RegisterArray[SequenceRewriter] = RegisterArray(
            "stream_tracker", size=capacities.stream_tracker_cells
        )

        self._datapaths: List["PipelineDatapath"] = []
        #: Optional hook (set by the sharded engine) mapping a sender SSRC to
        #: the per-shard accountant view its stream state is attributed to.
        self._charge_scope_router: Optional[Callable[[int], Optional[object]]] = None
        #: Which scope each adaptation key's cells were attributed to, so a
        #: release always balances the original attribution even if routing
        #: would resolve differently at release time.
        self._tracker_charges: Dict[Tuple[int, Address], Tuple[Optional[object], int]] = {}
        #: Reverse index for live migration: which receivers hold adaptation
        #: state for a given sender SSRC, so a flow's rewriter register
        #: indices can be enumerated without scanning the adaptation table.
        self._adaptation_receivers: Dict[int, Set[Address]] = {}
        #: Write-batching state (:meth:`batched_writes`): nesting depth and
        #: the register indices whose datapath fan-out is deferred.
        self._write_batch_depth = 0
        self._deferred_tracker_indices: Set[int] = set()

    # ------------------------------------------------------------------ datapath wiring

    def attach_datapath(self, datapath: "PipelineDatapath") -> None:
        """Register a datapath for register-write fan-out."""
        self._datapaths.append(datapath)
        # late attach: replay current register contents into the new view
        # (a no-op scan for the usual attach-before-any-install order)
        if datapath.trackers is not self.stream_trackers:
            for index, value in self.stream_trackers.used_entries():
                datapath.trackers.write(index, value)

    def set_charge_scope_router(self, router: Optional[Callable[[int], Optional[object]]]) -> None:
        self._charge_scope_router = router

    def write_stamp(self) -> Tuple[int, int, int, int]:
        """Aggregate write generation over all cache-relevant control state."""
        return (
            self.stream_table.version,
            self.replica_table.version,
            self.adaptation_table.version,
            self.pre.generation,
        )

    def _write_tracker(self, index: int, rewriter: Optional[SequenceRewriter]) -> None:
        self.stream_trackers.write(index, rewriter)
        if self._write_batch_depth:
            # inside batched_writes(): the canonical register is current (so
            # later control reads in the same batch see it), but the per-shard
            # fan-out is coalesced to one write per index at batch exit
            self._deferred_tracker_indices.add(index)
            return
        for datapath in self._datapaths:
            if datapath.trackers is not self.stream_trackers:
                datapath.trackers.write(index, rewriter)

    # ------------------------------------------------------------------ write batching

    @contextmanager
    def batched_writes(self) -> Iterator["PipelineControlPlane"]:
        """Coalesce a burst of control-plane writes into one generation bump.

        Meeting setup installs dozens of table entries, PRE nodes, and
        rewriter registers back to back; outside this context every one of
        them bumps a write generation (invalidating every datapath's
        memoized flow resolution and, under the process executor, forcing a
        fresh control-plane snapshot per write) and fans register writes out
        to every shard view individually.  Inside the context, each touched
        table/PRE bumps its generation exactly once at exit and register
        fan-out happens once per index.

        All writes remain immediately visible to control-plane *reads*
        (``peek``/allocator state); only the change *notifications* are
        deferred.  The context is therefore not meant to be held across
        datapath batches — it brackets pure control-plane sections such as a
        meeting join, which is how :class:`~repro.core.switch_agent.SwitchAgent`
        uses it.  Reentrant: nested contexts commit at the outermost exit.
        """
        self._begin_write_batch()
        try:
            yield self
        finally:
            self._end_write_batch()

    def install_many(self):
        """Alias for :meth:`batched_writes` (reads better at call sites that
        batch a known plural of installs)."""
        return self.batched_writes()

    def _all_tables(self) -> Tuple[ExactMatchTable, ...]:
        return (
            self.stream_table,
            self.replica_table,
            self.adaptation_table,
            self.feedback_table,
            self.ssrc_table,
            self.placement_table,
        )

    def _begin_write_batch(self) -> None:
        self._write_batch_depth += 1
        if self._write_batch_depth > 1:
            return
        for table in self._all_tables():
            table.defer_version_bumps()
        self.pre.defer_generation_bumps()

    def _end_write_batch(self) -> None:
        self._write_batch_depth -= 1
        if self._write_batch_depth:
            return
        deferred = self._deferred_tracker_indices
        if deferred:
            trackers = self.stream_trackers
            for index in sorted(deferred):
                value = trackers.peek(index)
                for datapath in self._datapaths:
                    if datapath.trackers is not trackers:
                        datapath.trackers.write(index, value)
            deferred.clear()
        for table in self._all_tables():
            table.commit_version_bumps()
        self.pre.commit_generation_bumps()

    # ------------------------------------------------------------------ control API

    def install_stream(self, key: Tuple[Address, int], entry: StreamForwardingEntry) -> None:
        """Install ingress forwarding state for a sender stream (addr, ssrc)."""
        self.stream_table.install(key, entry)
        self.ssrc_table.install(key[1], key[0])

    def remove_stream(self, key: Tuple[Address, int]) -> None:
        self.stream_table.remove(key)
        self.ssrc_table.remove(key[1])

    def ssrc_owner(self, ssrc: int) -> Optional[Address]:
        """Control-plane read of a media SSRC's sender address (no data-plane
        lookup counters are bumped)."""
        return self.ssrc_table.peek(ssrc)

    def install_stream_route(self, key: Tuple[Address, int], entry: StreamForwardingEntry) -> None:
        """Install an ingress forwarding entry *without* claiming SSRC
        ownership.

        Trunk ingress uses this for remote senders: the subscribing SFU
        forwards ``(origin_sfu, ssrc)`` traffic through its own PRE, but the
        SSRC's owner row stays with whichever box terminates the sender's
        uplink — so tearing a trunk down can never clobber the ownership a
        freshly migrated-in participant just installed.
        """
        self.stream_table.install(key, entry)

    def remove_stream_route(self, key: Tuple[Address, int]) -> None:
        """Remove a route installed via :meth:`install_stream_route`
        (``ssrc_table`` untouched, unlike :meth:`remove_stream`)."""
        self.stream_table.remove(key)

    def install_replica_target(self, mgid: int, rid: int, target: ReplicaTarget) -> None:
        self.replica_table.install((mgid, rid), target)

    def remove_replica_target(self, mgid: int, rid: int) -> None:
        self.replica_table.remove((mgid, rid))

    def install_adaptation(
        self,
        sender_ssrc: int,
        receiver: Address,
        allowed_templates: FrozenSet[int],
        rewriter: SequenceRewriter,
    ) -> int:
        """Install per-receiver rate adaptation and its rewriting state.

        Returns the allocated stream index.  Stream-tracker occupancy is
        charged with the rewriter's real register footprint (3 cells for S-LM,
        6 for S-LR), so the Table 3 resource numbers reflect the variant in
        use; reinstalling over an existing entry swaps the charge rather than
        leaking it.
        """
        key = (sender_ssrc, receiver)
        cells = getattr(rewriter, "state_cells", 1)
        existing_index = self.stream_indices.lookup(key)
        old_cells = 0
        if existing_index is not None:
            old = self.stream_trackers.peek(existing_index)
            if old is not None:
                old_cells = getattr(old, "state_cells", 1)
        # charge only the net growth, so a same-size swap succeeds even at
        # full occupancy; unwind the charge (and a freshly allocated index)
        # if the index pool or the table turns out to be exhausted
        grown = max(0, cells - old_cells)
        if grown:
            self.accountant.allocate_stream_state(grown)
        try:
            index = self.stream_indices.allocate(key)
            self.adaptation_table.install(
                key, AdaptationEntry(stream_index=index, allowed_templates=allowed_templates)
            )
        except Exception:
            if existing_index is None:
                self.stream_indices.release(key)
            if grown:
                self.accountant.release_stream_state(grown)
            raise
        if cells < old_cells:
            self.accountant.release_stream_state(old_cells - cells)
        self._retag_tracker_charge(key, sender_ssrc, cells)
        self._adaptation_receivers.setdefault(sender_ssrc, set()).add(receiver)
        self._write_tracker(index, rewriter)
        return index

    def _retag_tracker_charge(self, key: Tuple[int, Address], sender_ssrc: int, cells: int) -> None:
        """Move the per-shard attribution of this key's cells onto the scope
        the charge-scope router currently resolves (ledger totals unchanged)."""
        old_scope, old_attributed = self._tracker_charges.pop(key, (None, 0))
        if old_scope is not None:
            old_scope.note_stream_state(-old_attributed)
        scope = self._charge_scope_router(sender_ssrc) if self._charge_scope_router else None
        if scope is not None and cells:
            scope.note_stream_state(cells)
            self._tracker_charges[key] = (scope, cells)

    def update_adaptation_templates(
        self, sender_ssrc: int, receiver: Address, allowed_templates: FrozenSet[int]
    ) -> None:
        existing = self.adaptation_table.peek((sender_ssrc, receiver))
        if existing is None:
            raise KeyError("no adaptation entry installed for this stream")
        self.adaptation_table.install(
            (sender_ssrc, receiver),
            AdaptationEntry(stream_index=existing.stream_index, allowed_templates=allowed_templates),
        )

    def remove_adaptation(self, sender_ssrc: int, receiver: Address) -> None:
        key = (sender_ssrc, receiver)
        entry = self.adaptation_table.peek(key)
        if entry is not None:
            rewriter = self.stream_trackers.peek(entry.stream_index)
            if rewriter is not None:
                self.accountant.release_stream_state(getattr(rewriter, "state_cells", 1))
            self._retag_tracker_charge(key, sender_ssrc, 0)
            self._write_tracker(entry.stream_index, None)
            self.stream_indices.release(key)
            self.adaptation_table.remove(key)
            receivers = self._adaptation_receivers.get(sender_ssrc)
            if receivers is not None:
                receivers.discard(receiver)
                if not receivers:
                    del self._adaptation_receivers[sender_ssrc]

    def install_feedback_rule(self, receiver: Address, media_ssrc: int, rule: FeedbackRule) -> None:
        self.feedback_table.install((receiver, media_ssrc), rule)

    def remove_feedback_rule(self, receiver: Address, media_ssrc: int) -> None:
        self.feedback_table.remove((receiver, media_ssrc))

    # ------------------------------------------------------------------ placement (shard migration)

    def install_placement(self, src: Address, ssrc: int, shard_id: int) -> None:
        """Pin flow ``(src, ssrc)`` to ``shard_id`` (placement exception)."""
        self.placement_table.install((src, ssrc), shard_id)

    def remove_placement(self, src: Address, ssrc: int) -> None:
        """Drop a placement exception; the flow reverts to the CRC32 default."""
        self.placement_table.remove((src, ssrc))

    def placement_of(self, src: Address, ssrc: int) -> Optional[int]:
        """Control-plane read of a flow's pinned shard (``None`` = hashed)."""
        return self.placement_table.peek((src, ssrc))

    def remove_placements_for(self, src: Address) -> int:
        """Drop every placement exception pinned for flows of ``src``.

        Called on participant leave: a migrated-then-departed flow must not
        leak its pin forever (nor hand it to a later joiner that reuses the
        deterministic address/SSRC pair).  Returns how many were removed.
        """
        stale = [key for key, _shard in self.placement_table.entries() if key[0] == src]
        for key in stale:
            self.placement_table.remove(key)
        return len(stale)

    def tracker_indices_for_ssrc(self, sender_ssrc: int) -> List[int]:
        """Rewriter register indices holding state for a sender SSRC's
        adaptation entries — the per-flow state a live migration must move."""
        receivers = self._adaptation_receivers.get(sender_ssrc)
        if not receivers:
            return []
        indices: List[int] = []
        for receiver in receivers:
            index = self.stream_indices.lookup((sender_ssrc, receiver))
            if index is not None:
                indices.append(index)
        return indices

    def reattribute_ssrc_charges(self, sender_ssrc: int) -> None:
        """Re-route a sender SSRC's stream-state attribution through the
        charge-scope router (called after its flow migrates shards; the
        global ledger totals are unchanged — only the per-shard views move)."""
        receivers = self._adaptation_receivers.get(sender_ssrc)
        if not receivers:
            return
        for receiver in list(receivers):
            key = (sender_ssrc, receiver)
            _scope, cells = self._tracker_charges.get(key, (None, 0))
            if cells:
                self._retag_tracker_charge(key, sender_ssrc, cells)

    # ------------------------------------------------------------------ flow snapshot (cross-SFU migration)

    def export_flow_state(self, receivers: Optional[Set[Address]] = None) -> dict:
        """Image the per-flow adaptation state as a versioned, zero-pickle
        snapshot.

        One record per adaptation entry — ``(sender_ssrc, receiver)`` key,
        the allowed-template set, and the rewriter's packed register image
        (:func:`~repro.core.seqrewrite.pack_rewriter_state`, the PR 4 wire
        format generalized across boxes).  ``receivers`` filters the export
        to entries whose receiver address is in the set (a meeting migration
        ships only its own participants' flows).  Deterministic record order
        (sorted by key) so identical control planes export identical
        snapshots.
        """
        from ..core.seqrewrite import pack_rewriter_state

        records: List[dict] = []
        entries = sorted(
            self.adaptation_table.entries(),
            key=lambda item: (item[0][0], item[0][1].ip, item[0][1].port),
        )
        for (sender_ssrc, receiver), entry in entries:
            if receivers is not None and receiver not in receivers:
                continue
            rewriter = self.stream_trackers.peek(entry.stream_index)
            if rewriter is None:
                continue
            records.append(
                {
                    "sender_ssrc": sender_ssrc,
                    "receiver_ip": receiver.ip,
                    "receiver_port": receiver.port,
                    "allowed_templates": sorted(entry.allowed_templates),
                    "rewriter": pack_rewriter_state(rewriter),
                }
            )
        return {"version": CONTROL_SNAPSHOT_VERSION, "flows": records}

    def import_flow_state(self, payload: dict) -> int:
        """Restore flows imaged by :meth:`export_flow_state` into this
        control plane.  Returns the number of flows installed.

        Rejects a snapshot whose version stamp differs from
        :data:`CONTROL_SNAPSHOT_VERSION` by raising
        :class:`SnapshotVersionError` — a silent best-effort restore of a
        mismatched layout would corrupt rewriter state noiselessly, which is
        the one failure mode a migration must never have.
        """
        records = decode_flow_state(payload)
        with self.batched_writes():
            for sender_ssrc, receiver, allowed, rewriter in records:
                self.install_adaptation(sender_ssrc, receiver, allowed, rewriter)
        return len(records)

    # ------------------------------------------------------------------ worker-local replica API

    def build_worker_datapath(self, shard_id: int) -> "PipelineDatapath":
        """Construct and attach the datapath of a worker process's *private*
        control-plane replica.

        This is the sanctioned bootstrap for the process executor's shard
        workers: ``self`` is the replica the worker just unpickled, so
        attaching a datapath mutates state no other thread or process can
        observe.  Keeping the attach inside a control-plane method — rather
        than the worker calling ``attach_datapath`` on what textually looks
        like shared control state — lets the share-nothing checker hold
        worker code to the same zero-mutation rule as the datapaths (this
        method retired the two grandfathered archlint baseline entries from
        PR 6).
        """
        datapath = PipelineDatapath(self, shard_id=shard_id)
        self.attach_datapath(datapath)
        return datapath

    def apply_tracker_images(
        self, updates: Sequence[Tuple[int, Optional[SequenceRewriter]]]
    ) -> None:
        """Apply decoded rewriter register images to the canonical register
        file (fanning out to attached datapath views as usual).

        Worker-local replica API: the migration images a process-executor
        worker receives ahead of a batch land in its own replica's registers
        through this method; the coordinator uses the same method to fold
        workers' post-batch register state home.
        """
        for index, rewriter in updates:
            self._write_tracker(index, rewriter)

    # ------------------------------------------------------------------ pickling (process-shard escape hatch)

    def __getstate__(self) -> dict:
        """Snapshot for shipping a read-only replica to a worker process:
        datapath backrefs and charge-scope plumbing stay with the coordinator."""
        state = dict(self.__dict__)
        state["_datapaths"] = []
        state["_charge_scope_router"] = None
        state["_tracker_charges"] = {}
        state["_write_batch_depth"] = 0
        state["_deferred_tracker_indices"] = set()
        return state


@dataclass
class DatapathLocalStats:
    """Per-datapath tally of the *shared* PRE data-plane counters.

    The only writes a datapath's packet path performs on shared
    control-plane structures are pure accounting: the PRE's
    ``replications_performed``/``copies_produced`` bumps and the tables'
    ``lookups``/``hits``.  Under the serial and process executors those
    bumps are single-writer and go straight to the shared objects; under
    the thread executor concurrent ``+=`` on shared attributes would be a
    data race (lost updates on free-threaded builds, and even under the
    GIL the read-modify-write can interleave).  Thread-mode datapaths
    therefore accumulate here — private, unsynchronized — and the
    :class:`~repro.dataplane.sharding.ThreadShardRunner` folds the tallies
    into the shared structures at the batch barrier.  The folds are
    commutative sums, so every counter ends exactly where serial execution
    would put it.
    """

    replications_performed: int = 0
    copies_produced: int = 0


class ShardTableView:
    """Thread-mode read view of a shared :class:`ExactMatchTable`.

    ``lookup`` resolves against the shared table via the non-counting
    ``peek`` and tallies ``lookups``/``hits`` locally; the runner folds the
    tallies into the shared table at the batch barrier (see
    :class:`DatapathLocalStats` for why).  Bound in place of the datapath's
    table aliases *before* the shard-isolation sanitizer wraps them, so
    sanitized thread-mode runs put the write barrier around the view.
    """

    __slots__ = ("table", "lookups", "hits")

    def __init__(self, table: ExactMatchTable) -> None:
        self.table = table
        self.lookups = 0
        self.hits = 0

    def lookup(self, key):
        self.lookups += 1
        value = self.table.peek(key)
        if value is not None:
            self.hits += 1
        return value

    def peek(self, key):
        return self.table.peek(key)

    @property
    def version(self) -> int:
        return self.table.version

    def __contains__(self, key) -> bool:
        return key in self.table

    def __len__(self) -> int:
        return len(self.table)


class PipelineDatapath:
    """The per-packet engine: parses, matches, replicates, rewrites.

    Holds only private state (parser, counters, flow-resolution caches, its
    rewriter register view) plus read-mostly references into the shared
    :class:`PipelineControlPlane`.  Per-flow operations commute, so multiple
    datapaths over one control plane process disjoint flow partitions with
    results identical to a single datapath (see
    :class:`~repro.dataplane.sharding.ShardedScallopPipeline`).
    """

    #: Hard bound on the memoized-flow caches (misses are cached too, so junk
    #: traffic with random flow keys must not grow them without limit; 64k
    #: entries keeps the worst case in the tens of megabytes while covering
    #: every legitimate flow the stream tracker can hold).
    RESOLUTION_CACHE_LIMIT = 1 << 16

    def __init__(
        self,
        control: PipelineControlPlane,
        trackers: Optional[RegisterArray] = None,
        shard_id: int = 0,
        sanitize: Optional[bool] = None,
        local_stats: bool = False,
    ) -> None:
        self.control = control
        self.shard_id = shard_id
        self.sfu_address = control.sfu_address
        self.parser = IngressParser()
        self.counters = PipelineCounters()
        #: Optional SRTP profile shared by all datapaths (stateless per
        #: packet, so concurrent use is race-free).
        self.srtp = control.srtp
        #: This datapath's rewriter register view.  The single-datapath
        #: pipeline shares the control plane's canonical array; shard
        #: datapaths get their own fanned-out copy.
        self.trackers: RegisterArray[SequenceRewriter] = (
            trackers if trackers is not None else control.stream_trackers
        )
        #: Rewriter register indices read since the last sync point; the
        #: process-pool shard runner uses this to ship mutated rewriter state
        #: back to the coordinator after each batch.
        self.touched_tracker_indices: Set[int] = set()
        #: Per-shard observability bundle (metrics registry + packet tracer),
        #: armed iff the control plane carries an :class:`ObsConfig`.  Private
        #: to this datapath — never aliased across shards, never written by
        #: the control plane — so it needs no sanitizer wrapping and folds
        #: commutatively at executor barriers.
        obs_config = getattr(control, "obs_config", None)
        self.obs: Optional[DatapathObs] = (
            DatapathObs(
                obs_config,
                shard_id=shard_id,
                forwarding_delay_s=SWITCH_FORWARDING_DELAY_S,
            )
            if obs_config is not None
            else None
        )

        # read-mostly bindings into the control plane (hot-path aliases).
        # Thread-mode (``local_stats=True``) datapaths bind ShardTableView
        # wrappers instead of the raw tables and accumulate all shared-counter
        # accounting privately; the ThreadShardRunner folds both back at the
        # batch barrier through ``table_views``/``local_stats`` (raw handles,
        # deliberately outside the sanitizer's wrapped bindings).
        self.pre = control.pre
        self.local_stats: Optional[DatapathLocalStats] = None
        self.table_views: Tuple[ShardTableView, ...] = ()
        if local_stats:
            self.local_stats = DatapathLocalStats()
            self.stream_table = ShardTableView(control.stream_table)
            self.replica_table = ShardTableView(control.replica_table)
            self.adaptation_table = ShardTableView(control.adaptation_table)
            self.feedback_table = ShardTableView(control.feedback_table)
            self.table_views = (
                self.stream_table,
                self.replica_table,
                self.adaptation_table,
                self.feedback_table,
            )
        else:
            self.stream_table = control.stream_table
            self.replica_table = control.replica_table
            self.adaptation_table = control.adaptation_table
            self.feedback_table = control.feedback_table

        # Batch fast-path state: forwarding resolution memoized per flow and
        # invalidated whenever the control plane touches the stream table, the
        # replica table, or the PRE (detected via their write generations, so
        # even direct `pipeline.pre` mutations are caught).  The stamp is this
        # datapath's private generation counter — shards resynchronize with
        # the control plane independently.
        # One probe per packet: the flow's entry, layer mode, and cached
        # resolutions live behind a single (src, ssrc) key (_FlowFastState)
        # instead of the former entry-cache + (src, ssrc, layer) pair.
        self._flow_cache: Dict[Tuple[Address, int], _FlowFastState] = {}
        self._cache_stamp: Tuple[int, int, int, int] = (-1, -1, -1, -1)
        self._layer_by_template: Dict[int, int] = {}

        #: Shard-isolation sanitizer (opt-in debug mode): wraps the aliases
        #: bound above in write-barrier proxies that raise
        #: :class:`~repro.dataplane.sanitize.ShardIsolationError` on any
        #: mutation through a datapath-held reference.  ``sanitize=None``
        #: defers to ``REPRO_SANITIZE`` in the environment, which is how the
        #: mode reaches process-pool shard workers rebuilding their datapaths.
        self.isolation_log = None
        if resolve_sanitize(sanitize):
            self.isolation_log = sanitize_datapath(self)

    # ------------------------------------------------------------------ data path

    def process(self, datagram: Datagram) -> PipelineResult:
        """Run one ingress packet through the pipeline."""
        if datagram.kind is PayloadKind.RTP and isinstance(datagram.payload, PacketView):
            # wire-native media never materializes an RtpPacket: the single
            # packet runs through the (cached) wire path with its accounting
            # folded in immediately, so per-packet and batch wire processing
            # stay indistinguishable
            self._ensure_resolution_cache_fresh()
            tally: Dict[Tuple[str, bool], List[int]] = {}
            acc = [0, 0, 0, 0, 0]
            result = self._process_media_wire(datagram, tally, acc)
            self._fold_batch_accounting(acc)
            if tally:
                self.counters.account_tally(tally)
            return result
        parse = self.parser.parse(datagram)
        result = PipelineResult(parse=parse)

        if parse.packet_class == PacketClass.STUN or parse.packet_class == PacketClass.UNKNOWN:
            self._punt(datagram, parse, result)
            return result

        if parse.packet_class == PacketClass.RTCP_FEEDBACK:
            self._handle_feedback(datagram, parse, result)
            return result

        if parse.packet_class == PacketClass.RTCP_SENDER:
            self._handle_sender_rtcp(datagram, parse, result)
            return result

        # RTP media (audio or video)
        self._handle_media(datagram, parse, result)
        return result

    def process_batch(self, datagrams: Sequence[Datagram]) -> List[PipelineResult]:
        """Run a burst of ingress packets through the pipeline.

        Per-packet operations on independent streams commute, so a burst can
        be processed as a batch without changing any observable result: the
        outputs are byte-identical to calling :meth:`process` on each datagram
        in order, and the packet/byte accounting (:class:`PipelineCounters`),
        parser, and PRE counters advance identically.  What the batch path
        amortizes is the Python-level overhead that dominates the behavioural
        model: RTP parses are memoized on the raw extension bytes, the
        ``(src, ssrc) -> (entry, resolved targets)`` lookup chain is served
        from a cache invalidated on every control-plane write, and replicas
        share one immutable meta view instead of copying the dict per copy.
        The per-table ``lookups``/``hits`` tallies are the one observable
        that legitimately differs: served-from-cache packets never touch the
        tables, which is precisely the amortization being measured.
        """
        self._ensure_resolution_cache_fresh()
        results: List[PipelineResult] = []
        append = results.append
        fast_media = self._process_media_fast
        wire_media = self._process_media_wire
        rtp_kind = PayloadKind.RTP
        # per-batch accounting tally and accumulator, folded into the
        # counters/parser/PRE once at the end; the counter state after the
        # batch equals per-packet accounting
        tally: Dict[Tuple[str, bool], List[int]] = {}
        acc = [0, 0, 0, 0, 0]
        for datagram in datagrams:
            if datagram.kind is rtp_kind:
                payload = datagram.payload
                if isinstance(payload, RtpPacket):
                    append(fast_media(datagram, tally, acc))
                    continue
                if isinstance(payload, PacketView):
                    append(wire_media(datagram, tally, acc))
                    continue
            append(self.process(datagram))
        self._fold_batch_accounting(acc)
        if tally:
            self.counters.account_tally(tally)
        return results

    def _fold_batch_accounting(self, acc: List[int]) -> None:
        """Fold the batch paths' deferred per-packet accounting.

        ``acc`` carries ``[parse cache hits, punts on those hits, memoized
        replication replays, copies those replays produced, replicas out]``,
        accumulated as plain list increments on the per-packet hot path and
        folded here in one pass — the parser, PRE, and pipeline counters end
        the batch exactly where per-packet accounting would leave them.
        """
        hits = acc[0]
        if hits:
            parser = self.parser
            parser.packets_parsed += hits
            parser.parse_cache_hits += hits
            parser.cpu_punts += acc[1]
        if acc[2]:
            self.pre.note_replications(acc[2], acc[3])
        if acc[4]:
            self.counters.replicas_out += acc[4]

    def _ensure_resolution_cache_fresh(self) -> None:
        """Drop memoized forwarding state if the control plane wrote anything."""
        stamp = self.control.write_stamp()
        if stamp != self._cache_stamp:
            self._flow_cache.clear()
            self._cache_stamp = stamp

    def _process_media_fast(
        self, datagram: Datagram, tally: Dict[Tuple[str, bool], List[int]], acc: List[int]
    ) -> PipelineResult:
        """Batch-path equivalent of :meth:`process` for one RTP datagram.

        Structured for per-packet cost: one flow-cache probe serves the
        entry, the layer mode, and the memoized resolution together; the
        result and the replica datagrams are minted through ``__new__`` plus
        a prepared ``__dict__`` (the frozen-dataclass ``__init__`` work was
        already paid by the reference path that validated this flow); and the
        common no-adaptation fan-out — every replica forwards the ingress
        payload unchanged — iterates the bare address tuple with the flow's
        shared meta proxy.  Outputs and counters stay byte-for-byte those of
        :meth:`process`.
        """
        packet: RtpPacket = datagram.payload  # type: ignore[assignment]
        # parse_rtp_cached with the hit path inlined (key build + probe +
        # the exact hit accounting of IngressParser._memoized_parse, which
        # still owns the miss path)
        parser = self.parser
        ssrc = packet.ssrc
        extension = packet.extension
        if extension is None:
            pkey = (ssrc, packet.payload_type)
        else:
            pkey = (ssrc, packet.payload_type, extension.profile, extension.data)
        parse = parser._rtp_parse_cache.get(pkey)
        parse_hit = parse is not None
        if parse is None:
            parse = parser._memoized_parse(pkey, packet)
        else:
            acc[0] += 1
            if parse.needs_cpu:
                acc[1] += 1
        result = PipelineResult.__new__(PipelineResult)
        outputs: List[Datagram] = []
        cpu_copies: List[Datagram] = []
        result.__dict__ = {
            "parse": parse,
            "outputs": outputs,
            "cpu_copies": cpu_copies,
            "dropped_replicas": 0,
            "forwarding_delay_s": SWITCH_FORWARDING_DELAY_S,
        }
        counters = self.counters
        size = datagram.size

        flow = (datagram.src, ssrc)
        flow_cache = self._flow_cache
        state = flow_cache.get(flow)
        flow_hit = state is not None
        if state is None:
            if len(flow_cache) >= self.RESOLUTION_CACHE_LIMIT:
                flow_cache.clear()
            state = flow_cache[flow] = _FlowFastState(self.stream_table.lookup(flow))
            # lifecycle tracing decision: a pure function of the flow key,
            # stamped once at cache-fill time (classify() memoizes per flow
            # lifetime) — the steady-state per-packet probe below is a
            # single slot load, free when observability is off
            obs = self.obs
            if obs is not None:
                state.traced = obs.classify(flow, datagram.src.ip, datagram.src.port, ssrc)
        traced = state.traced
        entry = state.entry
        if entry is None:
            counters.table_misses += 1
            key = (parse.class_value, False)
            slot = tally.get(key)
            if slot is None:
                tally[key] = [1, size]
            else:
                slot[0] += 1
                slot[1] += size
            if traced:
                self.obs.record_media(
                    datagram.src.ip, datagram.src.port, ssrc, packet.sequence_number,
                    datagram.arrived_at, size, parse_hit, flow_hit, 0, 0, False,
                )
            return result

        to_cpu = parse.cpu_copy
        key = (parse.class_value, to_cpu)
        slot = tally.get(key)
        if slot is None:
            tally[key] = [1, size]
        else:
            slot[0] += 1
            slot[1] += size
        if to_cpu:
            cpu_copies.append(datagram)

        if state.layered:
            layer = self._media_layer(entry, parse)
            resolution = state.by_layer.get(layer)
        else:
            layer = 0
            resolution = state.res0
        if resolution is None:
            targets, raw_replicas, misses = self._resolve_targets_detail(entry, layer)
            adaptation_lookup = self.adaptation_table.lookup
            paired = tuple(
                (target, adaptation_lookup((ssrc, target.address)))
                for target in targets
            )
            resolution = _CachedResolution(paired, raw_replicas, misses)
            if state.layered:
                state.by_layer[layer] = resolution
            else:
                state.res0 = resolution
        else:
            # replay the per-packet accounting the uncached path would do
            # (deferred through acc; folded at the batch boundary)
            raw = resolution.raw_replicas
            if raw is not None:
                local = self.local_stats
                if local is None:
                    acc[2] += 1
                    acc[3] += raw
                else:
                    local.replications_performed += 1
                    local.copies_produced += raw
            if resolution.replica_misses:
                counters.table_misses += resolution.replica_misses

        arrived_at = datagram.arrived_at
        schedule = None if arrived_at is None else arrived_at + SWITCH_FORWARDING_DELAY_S

        if not (resolution.has_adaptation and parse.is_video):
            # no replica of this flow is rate-adapted (or the packet is
            # audio, which adaptation never touches): every target receives
            # the ingress payload unchanged
            addresses = resolution.addresses
            if not addresses:
                if traced:
                    self.obs.record_media(
                        datagram.src.ip, datagram.src.port, ssrc, packet.sequence_number,
                        arrived_at, size, parse_hit, flow_hit, 0, 0, False,
                    )
                return result
            if datagram.meta:
                meta = MappingProxyType(
                    dict(datagram.meta, origin=datagram.src, origin_ssrc=ssrc)
                )
            else:
                meta = resolution.meta_proxy
                if meta is None:
                    meta = resolution.meta_proxy = MappingProxyType(
                        {"origin": datagram.src, "origin_ssrc": ssrc}
                    )
            # RtpPacket.size inlined (extension is already in hand from the
            # parse key); stamps the same derived value the property returns
            out_size = RTP_HEADER_LEN + 4 * len(packet.csrcs) + len(packet.payload)
            if extension is not None:
                out_size += 4 + len(extension.data)
            # per-replica state dicts are C-level copies of one prepared base
            # (measurably cheaper than building the literal per replica)
            base_copy = {
                "src": self.sfu_address,
                "dst": None,
                "payload": packet,
                "size": out_size,
                "kind": PayloadKind.RTP,
                "sent_at": 0.0,
                "arrived_at": schedule,
                "meta": meta,
            }.copy
            new_datagram = Datagram.__new__
            set_state = object.__setattr__
            append = outputs.append
            for address in addresses:
                out = new_datagram(Datagram)
                instance = base_copy()
                instance["dst"] = address
                set_state(out, "__dict__", instance)
                append(out)
            acc[4] += len(addresses)
            if traced:
                self.obs.record_media(
                    datagram.src.ip, datagram.src.port, ssrc, packet.sequence_number,
                    arrived_at, size, parse_hit, flow_hit, len(addresses), 0, False,
                )
            return result

        # rate-adapted video: per-replica rewrite decisions (the stateful
        # path, kept on the original per-target loop)
        template_id = parse.template_id
        frame_number = parse.frame_number if parse.frame_number is not None else 0
        sequence_number = packet.sequence_number
        shared_meta = None
        # template of the replica datagrams; instances are minted by copying
        # the prepared field dict, skipping the frozen-dataclass __init__ and
        # the size/kind derivation that dominate per-copy construction cost
        fields = {
            "src": self.sfu_address,
            "dst": None,
            "payload": packet,
            "size": packet.size,
            "kind": PayloadKind.RTP,
            "sent_at": 0.0,
            "arrived_at": schedule,
            "meta": None,
        }
        trackers_read = self.trackers.read
        touched = self.touched_tracker_indices
        mint = Datagram.from_fields
        copy_fields = dict
        replicas_out = 0
        for target, adaptation in resolution.targets:
            out_packet: Optional[RtpPacket] = packet
            if adaptation is not None:
                # inline _apply_adaptation with the table lookup pre-resolved
                forward = template_id is None or template_id in adaptation.allowed_templates
                rewriter = trackers_read(adaptation.stream_index)
                if rewriter is None:
                    out_packet = packet if forward else None
                else:
                    touched.add(adaptation.stream_index)
                    new_seq = rewriter.on_packet(sequence_number, frame_number, forward)
                    out_packet = None if new_seq is None else packet.with_sequence_number(new_seq)
                if out_packet is None:
                    result.dropped_replicas += 1
                    counters.adaptation_drops += 1
                    continue
            if shared_meta is None:
                shared_meta = MappingProxyType(
                    dict(datagram.meta, origin=datagram.src, origin_ssrc=ssrc)
                )
                fields["meta"] = shared_meta
            instance_fields = copy_fields(fields)
            instance_fields["dst"] = target.address
            instance_fields["payload"] = out_packet
            outputs.append(mint(instance_fields))
            replicas_out += 1
        acc[4] += replicas_out
        if traced:
            self.obs.record_media(
                datagram.src.ip, datagram.src.port, ssrc, sequence_number,
                arrived_at, size, parse_hit, flow_hit,
                replicas_out, result.dropped_replicas, True,
            )
        return result

    def _process_media_wire(
        self, datagram: Datagram, tally: Dict[Tuple[str, bool], List[int]], acc: List[int]
    ) -> PipelineResult:
        """Wire-native twin of :meth:`_process_media_fast`.

        The payload is a :class:`~repro.rtp.wire.PacketView` — raw wire bytes
        with struct-offset accessors — so no :class:`RtpPacket` is ever
        constructed: header fields are read straight off the buffer, flow
        resolution shares the same memoized caches as the object path, and
        sequence rewriting patches a single ``bytearray`` copy in place per
        rewritten replica (replicas that need no rewrite alias the ingress
        buffer).  Outputs serialize byte-identically to the object path's,
        and every counter advances identically (property-tested in
        ``tests/test_wire_packet_view.py``).
        """
        view: PacketView = datagram.payload  # type: ignore[assignment]
        # parse_rtp_wire_cached with the hit path inlined (same hit
        # accounting as IngressParser._memoized_parse, which owns the miss)
        parser = self.parser
        pkey = view.parse_key()
        parse = parser._rtp_parse_cache.get(pkey)
        parse_hit = parse is not None
        if parse is None:
            parse = parser._memoized_parse(pkey, view)
        else:
            acc[0] += 1
            if parse.needs_cpu:
                acc[1] += 1
        result = PipelineResult.__new__(PipelineResult)
        outputs: List[Datagram] = []
        cpu_copies: List[Datagram] = []
        result.__dict__ = {
            "parse": parse,
            "outputs": outputs,
            "cpu_copies": cpu_copies,
            "dropped_replicas": 0,
            "forwarding_delay_s": SWITCH_FORWARDING_DELAY_S,
        }
        counters = self.counters
        size = datagram.size

        srtp = self.srtp
        if srtp is not None:
            # auth-before-forward: verify the truncated tag, then strip it and
            # decrypt the payload so rewriting operates on plaintext bytes.
            # (The SRTP header and extension are cleartext per RFC 3711, so the
            # parse above — header/extension only — is identical either way.)
            plain = srtp.unprotect_ingress(view.buf)
            if plain is None:
                counters.srtp_auth_failures += 1
                key = (parse.class_value, False)
                slot = tally.get(key)
                if slot is None:
                    tally[key] = [1, size]
                else:
                    slot[0] += 1
                    slot[1] += size
                return result
            view = PacketView(plain)

        ssrc = parse.ssrc if parse.ssrc is not None else view.ssrc
        flow = (datagram.src, ssrc)
        flow_cache = self._flow_cache
        state = flow_cache.get(flow)
        flow_hit = state is not None
        if state is None:
            if len(flow_cache) >= self.RESOLUTION_CACHE_LIMIT:
                flow_cache.clear()
            state = flow_cache[flow] = _FlowFastState(self.stream_table.lookup(flow))
            # lifecycle tracing decision stamped at fill time (see
            # _process_media_fast): steady state costs one slot load
            obs = self.obs
            if obs is not None:
                state.traced = obs.classify(flow, datagram.src.ip, datagram.src.port, ssrc)
        traced = state.traced
        entry = state.entry
        if entry is None:
            counters.table_misses += 1
            key = (parse.class_value, False)
            slot = tally.get(key)
            if slot is None:
                tally[key] = [1, size]
            else:
                slot[0] += 1
                slot[1] += size
            if traced:
                self.obs.record_media(
                    datagram.src.ip, datagram.src.port, ssrc, view.sequence_number,
                    datagram.arrived_at, size, parse_hit, flow_hit, 0, 0, False,
                )
            return result

        to_cpu = parse.cpu_copy
        key = (parse.class_value, to_cpu)
        slot = tally.get(key)
        if slot is None:
            tally[key] = [1, size]
        else:
            slot[0] += 1
            slot[1] += size
        if to_cpu:
            cpu_copies.append(datagram)

        if state.layered:
            layer = self._media_layer(entry, parse)
            resolution = state.by_layer.get(layer)
        else:
            layer = 0
            resolution = state.res0
        if resolution is None:
            targets, raw_replicas, misses = self._resolve_targets_detail(entry, layer)
            adaptation_lookup = self.adaptation_table.lookup
            paired = tuple(
                (target, adaptation_lookup((ssrc, target.address)))
                for target in targets
            )
            resolution = _CachedResolution(paired, raw_replicas, misses)
            if state.layered:
                state.by_layer[layer] = resolution
            else:
                state.res0 = resolution
        else:
            raw = resolution.raw_replicas
            if raw is not None:
                local = self.local_stats
                if local is None:
                    acc[2] += 1
                    acc[3] += raw
                else:
                    local.replications_performed += 1
                    local.copies_produced += raw
            if resolution.replica_misses:
                counters.table_misses += resolution.replica_misses

        arrived_at = datagram.arrived_at
        schedule = None if arrived_at is None else arrived_at + SWITCH_FORWARDING_DELAY_S

        if not (resolution.has_adaptation and parse.is_video):
            # no replica is rate-adapted: every target gets the ingress bytes
            # unchanged, and under SRTP all replicas share one egress-protected
            # buffer (same sharing as the per-target loop's protected_same)
            addresses = resolution.addresses
            if not addresses:
                if traced:
                    self.obs.record_media(
                        datagram.src.ip, datagram.src.port, ssrc, view.sequence_number,
                        arrived_at, size, parse_hit, flow_hit, 0, 0, False,
                    )
                return result
            out_view = view if srtp is None else PacketView(srtp.protect_egress(view.buf))
            if datagram.meta:
                meta = MappingProxyType(
                    dict(datagram.meta, origin=datagram.src, origin_ssrc=ssrc)
                )
            else:
                meta = resolution.meta_proxy
                if meta is None:
                    meta = resolution.meta_proxy = MappingProxyType(
                        {"origin": datagram.src, "origin_ssrc": ssrc}
                    )
            base_copy = {
                "src": self.sfu_address,
                "dst": None,
                "payload": out_view,
                "size": size,
                "kind": PayloadKind.RTP,
                "sent_at": 0.0,
                "arrived_at": schedule,
                "meta": meta,
            }.copy
            new_datagram = Datagram.__new__
            set_state = object.__setattr__
            append = outputs.append
            for address in addresses:
                out = new_datagram(Datagram)
                instance = base_copy()
                instance["dst"] = address
                set_state(out, "__dict__", instance)
                append(out)
            acc[4] += len(addresses)
            if traced:
                self.obs.record_media(
                    datagram.src.ip, datagram.src.port, ssrc, view.sequence_number,
                    arrived_at, size, parse_hit, flow_hit, len(addresses), 0, False,
                )
            return result

        # rate-adapted video: per-replica rewrite decisions over the wire
        # buffer (the stateful path, kept on the original per-target loop)
        template_id = parse.template_id
        frame_number = parse.frame_number if parse.frame_number is not None else 0
        sequence_number = -1  # decoded lazily: only rewritten flows need it
        shared_meta = None
        fields = {
            "src": self.sfu_address,
            "dst": None,
            "payload": view,
            "size": size,
            "kind": PayloadKind.RTP,
            "sent_at": 0.0,
            "arrived_at": schedule,
            "meta": None,
        }
        trackers_read = self.trackers.read
        touched = self.touched_tracker_indices
        mint = Datagram.from_fields
        copy_fields = dict
        replicas_out = 0
        protected_same: Optional[PacketView] = None
        for target, adaptation in resolution.targets:
            out_payload: Optional[PacketView] = view
            if adaptation is not None:
                forward = template_id is None or template_id in adaptation.allowed_templates
                rewriter = trackers_read(adaptation.stream_index)
                if rewriter is None:
                    out_payload = view if forward else None
                else:
                    touched.add(adaptation.stream_index)
                    if sequence_number < 0:
                        sequence_number = view.sequence_number
                    new_seq = rewriter.on_packet(sequence_number, frame_number, forward)
                    if new_seq is None:
                        out_payload = None
                    elif new_seq == sequence_number:
                        # byte-identical rewrite: alias the ingress buffer
                        out_payload = view
                    else:
                        out_payload = view.with_sequence_number(new_seq)
                if out_payload is None:
                    result.dropped_replicas += 1
                    counters.adaptation_drops += 1
                    continue
            if srtp is not None:
                # re-protect under the egress session key; unrewritten
                # replicas of the same packet share one protected buffer
                if out_payload is view:
                    if protected_same is None:
                        protected_same = PacketView(srtp.protect_egress(view.buf))
                    out_payload = protected_same
                else:
                    out_payload = PacketView(srtp.protect_egress(out_payload.buf))
            if shared_meta is None:
                shared_meta = MappingProxyType(
                    dict(datagram.meta, origin=datagram.src, origin_ssrc=ssrc)
                )
                fields["meta"] = shared_meta
            instance_fields = copy_fields(fields)
            instance_fields["dst"] = target.address
            instance_fields["payload"] = out_payload
            outputs.append(mint(instance_fields))
            replicas_out += 1
        acc[4] += replicas_out
        if traced:
            self.obs.record_media(
                datagram.src.ip, datagram.src.port, ssrc, view.sequence_number,
                arrived_at, size, parse_hit, flow_hit,
                replicas_out, result.dropped_replicas, True,
            )
        return result

    @staticmethod
    def _egress_schedule(datagram: Datagram) -> Optional[float]:
        """Per-packet departure time of this packet's replicas under
        schedule-preserving burst delivery: the ingress arrival plus the fixed
        traversal latency (``None`` outside burst mode, where the simulator's
        per-packet events carry the timing)."""
        arrived_at = datagram.arrived_at
        return None if arrived_at is None else arrived_at + SWITCH_FORWARDING_DELAY_S

    # -- media -------------------------------------------------------------------

    def _handle_media(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        packet: RtpPacket = datagram.payload  # type: ignore[assignment]
        entry = self.stream_table.lookup((datagram.src, packet.ssrc))
        if entry is None:
            self.counters.table_misses += 1
            self.counters.account(parse.packet_class, datagram.size, to_cpu=False)
            return

        to_cpu = parse.needs_cpu and parse.has_extended_descriptor
        self.counters.account(parse.packet_class, datagram.size, to_cpu=to_cpu)
        if to_cpu:
            result.cpu_copies.append(datagram)

        is_video = parse.packet_class == PacketClass.RTP_VIDEO
        egress_schedule = self._egress_schedule(datagram)
        targets = self._resolve_targets(entry, parse)
        for target in targets:
            out_packet: Optional[RtpPacket] = packet
            if is_video:
                out_packet = self._apply_adaptation(packet, parse, target.address)
                if out_packet is None:
                    result.dropped_replicas += 1
                    self.counters.adaptation_drops += 1
                    continue
            out = Datagram(
                src=self.sfu_address,
                dst=target.address,
                payload=out_packet,
                arrived_at=egress_schedule,
                meta=dict(datagram.meta, origin=datagram.src, origin_ssrc=packet.ssrc),
            )
            result.outputs.append(out)
            self.counters.replicas_out += 1

    def _resolve_targets(self, entry: StreamForwardingEntry, parse: ParseResult) -> List[ReplicaTarget]:
        targets, _raw_replicas, _misses = self._resolve_targets_detail(
            entry, self._media_layer(entry, parse)
        )
        return list(targets)

    def _media_layer(self, entry: StreamForwardingEntry, parse: ParseResult) -> int:
        """Temporal layer selecting the per-quality tree (RA-R / RA-SR)."""
        if entry.mode != ForwardingMode.REPLICATE_BY_LAYER or not entry.mgid_by_layer:
            return 0
        template_id = parse.template_id
        if template_id is None:
            return 0
        layer = self._layer_by_template.get(template_id)
        if layer is None:
            from ..rtp.av1 import temporal_layer_for_template

            try:
                layer = temporal_layer_for_template(template_id)
            except ValueError:
                layer = 0
            self._layer_by_template[template_id] = layer
        return layer

    def _resolve_targets_detail(
        self, entry: StreamForwardingEntry, layer: int
    ) -> Tuple[Tuple[ReplicaTarget, ...], Optional[int], int]:
        """Resolve egress targets, also reporting the raw PRE copy count and
        replica-table miss count (bumping the per-packet counters once)."""
        if entry.mode == ForwardingMode.UNICAST:
            if entry.unicast_receiver is None:
                return (), None, 0
            return (ReplicaTarget(address=entry.unicast_receiver, participant_id="peer"),), None, 0

        if entry.mode == ForwardingMode.REPLICATE_BY_LAYER and entry.mgid_by_layer:
            mgid = entry.mgid_by_layer.get(layer, entry.mgid_by_layer.get(0))
        else:
            mgid = entry.mgid
        if mgid is None:
            return (), None, 0
        local = self.local_stats
        if local is None:
            replicas = self.pre.replicate(
                mgid, l1_xid=entry.l1_xid, rid=entry.rid, l2_xid=entry.l2_xid
            )
        else:
            # thread mode: pure tree walk on the shared PRE, accounting kept
            # local and folded at the batch barrier (no shared-counter race)
            replicas = self.pre.expand(
                mgid, l1_xid=entry.l1_xid, rid=entry.rid, l2_xid=entry.l2_xid
            )
            local.replications_performed += 1
            local.copies_produced += len(replicas)
        targets: List[ReplicaTarget] = []
        misses = 0
        for replica in replicas:
            target = self.replica_table.lookup((mgid, replica.rid))
            if target is None:
                self.counters.table_misses += 1
                misses += 1
                continue
            if target.address == entry.sender:
                # belt-and-braces: L2 pruning should already have removed this
                continue
            targets.append(target)
        return tuple(targets), len(replicas), misses

    def _apply_adaptation(
        self, packet: RtpPacket, parse: ParseResult, receiver: Address
    ) -> Optional[RtpPacket]:
        entry = self.adaptation_table.lookup((packet.ssrc, receiver))
        if entry is None:
            return packet
        forward = parse.template_id is None or parse.template_id in entry.allowed_templates
        rewriter = self.trackers.read(entry.stream_index)
        if rewriter is None:
            return packet if forward else None
        self.touched_tracker_indices.add(entry.stream_index)
        frame_number = parse.frame_number if parse.frame_number is not None else 0
        new_seq = rewriter.on_packet(packet.sequence_number, frame_number, forward)
        if new_seq is None:
            return None
        return packet.with_sequence_number(new_seq)

    # -- RTCP ----------------------------------------------------------------------

    def _handle_sender_rtcp(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        """SR/SDES: replicated to the sender's receivers through the data plane."""
        self.counters.account(parse.packet_class, datagram.size, to_cpu=False)
        if parse.ssrc is None:
            return
        entry = self.stream_table.lookup((datagram.src, parse.ssrc))
        if entry is None:
            self.counters.table_misses += 1
            return
        egress_schedule = self._egress_schedule(datagram)
        for target in self._resolve_targets(entry, parse):
            result.outputs.append(
                Datagram(
                    src=self.sfu_address,
                    dst=target.address,
                    payload=datagram.payload,
                    arrived_at=egress_schedule,
                )
            )
            self.counters.replicas_out += 1

    def _handle_feedback(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        """RR/REMB/NACK/PLI: forwarded per rules, always copied to the CPU."""
        self.counters.account(parse.packet_class, datagram.size, to_cpu=True)
        result.cpu_copies.append(datagram)

        packets: Tuple[RtcpPacket, ...] = tuple(datagram.payload)  # type: ignore[arg-type]
        forwarded: Dict[Address, List[RtcpPacket]] = {}
        for packet in packets:
            media_ssrcs: List[int] = []
            forward_needs_selection = False
            if isinstance(packet, Remb):
                media_ssrcs = list(packet.media_ssrcs)
                forward_needs_selection = True
            elif isinstance(packet, ReceiverReport):
                media_ssrcs = [block.ssrc for block in packet.report_blocks]
                forward_needs_selection = True
            elif isinstance(packet, (Nack, PictureLossIndication)):
                media_ssrcs = [packet.media_ssrc]
            for media_ssrc in media_ssrcs:
                rule = self.feedback_table.lookup((datagram.src, media_ssrc))
                if rule is None:
                    continue
                if forward_needs_selection and not rule.forward_remb:
                    continue
                if not forward_needs_selection and not rule.forward_nack_pli:
                    continue
                forwarded.setdefault(rule.sender, []).append(packet)
        egress_schedule = self._egress_schedule(datagram)
        for sender, packet_list in forwarded.items():
            result.outputs.append(
                Datagram(
                    src=self.sfu_address,
                    dst=sender,
                    payload=tuple(packet_list),
                    arrived_at=egress_schedule,
                )
            )
            self.counters.replicas_out += 1

    # -- punting ---------------------------------------------------------------------

    def _punt(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        self.counters.account(parse.packet_class, datagram.size, to_cpu=True)
        result.cpu_copies.append(datagram)


class ControlPlaneFacade:
    """Shared delegation surface over ``self.control``.

    Both the single-datapath :class:`ScallopPipeline` and the sharded engine
    expose the control plane's tables/registers/ledger and its write API as
    their own attributes; keeping the delegation in one mixin means a new
    control-plane capability surfaces on both engines at once (the "drop-in
    replacement" contract between them cannot silently diverge).
    """

    control: PipelineControlPlane

    def _bind_control_api(self) -> None:
        """Bind the control plane's write API as instance methods."""
        control = self.control
        self.install_stream = control.install_stream
        self.remove_stream = control.remove_stream
        self.install_stream_route = control.install_stream_route
        self.remove_stream_route = control.remove_stream_route
        self.ssrc_owner = control.ssrc_owner
        self.install_replica_target = control.install_replica_target
        self.remove_replica_target = control.remove_replica_target
        self.install_adaptation = control.install_adaptation
        self.update_adaptation_templates = control.update_adaptation_templates
        self.remove_adaptation = control.remove_adaptation
        self.install_feedback_rule = control.install_feedback_rule
        self.remove_feedback_rule = control.remove_feedback_rule
        self.batched_writes = control.batched_writes
        self.install_many = control.install_many
        self.export_flow_state = control.export_flow_state
        self.import_flow_state = control.import_flow_state

    @property
    def capacities(self) -> TofinoCapacities:
        return self.control.capacities

    @property
    def accountant(self) -> ResourceAccountant:
        return self.control.accountant

    @property
    def pre(self) -> PacketReplicationEngine:
        return self.control.pre

    @property
    def stream_table(self) -> ExactMatchTable:
        return self.control.stream_table

    @property
    def replica_table(self) -> ExactMatchTable:
        return self.control.replica_table

    @property
    def adaptation_table(self) -> ExactMatchTable:
        return self.control.adaptation_table

    @property
    def feedback_table(self) -> ExactMatchTable:
        return self.control.feedback_table

    @property
    def ssrc_table(self) -> ExactMatchTable:
        return self.control.ssrc_table

    @property
    def placement_table(self) -> ExactMatchTable:
        return self.control.placement_table

    @property
    def stream_indices(self) -> IndexAllocator:
        return self.control.stream_indices

    @stream_indices.setter
    def stream_indices(self, allocator: IndexAllocator) -> None:
        self.control.stream_indices = allocator

    @property
    def stream_trackers(self) -> RegisterArray:
        return self.control.stream_trackers


class ScallopPipeline(ControlPlaneFacade):
    """One control plane driving one datapath: the original single-engine API.

    Everything external code touched on the pre-split pipeline is still here —
    tables, PRE, accountant, counters, parser, the control methods and the
    ``process``/``process_batch`` entry points — now delegating to the
    composed :class:`PipelineControlPlane` and :class:`PipelineDatapath`.
    """

    RESOLUTION_CACHE_LIMIT = PipelineDatapath.RESOLUTION_CACHE_LIMIT

    def __init__(
        self,
        sfu_address: Address,
        capacities: TofinoCapacities = DEFAULT_CAPACITIES,
        sanitize: Optional[bool] = None,
        srtp: Optional[object] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        self.control = PipelineControlPlane(sfu_address, capacities, srtp=srtp, obs=obs)
        self.datapath = PipelineDatapath(self.control, sanitize=sanitize)
        self.control.attach_datapath(self.datapath)
        self.sfu_address = sfu_address

        # hot entry points bound directly (no wrapper frame on the data path)
        self.process = self.datapath.process
        self.process_batch = self.datapath.process_batch
        self._bind_control_api()

    # -- datapath state ------------------------------------------------------------

    @property
    def parser(self) -> IngressParser:
        return self.datapath.parser

    @property
    def counters(self) -> PipelineCounters:
        return self.datapath.counters

    def isolation_findings(self) -> List[IsolationViolation]:
        """Blocked control-plane mutation attempts recorded by the
        shard-isolation sanitizer (empty when it is off or nothing fired)."""
        log = self.datapath.isolation_log
        return list(log.violations) if log is not None else []

    def close(self) -> None:
        """No backend resources to release (API parity with the sharded
        engine, so SFU teardown can close either pipeline uniformly)."""
