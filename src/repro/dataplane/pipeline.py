"""The Scallop switch pipeline: ingress parsing/matching, PRE replication, and
egress rewriting.

This is the behavioural model of the ~2000 lines of P4 the paper describes
(§6): per packet it can only

* parse the bounded set of fields in :class:`~repro.dataplane.parser.IngressParser`,
* look up exact-match tables that the control plane installed beforehand,
* invoke the :class:`~repro.dataplane.pre.PacketReplicationEngine`, and
* in egress, rewrite addresses and sequence numbers using per-stream register
  state and drop packets whose SVC template id the receiver's decode target
  excludes.

Everything else (STUN, RTCP feedback analysis, extended AV1 descriptors) is
copied or punted to the switch CPU, which is exactly the split Table 1
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol, Tuple

from ..netsim.datagram import Address, Datagram
from ..rtp.packet import RtpPacket
from ..rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    RtcpPacket,
    SenderReport,
    SourceDescription,
)
from .parser import IngressParser, PacketClass, ParseResult
from .pre import L2Port, PacketReplicationEngine, Replica
from .resources import DEFAULT_CAPACITIES, ResourceAccountant, TofinoCapacities
from .tables import ExactMatchTable, IndexAllocator, RegisterArray

#: Fixed pipeline traversal latency of the switch (ingress + PRE + egress).
#: Tofino-class devices forward in well under a microsecond; the slightly
#: larger constant accounts for port serialization of ~1 KB packets and keeps
#: the Figure 19 comparison conservative.
SWITCH_FORWARDING_DELAY_S = 12e-6


class SequenceRewriter(Protocol):
    """Per-stream sequence-number rewriting state machine (S-LM / S-LR).

    The pipeline calls :meth:`on_packet` for every packet of a rate-adapted
    (sender -> receiver) stream in arrival order.  ``forward`` is False when
    the SFU is suppressing the packet for rate adaptation.  The return value
    is the rewritten sequence number, or ``None`` if the packet must not be
    forwarded (either because it was suppressed or because forwarding it would
    risk emitting a duplicate sequence number).
    """

    def on_packet(self, sequence_number: int, frame_number: int, forward: bool) -> Optional[int]:
        ...


class ForwardingMode(str, Enum):
    """How a sender's media stream is distributed."""

    UNICAST = "unicast"                  # two-party optimization, no PRE
    REPLICATE = "replicate"              # single tree (NRA)
    REPLICATE_BY_LAYER = "replicate_by_layer"  # per-quality trees (RA-R / RA-SR)


@dataclass(frozen=True)
class StreamForwardingEntry:
    """Ingress match-action entry for one sender media stream."""

    mode: ForwardingMode
    meeting_id: str
    sender: Address
    mgid: Optional[int] = None
    mgid_by_layer: Optional[Dict[int, int]] = None
    l1_xid: Optional[int] = None
    rid: Optional[int] = None
    l2_xid: Optional[int] = None
    unicast_receiver: Optional[Address] = None


@dataclass(frozen=True)
class ReplicaTarget:
    """Egress mapping from a PRE replica to the receiver it addresses."""

    address: Address
    participant_id: str


@dataclass(frozen=True)
class AdaptationEntry:
    """Egress match-action entry controlling rate adaptation per receiver."""

    stream_index: int
    allowed_templates: FrozenSet[int]


@dataclass(frozen=True)
class FeedbackRule:
    """Forwarding rule for receiver feedback about one media SSRC."""

    sender: Address
    forward_remb: bool = False   # set by the switch agent's filter function
    forward_nack_pli: bool = True


@dataclass
class PipelineCounters:
    """Packet/byte accounting used by Table 1, Figure 22 and the tests."""

    data_plane_packets: int = 0
    data_plane_bytes: int = 0
    cpu_packets: int = 0
    cpu_bytes: int = 0
    replicas_out: int = 0
    adaptation_drops: int = 0
    table_misses: int = 0
    by_class_packets: Dict[str, int] = field(default_factory=dict)
    by_class_bytes: Dict[str, int] = field(default_factory=dict)

    def account(self, packet_class: PacketClass, size: int, to_cpu: bool) -> None:
        label = packet_class.value
        self.by_class_packets[label] = self.by_class_packets.get(label, 0) + 1
        self.by_class_bytes[label] = self.by_class_bytes.get(label, 0) + size
        if to_cpu:
            self.cpu_packets += 1
            self.cpu_bytes += size
        else:
            self.data_plane_packets += 1
            self.data_plane_bytes += size


@dataclass
class PipelineResult:
    """The outcome of processing one ingress packet."""

    parse: ParseResult
    outputs: List[Datagram] = field(default_factory=list)
    cpu_copies: List[Datagram] = field(default_factory=list)
    dropped_replicas: int = 0
    forwarding_delay_s: float = SWITCH_FORWARDING_DELAY_S


class ScallopPipeline:
    """The data plane: configured by the control plane, driven per packet."""

    def __init__(
        self,
        sfu_address: Address,
        capacities: TofinoCapacities = DEFAULT_CAPACITIES,
    ) -> None:
        self.sfu_address = sfu_address
        self.capacities = capacities
        self.accountant = ResourceAccountant(capacities)
        self.parser = IngressParser()
        self.pre = PacketReplicationEngine(self.accountant)

        self.stream_table: ExactMatchTable[Tuple[Address, int], StreamForwardingEntry] = ExactMatchTable(
            "stream_forwarding", max_entries=capacities.exact_match_entries
        )
        self.replica_table: ExactMatchTable[Tuple[int, int], ReplicaTarget] = ExactMatchTable(
            "replica_targets", max_entries=capacities.exact_match_entries
        )
        self.adaptation_table: ExactMatchTable[Tuple[int, Address], AdaptationEntry] = ExactMatchTable(
            "rate_adaptation", max_entries=capacities.stream_tracker_cells
        )
        self.feedback_table: ExactMatchTable[Tuple[Address, int], FeedbackRule] = ExactMatchTable(
            "feedback_rules", max_entries=capacities.exact_match_entries
        )
        self.ssrc_table: ExactMatchTable[int, Address] = ExactMatchTable(
            "ssrc_owner", max_entries=capacities.exact_match_entries
        )

        self.stream_indices = IndexAllocator(capacities.stream_tracker_cells)
        self.stream_trackers: RegisterArray[SequenceRewriter] = RegisterArray(
            "stream_tracker", size=capacities.stream_tracker_cells
        )

        self.counters = PipelineCounters()

    # ------------------------------------------------------------------ control API

    def install_stream(self, key: Tuple[Address, int], entry: StreamForwardingEntry) -> None:
        """Install ingress forwarding state for a sender stream (addr, ssrc)."""
        self.stream_table.install(key, entry)
        self.ssrc_table.install(key[1], key[0])

    def remove_stream(self, key: Tuple[Address, int]) -> None:
        self.stream_table.remove(key)
        self.ssrc_table.remove(key[1])

    def install_replica_target(self, mgid: int, rid: int, target: ReplicaTarget) -> None:
        self.replica_table.install((mgid, rid), target)

    def remove_replica_target(self, mgid: int, rid: int) -> None:
        self.replica_table.remove((mgid, rid))

    def install_adaptation(
        self,
        sender_ssrc: int,
        receiver: Address,
        allowed_templates: FrozenSet[int],
        rewriter: SequenceRewriter,
    ) -> int:
        """Install per-receiver rate adaptation and its rewriting state.

        Returns the allocated stream index.
        """
        index = self.stream_indices.allocate((sender_ssrc, receiver))
        self.adaptation_table.install(
            (sender_ssrc, receiver), AdaptationEntry(stream_index=index, allowed_templates=allowed_templates)
        )
        self.stream_trackers.write(index, rewriter)
        self.accountant.allocate_stream_state(0)  # occupancy tracked via allocator
        return index

    def update_adaptation_templates(
        self, sender_ssrc: int, receiver: Address, allowed_templates: FrozenSet[int]
    ) -> None:
        existing = self.adaptation_table.lookup((sender_ssrc, receiver))
        if existing is None:
            raise KeyError("no adaptation entry installed for this stream")
        self.adaptation_table.install(
            (sender_ssrc, receiver),
            AdaptationEntry(stream_index=existing.stream_index, allowed_templates=allowed_templates),
        )

    def remove_adaptation(self, sender_ssrc: int, receiver: Address) -> None:
        entry = self.adaptation_table.lookup((sender_ssrc, receiver))
        if entry is not None:
            self.stream_trackers.clear(entry.stream_index)
            self.stream_indices.release((sender_ssrc, receiver))
            self.adaptation_table.remove((sender_ssrc, receiver))

    def install_feedback_rule(self, receiver: Address, media_ssrc: int, rule: FeedbackRule) -> None:
        self.feedback_table.install((receiver, media_ssrc), rule)

    def remove_feedback_rule(self, receiver: Address, media_ssrc: int) -> None:
        self.feedback_table.remove((receiver, media_ssrc))

    # ------------------------------------------------------------------ data path

    def process(self, datagram: Datagram) -> PipelineResult:
        """Run one ingress packet through the pipeline."""
        parse = self.parser.parse(datagram)
        result = PipelineResult(parse=parse)

        if parse.packet_class == PacketClass.STUN or parse.packet_class == PacketClass.UNKNOWN:
            self._punt(datagram, parse, result)
            return result

        if parse.packet_class == PacketClass.RTCP_FEEDBACK:
            self._handle_feedback(datagram, parse, result)
            return result

        if parse.packet_class == PacketClass.RTCP_SENDER:
            self._handle_sender_rtcp(datagram, parse, result)
            return result

        # RTP media (audio or video)
        self._handle_media(datagram, parse, result)
        return result

    # -- media -------------------------------------------------------------------

    def _handle_media(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        packet: RtpPacket = datagram.payload  # type: ignore[assignment]
        entry = self.stream_table.lookup((datagram.src, packet.ssrc))
        if entry is None:
            self.counters.table_misses += 1
            self.counters.account(parse.packet_class, datagram.size, to_cpu=False)
            return

        to_cpu = parse.needs_cpu and parse.has_extended_descriptor
        self.counters.account(parse.packet_class, datagram.size, to_cpu=to_cpu)
        if to_cpu:
            result.cpu_copies.append(datagram)

        is_video = parse.packet_class == PacketClass.RTP_VIDEO
        targets = self._resolve_targets(entry, parse)
        for target in targets:
            out_packet: Optional[RtpPacket] = packet
            if is_video:
                out_packet = self._apply_adaptation(packet, parse, target.address)
                if out_packet is None:
                    result.dropped_replicas += 1
                    self.counters.adaptation_drops += 1
                    continue
            out = Datagram(
                src=self.sfu_address,
                dst=target.address,
                payload=out_packet,
                meta=dict(datagram.meta, origin=datagram.src, origin_ssrc=packet.ssrc),
            )
            result.outputs.append(out)
            self.counters.replicas_out += 1

    def _resolve_targets(self, entry: StreamForwardingEntry, parse: ParseResult) -> List[ReplicaTarget]:
        if entry.mode == ForwardingMode.UNICAST:
            if entry.unicast_receiver is None:
                return []
            return [ReplicaTarget(address=entry.unicast_receiver, participant_id="peer")]

        if entry.mode == ForwardingMode.REPLICATE_BY_LAYER and entry.mgid_by_layer:
            layer = 0
            if parse.template_id is not None:
                from ..rtp.av1 import temporal_layer_for_template

                try:
                    layer = temporal_layer_for_template(parse.template_id)
                except ValueError:
                    layer = 0
            mgid = entry.mgid_by_layer.get(layer, entry.mgid_by_layer.get(0))
        else:
            mgid = entry.mgid
        if mgid is None:
            return []
        replicas = self.pre.replicate(mgid, l1_xid=entry.l1_xid, rid=entry.rid, l2_xid=entry.l2_xid)
        targets: List[ReplicaTarget] = []
        for replica in replicas:
            target = self.replica_table.lookup((mgid, replica.rid))
            if target is None:
                self.counters.table_misses += 1
                continue
            if target.address == entry.sender:
                # belt-and-braces: L2 pruning should already have removed this
                continue
            targets.append(target)
        return targets

    def _apply_adaptation(
        self, packet: RtpPacket, parse: ParseResult, receiver: Address
    ) -> Optional[RtpPacket]:
        entry = self.adaptation_table.lookup((packet.ssrc, receiver))
        if entry is None:
            return packet
        forward = parse.template_id is None or parse.template_id in entry.allowed_templates
        rewriter = self.stream_trackers.read(entry.stream_index)
        if rewriter is None:
            return packet if forward else None
        frame_number = parse.frame_number if parse.frame_number is not None else 0
        new_seq = rewriter.on_packet(packet.sequence_number, frame_number, forward)
        if new_seq is None:
            return None
        return packet.with_sequence_number(new_seq)

    # -- RTCP ----------------------------------------------------------------------

    def _handle_sender_rtcp(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        """SR/SDES: replicated to the sender's receivers through the data plane."""
        self.counters.account(parse.packet_class, datagram.size, to_cpu=False)
        if parse.ssrc is None:
            return
        entry = self.stream_table.lookup((datagram.src, parse.ssrc))
        if entry is None:
            self.counters.table_misses += 1
            return
        for target in self._resolve_targets(entry, parse):
            result.outputs.append(
                Datagram(src=self.sfu_address, dst=target.address, payload=datagram.payload)
            )
            self.counters.replicas_out += 1

    def _handle_feedback(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        """RR/REMB/NACK/PLI: forwarded per rules, always copied to the CPU."""
        self.counters.account(parse.packet_class, datagram.size, to_cpu=True)
        result.cpu_copies.append(datagram)

        packets: Tuple[RtcpPacket, ...] = tuple(datagram.payload)  # type: ignore[arg-type]
        forwarded: Dict[Address, List[RtcpPacket]] = {}
        for packet in packets:
            media_ssrcs: List[int] = []
            forward_needs_selection = False
            if isinstance(packet, Remb):
                media_ssrcs = list(packet.media_ssrcs)
                forward_needs_selection = True
            elif isinstance(packet, ReceiverReport):
                media_ssrcs = [block.ssrc for block in packet.report_blocks]
                forward_needs_selection = True
            elif isinstance(packet, (Nack, PictureLossIndication)):
                media_ssrcs = [packet.media_ssrc]
            for media_ssrc in media_ssrcs:
                rule = self.feedback_table.lookup((datagram.src, media_ssrc))
                if rule is None:
                    continue
                if forward_needs_selection and not rule.forward_remb:
                    continue
                if not forward_needs_selection and not rule.forward_nack_pli:
                    continue
                forwarded.setdefault(rule.sender, []).append(packet)
        for sender, packet_list in forwarded.items():
            result.outputs.append(
                Datagram(src=self.sfu_address, dst=sender, payload=tuple(packet_list))
            )
            self.counters.replicas_out += 1

    # -- punting ---------------------------------------------------------------------

    def _punt(self, datagram: Datagram, parse: ParseResult, result: PipelineResult) -> None:
        self.counters.account(parse.packet_class, datagram.size, to_cpu=True)
        result.cpu_copies.append(datagram)
