"""repro.cluster — multi-SFU federation.

Inter-SFU trunks (one subscription per co-hosted meeting, fanned out through
the subscriber's own PRE), the :class:`SfuCluster` placement coordinator, and
cross-SFU meeting migration over versioned zero-pickle control-plane
snapshots.
"""

from .cluster import ClusterSfu, SfuCluster, trunk_participant_id
from .snapshot import (
    MeetingSnapshot,
    restore_meeting,
    snapshot_meeting,
    snapshot_size_bytes,
)
from .trunk import TRUNK_FORWARD_SRC_META, SfuTrunk, TrunkManager, TrunkStats

__all__ = [
    "ClusterSfu",
    "SfuCluster",
    "MeetingSnapshot",
    "SfuTrunk",
    "TrunkManager",
    "TrunkStats",
    "TRUNK_FORWARD_SRC_META",
    "restore_meeting",
    "snapshot_meeting",
    "snapshot_size_bytes",
    "trunk_participant_id",
]
