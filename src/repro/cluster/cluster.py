"""Multi-SFU federation: cluster-aware SFUs and the placement coordinator.

:class:`ClusterSfu` is a :class:`~repro.core.scallop.ScallopSfu` that knows
its peers: trunk traffic from peer boxes is counted, straggler forwards are
decapsulated back to their original source before pipeline ingress, and a
post-migration drain window forwards in-flight packets of migrated-away
clients to their new home (tagged via datagram meta — the packet itself is
untouched, so the forward rides the wire-native path end to end).

:class:`SfuCluster` places meetings across 2+ boxes inside one netsim,
maintains the inter-SFU trunks through every membership change, and performs
cross-SFU meeting migration: snapshot at a batch boundary, move the clients,
adopt the versioned snapshot (packed rewriter register images included) on
the destination, arm straggler routes, and re-sync trunks with the old state
lingering for the drain window.  Following the cluster live-migration pattern
of the related work: migrating to a box outside the cluster raises, and a
meeting already home is a no-op.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.replication import ParticipantEndpoint
from ..core.scallop import ScallopSfu
from ..dataplane.pipeline import SWITCH_FORWARDING_DELAY_S
from ..netsim.datagram import Address, Datagram
from ..netsim.simulator import Simulator
from ..netsim.link import Network
from .snapshot import restore_meeting, snapshot_meeting, snapshot_size_bytes
from .trunk import TRUNK_FORWARD_SRC_META, TrunkManager, TrunkStats

#: How long migration-stale trunk state and straggler routes stay armed after
#: a cutover.  Covers the inter-SFU hop (~0.4 ms) plus client access latency
#: with two orders of magnitude of slack, while staying far below meeting
#: timescales.
DEFAULT_DRAIN_WINDOW_S = 0.05


def trunk_participant_id(address: Address) -> str:
    """Stable participant id of a peer box's trunk endpoint."""
    return f"trunk:{address}"


class ClusterSfu(ScallopSfu):
    """A Scallop SFU participating in a federation.

    Everything on the packet path is inherited; the overrides only reroute
    at ingress: straggler-routed sources are forwarded to the flow's new
    home, trunk forwards from peers are decapsulated, and trunk traffic is
    counted into :class:`~repro.cluster.trunk.TrunkStats` (exported on the
    pipeline as ``trunk_stats`` so the telemetry bus lifts it with the other
    engine namespaces).
    """

    def __init__(self, address: Address, simulator: Simulator, network: Network, **kwargs) -> None:
        super().__init__(address, simulator, network, **kwargs)
        self.trunk_stats = TrunkStats()
        #: duck-typed probe point for TelemetryBus.add_engine
        self.pipeline.trunk_stats = self.trunk_stats
        self.trunks = TrunkManager(self)
        self._peer_addresses: Set[Address] = set()
        #: migrated-away client address -> its new home box (drain window)
        self._straggler_routes: Dict[Address, Address] = {}

    def set_peers(self, addresses: Sequence[Address]) -> None:
        self._peer_addresses = {a for a in addresses if a != self.address}

    # ------------------------------------------------------------------ ingress rerouting

    def _route_ingress(self, datagram: Datagram) -> Optional[Datagram]:
        route = self._straggler_routes.get(datagram.src)
        if route is not None and datagram.dst == self.address:
            # in-flight packet of a migrated-away client: forward to its new
            # home, original source tucked into meta so the peer restores it
            # before pipeline ingress (exactly-once: this box's own state for
            # the flow is already gone, so nothing is processed locally)
            meta = dict(datagram.meta)
            meta[TRUNK_FORWARD_SRC_META] = datagram.src
            forwarded = replace(datagram, src=self.address, dst=route, meta=meta)
            self.trunk_stats.stragglers_forwarded += 1
            self.stats.packets_out += 1
            self.stats.bytes_out += forwarded.size
            self.simulator.schedule(
                SWITCH_FORWARDING_DELAY_S, lambda d=forwarded: self.network.send(d)
            )
            return None
        if datagram.src in self._peer_addresses:
            self.trunk_stats.packets_in += 1
            self.trunk_stats.bytes_in += datagram.size
            forwarded_src = datagram.meta.get(TRUNK_FORWARD_SRC_META)
            if forwarded_src is not None:
                meta = {k: v for k, v in datagram.meta.items() if k != TRUNK_FORWARD_SRC_META}
                return replace(datagram, src=forwarded_src, meta=meta)
        return datagram

    def handle_datagram(self, datagram: Datagram) -> None:
        routed = self._route_ingress(datagram)
        if routed is not None:
            super().handle_datagram(routed)

    def handle_datagram_batch(self, datagrams: Sequence[Datagram]) -> None:
        routed = []
        for datagram in datagrams:
            out = self._route_ingress(datagram)
            if out is not None:
                routed.append(out)
        if routed:
            super().handle_datagram_batch(routed)

    # ------------------------------------------------------------------ straggler routes

    def add_straggler_route(self, client: Address, new_home: Address, expire_s: float) -> None:
        self._straggler_routes[client] = new_home
        self.simulator.schedule(expire_s, lambda: self._expire_straggler_route(client, new_home))

    def _expire_straggler_route(self, client: Address, new_home: Address) -> None:
        if self._straggler_routes.get(client) == new_home:
            del self._straggler_routes[client]

    def flush_straggler_routes(self) -> None:
        self._straggler_routes.clear()


class SfuCluster:
    """Coordinator placing meetings across the federation's boxes.

    The coordinator is control-plane-only: it never sees a packet.  It signs
    clients into their home box, keeps every co-hosted meeting's trunks in
    sync after each membership change (the controller re-derives meetings
    from its own records on every join/leave, so trunk endpoints and remote
    sender registrations are re-asserted here afterwards), and drives
    cross-SFU migration.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        n_sfus: int = 2,
        drain_window_s: float = DEFAULT_DRAIN_WINDOW_S,
        **sfu_kwargs,
    ) -> None:
        if n_sfus < 1:
            raise ValueError("a cluster needs at least one SFU")
        self.simulator = simulator
        self.network = network
        self.drain_window_s = drain_window_s
        self.members: List[ClusterSfu] = [
            ClusterSfu(Address(f"10.0.0.{1 + index}", 5000), simulator, network, **sfu_kwargs)
            for index in range(n_sfus)
        ]
        addresses = [member.address for member in self.members]
        for member in self.members:
            member.set_peers(addresses)
        self._home: Dict[str, int] = {}
        self._clients: Dict[str, object] = {}
        #: pre-meeting state fingerprints: what an idle box must return to
        #: after every meeting it hosted migrates away or drains out
        self._baselines = [self._fingerprint(member) for member in self.members]

    # ------------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Address:
        """The cluster's front address (member 0 — where unplaced joins land)."""
        return self.members[0].address

    def start(self) -> None:
        for member in self.members:
            member.start()

    def stop(self) -> None:
        for member in self.members:
            member.stop()

    def close(self) -> None:
        for member in self.members:
            member.close()

    # ------------------------------------------------------------------ membership

    def join(self, client, member: Optional[int] = None) -> None:
        """Sign a client into its meeting on the given (or default) box."""
        meeting_id = client.config.meeting_id
        index = member if member is not None else self._default_member(meeting_id)
        if not 0 <= index < len(self.members):
            raise ValueError(f"member {index} is not in this {len(self.members)}-SFU cluster")
        self.members[index].join(client)
        self._home[client.config.participant_id] = index
        self._clients[client.config.participant_id] = client
        self._sync_meeting(meeting_id)

    def leave(self, client) -> None:
        participant_id = client.config.participant_id
        index = self._home.pop(participant_id, None)
        self._clients.pop(participant_id, None)
        if index is None:
            return
        self.members[index].leave(client)
        self._sync_meeting(client.config.meeting_id)

    def home_of(self, participant_id: str) -> Optional[int]:
        return self._home.get(participant_id)

    def _default_member(self, meeting_id: str) -> int:
        for participant_id, index in self._home.items():
            client = self._clients.get(participant_id)
            if client is not None and client.config.meeting_id == meeting_id:
                return index
        return 0

    # ------------------------------------------------------------------ migration

    def migrate_meeting(self, meeting_id: str, to_member: int) -> bool:
        """Consolidate a meeting onto one box; returns False when already home.

        Per source box, at one simulated instant (a batch boundary — no
        packet event interleaves): image the meeting
        (:func:`~repro.cluster.snapshot.snapshot_meeting` — versioned flow
        snapshot with packed rewriter register images, decode-target
        hysteresis, learned SVC structures), move the clients (leave tears
        the source's state down, join re-homes signaling to the
        destination), adopt the snapshot on the destination, and arm
        straggler routes.  Stale trunk state then lingers for the drain
        window so trunk-era in-flight replicas still reach the pre-cutover
        population — order per flow is preserved because the extra inter-SFU
        hop is orders of magnitude shorter than media inter-packet gaps.
        """
        if not 0 <= to_member < len(self.members):
            raise ValueError(
                f"migration destination {to_member} is not in this "
                f"{len(self.members)}-SFU cluster"
            )
        hosting = self._hosting_members(meeting_id)
        if not hosting:
            raise ValueError(f"unknown meeting: {meeting_id}")
        if set(hosting) == {to_member}:
            return False  # already home
        destination = self.members[to_member]
        for index in sorted(set(hosting) - {to_member}):
            source = self.members[index]
            snapshot = snapshot_meeting(source, meeting_id)
            shipped = snapshot_size_bytes(snapshot)
            source.trunk_stats.migrations_out += 1
            source.trunk_stats.snapshot_bytes += shipped
            clients = [
                self._clients[pid] for pid in snapshot.participant_ids if pid in self._clients
            ]
            for client in clients:
                source.leave(client)
            for client in clients:
                destination.join(client)
                self._home[client.config.participant_id] = to_member
            restore_meeting(snapshot, destination)
            destination.trunk_stats.migrations_in += 1
            destination.trunk_stats.snapshot_bytes += shipped
            for client in clients:
                source.add_straggler_route(client.address, destination.address, self.drain_window_s)
        self._sync_meeting(meeting_id, linger_s=self.drain_window_s)
        return True

    # ------------------------------------------------------------------ trunk sync

    def _hosting_members(self, meeting_id: str) -> Dict[int, list]:
        hosting: Dict[int, list] = {}
        for index, member in enumerate(self.members):
            meeting = member.controller.meetings.get(meeting_id)
            if meeting is not None and meeting.participants:
                hosting[index] = list(meeting.participants.values())
        return hosting

    def _sync_meeting(self, meeting_id: str, linger_s: float = 0.0) -> None:
        """Re-assert the federated view of one meeting on every box.

        Hosting boxes get their meeting re-configured with the peer trunk
        endpoints appended (the controller's own reconfiguration knows only
        local participants) and their trunk subscriptions rebuilt; boxes no
        longer hosting shed leftover trunk-only replication state, remote
        sender registrations, and subscriptions.
        """
        hosting = self._hosting_members(meeting_id)
        for index, member in enumerate(self.members):
            if index in hosting:
                trunk_endpoints = [
                    ParticipantEndpoint(
                        participant_id=trunk_participant_id(self.members[peer].address),
                        address=self.members[peer].address,
                        egress_port=0,
                        trunk=True,
                    )
                    for peer in sorted(hosting)
                    if peer != index
                ]
                local_endpoints = [record.endpoint() for record in hosting[index]]
                member.agent.configure_meeting(meeting_id, local_endpoints + trunk_endpoints)
                installed = member.agent.replication.meetings[meeting_id]
                local_receivers = [
                    endpoint for endpoint in installed.participants.values() if not endpoint.trunk
                ]
                remote_senders = {
                    self.members[peer].address: [record.endpoint() for record in hosting[peer]]
                    for peer in sorted(hosting)
                    if peer != index
                }
                member.trunks.sync_meeting(
                    meeting_id, remote_senders, local_receivers, linger_s=linger_s
                )
            else:
                leftover = member.agent.replication.meetings.get(meeting_id)
                if leftover is not None:
                    for pid, endpoint in list(leftover.participants.items()):
                        if endpoint.trunk:
                            member.agent.remove_participant(meeting_id, pid)
                member.trunks.teardown_meeting(meeting_id, linger_s=linger_s)

    # ------------------------------------------------------------------ reconciliation

    def _fingerprint(self, member: ClusterSfu) -> Dict[str, int]:
        control = member.pipeline.control
        return {
            "stream_entries": len(list(control.stream_table.entries())),
            "replica_entries": len(list(control.replica_table.entries())),
            "adaptation_entries": len(list(control.adaptation_table.entries())),
            "feedback_entries": len(list(control.feedback_table.entries())),
            "trees": control.pre.num_trees,
            "l1_nodes": control.pre.total_l1_nodes(),
            "tracker_cells": control.accountant.stream_tracker_cells_used,
            "agent_participants": len(member.agent._participants),
            "controller_participants": member.controller.total_participants(),
            "trunk_subscriptions": len(member.trunks.subscriptions),
        }

    def reconcile(self) -> List[str]:
        """Audit every box against the surviving cross-SFU population.

        Flushes drain windows first (the simulation horizon has passed), then
        checks per box: controller/agent populations, table jurisdictions
        (streams from local clients or subscribed peers only, adaptation
        strictly egress-local, feedback toward local receivers or peer
        trunks), accountant-vs-PRE-vs-register consistency, trunk
        subscriptions matching the surviving remote population, and — for a
        box hosting nothing — an exact return to its pre-meeting baseline
        fingerprint.
        """
        problems: List[str] = []
        for member in self.members:
            member.trunks.flush_lingering()
            member.flush_straggler_routes()

        meetings: Dict[str, Dict[int, List[str]]] = {}
        for pid, index in self._home.items():
            client = self._clients[pid]
            meetings.setdefault(client.config.meeting_id, {}).setdefault(index, []).append(pid)

        for index, member in enumerate(self.members):
            tag = f"member {index} ({member.address})"
            local_pids = {pid for pid, home in self._home.items() if home == index}
            local_clients = [self._clients[pid] for pid in local_pids]
            local_addresses = {client.address for client in local_clients}
            local_ssrcs = set()
            for client in local_clients:
                if client.config.send_audio:
                    local_ssrcs.add(client.audio_ssrc)
                if client.config.send_video:
                    local_ssrcs.add(client.video_ssrc)

            remote_pids: Set[str] = set()
            remote_ssrcs: Set[int] = set()
            trunk_pids: Set[str] = set()
            origin_addresses: Set[Address] = set()
            expected_subscriptions: Dict[Tuple[str, Address], int] = {}
            for meeting_id, by_member in meetings.items():
                if index not in by_member:
                    continue
                for peer, pids in by_member.items():
                    if peer == index:
                        continue
                    trunk_pids.add(trunk_participant_id(self.members[peer].address))
                    origin_addresses.add(self.members[peer].address)
                    expected_subscriptions[(meeting_id, self.members[peer].address)] = len(pids)
                    for pid in pids:
                        remote_pids.add(pid)
                        client = self._clients[pid]
                        if client.config.send_audio:
                            remote_ssrcs.add(client.audio_ssrc)
                        if client.config.send_video:
                            remote_ssrcs.add(client.video_ssrc)

            if member.controller.total_participants() != len(local_pids):
                problems.append(
                    f"{tag}: controller tracks {member.controller.total_participants()} "
                    f"participants, {len(local_pids)} are homed here"
                )
            expected_agent_ids = local_pids | trunk_pids | remote_pids
            agent_ids = set(member.agent._participants)
            if agent_ids != expected_agent_ids:
                problems.append(
                    f"{tag}: agent tracks {sorted(agent_ids ^ expected_agent_ids)} inconsistently"
                )

            control = member.pipeline.control
            peer_addresses = {m.address for m in self.members if m is not member}
            for (src, ssrc), _entry in control.stream_table.entries():
                if src in local_addresses and ssrc in local_ssrcs:
                    continue
                if src in origin_addresses and ssrc in remote_ssrcs:
                    continue
                problems.append(f"{tag}: stale stream entry for flow {src}/{ssrc}")
            for (ssrc, receiver), _entry in control.adaptation_table.entries():
                if receiver not in local_addresses or ssrc not in (local_ssrcs | remote_ssrcs):
                    problems.append(f"{tag}: non-egress-local adaptation entry ({ssrc}, {receiver})")
            for (receiver, ssrc), _rule in control.feedback_table.entries():
                if receiver not in (local_addresses | peer_addresses) or ssrc not in (
                    local_ssrcs | remote_ssrcs
                ):
                    problems.append(f"{tag}: stale feedback rule ({receiver}, {ssrc})")
            for (src, ssrc), _shard in control.placement_table.entries():
                if src not in (local_addresses | origin_addresses):
                    problems.append(f"{tag}: stale placement exception {src}/{ssrc}")

            accountant = control.accountant
            pre = control.pre
            if accountant.trees_allocated != pre.num_trees:
                problems.append(
                    f"{tag}: accountant holds {accountant.trees_allocated} trees, "
                    f"PRE has {pre.num_trees}"
                )
            if accountant.l1_nodes_allocated != pre.total_l1_nodes():
                problems.append(
                    f"{tag}: accountant holds {accountant.l1_nodes_allocated} L1 nodes, "
                    f"PRE has {pre.total_l1_nodes()}"
                )
            tracker_cells = sum(
                getattr(rewriter, "state_cells", 1)
                for _index, rewriter in control.stream_trackers.used_entries()
            )
            if accountant.stream_tracker_cells_used != tracker_cells:
                problems.append(
                    f"{tag}: accountant charges {accountant.stream_tracker_cells_used} tracker "
                    f"cells, registers hold {tracker_cells}"
                )
            if control.stream_indices.in_use != len(control.adaptation_table):
                problems.append(
                    f"{tag}: {control.stream_indices.in_use} stream indices allocated for "
                    f"{len(control.adaptation_table)} adaptation entries"
                )

            subscriptions = member.trunks.subscriptions
            if set(subscriptions) != set(expected_subscriptions):
                problems.append(
                    f"{tag}: trunk subscriptions {sorted(str(k) for k in subscriptions)} != "
                    f"expected {sorted(str(k) for k in expected_subscriptions)}"
                )
            else:
                for key, expected_count in expected_subscriptions.items():
                    if len(subscriptions[key].sender_ids) != expected_count:
                        problems.append(
                            f"{tag}: trunk {key} subscribes {len(subscriptions[key].sender_ids)} "
                            f"remote senders, surviving remote population is {expected_count}"
                        )

            if not local_pids and not remote_pids:
                fingerprint = self._fingerprint(member)
                baseline = self._baselines[index]
                if fingerprint != baseline:
                    drift = {
                        k: (baseline[k], fingerprint[k])
                        for k in fingerprint
                        if fingerprint[k] != baseline[k]
                    }
                    problems.append(f"{tag}: idle box has not returned to baseline: {drift}")
        return problems

    # ------------------------------------------------------------------ reporting

    def total_participants(self) -> int:
        return len(self._home)
