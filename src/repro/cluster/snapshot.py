"""Versioned control-plane snapshots for cross-SFU meeting migration.

A migration ships three things between boxes, none of them pickled:

* the dataplane's per-flow state — adaptation entries plus packed sequence-
  rewriter register images, via
  :meth:`~repro.dataplane.pipeline.PipelineControlPlane.export_flow_state`
  (the PR 4 ``pack_rewriter_state`` wire format generalized across boxes),
* the agent's decode-target tracker records (current target + estimate
  history per (sender, receiver) pair, so hysteresis survives the cutover),
* each sender's learned SVC template structure (so template resolution does
  not regress to the l1t3 default until the next key frame).

Every snapshot carries :data:`~repro.dataplane.pipeline.CONTROL_SNAPSHOT_VERSION`;
restore goes through :func:`~repro.dataplane.pipeline.decode_flow_state`, the
single enforcement point that rejects a mismatched version loudly
(:class:`~repro.dataplane.pipeline.SnapshotVersionError`) instead of
best-effort-guessing field semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..dataplane.pipeline import CONTROL_SNAPSHOT_VERSION, decode_flow_state
from ..rtp.av1 import TemplateStructure

#: Fixed per-record framing estimate (key fields + lengths) used by
#: :func:`snapshot_size_bytes`; the dominant term is the packed rewriter.
_RECORD_OVERHEAD_BYTES = 24


@dataclass(frozen=True)
class MeetingSnapshot:
    """Everything one box ships when a meeting migrates away from it."""

    meeting_id: str
    version: int
    #: versioned flow payload (``export_flow_state`` dict)
    flows: dict
    #: decode-target tracker records (sender, receiver, target, history)
    decode_targets: Tuple[Tuple[str, str, int, Tuple[float, ...]], ...]
    #: learned SVC structure per migrating sender
    structures: Dict[str, TemplateStructure] = field(default_factory=dict)
    #: participant ids covered by this snapshot
    participant_ids: Tuple[str, ...] = ()


def snapshot_size_bytes(snapshot: MeetingSnapshot) -> int:
    """Shipped size of a snapshot: packed rewriter images plus framing (the
    ``repro.trunk.snapshot_bytes`` counter; no pickle, so the size is the sum
    of the packed forms, not an object graph)."""
    total = 0
    for record in snapshot.flows["flows"]:
        total += len(record["rewriter"]) + _RECORD_OVERHEAD_BYTES
    total += sum(
        _RECORD_OVERHEAD_BYTES + 8 * len(history)
        for _s, _r, _t, history in snapshot.decode_targets
    )
    return total


def snapshot_meeting(sfu, meeting_id: str) -> MeetingSnapshot:
    """Image one meeting's migratable state on its current box.

    Flows are filtered to the box's local receivers of the meeting — by the
    egress-locality invariant those are exactly the flows whose rewriters
    live here, whether the sender is local or trunked in.
    """
    meeting = sfu.controller.meetings.get(meeting_id)
    records = list(meeting.participants.values()) if meeting is not None else []
    participant_ids = tuple(sorted(record.participant_id for record in records))
    addresses = {record.address for record in records}
    flows = sfu.pipeline.export_flow_state(receivers=addresses)
    decode_records = tuple(sfu.agent.decode_targets.export_for(participant_ids))
    structures: Dict[str, TemplateStructure] = {}
    for pid in participant_ids:
        structure = sfu.agent.sender_structure(pid)
        if structure is not None:
            structures[pid] = structure
    return MeetingSnapshot(
        meeting_id=meeting_id,
        version=CONTROL_SNAPSHOT_VERSION,
        flows=flows,
        decode_targets=decode_records,
        structures=structures,
        participant_ids=participant_ids,
    )


def restore_meeting(snapshot: MeetingSnapshot, sfu) -> int:
    """Adopt a shipped snapshot on the destination box; returns flows restored.

    Must run *after* the covered participants have joined the destination
    (their endpoints/meeting state exist) and restores through the agent's
    adoption API so the next REMB updates templates in place instead of
    resetting the shipped rewriter images.  Version enforcement happens in
    :func:`~repro.dataplane.pipeline.decode_flow_state` before any state is
    touched.
    """
    records = decode_flow_state(snapshot.flows)
    with sfu.pipeline.batched_writes():
        for sender_ssrc, receiver, allowed, rewriter in records:
            sfu.agent.adopt_adaptation(sender_ssrc, receiver, allowed, rewriter)
    sfu.agent.decode_targets.adopt(snapshot.decode_targets)
    for pid, structure in snapshot.structures.items():
        sfu.agent.adopt_sender_structure(pid, structure)
    return len(records)
