"""Inter-SFU trunks: one SFU subscribes to a remote meeting's media once.

A trunk is the cascading primitive of the federation layer (SRMCA's
multi-node shape): for every meeting a box co-hosts with a peer, the peer's
replication layer sends exactly one copy of each remote sender's stream to
this box (the trunk endpoint is an ordinary
:class:`~repro.core.replication.ParticipantEndpoint` with ``trunk=True`` and
no media of its own), and this box fans that copy out to its local receivers
through its *own* PRE tree — trunk ingress rides the wire-native
:class:`~repro.rtp.wire.PacketView` path like any other media, and all
per-receiver sequence rewriting stays local to the egress box.

The manager owns three kinds of subscriber-side state per subscription:

* an ingress route ``(origin SFU, remote ssrc) -> REPLICATE(mgid)`` installed
  via :meth:`~repro.dataplane.pipeline.PipelineControlPlane.install_stream_route`
  (route only — SSRC *ownership* stays with the box terminating the sender's
  uplink, so trunk teardown can never clobber a migrated-in sender's row),
* a dedicated PRE tree whose nodes are the local receivers, and
* feedback plumbing: remote senders registered with the agent (SSRC
  resolution for REMB/descriptor punts; flagged ``remote`` so the filter
  function never points REMB rules at the remote client) and NACK/PLI
  forwarding rules whose next hop is the origin SFU.  REMB is never forwarded
  over a trunk — each box runs the paper's filter function over its own
  receiver population, which is exactly the cascaded-SFU semantic.

Teardown is guard-checked (route still points at this trunk's tree, rule
still points at the origin, sender still registered as remote) so a lingering
teardown scheduled behind a migration drain window can never tear down state
a newer sync or a migrated-in participant has since installed under the same
keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.replication import ParticipantEndpoint
from ..dataplane.pipeline import FeedbackRule, ForwardingMode, ReplicaTarget, StreamForwardingEntry
from ..dataplane.pre import L2Port
from ..netsim.datagram import Address

#: Datagram meta key carrying the original source address of a straggler
#: forwarded over a trunk after a migration cutover.  A meta key (never a new
#: Datagram field: ``Datagram.from_fields`` pins the exact field set) — the
#: receiving box restores the original source before pipeline ingress, so
#: stragglers hit the real stream entries of the migrated-in flows.
TRUNK_FORWARD_SRC_META = "trunk_fwd_src"


@dataclass
class TrunkStats:
    """Per-box trunk telemetry (the ``repro.trunk.*`` metric namespace)."""

    packets_in: int = 0            #: datagrams received from peer SFUs
    bytes_in: int = 0              #: payload bytes received from peer SFUs
    stragglers_forwarded: int = 0  #: post-cutover in-flight packets forwarded to the new home
    migrations_in: int = 0         #: meetings adopted by this box
    migrations_out: int = 0        #: meetings shipped away from this box
    snapshot_bytes: int = 0        #: total packed snapshot bytes shipped (both directions)
    subscriptions: int = 0         #: live trunk subscriptions (gauge)


@dataclass
class SfuTrunk:
    """One live subscription: this box receives ``meeting_id`` media from
    ``origin`` and fans it out locally through tree ``mgid``."""

    meeting_id: str
    origin: Address
    mgid: int
    #: remote sender participant ids registered with the local agent
    sender_ids: Tuple[str, ...] = ()
    #: remote media SSRCs routed through this trunk
    ssrcs: Tuple[int, ...] = ()
    #: local receiver addresses holding NACK/PLI rules toward the origin
    receiver_addresses: Tuple[Address, ...] = ()
    #: PRE bookkeeping: (node_id, rid) per local receiver
    nodes: List[Tuple[int, int]] = field(default_factory=list)
    #: set once the trunk's state has been released (idempotent teardown:
    #: a lingering drain-window event may fire after an explicit flush)
    released: bool = False

    @property
    def key(self) -> Tuple[str, Address]:
        return (self.meeting_id, self.origin)


class TrunkManager:
    """Subscriber-side trunk state of one :class:`~repro.cluster.ClusterSfu`."""

    def __init__(self, sfu) -> None:
        self.sfu = sfu
        self.subscriptions: Dict[Tuple[str, Address], SfuTrunk] = {}
        self._next_rid = itertools.count(1)
        #: stale trunks waiting out a migration drain window before teardown
        self._pending: List[SfuTrunk] = []

    # ------------------------------------------------------------------ sync

    def sync_meeting(
        self,
        meeting_id: str,
        remote_senders: Dict[Address, Sequence[ParticipantEndpoint]],
        local_receivers: Sequence[ParticipantEndpoint],
        linger_s: float = 0.0,
    ) -> None:
        """Reconcile this box's subscriptions for one meeting.

        ``remote_senders`` maps each peer origin to the sender endpoints
        (true client addresses + SSRCs) whose media must arrive over that
        trunk; ``local_receivers`` are this box's own meeting participants
        (post-:meth:`~repro.core.switch_agent.SwitchAgent.configure_meeting`,
        so their egress ports are assigned).  Stale subscriptions are torn
        down after ``linger_s`` seconds — a migration keeps the old tree
        alive for its drain window so trunk-era in-flight replicas still
        reach the pre-cutover local population, while the guard checks keep
        the delayed teardown from touching state the cutover re-installed.
        """
        desired = {
            (meeting_id, origin): tuple(senders)
            for origin, senders in remote_senders.items()
            if senders and local_receivers
        }
        stale = [
            trunk
            for key, trunk in self.subscriptions.items()
            if key[0] == meeting_id and key not in desired
        ]
        rebuilt = [
            self.subscriptions.pop(key)
            for key in list(self.subscriptions)
            if key[0] == meeting_id and key in desired
        ]
        with self.sfu.pipeline.batched_writes():
            for (mid, origin), senders in sorted(desired.items(), key=lambda kv: (kv[0][1].ip, kv[0][1].port)):
                self._install(mid, origin, senders, local_receivers)
            # the rebuilt trunks' trees/routes are superseded by the fresh
            # installs above (same table keys, new mgid) — release immediately
            for trunk in rebuilt:
                self._teardown(trunk)
        for trunk in stale:
            self.subscriptions.pop(trunk.key, None)
            if linger_s > 0.0:
                self._pending.append(trunk)
                self.sfu.simulator.schedule(linger_s, lambda t=trunk: self._teardown_batched(t))
            else:
                self._teardown_batched(trunk)
        self.sfu.trunk_stats.subscriptions = len(self.subscriptions)

    def teardown_meeting(self, meeting_id: str, linger_s: float = 0.0) -> None:
        """Drop every subscription of a meeting (last local participant left
        or the meeting migrated away)."""
        self.sync_meeting(meeting_id, {}, [], linger_s=linger_s)

    def flush_lingering(self) -> None:
        """Force-run any teardown still waiting on a drain window (end-of-run
        reconciliation: the simulator will not advance past the horizon, so
        pending windows would otherwise never expire)."""
        for trunk in list(self._pending):
            self._teardown_batched(trunk)

    # ------------------------------------------------------------------ internals

    def _install(
        self,
        meeting_id: str,
        origin: Address,
        senders: Sequence[ParticipantEndpoint],
        local_receivers: Sequence[ParticipantEndpoint],
    ) -> SfuTrunk:
        pipeline = self.sfu.pipeline
        agent = self.sfu.agent
        capacities = pipeline.capacities
        trunk = SfuTrunk(meeting_id=meeting_id, origin=origin, mgid=pipeline.pre.create_tree())
        for receiver in local_receivers:
            rid = next(self._next_rid) % capacities.max_rids_per_tree
            node_id = pipeline.pre.add_node(
                trunk.mgid,
                rid=rid,
                ports=[L2Port(port=receiver.egress_port, l2_xid=receiver.egress_port)],
                l1_xid=None,
                prune_enabled=False,
            )
            trunk.nodes.append((node_id, rid))
            pipeline.install_replica_target(
                trunk.mgid,
                rid,
                ReplicaTarget(address=receiver.address, participant_id=receiver.participant_id),
            )
        ssrcs: List[int] = []
        sender_ids: List[str] = []
        for sender in senders:
            agent.register_remote_sender(meeting_id, sender)
            sender_ids.append(sender.participant_id)
            for _kind, ssrc in sender.media_ssrcs():
                ssrcs.append(ssrc)
                pipeline.install_stream_route(
                    (origin, ssrc),
                    StreamForwardingEntry(
                        mode=ForwardingMode.REPLICATE,
                        meeting_id=meeting_id,
                        sender=origin,
                        mgid=trunk.mgid,
                    ),
                )
                for receiver in local_receivers:
                    pipeline.install_feedback_rule(
                        receiver.address,
                        ssrc,
                        FeedbackRule(sender=origin, forward_remb=False, forward_nack_pli=True),
                    )
        trunk.ssrcs = tuple(ssrcs)
        trunk.sender_ids = tuple(sender_ids)
        trunk.receiver_addresses = tuple(r.address for r in local_receivers)
        self.subscriptions[trunk.key] = trunk
        return trunk

    def _teardown_batched(self, trunk: SfuTrunk) -> None:
        if trunk.released:
            return
        with self.sfu.pipeline.batched_writes():
            self._teardown(trunk)
        if trunk in self._pending:
            self._pending.remove(trunk)

    def _teardown(self, trunk: SfuTrunk) -> None:
        """Release a trunk's state, skipping anything re-owned since.

        The guards make a delayed (post-drain-window) teardown safe: a route
        is removed only while it still points at this trunk's tree, a
        feedback rule only while its next hop is still the origin and no
        active subscription covers the SSRC, and a sender registration only
        while it is still marked remote (a migrated-in participant re-registers
        the same id as local).
        """
        if trunk.released:
            return
        trunk.released = True
        pipeline = self.sfu.pipeline
        agent = self.sfu.agent
        active = self.subscriptions.get(trunk.key)
        active_ssrcs = set(active.ssrcs) if active is not None else set()
        active_senders = set(active.sender_ids) if active is not None else set()
        for ssrc in trunk.ssrcs:
            if ssrc in active_ssrcs:
                continue
            entry = pipeline.stream_table.peek((trunk.origin, ssrc))
            if entry is not None and entry.mgid == trunk.mgid:
                pipeline.remove_stream_route((trunk.origin, ssrc))
            stale_rules = [
                key
                for key, rule in pipeline.feedback_table.entries()
                if key[1] == ssrc and rule.sender == trunk.origin
            ]
            for receiver, media_ssrc in stale_rules:
                pipeline.remove_feedback_rule(receiver, media_ssrc)
        for sender_id in trunk.sender_ids:
            if sender_id not in active_senders:
                agent.forget_remote_sender(sender_id)
        for node_id, rid in trunk.nodes:
            pipeline.pre.remove_node(trunk.mgid, node_id)
            pipeline.remove_replica_target(trunk.mgid, rid)
        trunk.nodes = []
        pipeline.pre.destroy_tree(trunk.mgid)
        self.sfu.trunk_stats.subscriptions = len(self.subscriptions)
