"""repro — a Python reproduction of "Scalable Video Conferencing Using SDN
Principles" (Scallop, SIGCOMM 2025).

The package is organized as the paper's system is:

* :mod:`repro.rtp`, :mod:`repro.stun`, :mod:`repro.signaling` — the wire
  formats Scallop operates on (RTP/RTCP, AV1 L1T3 SVC, STUN, SDP).
* :mod:`repro.netsim` — a discrete-event network simulator (the testbed).
* :mod:`repro.webrtc` — simulated WebRTC clients (SVC encoder, jitter buffer,
  receiver-side GCC, WebRTC-stats snapshots).
* :mod:`repro.dataplane` — the Tofino-like switch model (parser, match-action
  tables, packet replication engine, resource budgets).
* :mod:`repro.core` — Scallop itself: controller, switch agent, replication
  designs, sequence rewriting, capacity models, and the integrated SFU.
* :mod:`repro.baseline` — the Mediasoup-like split-proxy software SFU.
* :mod:`repro.trace` — synthetic campus Zoom API / packet-trace generators.
* :mod:`repro.scenario` — the declarative workload API: meeting populations,
  churn schedules, backend specs, and a canned scenario library
  (``python -m repro.scenario``).
* :mod:`repro.experiments` — one module per paper table/figure (topologies
  built through :mod:`repro.scenario`).

Quickstart::

    from repro.scenario import MeetingSpec, Scenario, build_scenario
    scenario = Scenario(meetings=(MeetingSpec(participants=3),), duration_s=30.0)
    with build_scenario(scenario) as run:
        run.run()
        print(run.meeting_stats())
"""

from .core.scallop import ScallopSfu
from .core.capacity import (
    MeetingShape,
    ReplicationDesign,
    RewriteVariant,
    ScallopCapacityModel,
    SoftwareSfuCapacityModel,
)
from .baseline.software_sfu import SoftwareSfu
from .netsim import Address, Datagram, LinkProfile, Network, Simulator
from .scenario import BackendSpec, MeetingSpec, Scenario, Schedule, TrafficSpec, build_scenario
from .webrtc import ClientConfig, WebRtcClient

__version__ = "1.0.0"

__all__ = [
    "BackendSpec",
    "MeetingSpec",
    "Scenario",
    "Schedule",
    "TrafficSpec",
    "build_scenario",
    "ScallopSfu",
    "MeetingShape",
    "ReplicationDesign",
    "RewriteVariant",
    "ScallopCapacityModel",
    "SoftwareSfuCapacityModel",
    "SoftwareSfu",
    "Address",
    "Datagram",
    "LinkProfile",
    "Network",
    "Simulator",
    "ClientConfig",
    "WebRtcClient",
    "__version__",
]
