"""Analysis helpers: percentiles, CDFs, jitter, rate series."""

from .metrics import (
    LatencySummary,
    cdf,
    interarrival_jitter_ms,
    mean,
    median,
    percentile,
    rate_series,
    ratio,
)

__all__ = [
    "LatencySummary",
    "cdf",
    "interarrival_jitter_ms",
    "mean",
    "median",
    "percentile",
    "rate_series",
    "ratio",
]
