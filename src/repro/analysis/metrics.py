"""Measurement helpers shared by experiments, benchmarks, and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) with linear interpolation.

    An out-of-range ``q`` is rejected before the sequence is inspected (so
    the caller's bug is reported even on an empty input); an empty sequence
    raises ``ValueError``.  ``q == 0`` and ``q == 100`` return the exact
    minimum/maximum rather than trusting ``rank`` float arithmetic to land
    on the boundary order statistic.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be between 0 and 100")
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    if q == 0.0:
        return ordered[0]
    if q == 100.0:
        return ordered[-1]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of an empty sequence")
    return sum(values) / len(values)


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (all in the input's unit)."""

    count: int
    minimum: float
    median: float
    p95: float
    p99: float
    maximum: float
    mean: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarize via a point-mass histogram (:meth:`Histogram.from_samples`).

        ``Histogram.sample_percentile`` reproduces :func:`percentile`'s
        order-statistic interpolation bit-for-bit, so routing the summary
        through the histogram path keeps it and the telemetry plane's
        percentile arithmetic from ever drifting apart.
        """
        from ..obs.registry import Histogram

        if not samples:
            raise ValueError("no latency samples")
        histogram = Histogram.from_samples(samples)
        return cls(
            count=histogram.count,
            minimum=histogram.bounds[0],
            median=histogram.sample_percentile(50.0),
            p95=histogram.sample_percentile(95.0),
            p99=histogram.sample_percentile(99.0),
            maximum=histogram.bounds[-1],
            mean=histogram.sum / histogram.count,
        )


def cdf(values: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """An empirical CDF as (value, cumulative fraction) pairs."""
    if not values:
        return []
    ordered = sorted(values)
    result: List[Tuple[float, float]] = []
    step = max(1, len(ordered) // points)
    for index in range(0, len(ordered), step):
        result.append((ordered[index], (index + 1) / len(ordered)))
    if result[-1][0] != ordered[-1]:
        result.append((ordered[-1], 1.0))
    return result


def interarrival_jitter_ms(arrival_times: Sequence[float], timestamps: Sequence[float]) -> float:
    """RFC 3550 interarrival jitter over a whole trace, in milliseconds.

    ``arrival_times`` are receive times in seconds; ``timestamps`` are the
    corresponding media capture times in seconds (RTP timestamp / clock rate).
    """
    if len(arrival_times) != len(timestamps):
        raise ValueError("arrival times and timestamps must have equal length")
    jitter = 0.0
    last_transit: Optional[float] = None
    for arrival, timestamp in zip(arrival_times, timestamps):
        transit = arrival - timestamp
        if last_transit is not None:
            d = abs(transit - last_transit)
            jitter += (d - jitter) / 16.0
        last_transit = transit
    return jitter * 1000.0


def rate_series(
    event_times: Sequence[float], weights: Optional[Sequence[float]] = None, bucket_s: float = 1.0
) -> List[Tuple[float, float]]:
    """Bucketed rate of events (or weighted events) per second."""
    if not event_times:
        return []
    if weights is not None and len(weights) != len(event_times):
        raise ValueError("weights must match event times")
    start = min(event_times)
    end = max(event_times)
    buckets: Dict[int, float] = {}
    for index, time in enumerate(event_times):
        bucket = int((time - start) // bucket_s)
        buckets[bucket] = buckets.get(bucket, 0.0) + (weights[index] if weights is not None else 1.0)
    series: List[Tuple[float, float]] = []
    for bucket in range(int((end - start) // bucket_s) + 1):
        series.append((start + (bucket + 1) * bucket_s, buckets.get(bucket, 0.0) / bucket_s))
    return series


def ratio(numerator: float, denominator: float) -> float:
    """A safe ratio helper used when comparing against the baseline."""
    if denominator == 0:
        return math.inf if numerator > 0 else 0.0
    return numerator / denominator
