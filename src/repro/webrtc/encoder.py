"""SVC media source models: AV1 L1T3 video encoder and Opus-like audio source.

The encoder does not produce real compressed video; it produces *frames* with
realistic sizes, timing, and scalability structure, and packetizes them into
RTP packets carrying AV1 dependency descriptors — exactly the properties the
SFU (hardware or software) observes and acts on.

Defaults are calibrated to the paper's Table 1 workload: a 720p AV1 stream at
roughly 2.2 Mbit/s produces ~235 video packets/s of ~1.1 KB average size, and
the audio source produces ~50 packets/s of ~130 bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..rtp.av1 import (
    DecodeTarget,
    DependencyDescriptor,
    TemplateStructure,
    dependency_descriptor_element,
)
from ..rtp.extensions import encode_extensions
from ..rtp.packet import PT_AUDIO_OPUS, PT_VIDEO_AV1, RtpPacket, SEQ_MOD, TS_MOD

#: The repeating 4-frame temporal pattern of L1T3 (Figure 9 of the paper):
#: temporal layer of frames 0..3 within a group of pictures.
L1T3_TEMPORAL_PATTERN: Tuple[int, ...] = (0, 2, 1, 2)

#: Template ids per temporal layer.  Layer 0 uses template 0 on key frames and
#: template 1 otherwise; layer 1 uses template 2; layer 2 alternates 3 and 4.
TEMPLATE_KEY = 0
TEMPLATE_BASE = 1
TEMPLATE_MID = 2
TEMPLATES_TOP = (3, 4)

VIDEO_CLOCK_RATE = 90_000
AUDIO_CLOCK_RATE = 48_000

DEFAULT_VIDEO_BITRATE_BPS = 2_200_000.0
DEFAULT_FRAME_RATE = 30.0
DEFAULT_MAX_PACKET_PAYLOAD = 1_100
DEFAULT_KEYFRAME_INTERVAL_S = 120.0
KEYFRAME_SIZE_FACTOR = 4.0

DEFAULT_AUDIO_BITRATE_BPS = 48_000.0
AUDIO_FRAME_INTERVAL_S = 0.02


@dataclass(frozen=True)
class EncodedFrame:
    """A single encoded video frame before packetization."""

    frame_number: int
    temporal_layer: int
    template_id: int
    size_bytes: int
    is_keyframe: bool
    capture_time: float


class SvcEncoder:
    """An AV1 L1T3 scalable video encoder model.

    ``frames()`` is driven by the client once per frame interval; packetization
    happens in :class:`RtpPacketizer`.  The target bitrate can be changed at
    any time (in response to REMB feedback reaching the sender), which changes
    the sizes of subsequently produced frames.
    """

    def __init__(
        self,
        target_bitrate_bps: float = DEFAULT_VIDEO_BITRATE_BPS,
        frame_rate: float = DEFAULT_FRAME_RATE,
        keyframe_interval_s: float = DEFAULT_KEYFRAME_INTERVAL_S,
        max_bitrate_bps: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        self.target_bitrate_bps = float(target_bitrate_bps)
        #: Upper bound on the encoder's bitrate (the codec/resolution maximum
        #: negotiated in SDP); REMB can never push the sender above it.
        self.max_bitrate_bps = float(max_bitrate_bps if max_bitrate_bps is not None else target_bitrate_bps)
        self.frame_rate = float(frame_rate)
        self.keyframe_interval_s = float(keyframe_interval_s)
        self._rng = random.Random(seed)
        self._frame_number = 0
        self._last_keyframe_time: Optional[float] = None
        self._keyframe_requested = True  # first frame is always a key frame
        self._top_toggle = 0
        self.structure = TemplateStructure.l1t3()

    # -- control ----------------------------------------------------------------

    def set_target_bitrate(self, bitrate_bps: float) -> None:
        """Adjust the encoder's target bitrate (sender-side rate adaptation).

        The value is clamped to ``[50 kbit/s, max_bitrate_bps]``.
        """
        self.target_bitrate_bps = min(self.max_bitrate_bps, max(50_000.0, float(bitrate_bps)))

    def request_keyframe(self) -> None:
        """Force the next frame to be a key frame (reaction to a PLI)."""
        self._keyframe_requested = True

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.frame_rate

    # -- frame production --------------------------------------------------------

    def next_frame(self, now: float) -> EncodedFrame:
        """Produce the next frame in capture order at simulation time ``now``."""
        position = self._frame_number % len(L1T3_TEMPORAL_PATTERN)
        temporal_layer = L1T3_TEMPORAL_PATTERN[position]

        keyframe_due = (
            self._last_keyframe_time is None
            or now - self._last_keyframe_time >= self.keyframe_interval_s
        )
        is_keyframe = self._keyframe_requested or (keyframe_due and position == 0)
        if is_keyframe:
            temporal_layer = 0
            self._keyframe_requested = False
            self._last_keyframe_time = now

        template_id = self._template_for(temporal_layer, is_keyframe)
        size = self._frame_size(temporal_layer, is_keyframe)
        frame = EncodedFrame(
            frame_number=self._frame_number,
            temporal_layer=temporal_layer,
            template_id=template_id,
            size_bytes=size,
            is_keyframe=is_keyframe,
            capture_time=now,
        )
        self._frame_number += 1
        return frame

    def _template_for(self, temporal_layer: int, is_keyframe: bool) -> int:
        if temporal_layer == 0:
            return TEMPLATE_KEY if is_keyframe else TEMPLATE_BASE
        if temporal_layer == 1:
            return TEMPLATE_MID
        self._top_toggle ^= 1
        return TEMPLATES_TOP[self._top_toggle]

    def _frame_size(self, temporal_layer: int, is_keyframe: bool) -> int:
        """Frame size drawn around the per-layer budget.

        Base-layer frames carry more bits than enhancement frames (they are
        reference frames); the split roughly follows published AV1 L1T3
        allocations: 45% / 25% / 30% of the bitrate across the three layers at
        7.5 / 7.5 / 15 frames per second respectively.
        """
        per_frame_budget = self.target_bitrate_bps / 8.0 / self.frame_rate
        layer_factor = {0: 1.8, 1: 1.0, 2: 0.6}[temporal_layer]
        size = per_frame_budget * layer_factor
        if is_keyframe:
            size *= KEYFRAME_SIZE_FACTOR
        size *= self._rng.uniform(0.85, 1.15)
        return max(200, int(size))


class RtpPacketizer:
    """Packetizes encoded frames into RTP packets with AV1 DD extensions."""

    def __init__(
        self,
        ssrc: int,
        payload_type: int = PT_VIDEO_AV1,
        max_payload_bytes: int = DEFAULT_MAX_PACKET_PAYLOAD,
        clock_rate: int = VIDEO_CLOCK_RATE,
        seed: int = 0,
    ) -> None:
        self.ssrc = ssrc
        self.payload_type = payload_type
        self.max_payload_bytes = max_payload_bytes
        self.clock_rate = clock_rate
        rng = random.Random(seed)
        self._sequence_number = rng.randrange(SEQ_MOD)
        self._timestamp_base = rng.randrange(TS_MOD)
        self.packets_produced = 0
        self.bytes_produced = 0

    def packetize(self, frame: EncodedFrame, structure_on_key: bool = True) -> List[RtpPacket]:
        """Split a frame into RTP packets; a layer never crosses a packet
        boundary (the whole frame is one layer), matching the paper's §3."""
        timestamp = (self._timestamp_base + int(frame.capture_time * self.clock_rate)) % TS_MOD
        remaining = frame.size_bytes
        chunks: List[int] = []
        while remaining > 0:
            chunk = min(self.max_payload_bytes, remaining)
            chunks.append(chunk)
            remaining -= chunk

        packets: List[RtpPacket] = []
        for index, chunk in enumerate(chunks):
            start = index == 0
            end = index == len(chunks) - 1
            descriptor = DependencyDescriptor(
                start_of_frame=start,
                end_of_frame=end,
                template_id=frame.template_id,
                frame_number=frame.frame_number & 0xFFFF,
                structure=(
                    TemplateStructure.l1t3() if frame.is_keyframe and start and structure_on_key else None
                ),
            )
            extension = encode_extensions([dependency_descriptor_element(descriptor)])
            packet = RtpPacket(
                payload_type=self.payload_type,
                sequence_number=self._sequence_number,
                timestamp=timestamp,
                ssrc=self.ssrc,
                marker=end,
                extension=extension,
                payload=b"\x00" * chunk,
            )
            self._sequence_number = (self._sequence_number + 1) % SEQ_MOD
            packets.append(packet)
            self.packets_produced += 1
            self.bytes_produced += packet.size
        return packets


class AudioSource:
    """An Opus-like audio source: fixed 20 ms frames, one packet per frame."""

    def __init__(
        self,
        ssrc: int,
        bitrate_bps: float = DEFAULT_AUDIO_BITRATE_BPS,
        seed: int = 0,
    ) -> None:
        self.ssrc = ssrc
        self.bitrate_bps = bitrate_bps
        rng = random.Random(seed)
        self._sequence_number = rng.randrange(SEQ_MOD)
        self._timestamp_base = rng.randrange(TS_MOD)
        self._rng = rng
        self.packets_produced = 0

    @property
    def frame_interval(self) -> float:
        return AUDIO_FRAME_INTERVAL_S

    def next_packet(self, now: float) -> RtpPacket:
        """Produce the next audio packet at simulation time ``now``."""
        payload_size = int(self.bitrate_bps / 8.0 * AUDIO_FRAME_INTERVAL_S)
        payload_size = max(40, int(payload_size * self._rng.uniform(0.8, 1.2)))
        timestamp = (self._timestamp_base + int(now * AUDIO_CLOCK_RATE)) % TS_MOD
        packet = RtpPacket(
            payload_type=PT_AUDIO_OPUS,
            sequence_number=self._sequence_number,
            timestamp=timestamp,
            ssrc=self.ssrc,
            marker=False,
            payload=b"\x00" * payload_size,
        )
        self._sequence_number = (self._sequence_number + 1) % SEQ_MOD
        self.packets_produced += 1
        return packet
