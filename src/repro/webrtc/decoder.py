"""Receiver-side media handling: reordering buffer, frame assembly, loss
detection, RFC 3550 jitter, frame-rate measurement, and freeze detection.

This is the component whose observable behaviour the paper's QoE experiments
measure (Figures 3, 4, 14) and whose reaction to sequence-number gaps defines
the cost model for the rewriting heuristics (Figure 18): a missing sequence
number triggers a NACK; a *duplicate* sequence number (two different packets
claiming the same number) corrupts decoder state and freezes the video until
the next key frame.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..rtp.av1 import DependencyDescriptor, extract_dependency_descriptor
from ..rtp.packet import RtpPacket, seq_delta

VIDEO_CLOCK_RATE = 90_000
NACK_DELAY_S = 0.02
MAX_TRACKED_MISSING = 512


@dataclass
class DecodedFrame:
    """A fully reassembled, decodable frame delivered to the application."""

    frame_number: int
    temporal_layer: int
    size_bytes: int
    completed_at: float
    is_keyframe: bool


@dataclass
class _PendingFrame:
    frame_number: int
    temporal_layer: int
    is_keyframe: bool
    packets: Dict[int, int] = field(default_factory=dict)  # seq -> size
    saw_start: bool = False
    saw_end: bool = False
    first_seq: Optional[int] = None
    last_seq: Optional[int] = None

    def complete(self) -> bool:
        if not (self.saw_start and self.saw_end):
            return False
        if self.first_seq is None or self.last_seq is None:
            return False
        expected = (seq_delta(self.last_seq, self.first_seq)) + 1
        return expected == len(self.packets)

    def size_bytes(self) -> int:
        return sum(self.packets.values())


class VideoReceiveStream:
    """Receiver state for one incoming video stream (one SSRC)."""

    def __init__(self, ssrc: int, clock_rate: int = VIDEO_CLOCK_RATE) -> None:
        self.ssrc = ssrc
        self.clock_rate = clock_rate

        # sequence tracking: sequence number -> RTP timestamp of the packet
        # that used it (needed to tell benign duplicates from colliding ones)
        self.highest_seq: Optional[int] = None
        self.missing: Set[int] = set()
        self.received_seqs: Dict[int, int] = {}
        self.duplicate_count = 0
        self.benign_duplicates = 0

        # jitter (RFC 3550 interarrival jitter, in timestamp units)
        self._jitter = 0.0
        self._last_transit: Optional[float] = None
        self.jitter_samples_ms: List[float] = []

        # frame reassembly
        self._pending: Dict[int, _PendingFrame] = {}
        self.decoded_frames: List[DecodedFrame] = []
        self.frames_decoded = 0
        self.keyframes_decoded = 0

        # freeze state: set when decoder state breaks (duplicate sequence
        # numbers / corrupted reference); cleared by the next key frame.
        self.frozen = False
        self.freeze_events = 0
        self.frozen_since: Optional[float] = None
        self.total_frozen_time = 0.0

        # counters
        self.packets_received = 0
        self.bytes_received = 0
        self.nacks_sent: List[int] = []
        self.plis_sent = 0

    # -- packet input -------------------------------------------------------------

    def on_packet(self, packet: RtpPacket, recv_time: float) -> List[int]:
        """Process one received RTP packet.

        Returns the list of sequence numbers that should be NACKed as a result
        of gaps opened by this packet (the client batches them into RTCP).
        """
        self.packets_received += 1
        self.bytes_received += packet.size
        self._update_jitter(packet, recv_time)

        new_nacks = self._update_sequence_state(packet, recv_time)
        self._assemble(packet, recv_time)
        return new_nacks

    def _update_sequence_state(self, packet: RtpPacket, recv_time: float) -> List[int]:
        seq = packet.sequence_number
        nacks: List[int] = []
        if seq in self.received_seqs:
            if self.received_seqs[seq] == packet.timestamp:
                # re-delivery of the very same packet (a retransmission that
                # raced the original): harmless, ignore it.
                self.benign_duplicates += 1
            else:
                # a *different* packet reusing a sequence number corrupts the
                # decoder state; the video freezes until the next key frame.
                self.duplicate_count += 1
                self._enter_freeze(recv_time)
            return nacks
        self.received_seqs[seq] = packet.timestamp
        if len(self.received_seqs) > 65_536:
            self.received_seqs = {seq: packet.timestamp}

        if self.highest_seq is None:
            self.highest_seq = seq
            return nacks

        delta = seq_delta(seq, self.highest_seq)
        if delta > 0:
            for missing_seq in ((self.highest_seq + offset) % 65536 for offset in range(1, delta)):
                self.missing.add(missing_seq)
                nacks.append(missing_seq)
            self.highest_seq = seq
            if len(self.missing) > MAX_TRACKED_MISSING:
                # bound state like a real receiver does
                for extra in sorted(self.missing)[:-MAX_TRACKED_MISSING]:
                    self.missing.discard(extra)
        else:
            # late packet fills a gap
            self.missing.discard(seq)
        return nacks

    def _update_jitter(self, packet: RtpPacket, recv_time: float) -> None:
        transit = recv_time - packet.timestamp / self.clock_rate
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self._jitter += (d - self._jitter) / 16.0
            self.jitter_samples_ms.append(self._jitter * 1000.0)
        self._last_transit = transit

    # -- frame assembly ------------------------------------------------------------

    def _assemble(self, packet: RtpPacket, recv_time: float) -> None:
        descriptor = extract_dependency_descriptor(packet.extension)
        if descriptor is None:
            return
        frame = self._pending.get(descriptor.frame_number)
        if frame is None:
            frame = _PendingFrame(
                frame_number=descriptor.frame_number,
                temporal_layer=descriptor.temporal_layer,
                is_keyframe=descriptor.is_extended,
            )
            self._pending[descriptor.frame_number] = frame
        frame.packets[packet.sequence_number] = packet.size
        if descriptor.start_of_frame:
            frame.saw_start = True
            frame.first_seq = packet.sequence_number
        if descriptor.end_of_frame:
            frame.saw_end = True
            frame.last_seq = packet.sequence_number
        frame.is_keyframe = frame.is_keyframe or descriptor.is_extended

        if frame.complete():
            del self._pending[descriptor.frame_number]
            self._deliver_frame(frame, recv_time)

        # garbage-collect stale partial frames
        if len(self._pending) > 64:
            for number in sorted(self._pending)[:-64]:
                del self._pending[number]

    def _deliver_frame(self, frame: _PendingFrame, recv_time: float) -> None:
        if frame.is_keyframe and self.frozen:
            self._exit_freeze(recv_time)
        if self.frozen:
            return  # decoder is stuck until a key frame arrives
        self.frames_decoded += 1
        if frame.is_keyframe:
            self.keyframes_decoded += 1
        self.decoded_frames.append(
            DecodedFrame(
                frame_number=frame.frame_number,
                temporal_layer=frame.temporal_layer,
                size_bytes=frame.size_bytes(),
                completed_at=recv_time,
                is_keyframe=frame.is_keyframe,
            )
        )

    # -- freeze handling -------------------------------------------------------------

    def _enter_freeze(self, now: float) -> None:
        if not self.frozen:
            self.frozen = True
            self.frozen_since = now
            self.freeze_events += 1
            self.plis_sent += 1

    def _exit_freeze(self, now: float) -> None:
        if self.frozen and self.frozen_since is not None:
            self.total_frozen_time += now - self.frozen_since
        self.frozen = False
        self.frozen_since = None

    # -- measurements -----------------------------------------------------------------

    @property
    def jitter_ms(self) -> float:
        """Current RFC 3550 interarrival jitter, in milliseconds."""
        return self._jitter * 1000.0

    @property
    def jitter_rtp_units(self) -> int:
        """Jitter in RTP timestamp units (what goes into RTCP report blocks)."""
        return int(self._jitter * self.clock_rate)

    def frame_rate(self, window_s: float, now: float) -> float:
        """Frames decoded per second over the trailing ``window_s`` seconds."""
        if window_s <= 0:
            return 0.0
        recent = [f for f in self.decoded_frames if f.completed_at >= now - window_s]
        return len(recent) / window_s

    def frame_rate_series(self, bucket_s: float = 1.0) -> List[Tuple[float, float]]:
        """Return ``(bucket_end_time, fps)`` samples over the whole stream."""
        if not self.decoded_frames:
            return []
        series: List[Tuple[float, float]] = []
        start = self.decoded_frames[0].completed_at
        end = self.decoded_frames[-1].completed_at
        bucket_start = start
        index = 0
        while bucket_start <= end:
            bucket_end = bucket_start + bucket_s
            count = 0
            while index < len(self.decoded_frames) and self.decoded_frames[index].completed_at < bucket_end:
                count += 1
                index += 1
            series.append((bucket_end, count / bucket_s))
            bucket_start = bucket_end
        return series

    def received_bitrate_series(self, bucket_s: float = 1.0) -> List[Tuple[float, float]]:
        """(bucket_end_time, received kbit/s) derived from decoded frames."""
        series: List[Tuple[float, float]] = []
        if not self.decoded_frames:
            return series
        start = self.decoded_frames[0].completed_at
        end = self.decoded_frames[-1].completed_at
        bucket_start = start
        index = 0
        while bucket_start <= end:
            bucket_end = bucket_start + bucket_s
            total = 0
            while index < len(self.decoded_frames) and self.decoded_frames[index].completed_at < bucket_end:
                total += self.decoded_frames[index].size_bytes
                index += 1
            series.append((bucket_end, total * 8.0 / 1000.0 / bucket_s))
            bucket_start = bucket_end
        return series


class AudioReceiveStream:
    """Receiver state for an incoming audio stream (jitter + counters only)."""

    def __init__(self, ssrc: int, clock_rate: int = 48_000) -> None:
        self.ssrc = ssrc
        self.clock_rate = clock_rate
        self.packets_received = 0
        self.bytes_received = 0
        self._jitter = 0.0
        self._last_transit: Optional[float] = None

    def on_packet(self, packet: RtpPacket, recv_time: float) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        transit = recv_time - packet.timestamp / self.clock_rate
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self._jitter += (d - self._jitter) / 16.0
        self._last_transit = transit

    @property
    def jitter_ms(self) -> float:
        return self._jitter * 1000.0
