"""Simulated WebRTC client substrate (encoder, receiver, GCC, stats, client)."""

from .encoder import AudioSource, EncodedFrame, RtpPacketizer, SvcEncoder
from .decoder import AudioReceiveStream, DecodedFrame, VideoReceiveStream
from .gcc import RemoteBitrateEstimator
from .stats import (
    InboundAudioStats,
    InboundVideoStats,
    OutboundStats,
    StatsReport,
    snapshot_audio,
    snapshot_video,
)
from .client import ClientConfig, WebRtcClient

__all__ = [
    "AudioSource",
    "EncodedFrame",
    "RtpPacketizer",
    "SvcEncoder",
    "AudioReceiveStream",
    "DecodedFrame",
    "VideoReceiveStream",
    "RemoteBitrateEstimator",
    "InboundAudioStats",
    "InboundVideoStats",
    "OutboundStats",
    "StatsReport",
    "snapshot_audio",
    "snapshot_video",
    "ClientConfig",
    "WebRtcClient",
]
