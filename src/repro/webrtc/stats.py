"""A WebRTC-statistics-API-like snapshot model.

The paper's QoE measurements (Figures 3, 4, 14) use the browser's
``getStats()`` counters: receive jitter, receive frame rate, and receive
bitrate.  This module provides the same shaped snapshots for the simulated
clients so experiment code reads like the original methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .decoder import AudioReceiveStream, VideoReceiveStream


@dataclass(frozen=True)
class InboundVideoStats:
    """Snapshot of one inbound video RTP stream (subset of RTCStats)."""

    ssrc: int
    packets_received: int
    bytes_received: int
    frames_decoded: int
    frames_per_second: float
    jitter_ms: float
    nack_count: int
    pli_count: int
    freeze_count: int
    total_freezes_duration_s: float


@dataclass(frozen=True)
class InboundAudioStats:
    """Snapshot of one inbound audio RTP stream."""

    ssrc: int
    packets_received: int
    bytes_received: int
    jitter_ms: float


@dataclass(frozen=True)
class OutboundStats:
    """Snapshot of one outbound RTP stream."""

    ssrc: int
    kind: str
    packets_sent: int
    bytes_sent: int
    target_bitrate_bps: float
    frames_per_second: float = 0.0


@dataclass(frozen=True)
class StatsReport:
    """A full ``getStats()``-like report for a simulated client."""

    timestamp: float
    inbound_video: Tuple[InboundVideoStats, ...] = ()
    inbound_audio: Tuple[InboundAudioStats, ...] = ()
    outbound: Tuple[OutboundStats, ...] = ()

    def worst_video_jitter_ms(self) -> float:
        if not self.inbound_video:
            return 0.0
        return max(s.jitter_ms for s in self.inbound_video)

    def mean_video_fps(self) -> float:
        if not self.inbound_video:
            return 0.0
        return sum(s.frames_per_second for s in self.inbound_video) / len(self.inbound_video)

    def total_inbound_bitrate_bps(self, since: Optional["StatsReport"] = None) -> float:
        """Average inbound bitrate since a previous report (or zero)."""
        if since is None or self.timestamp <= since.timestamp:
            return 0.0
        byte_now = sum(s.bytes_received for s in self.inbound_video) + sum(
            s.bytes_received for s in self.inbound_audio
        )
        byte_then = sum(s.bytes_received for s in since.inbound_video) + sum(
            s.bytes_received for s in since.inbound_audio
        )
        return (byte_now - byte_then) * 8.0 / (self.timestamp - since.timestamp)


def snapshot_video(stream: VideoReceiveStream, now: float, fps_window_s: float = 2.0) -> InboundVideoStats:
    """Build an inbound-video stats snapshot from receiver state."""
    return InboundVideoStats(
        ssrc=stream.ssrc,
        packets_received=stream.packets_received,
        bytes_received=stream.bytes_received,
        frames_decoded=stream.frames_decoded,
        frames_per_second=stream.frame_rate(fps_window_s, now),
        jitter_ms=stream.jitter_ms,
        nack_count=len(stream.nacks_sent),
        pli_count=stream.plis_sent,
        freeze_count=stream.freeze_events,
        total_freezes_duration_s=stream.total_frozen_time,
    )


def snapshot_audio(stream: AudioReceiveStream) -> InboundAudioStats:
    """Build an inbound-audio stats snapshot from receiver state."""
    return InboundAudioStats(
        ssrc=stream.ssrc,
        packets_received=stream.packets_received,
        bytes_received=stream.bytes_received,
        jitter_ms=stream.jitter_ms,
    )
