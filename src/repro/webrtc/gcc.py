"""Receiver-side Google Congestion Control (GCC) producing REMB estimates.

Scallop adopts GCC's *receiver-driven* mode (paper §5.2): each receiver
estimates the available bandwidth of its path from packet arrival-time
variation and periodically reports it upstream with REMB messages.  This
module implements a faithful-but-compact version of that estimator:

* an **arrival filter** computes the inter-group delay gradient (the change in
  one-way queuing delay between consecutive packet bursts),
* an **over-use detector** compares the gradient against an adaptive
  threshold, and
* a **rate controller** (AIMD) raises the estimate multiplicatively while the
  path is underused and cuts it to ``beta * incoming_rate`` on overuse.

The absolute constants follow the published GCC description (Carlucci et al.,
"Congestion Control for Web Real-Time Communication").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

#: Bounds of the adaptive over-use threshold.  The detector operates on the
#: *slope* of the one-way queuing delay (seconds of delay growth per second),
#: so 0.01 means the queue grows by 10 ms every second.
ADAPTIVE_THRESHOLD_MIN = 0.005
ADAPTIVE_THRESHOLD_MAX = 0.5
BETA = 0.85
INCREASE_FACTOR = 1.05
RATE_WINDOW_S = 1.0
MIN_ESTIMATE_BPS = 50_000.0
MAX_ESTIMATE_BPS = 30_000_000.0
#: The estimate never runs more than this factor ahead of the measured
#: incoming rate (GCC's 1.5x cap on the REMB value).
OVERSHOOT_FACTOR = 1.5


#: Packets whose send times are within this window belong to the same burst
#: (packet group); GCC's arrival filter works on inter-group delay variation
#: so that the serialization of a multi-packet video frame does not look like
#: congestion.
BURST_INTERVAL_S = 0.005


@dataclass
class _Arrival:
    recv_time: float
    send_time: float
    size_bytes: int


@dataclass
class _PacketGroup:
    first_send_time: float
    last_send_time: float
    last_recv_time: float
    size_bytes: int = 0


class RemoteBitrateEstimator:
    """Receiver-side bandwidth estimator for a single incoming transport.

    ``on_packet`` is called for every received media packet with its send and
    receive timestamps (the send time is derived from the RTP timestamp by the
    caller); ``estimate_bps`` is the current REMB value.
    """

    def __init__(self, initial_estimate_bps: float = 1_500_000.0) -> None:
        self._estimate_bps = float(initial_estimate_bps)
        self._arrivals: Deque[_Arrival] = deque()
        self._current_group: Optional[_PacketGroup] = None
        self._previous_group: Optional[_PacketGroup] = None
        self._delay_slope_avg = 0.0
        self._threshold = 0.02
        self._state = "hold"
        self._last_update_time: Optional[float] = None
        self.overuse_events = 0
        self.underuse_events = 0

    @property
    def estimate_bps(self) -> float:
        return self._estimate_bps

    @property
    def state(self) -> str:
        """Current detector state: ``increase``, ``hold`` or ``decrease``."""
        return self._state

    # -- input -------------------------------------------------------------------

    def on_packet(self, recv_time: float, send_time: float, size_bytes: int) -> None:
        """Register the arrival of one media packet."""
        self._arrivals.append(_Arrival(recv_time=recv_time, send_time=send_time, size_bytes=size_bytes))
        cutoff = recv_time - RATE_WINDOW_S
        while self._arrivals and self._arrivals[0].recv_time < cutoff:
            self._arrivals.popleft()
        if self._last_update_time is None:
            self._last_update_time = recv_time

        group = self._current_group
        if group is not None and send_time - group.first_send_time <= BURST_INTERVAL_S:
            # the packet belongs to the current burst (e.g. one video frame)
            group.last_send_time = max(group.last_send_time, send_time)
            group.last_recv_time = max(group.last_recv_time, recv_time)
            group.size_bytes += size_bytes
            return

        # the current burst ended; compare it against the previous one
        if group is not None and self._previous_group is not None:
            d_send = group.last_send_time - self._previous_group.last_send_time
            d_recv = group.last_recv_time - self._previous_group.last_recv_time
            if d_send > 1e-9:
                slope = (d_recv - d_send) / d_send
                self._delay_slope_avg = 0.8 * self._delay_slope_avg + 0.2 * slope
                self._update_threshold(slope)
                self._detect(recv_time)
        if group is not None:
            self._previous_group = group
        self._current_group = _PacketGroup(
            first_send_time=send_time,
            last_send_time=send_time,
            last_recv_time=recv_time,
            size_bytes=size_bytes,
        )

    # -- estimator internals -------------------------------------------------------

    def _update_threshold(self, slope: float) -> None:
        k = 0.01 if abs(slope) < self._threshold else 0.0005
        self._threshold += k * (abs(slope) - self._threshold)
        self._threshold = min(ADAPTIVE_THRESHOLD_MAX, max(ADAPTIVE_THRESHOLD_MIN, self._threshold))

    def _detect(self, now: float) -> None:
        if self._delay_slope_avg > self._threshold:
            self._state = "decrease"
            self.overuse_events += 1
        elif self._delay_slope_avg < -self._threshold:
            self._state = "hold"
            self.underuse_events += 1
        else:
            self._state = "increase"
        self._update_rate(now)

    def incoming_rate_bps(self, now: float) -> float:
        """Received bitrate over the last :data:`RATE_WINDOW_S` seconds."""
        if not self._arrivals:
            return 0.0
        window_start = max(self._arrivals[0].recv_time, now - RATE_WINDOW_S)
        duration = max(1e-3, now - window_start)
        total_bytes = sum(a.size_bytes for a in self._arrivals if a.recv_time >= window_start)
        return total_bytes * 8.0 / duration

    def _update_rate(self, now: float) -> None:
        if self._last_update_time is None:
            self._last_update_time = now
            return
        elapsed = now - self._last_update_time
        if elapsed < 0.05:
            return
        self._last_update_time = now

        incoming = self.incoming_rate_bps(now)
        if self._state == "decrease":
            self._estimate_bps = max(MIN_ESTIMATE_BPS, BETA * max(incoming, MIN_ESTIMATE_BPS))
        elif self._state == "increase":
            # while the path is underused the estimate tracks the measured
            # incoming rate and probes multiplicatively above it, but never
            # runs more than OVERSHOOT_FACTOR ahead of what actually arrives.
            increased = self._estimate_bps * (INCREASE_FACTOR ** min(1.0, elapsed))
            if incoming > 0:
                candidate = max(increased, incoming)
                ceiling = max(OVERSHOOT_FACTOR * incoming, MIN_ESTIMATE_BPS)
                self._estimate_bps = min(MAX_ESTIMATE_BPS, candidate, ceiling)
            else:
                self._estimate_bps = min(MAX_ESTIMATE_BPS, increased)
        # "hold" keeps the estimate unchanged

    def force_estimate(self, bitrate_bps: float) -> None:
        """Override the estimate (used by tests and trace replay)."""
        self._estimate_bps = min(MAX_ESTIMATE_BPS, max(MIN_ESTIMATE_BPS, bitrate_bps))
