"""A simulated WebRTC participant (browser client).

Each :class:`WebRtcClient` is a network endpoint that

* captures and sends media (AV1 L1T3 video via :class:`~repro.webrtc.encoder.SvcEncoder`
  plus an Opus-like audio stream),
* receives media, reassembles frames, measures jitter/frame rate, and emits
  NACK/PLI feedback,
* runs receiver-side GCC and reports REMB periodically,
* answers and issues STUN connectivity checks, and
* periodically emits RTCP sender reports and receiver reports.

From the client's point of view its *only* peer is the SFU (Scallop inserts
itself via SDP candidate rewriting); everything the client does here is plain
WebRTC behaviour with no SFU-specific logic.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim.datagram import Address, Datagram, PayloadKind
from ..netsim.link import Network
from ..netsim.simulator import Simulator
from ..rtp.packet import PT_AUDIO_OPUS, PT_VIDEO_AV1, RtpPacket
from ..rtp.wire import PacketView
from ..rtp.rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    ReportBlock,
    RtcpPacket,
    SenderReport,
    SourceDescription,
)
from ..signaling.sdp import SessionDescription, make_offer
from ..stun.message import StunMessage, make_binding_request, make_binding_response
from .decoder import AudioReceiveStream, VideoReceiveStream
from .encoder import AudioSource, RtpPacketizer, SvcEncoder, VIDEO_CLOCK_RATE
from .gcc import RemoteBitrateEstimator
from .stats import InboundAudioStats, InboundVideoStats, OutboundStats, StatsReport, snapshot_audio, snapshot_video

SENDER_REPORT_INTERVAL_S = 0.35
RECEIVER_REPORT_INTERVAL_S = 0.22
STUN_INTERVAL_S = 1.75
NACK_BATCH_DELAY_S = 0.02
RTX_HISTORY_SIZE = 1024


@dataclass
class ClientConfig:
    """Configuration for a simulated participant."""

    participant_id: str
    meeting_id: str
    address: Address
    remote: Address
    send_audio: bool = True
    send_video: bool = True
    video_bitrate_bps: float = 2_200_000.0
    frame_rate: float = 30.0
    seed: int = 0
    #: Send each video frame's packets as one network burst instead of
    #: back-to-back individual sends.  Bursts stay coalesced across the
    #: simulated network, so a batch-capable SFU processes the frame through
    #: its batch pipeline (see :meth:`repro.netsim.link.Network.send_burst`).
    send_frames_as_bursts: bool = False
    #: Emit RTP wire-natively: each outgoing packet is encoded **once** into
    #: a packed :class:`~repro.rtp.wire.PacketView` buffer at send time, the
    #: SFU forwards/rewrites the buffer without ever materializing an
    #: ``RtpPacket``, and the receiving client decodes **once** on arrival.
    #: Observable behaviour (timings, sizes, decoded media) is identical to
    #: the object representation; only the per-hop re-modelling cost is gone.
    wire_native: bool = False
    #: Optional :class:`~repro.rtp.srtp.SrtpProfile`: emitted wire-native
    #: media is protected with the ingress session keys, and received media
    #: (which the SFU re-protected with the egress keys) is verified and
    #: decrypted before decoding.  Requires ``wire_native`` to take effect on
    #: the send side — object-model packets carry no payload bytes to protect.
    srtp: Optional[object] = None


class WebRtcClient:
    """A simulated WebRTC participant attached to a :class:`Network`."""

    def __init__(self, config: ClientConfig, simulator: Simulator, network: Network) -> None:
        self.config = config
        self.simulator = simulator
        self.network = network
        self.address = config.address
        self.remote = config.remote
        self._rng = random.Random(config.seed)

        ssrc_base = 0x10_0000 + (self._rng.getrandbits(16) << 4)
        self.audio_ssrc = ssrc_base
        self.video_ssrc = ssrc_base + 1

        # senders
        self.encoder = SvcEncoder(
            target_bitrate_bps=config.video_bitrate_bps,
            frame_rate=config.frame_rate,
            seed=config.seed,
        )
        self.packetizer = RtpPacketizer(ssrc=self.video_ssrc, seed=config.seed)
        self.audio_source = AudioSource(ssrc=self.audio_ssrc, seed=config.seed)
        self._rtx_history: "OrderedDict[int, RtpPacket]" = OrderedDict()
        self.video_frames_sent = 0
        self.nacks_received = 0
        self.plis_received = 0
        self.retransmissions_sent = 0

        # receivers (keyed by remote SSRC)
        self.video_receivers: Dict[int, VideoReceiveStream] = {}
        self.audio_receivers: Dict[int, AudioReceiveStream] = {}
        self.estimators: Dict[int, RemoteBitrateEstimator] = {}
        self._pending_nacks: Dict[int, List[int]] = {}

        # counters
        self.packets_sent = 0
        self.bytes_sent = 0
        self.rtt_samples_ms: List[float] = []
        #: Received media packets whose SRTP egress tag failed to verify
        #: (dropped before decoding, mirroring a real client's behaviour).
        self.srtp_rx_auth_failures = 0
        #: One-way sender-to-receiver latency of every received media packet,
        #: in milliseconds (includes the SFU's forwarding delay).
        self.rtp_latency_samples_ms: List[float] = []
        self._stun_pending: Dict[bytes, float] = {}

        self._running = False
        self._detached = False
        self.send_frame_rate_series: List[Tuple[float, float]] = []
        self._frames_this_second = 0
        self._fps_bucket_start = 0.0

    # ------------------------------------------------------------------ signaling

    def create_offer(self) -> SessionDescription:
        """Build the SDP offer this client would post to the signaling server."""
        return make_offer(
            session_id=self.config.participant_id,
            address=self.address.ip,
            port=self.address.port,
            ssrc_base=self.audio_ssrc,
            send_audio=self.config.send_audio,
            send_video=self.config.send_video,
        )

    def apply_answer(self, answer: SessionDescription) -> None:
        """Apply the SFU's answer: point media at the (rewritten) candidate."""
        for section in answer.media:
            for candidate in section.candidates:
                self.remote = Address(candidate.ip, candidate.port)
                return

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin producing media and feedback."""
        if self._running:
            return
        self._running = True
        self._fps_bucket_start = self.simulator.now
        if self.config.send_video:
            self.simulator.schedule(self.encoder.frame_interval, self._video_tick)
        if self.config.send_audio:
            self.simulator.schedule(self.audio_source.frame_interval, self._audio_tick)
        if self.config.send_audio or self.config.send_video:
            self.simulator.schedule(self._jittered(SENDER_REPORT_INTERVAL_S), self._sender_report_tick)
        self.simulator.schedule(self._jittered(RECEIVER_REPORT_INTERVAL_S), self._receiver_report_tick)
        self.simulator.schedule(self._jittered(STUN_INTERVAL_S), self._stun_tick)

    def stop(self) -> None:
        """Stop producing media (periodic events become no-ops)."""
        self._running = False

    def detach(self) -> None:
        """Leave the call: stop producing media and release the endpoint.

        Used by participant-leave churn: after the signaling teardown the
        browser closes its transport, so the endpoint disappears from the
        network (its address may be reused by a later joiner).  Already-
        scheduled periodic events and deferred NACK flushes become no-ops —
        a detached client must never send into the network again.
        """
        self.stop()
        self._detached = True
        if self.network.endpoint(self.address) is self:
            self.network.detach(self.address)

    def _jittered(self, interval: float) -> float:
        return interval * self._rng.uniform(0.8, 1.2)

    # ------------------------------------------------------------------ media send

    def _video_tick(self) -> None:
        if not self._running:
            return
        now = self.simulator.now
        frame = self.encoder.next_frame(now)
        packets = self.packetizer.packetize(frame)
        if self.config.send_frames_as_bursts:
            for packet in packets:
                self._remember_for_rtx(packet)
            self._send_rtp_burst(packets)
        else:
            for packet in packets:
                self._remember_for_rtx(packet)
                self._send_rtp(packet)
        self.video_frames_sent += 1
        self._account_sent_frame(now)
        self.simulator.schedule(self.encoder.frame_interval, self._video_tick)

    def _account_sent_frame(self, now: float) -> None:
        self._frames_this_second += 1
        if now - self._fps_bucket_start >= 1.0:
            self.send_frame_rate_series.append((now, self._frames_this_second / (now - self._fps_bucket_start)))
            self._frames_this_second = 0
            self._fps_bucket_start = now

    def _audio_tick(self) -> None:
        if not self._running:
            return
        packet = self.audio_source.next_packet(self.simulator.now)
        self._send_rtp(packet)
        self.simulator.schedule(self.audio_source.frame_interval, self._audio_tick)

    def _remember_for_rtx(self, packet: RtpPacket) -> None:
        self._rtx_history[packet.sequence_number] = packet
        while len(self._rtx_history) > RTX_HISTORY_SIZE:
            self._rtx_history.popitem(last=False)

    def _make_rtp_datagram(self, packet: RtpPacket) -> Datagram:
        config = self.config
        if config.wire_native:
            # wire-native mode: serialize once here; every later hop (links,
            # SFU ingress/egress, receiver) works on the packed buffer
            payload = PacketView.from_packet(packet)
            if config.srtp is not None:
                payload = PacketView(config.srtp.protect_ingress(payload))
        else:
            payload = packet
        datagram = Datagram(
            src=self.address,
            dst=self.remote,
            payload=payload,
            meta={"tx_time": self.simulator.now},
        )
        self.packets_sent += 1
        self.bytes_sent += datagram.size
        return datagram

    def _send_rtp(self, packet: RtpPacket) -> None:
        if self._detached:
            return
        self.network.send(self._make_rtp_datagram(packet))

    def _send_rtp_burst(self, packets: List[RtpPacket]) -> None:
        if not packets or self._detached:
            return
        self.network.send_burst([self._make_rtp_datagram(packet) for packet in packets])

    def _send_rtcp(self, packets: List[RtcpPacket]) -> None:
        if not packets or self._detached:
            return
        datagram = Datagram(src=self.address, dst=self.remote, payload=tuple(packets))
        self.packets_sent += 1
        self.bytes_sent += datagram.size
        self.network.send(datagram)

    # ------------------------------------------------------------------ RTCP

    def _sender_report_tick(self) -> None:
        if not self._running:
            return
        reports: List[RtcpPacket] = []
        now = self.simulator.now
        if self.config.send_video:
            reports.append(
                SenderReport(
                    sender_ssrc=self.video_ssrc,
                    ntp_timestamp=int(now * (1 << 32)),
                    rtp_timestamp=int(now * VIDEO_CLOCK_RATE),
                    packet_count=self.packetizer.packets_produced,
                    octet_count=self.packetizer.bytes_produced,
                )
            )
        if self.config.send_audio:
            reports.append(
                SenderReport(
                    sender_ssrc=self.audio_ssrc,
                    ntp_timestamp=int(now * (1 << 32)),
                    rtp_timestamp=int(now * 48_000),
                    packet_count=self.audio_source.packets_produced,
                    octet_count=0,
                )
            )
        if reports:
            reports.append(
                SourceDescription(chunks=tuple((r.sender_ssrc, self.config.participant_id) for r in reports))
            )
            self._send_rtcp(reports)
        self.simulator.schedule(self._jittered(SENDER_REPORT_INTERVAL_S), self._sender_report_tick)

    def _receiver_report_tick(self) -> None:
        if not self._running:
            return
        now = self.simulator.now
        for ssrc, receiver in self.video_receivers.items():
            estimator = self.estimators.get(ssrc)
            if estimator is None:
                continue
            blocks = (
                ReportBlock(
                    ssrc=ssrc,
                    fraction_lost=0,
                    cumulative_lost=len(receiver.missing),
                    highest_sequence=receiver.highest_seq or 0,
                    jitter=receiver.jitter_rtp_units,
                ),
            )
            packets: List[RtcpPacket] = [
                ReceiverReport(sender_ssrc=self.video_ssrc, report_blocks=blocks),
                Remb(
                    sender_ssrc=self.video_ssrc,
                    bitrate_bps=estimator.estimate_bps,
                    media_ssrcs=(ssrc,),
                ),
            ]
            self._send_rtcp(packets)
        self.simulator.schedule(self._jittered(RECEIVER_REPORT_INTERVAL_S), self._receiver_report_tick)

    def _stun_tick(self) -> None:
        if not self._running:
            return
        transaction_id = self._rng.getrandbits(96).to_bytes(12, "big")
        request = make_binding_request(transaction_id, username=self.config.participant_id)
        self._stun_pending[transaction_id] = self.simulator.now
        datagram = Datagram(src=self.address, dst=self.remote, payload=request)
        self.packets_sent += 1
        self.bytes_sent += datagram.size
        self.network.send(datagram)
        self.simulator.schedule(self._jittered(STUN_INTERVAL_S), self._stun_tick)

    # ------------------------------------------------------------------ receive path

    def handle_datagram(self, datagram: Datagram) -> None:
        """Entry point called by the network for every delivered datagram."""
        if datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, RtpPacket):
            self._handle_rtp(datagram.payload, datagram)
        elif datagram.kind == PayloadKind.RTP and isinstance(datagram.payload, PacketView):
            # wire-native delivery: the browser decodes the packet exactly
            # once, here, at the edge of the receive pipeline
            view = datagram.payload
            srtp = self.config.srtp
            if srtp is not None:
                plain = srtp.unprotect_egress(view.buf)
                if plain is None:
                    self.srtp_rx_auth_failures += 1
                    return
                view = PacketView(plain)
            self._handle_rtp(view.to_packet(), datagram)
        elif datagram.kind == PayloadKind.RTCP:
            for packet in datagram.payload:  # type: ignore[union-attr]
                self._handle_rtcp(packet)
        elif datagram.kind == PayloadKind.STUN and isinstance(datagram.payload, StunMessage):
            self._handle_stun(datagram.payload, datagram)

    def handle_datagram_batch(self, datagrams: List[Datagram]) -> None:
        """Drain one RX-queue batch (deliver-with-schedule burst mode).

        The client still processes every packet individually — a browser has
        no batch semantics — but receiving the drain as one call keeps the
        burst coalesced end to end.  Per-packet timing is taken from each
        datagram's ``arrived_at`` schedule (see :meth:`_receive_clock`), so
        jitter, latency, and GCC measurements are unaffected by coalescing.
        """
        for datagram in datagrams:
            self.handle_datagram(datagram)

    def _receive_clock(self, datagram: Datagram) -> float:
        """The packet's true arrival time: its burst schedule if it rode a
        coalesced burst, the current event time otherwise."""
        arrived_at = datagram.arrived_at
        return self.simulator.now if arrived_at is None else arrived_at

    def _handle_rtp(self, packet: RtpPacket, datagram: Datagram) -> None:
        now = self._receive_clock(datagram)
        tx_time = datagram.meta.get("tx_time")
        if tx_time is not None:
            self.rtp_latency_samples_ms.append((now - tx_time) * 1000.0)
            if len(self.rtp_latency_samples_ms) > 200_000:
                del self.rtp_latency_samples_ms[:100_000]
        if packet.payload_type == PT_AUDIO_OPUS:
            receiver = self.audio_receivers.setdefault(packet.ssrc, AudioReceiveStream(packet.ssrc))
            receiver.on_packet(packet, now)
            return
        receiver = self.video_receivers.get(packet.ssrc)
        if receiver is None:
            receiver = VideoReceiveStream(packet.ssrc)
            self.video_receivers[packet.ssrc] = receiver
            self.estimators[packet.ssrc] = RemoteBitrateEstimator(
                initial_estimate_bps=self.config.video_bitrate_bps
            )
        new_nacks = receiver.on_packet(packet, now)
        estimator = self.estimators[packet.ssrc]
        send_time = packet.timestamp / VIDEO_CLOCK_RATE
        estimator.on_packet(recv_time=now, send_time=send_time, size_bytes=datagram.wire_size)
        if new_nacks:
            pending = self._pending_nacks.setdefault(packet.ssrc, [])
            pending.extend(new_nacks)
            self.simulator.schedule(NACK_BATCH_DELAY_S, lambda ssrc=packet.ssrc: self._flush_nacks(ssrc))
        if receiver.frozen and receiver.plis_sent > 0:
            self._send_rtcp([PictureLossIndication(sender_ssrc=self.video_ssrc, media_ssrc=packet.ssrc)])

    def _flush_nacks(self, ssrc: int) -> None:
        receiver = self.video_receivers.get(ssrc)
        pending = self._pending_nacks.get(ssrc, [])
        if receiver is None or not pending:
            return
        still_missing = [seq for seq in pending if seq in receiver.missing]
        self._pending_nacks[ssrc] = []
        if not still_missing:
            return
        receiver.nacks_sent.extend(still_missing)
        self._send_rtcp(
            [Nack(sender_ssrc=self.video_ssrc, media_ssrc=ssrc, lost_sequence_numbers=tuple(still_missing))]
        )

    def _handle_rtcp(self, packet: RtcpPacket) -> None:
        if isinstance(packet, Nack) and packet.media_ssrc == self.video_ssrc:
            self.nacks_received += 1
            for seq in packet.lost_sequence_numbers:
                original = self._rtx_history.get(seq)
                if original is not None:
                    self.retransmissions_sent += 1
                    self._send_rtp(original)
        elif isinstance(packet, PictureLossIndication) and packet.media_ssrc == self.video_ssrc:
            self.plis_received += 1
            self.encoder.request_keyframe()
        elif isinstance(packet, Remb):
            # Receiver-driven GCC: the sender follows the REMB it receives.
            self.encoder.set_target_bitrate(packet.bitrate_bps)

    def _handle_stun(self, message: StunMessage, datagram: Datagram) -> None:
        if message.is_request:
            response = make_binding_response(message, self.address.ip, self.address.port)
            reply = Datagram(src=self.address, dst=datagram.src, payload=response)
            self.packets_sent += 1
            self.bytes_sent += reply.size
            self.network.send(reply)
        elif message.is_success_response:
            sent_at = self._stun_pending.pop(message.transaction_id, None)
            if sent_at is not None:
                self.rtt_samples_ms.append((self._receive_clock(datagram) - sent_at) * 1000.0)

    # ------------------------------------------------------------------ stats

    def get_stats(self) -> StatsReport:
        """Produce a WebRTC-stats-like snapshot of this client."""
        now = self.simulator.now
        inbound_video = tuple(
            snapshot_video(stream, now) for stream in self.video_receivers.values()
        )
        inbound_audio = tuple(snapshot_audio(stream) for stream in self.audio_receivers.values())
        outbound = []
        if self.config.send_video:
            outbound.append(
                OutboundStats(
                    ssrc=self.video_ssrc,
                    kind="video",
                    packets_sent=self.packetizer.packets_produced,
                    bytes_sent=self.packetizer.bytes_produced,
                    target_bitrate_bps=self.encoder.target_bitrate_bps,
                    frames_per_second=self.encoder.frame_rate,
                )
            )
        if self.config.send_audio:
            outbound.append(
                OutboundStats(
                    ssrc=self.audio_ssrc,
                    kind="audio",
                    packets_sent=self.audio_source.packets_produced,
                    bytes_sent=0,
                    target_bitrate_bps=self.audio_source.bitrate_bps,
                )
            )
        return StatsReport(
            timestamp=now,
            inbound_video=inbound_video,
            inbound_audio=inbound_audio,
            outbound=tuple(outbound),
        )
