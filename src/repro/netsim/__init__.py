"""Discrete-event network simulation substrate (SFU-star topology)."""

from .simulator import EventHandle, SimulationError, Simulator
from .datagram import (
    Address,
    Datagram,
    NETWORK_OVERHEAD_BYTES,
    PayloadKind,
    classify_payload,
    payload_size,
)
from .link import (
    DEFAULT_ACCESS_PROFILE,
    SFU_PORT_PROFILE,
    Endpoint,
    Link,
    LinkProfile,
    Network,
)

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Address",
    "Datagram",
    "NETWORK_OVERHEAD_BYTES",
    "PayloadKind",
    "classify_payload",
    "payload_size",
    "DEFAULT_ACCESS_PROFILE",
    "SFU_PORT_PROFILE",
    "Endpoint",
    "Link",
    "LinkProfile",
    "Network",
]
