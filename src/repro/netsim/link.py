"""Link and network models for the discrete-event simulator.

The topology used by every experiment is the SFU star of Figure 1: each
participant has an access link (uplink towards the SFU, downlink from it) and
the SFU sits behind a high-capacity switch port.  A :class:`LinkProfile`
captures the properties the paper varies — bandwidth, propagation delay,
jitter, random loss, and reordering — and a :class:`Link` enforces them with a
simple FIFO queue (serialization delay + bounded queueing, i.e. a token-less
tail-drop queue like a home router).

Bursts are **deliver-with-schedule**: a burst rides one simulator event per
hop, but every datagram inside it carries the arrival timestamp it would have
had under per-packet delivery (``Datagram.arrived_at``, re-stamped hop by
hop through the same admission arithmetic as :meth:`Link.send`).  Receivers
therefore observe true per-packet pacing — GCC's inter-arrival filter sees
the same timings in burst mode as in per-packet mode — while batch-capable
endpoints still ingest one batch per event.  On the receive side the network
keeps a per-endpoint RX queue: every burst landing at an endpoint is drained
in one pass, so batch sizes follow instantaneous load (an IO-driven dataplane
draining its socket) instead of the sender's fixed frame-burst size.

Burst hops are payload-agnostic: re-stamping ``arrived_at`` copies the
datagram *record*, never its payload, so wire-native packets
(:class:`~repro.rtp.wire.PacketView` buffers encoded once at the sender)
ride every hop — links, merges, RX drains — as the same packed bytes until
the receiving endpoint decodes them exactly once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from .datagram import Address, Datagram
from .simulator import Simulator


class Endpoint(Protocol):
    """Anything that can receive datagrams from the network.

    Endpoints may optionally also define ``handle_datagram_batch(datagrams)``;
    the network then hands them whole RX-queue drains (see
    :meth:`Network.send_burst`) so batch-capable receivers such as the Scallop
    SFU can amortize per-packet work through their batch APIs.
    """

    address: Address

    def handle_datagram(self, datagram: Datagram) -> None:
        ...


@dataclass(frozen=True)
class LinkProfile:
    """Static properties of a one-way link."""

    bandwidth_bps: float = 1_000_000_000.0
    propagation_delay_s: float = 0.005
    jitter_s: float = 0.0
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra_delay_s: float = 0.03
    queue_limit_bytes: int = 256_000

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if not 0.0 <= self.reorder_rate <= 1.0:
            raise ValueError("reorder rate must be in [0, 1]")

    def with_bandwidth(self, bandwidth_bps: float) -> "LinkProfile":
        return replace(self, bandwidth_bps=bandwidth_bps)

    def with_loss(self, loss_rate: float) -> "LinkProfile":
        return replace(self, loss_rate=loss_rate)


#: Profile of the switch/server port the SFU is attached to (1 Gbit/s testbed
#: link in the paper's Mediasoup experiment; the Tofino port is far faster but
#: never the bottleneck in these experiments).
SFU_PORT_PROFILE = LinkProfile(bandwidth_bps=1_000_000_000.0, propagation_delay_s=0.0002)

#: A typical well-provisioned residential access link.
DEFAULT_ACCESS_PROFILE = LinkProfile(bandwidth_bps=50_000_000.0, propagation_delay_s=0.01)


def _arrival_key(datagram: Datagram) -> float:
    return datagram.arrived_at if datagram.arrived_at is not None else 0.0


class Link:
    """A one-way link delivering datagrams to a destination callback.

    Serialization delay is modelled with a per-link "busy until" time so
    back-to-back packets queue behind one another; datagrams that would exceed
    the queue limit are dropped (tail drop), which is how downlink congestion
    produces both loss and delay in the rate-adaptation experiments.
    """

    def __init__(
        self,
        simulator: Simulator,
        profile: LinkProfile,
        deliver: Callable[[Datagram], None],
        rng: Optional[random.Random] = None,
        name: str = "link",
        deliver_batch: Optional[Callable[[List[Datagram]], None]] = None,
        admission_coalesce_window_s: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.profile = profile
        self.deliver = deliver
        self.deliver_batch = deliver_batch
        self.rng = rng or random.Random(0)
        self.name = name
        self._busy_until = 0.0
        #: Monotone admission clock — a backstop for bursts from different
        #: sources reaching a shared link as separate events: their packets'
        #: scheduled admission times can interleave into the past relative to
        #: packets already admitted, and lifting late-admitted packets to this
        #: frontier keeps the queue model FIFO-in-admission-order instead of
        #: charging them phantom queue backlog built by "future" packets.
        #: The admission-coalescing window below exists to make such lifts
        #: rare: sub-bursts landing within the window are merged and admitted
        #: in true arrival order, which preserves the interleaved pacing a
        #: per-packet simulation would produce.
        self._admission_frontier = 0.0
        #: Merge window for burst admissions on shared links (0 = admit each
        #: ``send_burst`` call immediately).
        self.admission_coalesce_window_s = admission_coalesce_window_s
        self._pending_burst: List[Datagram] = []
        self._pending_flush = False
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    def set_profile(self, profile: LinkProfile) -> None:
        """Change link properties mid-simulation (used to emulate congestion)."""
        self.profile = profile

    def send(self, datagram: Datagram) -> bool:
        """Enqueue a datagram; returns False if it was dropped."""
        # admission is FIFO: a burst held for admission coalescing arrived
        # first and must claim its queue slots before this packet, or the
        # per-packet path would overtake it and skew the burst's schedule
        if self._pending_burst:
            self._flush_pending_burst()
        delay = self._admit(datagram)
        if delay is None:
            return False
        self.simulator.schedule(delay, lambda d=datagram: self.deliver(d))
        return True

    def send_burst(self, datagrams: Sequence[Datagram]) -> int:
        """Enqueue a burst with deliver-with-schedule semantics; returns how
        many datagrams were accepted.

        Every datagram passes through exactly the same loss, queue-limit, and
        delay arithmetic as :meth:`send`, evaluated at the datagram's own
        admission time: its ``arrived_at`` stamp from the previous hop, or
        "now" for a freshly originated burst (a sender emits a frame's packets
        back-to-back at one instant, so this matches per-packet sends).
        Admission happens in true arrival order — each call's datagrams are
        sorted by schedule first, and on a link with an admission-coalescing
        window, sub-bursts from separate upstream events landing within the
        window are merged before admission — so the queue model sees the same
        interleaving a per-packet simulation would.  Each accepted packet is
        re-stamped with its per-packet arrival time at the far end, and the
        merged burst rides a single simulator event at the last packet's
        arrival.  Returns how many datagrams were admitted (for a coalescing
        link, how many were enqueued for the deferred admission).
        """
        pending = list(datagrams)
        if self.admission_coalesce_window_s <= 0.0:
            return self._admit_burst(pending)
        self._pending_burst.extend(pending)
        if not self._pending_flush:
            self._pending_flush = True
            self.simulator.schedule(self.admission_coalesce_window_s, self._flush_pending_burst)
        return len(pending)

    def _flush_pending_burst(self) -> None:
        self._pending_flush = False
        pending, self._pending_burst = self._pending_burst, []
        if pending:
            self._admit_burst(pending)

    def _admit_burst(self, datagrams: List[Datagram]) -> int:
        now = self.simulator.now
        # admit in true arrival order (stable on ties, i.e. send order): the
        # queue/busy arithmetic, the RNG draws, and the far end must all see
        # packets in the order a per-packet simulation would produce
        datagrams.sort(key=_arrival_key)
        accepted: List[Datagram] = []
        last_arrival = now
        for datagram in datagrams:
            at = datagram.arrived_at
            if at is None:
                at = now
            delay = self._admit(datagram, at)
            if delay is None:
                continue
            arrival = at + delay
            accepted.append(replace(datagram, arrived_at=arrival))
            if arrival > last_arrival:
                last_arrival = arrival
        if accepted:
            accepted.sort(key=_arrival_key)  # jitter/reordering can permute
            event_delay = max(0.0, last_arrival - now)
            if self.deliver_batch is not None:
                self.simulator.schedule(event_delay, lambda batch=accepted: self.deliver_batch(batch))
            else:
                self.simulator.schedule_batch(
                    event_delay, [lambda d=datagram: self.deliver(d) for datagram in accepted]
                )
        return len(accepted)

    def _admit(self, datagram: Datagram, at: Optional[float] = None) -> Optional[float]:
        """Run one datagram through the link model at admission time ``at``
        (default: now); returns its delivery delay relative to ``at``, or
        ``None`` if it was dropped (loss or queue overflow)."""
        profile = self.profile
        origin = self.simulator.now if at is None else at
        now = origin
        if now < self._admission_frontier:
            now = self._admission_frontier
        else:
            self._admission_frontier = now

        if profile.loss_rate > 0 and self.rng.random() < profile.loss_rate:
            self.packets_dropped += 1
            return None

        serialization = datagram.wire_size * 8.0 / profile.bandwidth_bps
        queue_delay = max(0.0, self._busy_until - now)
        queued_bytes = queue_delay * profile.bandwidth_bps / 8.0
        if queued_bytes + datagram.wire_size > profile.queue_limit_bytes:
            self.packets_dropped += 1
            return None

        self._busy_until = max(self._busy_until, now) + serialization
        # the returned delay is relative to the caller's admission time, so a
        # frontier lift shows up as extra queueing delay
        delay = (now - origin) + queue_delay + serialization + profile.propagation_delay_s
        if profile.jitter_s > 0:
            delay += self.rng.uniform(0, profile.jitter_s)
        if profile.reorder_rate > 0 and self.rng.random() < profile.reorder_rate:
            delay += self.rng.uniform(0, profile.reorder_extra_delay_s)

        self.packets_sent += 1
        self.bytes_sent += datagram.wire_size
        return delay

    @property
    def queue_delay(self) -> float:
        """Current queueing delay a newly arriving packet would experience."""
        return max(0.0, self._busy_until - self.simulator.now)


class Network:
    """The SFU-star network: endpoints plus per-endpoint uplink/downlink.

    Sending resolves the destination endpoint by address and routes through
    the sender's uplink and the receiver's downlink.  The SFU registers itself
    as a normal endpoint with a high-bandwidth profile.
    """

    def __init__(
        self, simulator: Simulator, seed: int = 0, rx_coalesce_window_s: float = 0.0
    ) -> None:
        self.simulator = simulator
        self._rng = random.Random(seed)
        self._endpoints: Dict[Address, Endpoint] = {}
        self._uplinks: Dict[Address, Link] = {}
        self._downlinks: Dict[Address, Link] = {}
        #: Per-endpoint receive queues for burst deliveries: every burst
        #: landing at an endpoint is appended here and drained in one pass,
        #: so the batch an endpoint sees grows with instantaneous load
        #: (adaptive batch sizing) instead of the sender's frame-burst size.
        self._rx_queues: Dict[Address, List[Datagram]] = {}
        self._rx_drain_pending: Dict[Address, bool] = {}
        #: NIC-style interrupt moderation for burst deliveries: bursts that
        #: land within this window of the first pending one join the same
        #: RX-queue drain.  Because datagrams carry their true arrival times
        #: (deliver-with-schedule), widening the window changes only *event*
        #: times, never the packet timings receivers measure; 0 coalesces
        #: same-instant deliveries only.
        self.rx_coalesce_window_s = rx_coalesce_window_s
        self.datagrams_delivered = 0

    # -- topology management --------------------------------------------------

    def attach(
        self,
        endpoint: Endpoint,
        uplink: Optional[LinkProfile] = None,
        downlink: Optional[LinkProfile] = None,
    ) -> None:
        """Attach an endpoint with the given access-link profiles."""
        address = endpoint.address
        if address in self._endpoints:
            raise ValueError(f"address already attached: {address}")
        self._endpoints[address] = endpoint
        up_profile = uplink or DEFAULT_ACCESS_PROFILE
        down_profile = downlink or DEFAULT_ACCESS_PROFILE
        # uplinks must keep admission_coalesce_window_s == 0: each sender's
        # bursts arrive in one event (no cross-source merging to do), and
        # Network.send_burst's accepted-count return relies on uplink
        # admission being synchronous (a coalescing link can only report how
        # many datagrams it enqueued, not how many survive admission)
        self._uplinks[address] = Link(
            self.simulator,
            up_profile,
            self._make_core_hop(address),
            rng=random.Random(self._rng.getrandbits(32)),
            name=f"up:{address}",
            deliver_batch=self._core_hop_burst,
        )
        self._downlinks[address] = Link(
            self.simulator,
            down_profile,
            self._make_delivery(address),
            rng=random.Random(self._rng.getrandbits(32)),
            name=f"down:{address}",
            deliver_batch=self._make_delivery_burst(address),
            # a downlink is the shared fan-in point of the star: sub-bursts
            # from many uplinks land as separate events, and merging them
            # within the moderation window lets the link admit them in true
            # arrival order (interleaved, as per-packet delivery would)
            admission_coalesce_window_s=self.rx_coalesce_window_s,
        )

    def detach(self, address: Address) -> None:
        """Remove an endpoint (a participant leaving)."""
        self._endpoints.pop(address, None)
        self._uplinks.pop(address, None)
        self._downlinks.pop(address, None)
        self._rx_queues.pop(address, None)
        self._rx_drain_pending.pop(address, None)

    def endpoint(self, address: Address) -> Optional[Endpoint]:
        return self._endpoints.get(address)

    def uplink(self, address: Address) -> Link:
        return self._uplinks[address]

    def downlink(self, address: Address) -> Link:
        return self._downlinks[address]

    def set_downlink_profile(self, address: Address, profile: LinkProfile) -> None:
        """Emulate downlink congestion for one participant."""
        self._downlinks[address].set_profile(profile)

    def set_uplink_profile(self, address: Address, profile: LinkProfile) -> None:
        self._uplinks[address].set_profile(profile)

    def reprofile(
        self,
        address: Address,
        uplink: Optional[LinkProfile] = None,
        downlink: Optional[LinkProfile] = None,
    ) -> None:
        """Re-profile an attached endpoint's access links mid-simulation.

        The phased link-change primitive of the scenario schedule: either
        direction (or both) gets a new profile; in-flight packets keep the
        delays they were admitted with, packets admitted after the change see
        the new bandwidth/loss/queue arithmetic.  Raises ``KeyError`` for a
        detached address (a schedule targeting a departed participant is a
        scenario bug worth surfacing).
        """
        if address not in self._endpoints:
            raise KeyError(f"endpoint not attached: {address}")
        if uplink is not None:
            self._uplinks[address].set_profile(uplink)
        if downlink is not None:
            self._downlinks[address].set_profile(downlink)

    # -- data path -------------------------------------------------------------

    def send(self, datagram: Datagram) -> bool:
        """Send a datagram from its ``src`` towards its ``dst``."""
        uplink = self._uplinks.get(datagram.src)
        if uplink is None:
            raise KeyError(f"source not attached: {datagram.src}")
        # per-packet mode: the simulator event carries the timing, so any
        # stale burst schedule from an earlier hop must not leak through
        stamped = replace(datagram, sent_at=self.simulator.now, arrived_at=None)
        return uplink.send(stamped)

    def send_burst(self, datagrams: Sequence[Datagram]) -> int:
        """Send a burst of datagrams (e.g. one video frame) as a unit.

        Bursts traverse the same links and arithmetic as :meth:`send` with
        per-packet arrival schedules preserved hop by hop (deliver-with-
        schedule), so an endpoint that implements ``handle_datagram_batch``
        (the Scallop SFU) receives them together and can run its batch
        pipeline while timing-sensitive receivers still observe true pacing.
        Datagrams may come from multiple sources; each source's packets use
        that source's uplink.  A datagram whose ``arrived_at`` is already set
        (the SFU stamps its replicas with their switch-egress times) is
        admitted to its uplink at that time rather than "now".
        Returns how many datagrams were accepted by their uplinks.
        """
        accepted = 0
        now = self.simulator.now
        by_src: Dict[Address, List[Datagram]] = {}
        for datagram in datagrams:
            by_src.setdefault(datagram.src, []).append(replace_sent_at(datagram, now))
        # validate every source before transmitting anything, so a burst with
        # a detached sender fails atomically instead of half-sent
        for src in by_src:
            if src not in self._uplinks:
                raise KeyError(f"source not attached: {src}")
        for src, group in by_src.items():
            accepted += self._uplinks[src].send_burst(group)
        return accepted

    def _make_core_hop(self, src: Address) -> Callable[[Datagram], None]:
        def hop(datagram: Datagram) -> None:
            downlink = self._downlinks.get(datagram.dst)
            if downlink is None:
                return  # destination left the meeting; drop silently
            downlink.send(datagram)

        return hop

    def _core_hop_burst(self, datagrams: List[Datagram]) -> None:
        """Core hop for bursts: route each destination's share as a burst."""
        by_dst: Dict[Address, List[Datagram]] = {}
        for datagram in datagrams:
            by_dst.setdefault(datagram.dst, []).append(datagram)
        for dst, group in by_dst.items():
            downlink = self._downlinks.get(dst)
            if downlink is None:
                continue  # destination left the meeting; drop silently
            downlink.send_burst(group)

    def _make_delivery(self, dst: Address) -> Callable[[Datagram], None]:
        def deliver(datagram: Datagram) -> None:
            endpoint = self._endpoints.get(dst)
            if endpoint is None:
                return
            self.datagrams_delivered += 1
            endpoint.handle_datagram(datagram)

        return deliver

    def _make_delivery_burst(self, dst: Address) -> Callable[[List[Datagram]], None]:
        def deliver_burst(datagrams: List[Datagram]) -> None:
            if dst not in self._endpoints:
                return
            queue = self._rx_queues.setdefault(dst, [])
            queue.extend(datagrams)
            # coalesce: every burst landing at this endpoint within the
            # moderation window joins the queue before the (single) drain
            # event runs, so the endpoint sees one load-sized batch per event
            if not self._rx_drain_pending.get(dst):
                self._rx_drain_pending[dst] = True
                self.simulator.schedule(self.rx_coalesce_window_s, lambda: self._drain_rx_queue(dst))

        return deliver_burst

    def _drain_rx_queue(self, dst: Address) -> None:
        """Hand an endpoint everything queued for it (adaptive batch size)."""
        if dst in self._rx_drain_pending:
            self._rx_drain_pending[dst] = False
        # (a drain whose endpoint detached mid-window must not resurrect the
        # popped bookkeeping keys for the departed address)
        queue = self._rx_queues.get(dst)
        if not queue:
            return
        batch = queue[:]
        queue.clear()
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            return
        self.datagrams_delivered += len(batch)
        batch_handler = getattr(endpoint, "handle_datagram_batch", None)
        if batch_handler is not None:
            batch_handler(batch)
            return
        handle = endpoint.handle_datagram
        for datagram in batch:
            handle(datagram)


def replace_sent_at(datagram: Datagram, time: float) -> Datagram:
    """Stamp the send time on a datagram (kept out of the dataclass API to
    avoid accidental mutation by user code)."""
    from dataclasses import replace as _replace

    return _replace(datagram, sent_at=time)
