"""Link and network models for the discrete-event simulator.

The topology used by every experiment is the SFU star of Figure 1: each
participant has an access link (uplink towards the SFU, downlink from it) and
the SFU sits behind a high-capacity switch port.  A :class:`LinkProfile`
captures the properties the paper varies — bandwidth, propagation delay,
jitter, random loss, and reordering — and a :class:`Link` enforces them with a
simple FIFO queue (serialization delay + bounded queueing, i.e. a token-less
tail-drop queue like a home router).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from .datagram import Address, Datagram
from .simulator import Simulator


class Endpoint(Protocol):
    """Anything that can receive datagrams from the network.

    Endpoints may optionally also define ``handle_datagram_batch(datagrams)``;
    the network then hands them whole bursts (see :meth:`Network.send_burst`)
    so batch-capable receivers such as the Scallop SFU can amortize per-packet
    work through their batch APIs.
    """

    address: Address

    def handle_datagram(self, datagram: Datagram) -> None:
        ...


@dataclass(frozen=True)
class LinkProfile:
    """Static properties of a one-way link."""

    bandwidth_bps: float = 1_000_000_000.0
    propagation_delay_s: float = 0.005
    jitter_s: float = 0.0
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra_delay_s: float = 0.03
    queue_limit_bytes: int = 256_000

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if not 0.0 <= self.reorder_rate <= 1.0:
            raise ValueError("reorder rate must be in [0, 1]")

    def with_bandwidth(self, bandwidth_bps: float) -> "LinkProfile":
        return replace(self, bandwidth_bps=bandwidth_bps)

    def with_loss(self, loss_rate: float) -> "LinkProfile":
        return replace(self, loss_rate=loss_rate)


#: Profile of the switch/server port the SFU is attached to (1 Gbit/s testbed
#: link in the paper's Mediasoup experiment; the Tofino port is far faster but
#: never the bottleneck in these experiments).
SFU_PORT_PROFILE = LinkProfile(bandwidth_bps=1_000_000_000.0, propagation_delay_s=0.0002)

#: A typical well-provisioned residential access link.
DEFAULT_ACCESS_PROFILE = LinkProfile(bandwidth_bps=50_000_000.0, propagation_delay_s=0.01)


class Link:
    """A one-way link delivering datagrams to a destination callback.

    Serialization delay is modelled with a per-link "busy until" time so
    back-to-back packets queue behind one another; datagrams that would exceed
    the queue limit are dropped (tail drop), which is how downlink congestion
    produces both loss and delay in the rate-adaptation experiments.
    """

    def __init__(
        self,
        simulator: Simulator,
        profile: LinkProfile,
        deliver: Callable[[Datagram], None],
        rng: Optional[random.Random] = None,
        name: str = "link",
        deliver_batch: Optional[Callable[[List[Datagram]], None]] = None,
    ) -> None:
        self.simulator = simulator
        self.profile = profile
        self.deliver = deliver
        self.deliver_batch = deliver_batch
        self.rng = rng or random.Random(0)
        self.name = name
        self._busy_until = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    def set_profile(self, profile: LinkProfile) -> None:
        """Change link properties mid-simulation (used to emulate congestion)."""
        self.profile = profile

    def send(self, datagram: Datagram) -> bool:
        """Enqueue a datagram; returns False if it was dropped."""
        delay = self._admit(datagram)
        if delay is None:
            return False
        self.simulator.schedule(delay, lambda d=datagram: self.deliver(d))
        return True

    def send_burst(self, datagrams: Sequence[Datagram]) -> int:
        """Enqueue a burst; returns how many datagrams were accepted.

        Every datagram passes through exactly the same loss, queue-limit, and
        delay arithmetic as :meth:`send`, but the accepted packets ride a
        single simulator event: the burst is delivered in order when its last
        bit has arrived (the arrival time of the slowest accepted packet).
        This is the approximation that lets a downstream batch receiver see
        the whole burst at once; per-packet mode remains the reference
        behaviour and is what :meth:`send` provides.
        """
        accepted: List[Datagram] = []
        burst_delay = 0.0
        for datagram in datagrams:
            delay = self._admit(datagram)
            if delay is None:
                continue
            accepted.append(datagram)
            if delay > burst_delay:
                burst_delay = delay
        if accepted:
            if self.deliver_batch is not None:
                self.simulator.schedule(burst_delay, lambda batch=accepted: self.deliver_batch(batch))
            else:
                self.simulator.schedule_batch(
                    burst_delay, [lambda d=datagram: self.deliver(d) for datagram in accepted]
                )
        return len(accepted)

    def _admit(self, datagram: Datagram) -> Optional[float]:
        """Run one datagram through the link model; returns its delivery
        delay, or ``None`` if it was dropped (loss or queue overflow)."""
        profile = self.profile
        now = self.simulator.now

        if profile.loss_rate > 0 and self.rng.random() < profile.loss_rate:
            self.packets_dropped += 1
            return None

        serialization = datagram.wire_size * 8.0 / profile.bandwidth_bps
        queue_delay = max(0.0, self._busy_until - now)
        queued_bytes = queue_delay * profile.bandwidth_bps / 8.0
        if queued_bytes + datagram.wire_size > profile.queue_limit_bytes:
            self.packets_dropped += 1
            return None

        self._busy_until = max(self._busy_until, now) + serialization
        delay = queue_delay + serialization + profile.propagation_delay_s
        if profile.jitter_s > 0:
            delay += self.rng.uniform(0, profile.jitter_s)
        if profile.reorder_rate > 0 and self.rng.random() < profile.reorder_rate:
            delay += self.rng.uniform(0, profile.reorder_extra_delay_s)

        self.packets_sent += 1
        self.bytes_sent += datagram.wire_size
        return delay

    @property
    def queue_delay(self) -> float:
        """Current queueing delay a newly arriving packet would experience."""
        return max(0.0, self._busy_until - self.simulator.now)


class Network:
    """The SFU-star network: endpoints plus per-endpoint uplink/downlink.

    Sending resolves the destination endpoint by address and routes through
    the sender's uplink and the receiver's downlink.  The SFU registers itself
    as a normal endpoint with a high-bandwidth profile.
    """

    def __init__(self, simulator: Simulator, seed: int = 0) -> None:
        self.simulator = simulator
        self._rng = random.Random(seed)
        self._endpoints: Dict[Address, Endpoint] = {}
        self._uplinks: Dict[Address, Link] = {}
        self._downlinks: Dict[Address, Link] = {}
        self.datagrams_delivered = 0

    # -- topology management --------------------------------------------------

    def attach(
        self,
        endpoint: Endpoint,
        uplink: Optional[LinkProfile] = None,
        downlink: Optional[LinkProfile] = None,
    ) -> None:
        """Attach an endpoint with the given access-link profiles."""
        address = endpoint.address
        if address in self._endpoints:
            raise ValueError(f"address already attached: {address}")
        self._endpoints[address] = endpoint
        up_profile = uplink or DEFAULT_ACCESS_PROFILE
        down_profile = downlink or DEFAULT_ACCESS_PROFILE
        self._uplinks[address] = Link(
            self.simulator,
            up_profile,
            self._make_core_hop(address),
            rng=random.Random(self._rng.getrandbits(32)),
            name=f"up:{address}",
            deliver_batch=self._core_hop_burst,
        )
        self._downlinks[address] = Link(
            self.simulator,
            down_profile,
            self._make_delivery(address),
            rng=random.Random(self._rng.getrandbits(32)),
            name=f"down:{address}",
            deliver_batch=self._make_delivery_burst(address),
        )

    def detach(self, address: Address) -> None:
        """Remove an endpoint (a participant leaving)."""
        self._endpoints.pop(address, None)
        self._uplinks.pop(address, None)
        self._downlinks.pop(address, None)

    def endpoint(self, address: Address) -> Optional[Endpoint]:
        return self._endpoints.get(address)

    def uplink(self, address: Address) -> Link:
        return self._uplinks[address]

    def downlink(self, address: Address) -> Link:
        return self._downlinks[address]

    def set_downlink_profile(self, address: Address, profile: LinkProfile) -> None:
        """Emulate downlink congestion for one participant."""
        self._downlinks[address].set_profile(profile)

    def set_uplink_profile(self, address: Address, profile: LinkProfile) -> None:
        self._uplinks[address].set_profile(profile)

    # -- data path -------------------------------------------------------------

    def send(self, datagram: Datagram) -> bool:
        """Send a datagram from its ``src`` towards its ``dst``."""
        uplink = self._uplinks.get(datagram.src)
        if uplink is None:
            raise KeyError(f"source not attached: {datagram.src}")
        stamped = replace_sent_at(datagram, self.simulator.now)
        return uplink.send(stamped)

    def send_burst(self, datagrams: Sequence[Datagram]) -> int:
        """Send a burst of datagrams (e.g. one video frame) as a unit.

        Bursts traverse the same links and arithmetic as :meth:`send` but
        stay coalesced hop by hop, so an endpoint that implements
        ``handle_datagram_batch`` (the Scallop SFU) receives them together
        and can run its batch pipeline.  Datagrams may come from multiple
        sources; each source's packets use that source's uplink.
        Returns how many datagrams were accepted by their uplinks.
        """
        accepted = 0
        now = self.simulator.now
        by_src: Dict[Address, List[Datagram]] = {}
        for datagram in datagrams:
            by_src.setdefault(datagram.src, []).append(replace_sent_at(datagram, now))
        # validate every source before transmitting anything, so a burst with
        # a detached sender fails atomically instead of half-sent
        for src in by_src:
            if src not in self._uplinks:
                raise KeyError(f"source not attached: {src}")
        for src, group in by_src.items():
            accepted += self._uplinks[src].send_burst(group)
        return accepted

    def _make_core_hop(self, src: Address) -> Callable[[Datagram], None]:
        def hop(datagram: Datagram) -> None:
            downlink = self._downlinks.get(datagram.dst)
            if downlink is None:
                return  # destination left the meeting; drop silently
            downlink.send(datagram)

        return hop

    def _core_hop_burst(self, datagrams: List[Datagram]) -> None:
        """Core hop for bursts: route each destination's share as a burst."""
        by_dst: Dict[Address, List[Datagram]] = {}
        for datagram in datagrams:
            by_dst.setdefault(datagram.dst, []).append(datagram)
        for dst, group in by_dst.items():
            downlink = self._downlinks.get(dst)
            if downlink is None:
                continue  # destination left the meeting; drop silently
            downlink.send_burst(group)

    def _make_delivery(self, dst: Address) -> Callable[[Datagram], None]:
        def deliver(datagram: Datagram) -> None:
            endpoint = self._endpoints.get(dst)
            if endpoint is None:
                return
            self.datagrams_delivered += 1
            endpoint.handle_datagram(datagram)

        return deliver

    def _make_delivery_burst(self, dst: Address) -> Callable[[List[Datagram]], None]:
        def deliver_burst(datagrams: List[Datagram]) -> None:
            endpoint = self._endpoints.get(dst)
            if endpoint is None:
                return
            self.datagrams_delivered += len(datagrams)
            batch_handler = getattr(endpoint, "handle_datagram_batch", None)
            if batch_handler is not None:
                batch_handler(datagrams)
                return
            for datagram in datagrams:
                endpoint.handle_datagram(datagram)

        return deliver_burst


def replace_sent_at(datagram: Datagram, time: float) -> Datagram:
    """Stamp the send time on a datagram (kept out of the dataclass API to
    avoid accidental mutation by user code)."""
    from dataclasses import replace as _replace

    return _replace(datagram, sent_at=time)
