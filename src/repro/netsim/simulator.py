"""A small discrete-event simulator.

All end-to-end experiments in the reproduction (overload of the software SFU,
forwarding-latency CDFs, rate-adaptation traces, the Table 1 packet accounting)
run on this engine.  It is intentionally minimal: a monotonic clock, a binary
heap of timestamped events, and deterministic FIFO ordering for events that
share a timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Discrete-event simulation engine with a floating-point clock in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_Event] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for sanity checks)."""
        return self._events_processed

    #: Negative delays no larger than this are treated as floating-point
    #: drift and clamped to "now".  Periodic processes computing absolute
    #: deadlines (``schedule_at(start + n * interval)``) accumulate error on
    #: the order of one ULP per step; without the clamp a multi-hour
    #: rate-adaptation run crashes on an infinitesimally negative delta.
    NEGATIVE_DELAY_TOLERANCE = 1e-9

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            if delay < -self.NEGATIVE_DELAY_TOLERANCE:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0
        event = _Event(time=self._now + delay, order=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback)

    def schedule_batch(self, delay: float, callbacks: Sequence[Callable[[], None]]) -> EventHandle:
        """Schedule a list of callbacks to fire back-to-back as one event.

        Burst delivery uses this so an N-packet burst costs one heap
        operation instead of N; the callbacks run in FIFO order at the same
        timestamp, which is exactly what :meth:`schedule` in a loop would
        produce for equal delays.
        """
        return self.schedule(delay, lambda: [callback() for callback in callbacks])

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given the clock is advanced to exactly ``until`` even
        if the queue drains earlier, so periodic processes can compute rates
        over a fixed horizon.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None and self._now < until:
            self._now = until

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time."""
        self.run(until=self._now + duration)

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        self._queue.clear()
