"""UDP datagram and address model used by the network simulator.

A datagram carries a *parsed* payload object (RTP packet, RTCP compound, STUN
message) together with its wire size so the simulator does not need to
serialize every packet of multi-minute meetings.  ``to_bytes``/``from_bytes``
round-trip through the real codecs and are exercised by the protocol tests, so
the shortcut never diverges from the wire formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional, Sequence, Union

from ..rtp.packet import RtpPacket, is_rtcp, looks_like_rtp
from ..rtp.rtcp import RtcpPacket, parse_compound, serialize_compound
from ..rtp.wire import PacketView
from ..stun.message import StunMessage, looks_like_stun

#: Fixed per-packet overhead: Ethernet (14) + IPv4 (20) + UDP (8) headers.
NETWORK_OVERHEAD_BYTES = 42


@dataclass(frozen=True, order=True)
class Address:
    """A UDP endpoint address."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    def __hash__(self) -> int:
        # The datapath probes a dict keyed on (src, ssrc) once per packet, so
        # the generated field-tuple hash is memoized on the instance.  The
        # cache never crosses a process boundary: __reduce__ rebuilds a
        # pickled address from its fields alone, so a hash computed under one
        # process's string-hash seed is never replayed under another's.
        state = self.__dict__
        cached = state.get("_hash")
        if cached is None:
            cached = state["_hash"] = hash((self.ip, self.port))
        return cached

    def __reduce__(self):
        return (Address, (self.ip, self.port))


class PayloadKind(str, Enum):
    """Coarse payload classification (what the data plane's lookahead sees)."""

    RTP = "rtp"
    RTCP = "rtcp"
    STUN = "stun"
    OTHER = "other"


Payload = Union[RtpPacket, PacketView, Sequence[RtcpPacket], StunMessage, bytes]


def classify_payload(payload: Payload) -> PayloadKind:
    """Classify a parsed payload object."""
    if isinstance(payload, (RtpPacket, PacketView)):
        return PayloadKind.RTP
    if isinstance(payload, StunMessage):
        return PayloadKind.STUN
    if isinstance(payload, bytes):
        if looks_like_stun(payload):
            return PayloadKind.STUN
        if is_rtcp(payload):
            return PayloadKind.RTCP
        if looks_like_rtp(payload):
            return PayloadKind.RTP
        return PayloadKind.OTHER
    # a sequence of RTCP packets
    return PayloadKind.RTCP


def payload_size(payload: Payload) -> int:
    """UDP payload size in bytes of a parsed payload object."""
    if isinstance(payload, RtpPacket):
        return payload.size
    if isinstance(payload, PacketView):
        return payload.size
    if isinstance(payload, StunMessage):
        return len(payload.serialize())
    if isinstance(payload, bytes):
        return len(payload)
    return len(serialize_compound(list(payload)))


@dataclass(frozen=True)
class Datagram:
    """A UDP datagram in flight between two simulated endpoints."""

    src: Address
    dst: Address
    payload: Payload
    size: int = 0                      # UDP payload bytes; derived if zero
    kind: PayloadKind = PayloadKind.OTHER
    sent_at: float = 0.0               # stamped by the sending endpoint
    #: Schedule-preserving burst timestamp: when this datagram travels inside
    #: a coalesced burst, the time it would have arrived at (or, on the send
    #: side, departed towards) its current hop under per-packet delivery.
    #: ``None`` outside burst mode, where the simulator's per-packet events
    #: carry the timing.  Links stamp it on every burst hop; receivers use it
    #: as the packet's true arrival time so estimators (GCC) observe real
    #: pacing even though the burst rides a single simulator event.
    arrived_at: Optional[float] = None
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.size == 0:
            object.__setattr__(self, "size", payload_size(self.payload))
        if self.kind == PayloadKind.OTHER:
            object.__setattr__(self, "kind", classify_payload(self.payload))

    @property
    def wire_size(self) -> int:
        """Bytes on the wire, including Ethernet/IP/UDP overhead."""
        return self.size + NETWORK_OVERHEAD_BYTES

    @classmethod
    def from_fields(cls, fields: dict) -> "Datagram":
        """Mint an instance directly from a prepared field dict.

        Fast-path constructor for the SFU's replica fan-out: bypasses the
        frozen-dataclass ``__init__`` (seven guarded ``object.__setattr__``
        calls) and the size/kind derivation in ``__post_init__``.  ``fields``
        becomes the instance ``__dict__`` and must therefore contain exactly
        this dataclass's fields, already validated/derived.
        """
        # O(1) guard: a field added to the dataclass but not to the caller's
        # template shows up as a length mismatch here instead of as a distant
        # AttributeError (a full key comparison would dominate the fan-out)
        if len(fields) != len(cls.__dataclass_fields__):
            raise TypeError(
                f"from_fields requires exactly the {cls.__name__} fields, got {sorted(fields)}"
            )
        instance = object.__new__(cls)
        object.__setattr__(instance, "__dict__", fields)
        return instance

    def __getstate__(self) -> dict:
        # replicas share one read-only MappingProxyType meta view, which
        # cannot be pickled; materialize it so datagrams can cross process
        # boundaries (the sharded pipeline's process-pool escape hatch)
        state = dict(self.__dict__)
        if not isinstance(state["meta"], dict):
            state["meta"] = dict(state["meta"])
        return state

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "__dict__", state)

    def redirect(self, src: Address, dst: Address) -> "Datagram":
        """Return a copy with rewritten addresses (what the SFU egress does)."""
        return replace(self, src=src, dst=dst)

    def with_payload(self, payload: Payload) -> "Datagram":
        """Return a copy with a new payload (size/kind are recomputed)."""
        return replace(self, payload=payload, size=payload_size(payload), kind=classify_payload(payload))

    def to_bytes(self) -> bytes:
        """Serialize the UDP payload through the real protocol codecs."""
        if isinstance(self.payload, RtpPacket):
            return self.payload.serialize()
        if isinstance(self.payload, PacketView):
            # wire-native payloads ARE the serialization (encoded once)
            return bytes(self.payload)
        if isinstance(self.payload, StunMessage):
            return self.payload.serialize()
        if isinstance(self.payload, bytes):
            return self.payload
        return serialize_compound(list(self.payload))

    @classmethod
    def from_bytes(cls, src: Address, dst: Address, data: bytes) -> "Datagram":
        """Parse a raw UDP payload into a datagram with a typed payload."""
        if looks_like_stun(data):
            return cls(src=src, dst=dst, payload=StunMessage.parse(data), size=len(data))
        if is_rtcp(data):
            return cls(src=src, dst=dst, payload=tuple(parse_compound(data)), size=len(data))
        if looks_like_rtp(data):
            return cls(src=src, dst=dst, payload=RtpPacket.parse(data), size=len(data))
        return cls(src=src, dst=dst, payload=data, size=len(data))

    @classmethod
    def from_wire(cls, src: Address, dst: Address, data: bytes) -> "Datagram":
        """Like :meth:`from_bytes` but keeps RTP wire-native.

        RTP media stays a zero-copy :class:`~repro.rtp.wire.PacketView` over
        ``data`` (decoded lazily, field by field, only where a consumer asks);
        STUN/RTCP — which are control traffic the CPU genuinely parses — go
        through the object codecs as before.
        """
        if looks_like_stun(data):
            return cls(src=src, dst=dst, payload=StunMessage.parse(data), size=len(data))
        if is_rtcp(data):
            return cls(src=src, dst=dst, payload=tuple(parse_compound(data)), size=len(data))
        if looks_like_rtp(data):
            return cls(src=src, dst=dst, payload=PacketView(data), size=len(data))
        return cls(src=src, dst=dst, payload=data, size=len(data))
