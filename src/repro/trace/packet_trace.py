"""Synthetic campus packet-level Zoom trace (paper Appendix C and D).

The packet trace is used by the paper through three views:

* **Table 2** — a summary of a 12-hour border-router capture (packets, flows,
  bytes, RTP media streams),
* **Figures 23/24** — forwarded bytes per receiver and per scalability layer
  for one meeting, showing the SFU dropping SVC layers for a constrained
  receiver, and
* **Figure 22 / the workload model** — offered byte rates that a software SFU
  (or the Scallop switch agent) would have to process.

Rather than materializing billions of packets, the generator produces
per-stream rate processes (per-second byte/packet counts broken down by SVC
layer) that are statistically consistent with the encoder model in
:mod:`repro.webrtc.encoder`, and derives the aggregate views from them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rtp.av1 import DecodeTarget
from .zoom_api import MeetingTrace, ZoomApiDataset

#: Per-layer share of a video stream's bitrate in the L1T3 encoder model
#: (base / mid / top temporal layer).
LAYER_BITRATE_SHARE = {0: 0.45, 1: 0.25, 2: 0.30}
#: Packet "type" labels as observed in Zoom's RTP extension header (Fig. 24).
LAYER_PACKET_TYPE = {0: "0x50ffff", 1: "0x57ffff", 2: "0x5f0000"}

DEFAULT_VIDEO_BITRATE_BPS = 2_200_000.0
DEFAULT_AUDIO_BITRATE_BPS = 50_000.0
VIDEO_PACKETS_PER_SECOND = 235.0
AUDIO_PACKETS_PER_SECOND = 50.0


@dataclass(frozen=True)
class StreamRateSample:
    """One second of one forwarded stream, broken down by SVC layer."""

    time_s: float
    bytes_by_layer: Dict[int, float]
    packets: float

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_by_layer.values())

    @property
    def rate_kbps(self) -> float:
        return self.total_bytes * 8.0 / 1000.0


@dataclass(frozen=True)
class ForwardedStream:
    """A single sender->receiver video stream as seen in the packet trace."""

    sender: int
    receiver: int
    samples: Tuple[StreamRateSample, ...]

    def rate_series_kbps(self) -> List[Tuple[float, float]]:
        return [(s.time_s, s.rate_kbps) for s in self.samples]

    def layer_series_kbps(self, layer: int) -> List[Tuple[float, float]]:
        return [(s.time_s, s.bytes_by_layer.get(layer, 0.0) * 8.0 / 1000.0) for s in self.samples]


@dataclass(frozen=True)
class CaptureSummary:
    """The Table 2 numbers for a synthetic capture."""

    duration_s: float
    zoom_packets: int
    zoom_packets_per_second: float
    zoom_flows: int
    zoom_bytes: int
    zoom_bitrate_bps: float
    rtp_media_streams: int


class SvcAdaptationTrace:
    """Generator for the single-meeting SVC adaptation example (Figs. 23/24).

    One sender transmits a video stream whose bitrate ramps up shortly after
    the meeting starts; the SFU later reduces the layers forwarded to two
    receivers at different points in time (emulating downlink congestion), as
    the paper observes in the campus trace.
    """

    def __init__(
        self,
        duration_s: float = 260.0,
        video_bitrate_bps: float = 650_000.0,
        ramp_up_at_s: float = 20.0,
        seed: int = 7,
    ) -> None:
        self.duration_s = duration_s
        self.video_bitrate_bps = video_bitrate_bps
        self.ramp_up_at_s = ramp_up_at_s
        self._rng = random.Random(seed)

    def sender_series(self) -> ForwardedStream:
        """The sender's outgoing stream (all layers, full quality)."""
        return self._make_stream(sender=1, receiver=0, reductions=[])

    def receiver_series(self, receiver: int, reduce_at_s: float, reduce_to: DecodeTarget) -> ForwardedStream:
        """The stream forwarded to one receiver, reduced at ``reduce_at_s``."""
        return self._make_stream(sender=1, receiver=receiver, reductions=[(reduce_at_s, reduce_to)])

    def _make_stream(
        self, sender: int, receiver: int, reductions: List[Tuple[float, DecodeTarget]]
    ) -> ForwardedStream:
        samples: List[StreamRateSample] = []
        for second in range(int(self.duration_s)):
            time_s = float(second)
            bitrate = self.video_bitrate_bps if time_s >= self.ramp_up_at_s else self.video_bitrate_bps * 0.25
            target = DecodeTarget.DT2
            for reduce_at, reduce_to in reductions:
                if time_s >= reduce_at:
                    target = reduce_to
            allowed_layers = [layer for layer in LAYER_BITRATE_SHARE if layer <= int(target)]
            noise = self._rng.uniform(0.9, 1.1)
            bytes_by_layer = {
                layer: bitrate / 8.0 * LAYER_BITRATE_SHARE[layer] * noise for layer in allowed_layers
            }
            packets = VIDEO_PACKETS_PER_SECOND * sum(
                LAYER_BITRATE_SHARE[layer] for layer in allowed_layers
            )
            samples.append(
                StreamRateSample(time_s=time_s, bytes_by_layer=bytes_by_layer, packets=packets)
            )
        return ForwardedStream(sender=sender, receiver=receiver, samples=tuple(samples))


class CampusPacketTrace:
    """A campus-scale packet-trace model derived from a Zoom-API dataset."""

    def __init__(
        self,
        dataset: ZoomApiDataset,
        video_bitrate_bps: float = DEFAULT_VIDEO_BITRATE_BPS,
        audio_bitrate_bps: float = DEFAULT_AUDIO_BITRATE_BPS,
        seed: int = 11,
    ) -> None:
        self.dataset = dataset
        self.video_bitrate_bps = video_bitrate_bps
        self.audio_bitrate_bps = audio_bitrate_bps
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ offered load

    def offered_load_series(
        self, start_s: float, duration_s: float, step_s: float = 900.0
    ) -> List[Tuple[float, float, float]]:
        """(time, media bits/s, control bits/s) offered to the SFU infrastructure.

        Media load is what a software SFU must process in user space; control
        load (RTCP feedback + STUN, about 0.35% of bytes per Table 1) is what
        the Scallop switch agent processes instead — the two curves of
        Figure 22.
        """
        series: List[Tuple[float, float, float]] = []
        time_s = start_s
        while time_s < start_s + duration_s:
            media_bps = 0.0
            for meeting in self.dataset.meetings:
                if not meeting.start_s <= time_s < meeting.end_s:
                    continue
                senders = meeting.concurrent_participants_at(time_s)
                video_senders = sum(
                    1
                    for p in meeting.participants
                    if p.video_fraction >= 0.1 and p.join_offset_s <= time_s - meeting.start_s < p.leave_offset_s
                )
                audio_senders = senders
                # uplink into the SFU plus replicated downlinks
                replication = max(meeting.max_participants - 1, 1)
                media_bps += video_senders * self.video_bitrate_bps * (1 + replication)
                media_bps += audio_senders * self.audio_bitrate_bps * (1 + replication)
            control_bps = media_bps * 0.0035
            series.append((time_s, media_bps, control_bps))
            time_s += step_s
        return series

    def peak_offered_load(self, step_s: float = 900.0) -> Tuple[float, float]:
        """(peak media bits/s, peak control bits/s) over the whole dataset."""
        horizon = self.dataset.config.duration_days * 86_400
        series = self.offered_load_series(self.dataset.config.start_epoch_s, horizon, step_s)
        if not series:
            return 0.0, 0.0
        return max(s[1] for s in series), max(s[2] for s in series)

    # ------------------------------------------------------------------ Table 2

    def capture_summary(self, duration_s: float = 12 * 3600.0, start_s: Optional[float] = None) -> CaptureSummary:
        """Summarize a capture window the way Table 2 does."""
        start = self.dataset.config.start_epoch_s if start_s is None else start_s
        step = 300.0
        total_bytes = 0.0
        total_packets = 0.0
        flows = set()
        streams = 0
        for meeting in self.dataset.meetings:
            overlap_start = max(meeting.start_s, start)
            overlap_end = min(meeting.end_s, start + duration_s)
            if overlap_end <= overlap_start:
                continue
            overlap = overlap_end - overlap_start
            n = meeting.max_participants
            sending = meeting.sending_streams()
            streams += sending
            for participant in meeting.participants:
                flows.add((meeting.meeting_id, participant.participant_index))
                video_share = participant.video_fraction
                audio_share = participant.audio_fraction
                up_bps = video_share * self.video_bitrate_bps + audio_share * self.audio_bitrate_bps
                down_bps = up_bps * (n - 1)
                total_bytes += (up_bps + down_bps) / 8.0 * overlap
                pps = (
                    video_share * VIDEO_PACKETS_PER_SECOND + audio_share * AUDIO_PACKETS_PER_SECOND
                ) * (1 + (n - 1))
                total_packets += pps * overlap
        return CaptureSummary(
            duration_s=duration_s,
            zoom_packets=int(total_packets),
            zoom_packets_per_second=total_packets / duration_s if duration_s else 0.0,
            zoom_flows=len(flows) * 2,  # one flow to and one from the SFU
            zoom_bytes=int(total_bytes),
            zoom_bitrate_bps=total_bytes * 8.0 / duration_s if duration_s else 0.0,
            rtp_media_streams=streams,
        )
