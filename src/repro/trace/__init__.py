"""Synthetic campus trace substrates (Zoom API dataset, packet trace, workload)."""

from .zoom_api import (
    MeetingTrace,
    ParticipantActivity,
    ZoomApiDataset,
    ZoomApiDatasetConfig,
)
from .packet_trace import (
    CampusPacketTrace,
    CaptureSummary,
    ForwardedStream,
    StreamRateSample,
    SvcAdaptationTrace,
)
from .workload import (
    InfrastructureRequirement,
    infrastructure_requirements,
    weekly_byte_comparison,
)

__all__ = [
    "MeetingTrace",
    "ParticipantActivity",
    "ZoomApiDataset",
    "ZoomApiDatasetConfig",
    "CampusPacketTrace",
    "CaptureSummary",
    "ForwardedStream",
    "StreamRateSample",
    "SvcAdaptationTrace",
    "InfrastructureRequirement",
    "infrastructure_requirements",
    "weekly_byte_comparison",
]
