"""Synthetic campus Zoom-API dataset generator (paper Appendix B).

The paper analyzes 19,704 meetings collected from a university Zoom account
over two weeks (October 17-30, 2022) and uses the dataset through aggregate
views only: streams per meeting vs. participants (Figure 2), concurrent
meetings and participants over time (Figures 20, 21), and per-meeting media
composition feeding the capacity and workload analyses.  This module builds a
statistically similar synthetic dataset:

* meeting arrivals follow a diurnal, weekday-heavy profile,
* 60% of meetings are two-party (the fraction the paper reports),
* larger meetings follow a heavy-tailed size distribution up to a few hundred
  participants (classes, town halls),
* meeting durations are log-normal with a median around half an hour, and
* each participant's audio/video/screen activity is drawn per meeting so that
  stream counts can exceed the 2-per-participant bound when screens are
  shared, as the paper observes.

Every draw uses an explicit seed, so datasets are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

#: Fraction of meetings with exactly two participants (paper §6.1).
TWO_PARTY_FRACTION = 0.60

#: Hour-of-day weights for meeting starts (campus working-hours profile).
DIURNAL_WEIGHTS = [
    0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 8.0, 9.0, 8.5,
    7.0, 8.0, 9.0, 8.5, 7.5, 5.0, 3.0, 2.5, 2.0, 1.5, 1.0, 0.5,
]

#: Day-of-week weights (Monday..Sunday).
WEEKDAY_WEIGHTS = [1.0, 1.05, 1.05, 1.0, 0.85, 0.15, 0.1]


@dataclass(frozen=True)
class ParticipantActivity:
    """Media activity of one participant within a meeting."""

    participant_index: int
    join_offset_s: float
    leave_offset_s: float
    audio_fraction: float
    video_fraction: float
    screen_fraction: float

    def active_streams(self, activity_threshold: float = 0.1) -> int:
        """Streams this participant contributes that are active at least
        ``activity_threshold`` of the meeting duration (Figure 2's rule)."""
        count = 0
        if self.audio_fraction >= activity_threshold:
            count += 1
        if self.video_fraction >= activity_threshold:
            count += 1
        if self.screen_fraction >= activity_threshold:
            count += 1
        return count


@dataclass(frozen=True)
class MeetingTrace:
    """One meeting of the synthetic Zoom-API dataset."""

    meeting_id: str
    start_s: float
    duration_s: float
    participants: Tuple[ParticipantActivity, ...]

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def max_participants(self) -> int:
        return len(self.participants)

    def sending_streams(self, activity_threshold: float = 0.1) -> int:
        """Distinct media streams sent *to* the SFU by all participants."""
        return sum(p.active_streams(activity_threshold) for p in self.participants)

    def streams_at_sfu(self, activity_threshold: float = 0.1) -> int:
        """Total streams the SFU handles: each sent stream is also forwarded
        to every other participant (the quadratic term of §2.1)."""
        n = self.max_participants
        sent = self.sending_streams(activity_threshold)
        return sent * n  # sent in + sent * (n - 1) out

    def concurrent_participants_at(self, time_s: float) -> int:
        if not self.start_s <= time_s < self.end_s:
            return 0
        offset = time_s - self.start_s
        return sum(1 for p in self.participants if p.join_offset_s <= offset < p.leave_offset_s)


@dataclass
class ZoomApiDatasetConfig:
    """Knobs of the synthetic dataset generator."""

    num_meetings: int = 19_704
    duration_days: int = 14
    start_epoch_s: float = 0.0
    start_weekday: int = 0               # 0 = Monday
    two_party_fraction: float = TWO_PARTY_FRACTION
    mean_duration_min: float = 42.0
    seed: int = 2022


class ZoomApiDataset:
    """A generated campus dataset plus the aggregate views the paper uses."""

    def __init__(self, meetings: Sequence[MeetingTrace], config: ZoomApiDatasetConfig) -> None:
        self.meetings: List[MeetingTrace] = list(meetings)
        self.config = config

    # ------------------------------------------------------------------ generation

    @classmethod
    def generate(cls, config: Optional[ZoomApiDatasetConfig] = None) -> "ZoomApiDataset":
        config = config or ZoomApiDatasetConfig()
        rng = random.Random(config.seed)
        meetings: List[MeetingTrace] = []
        for index in range(config.num_meetings):
            start = cls._draw_start_time(rng, config)
            duration = cls._draw_duration(rng, config)
            size = cls._draw_size(rng, config)
            participants = tuple(
                cls._draw_participant(rng, i, duration, size) for i in range(size)
            )
            meetings.append(
                MeetingTrace(
                    meeting_id=f"meeting-{index:06d}",
                    start_s=start,
                    duration_s=duration,
                    participants=participants,
                )
            )
        meetings.sort(key=lambda m: m.start_s)
        return cls(meetings, config)

    @staticmethod
    def _draw_start_time(rng: random.Random, config: ZoomApiDatasetConfig) -> float:
        day_weights = [
            WEEKDAY_WEIGHTS[(config.start_weekday + day) % 7] for day in range(config.duration_days)
        ]
        day = rng.choices(range(config.duration_days), weights=day_weights)[0]
        hour = rng.choices(range(24), weights=DIURNAL_WEIGHTS)[0]
        within_hour = rng.uniform(0, SECONDS_PER_HOUR)
        return config.start_epoch_s + day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR + within_hour

    @staticmethod
    def _draw_duration(rng: random.Random, config: ZoomApiDatasetConfig) -> float:
        # log-normal with the configured mean, clipped to [2 min, 4 h]
        mu = math.log(config.mean_duration_min) - 0.3
        minutes = rng.lognormvariate(mu, 0.75)
        return min(max(minutes, 2.0), 240.0) * 60.0

    @staticmethod
    def _draw_size(rng: random.Random, config: ZoomApiDatasetConfig) -> int:
        if rng.random() < config.two_party_fraction:
            return 2
        # heavy-tailed multi-party sizes: mostly 3-12, tail to ~300 (lectures)
        roll = rng.random()
        if roll < 0.70:
            return rng.randint(3, 12)
        if roll < 0.92:
            return rng.randint(13, 30)
        if roll < 0.99:
            return rng.randint(31, 100)
        return rng.randint(101, 300)

    @staticmethod
    def _draw_participant(
        rng: random.Random, index: int, duration_s: float, meeting_size: int
    ) -> ParticipantActivity:
        if index == 0:
            # the host opens the meeting and keeps it alive until the end
            join, leave = 0.0, duration_s
        else:
            join = rng.uniform(0, min(300.0, duration_s * 0.2))
            leave = duration_s - rng.uniform(0, min(300.0, duration_s * 0.2))
        audio = rng.uniform(0.7, 1.0)
        # video is shared less in large meetings (lectures)
        video_probability = 0.9 if meeting_size <= 8 else (0.6 if meeting_size <= 30 else 0.3)
        video = rng.uniform(0.4, 1.0) if rng.random() < video_probability else rng.uniform(0.0, 0.08)
        screen = rng.uniform(0.2, 0.9) if rng.random() < (0.25 if index == 0 else 0.05) else 0.0
        return ParticipantActivity(
            participant_index=index,
            join_offset_s=join,
            leave_offset_s=max(join + 60.0, leave),
            audio_fraction=audio,
            video_fraction=video,
            screen_fraction=screen,
        )

    # ------------------------------------------------------------------ aggregate views

    def streams_per_meeting(
        self, activity_threshold: float = 0.1
    ) -> List[Tuple[int, int]]:
        """(max participants, streams at SFU) per meeting — Figure 2's scatter."""
        return [
            (meeting.max_participants, meeting.streams_at_sfu(activity_threshold))
            for meeting in self.meetings
        ]

    def streams_per_meeting_summary(
        self, activity_threshold: float = 0.1
    ) -> Dict[int, Tuple[int, float, int]]:
        """Per participant-count: (min, median, max) streams at the SFU."""
        buckets: Dict[int, List[int]] = {}
        for participants, streams in self.streams_per_meeting(activity_threshold):
            buckets.setdefault(participants, []).append(streams)
        summary: Dict[int, Tuple[int, float, int]] = {}
        for participants, values in buckets.items():
            values.sort()
            median = values[len(values) // 2]
            summary[participants] = (values[0], float(median), values[-1])
        return summary

    def concurrency_series(self, step_s: float = 900.0) -> List[Tuple[float, int, int]]:
        """(time, concurrent meetings, concurrent participants) — Figures 20/21."""
        if not self.meetings:
            return []
        horizon = self.config.duration_days * SECONDS_PER_DAY
        series: List[Tuple[float, int, int]] = []
        time_s = self.config.start_epoch_s
        end = self.config.start_epoch_s + horizon
        # bucket meetings by coarse start time to keep the sweep near-linear
        while time_s < end:
            active = [m for m in self.meetings if m.start_s <= time_s < m.end_s]
            participants = sum(m.concurrent_participants_at(time_s) for m in active)
            series.append((time_s, len(active), participants))
            time_s += step_s
        return series

    def peak_concurrency(self, step_s: float = 900.0) -> Tuple[int, int]:
        """(peak concurrent meetings, peak concurrent participants)."""
        series = self.concurrency_series(step_s)
        if not series:
            return 0, 0
        return max(s[1] for s in series), max(s[2] for s in series)

    def two_party_share(self) -> float:
        if not self.meetings:
            return 0.0
        return sum(1 for m in self.meetings if m.max_participants == 2) / len(self.meetings)
