"""Workload models derived from the campus traces.

These helpers turn the synthetic Zoom-API dataset into the inputs the
capacity and infrastructure analyses need: how many SFU servers (or switches)
a campus-scale or provider-scale deployment requires, and what share of a
server's capacity the peak load consumes (the Figure 22 discussion in
Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.capacity import (
    MeetingShape,
    ScallopCapacityModel,
    SoftwareSfuCapacityModel,
)
from .packet_trace import CampusPacketTrace
from .zoom_api import ZoomApiDataset


@dataclass(frozen=True)
class InfrastructureRequirement:
    """How much SFU infrastructure a workload needs under each approach."""

    peak_concurrent_meetings: int
    peak_concurrent_participants: int
    peak_media_bps: float
    peak_control_bps: float
    software_servers_needed: int
    software_nic_share: float        # share of one 40 Gb/s server NIC at peak
    scallop_switches_needed: int
    scallop_agent_share: float       # share of the switch CPU path at peak


def infrastructure_requirements(
    dataset: ZoomApiDataset,
    trace: Optional[CampusPacketTrace] = None,
    server_nic_bps: float = 40e9,
    agent_capacity_bps: float = 1e9,
) -> InfrastructureRequirement:
    """Size the infrastructure for a campus workload (software vs. Scallop)."""
    trace = trace or CampusPacketTrace(dataset)
    peak_meetings, peak_participants = dataset.peak_concurrency()
    peak_media_bps, peak_control_bps = trace.peak_offered_load()

    software = SoftwareSfuCapacityModel()
    scallop = ScallopCapacityModel()

    # approximate the meeting mix with the dataset's mean meeting size
    sizes = [m.max_participants for m in dataset.meetings] or [2]
    mean_size = max(2, round(sum(sizes) / len(sizes)))
    shape = MeetingShape(participants=mean_size)

    software_meeting_capacity = software.max_meetings(shape)
    scallop_meeting_capacity = scallop.best_case_meetings(shape)

    software_servers = max(
        1,
        _ceil_div(peak_meetings, software_meeting_capacity),
        _ceil_div(peak_media_bps, server_nic_bps),
    )
    scallop_switches = max(1, _ceil_div(peak_meetings, scallop_meeting_capacity))

    return InfrastructureRequirement(
        peak_concurrent_meetings=peak_meetings,
        peak_concurrent_participants=peak_participants,
        peak_media_bps=peak_media_bps,
        peak_control_bps=peak_control_bps,
        software_servers_needed=software_servers,
        software_nic_share=peak_media_bps / server_nic_bps,
        scallop_switches_needed=scallop_switches,
        scallop_agent_share=peak_control_bps / agent_capacity_bps,
    )


def weekly_byte_comparison(
    dataset: ZoomApiDataset,
    trace: Optional[CampusPacketTrace] = None,
    step_s: float = 3600.0,
    duration_s: float = 7 * 86_400.0,
) -> List[Tuple[float, float, float]]:
    """The Figure 22 series: (time, software-SFU bits/s, switch-agent bits/s)."""
    trace = trace or CampusPacketTrace(dataset)
    return trace.offered_load_series(dataset.config.start_epoch_s, duration_s, step_s)


def _ceil_div(numerator: float, denominator: float) -> int:
    if denominator <= 0:
        return 0
    return int(numerator // denominator) + (1 if numerator % denominator else 0)
