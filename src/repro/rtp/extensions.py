"""RTP header-extension elements (RFC 8285 one-byte and two-byte profiles).

Scallop's data plane needs to walk the extension block to find the AV1
dependency-descriptor element (see Appendix E of the paper).  This module
implements the element-level encoding so that the data-plane parser model in
:mod:`repro.dataplane.parser` can traverse the very same byte layout the
hardware would, including padding bytes and variable element lengths.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .packet import (
    EXTENSION_PROFILE_ONE_BYTE,
    EXTENSION_PROFILE_TWO_BYTE,
    RtpHeaderExtension,
)

#: Extension ids used throughout the reproduction (negotiated via SDP in real
#: WebRTC; we keep them fixed for clarity).
EXT_ID_AV1_DEPENDENCY_DESCRIPTOR = 12
EXT_ID_TRANSPORT_SEQUENCE_NUMBER = 3
EXT_ID_AUDIO_LEVEL = 1
EXT_ID_MID = 4


class ExtensionParseError(ValueError):
    """Raised when an extension block cannot be decoded."""


@dataclass(frozen=True)
class ExtensionElement:
    """A single (id, data) element inside the RTP header-extension block."""

    ext_id: int
    data: bytes

    def __post_init__(self) -> None:
        if not 1 <= self.ext_id <= 255:
            raise ValueError(f"extension id out of range: {self.ext_id}")


def _needs_two_byte(elements: Iterable[ExtensionElement]) -> bool:
    for element in elements:
        if element.ext_id > 14 or len(element.data) == 0 or len(element.data) > 16:
            return True
    return False


def encode_extensions(elements: List[ExtensionElement]) -> RtpHeaderExtension:
    """Encode extension elements into an RTP header-extension block.

    The one-byte profile is used when every element fits (id <= 14 and
    1..16 bytes of data); otherwise the two-byte profile is selected, exactly
    as libwebrtc does.
    """
    two_byte = _needs_two_byte(elements)
    out = bytearray()
    for element in elements:
        if two_byte:
            out += struct.pack("!BB", element.ext_id, len(element.data))
            out += element.data
        else:
            out += bytes([((element.ext_id & 0x0F) << 4) | (len(element.data) - 1)])
            out += element.data
    while len(out) % 4 != 0:
        out += b"\x00"
    profile = EXTENSION_PROFILE_TWO_BYTE if two_byte else EXTENSION_PROFILE_ONE_BYTE
    return RtpHeaderExtension(profile=profile, data=bytes(out))


def decode_extensions(extension: Optional[RtpHeaderExtension]) -> List[ExtensionElement]:
    """Decode an RTP header-extension block into its elements.

    Unknown profiles yield an empty list (the SFU simply cannot look inside),
    mirroring how hardware would skip an unparseable block.
    """
    if extension is None:
        return []
    if extension.profile == EXTENSION_PROFILE_ONE_BYTE:
        return _decode_one_byte(extension.data)
    if (extension.profile & 0xFFF0) == EXTENSION_PROFILE_TWO_BYTE:
        return _decode_two_byte(extension.data)
    return []


def _decode_one_byte(data: bytes) -> List[ExtensionElement]:
    elements: List[ExtensionElement] = []
    offset = 0
    while offset < len(data):
        byte = data[offset]
        if byte == 0:  # padding
            offset += 1
            continue
        ext_id = byte >> 4
        length = (byte & 0x0F) + 1
        offset += 1
        if ext_id == 15:
            # id 15 is reserved and terminates parsing in the one-byte profile
            break
        if offset + length > len(data):
            raise ExtensionParseError("truncated one-byte extension element")
        elements.append(ExtensionElement(ext_id=ext_id, data=data[offset : offset + length]))
        offset += length
    return elements


def _decode_two_byte(data: bytes) -> List[ExtensionElement]:
    elements: List[ExtensionElement] = []
    offset = 0
    while offset < len(data):
        if data[offset] == 0:  # padding
            offset += 1
            continue
        if offset + 2 > len(data):
            raise ExtensionParseError("truncated two-byte extension header")
        ext_id = data[offset]
        length = data[offset + 1]
        offset += 2
        if offset + length > len(data):
            raise ExtensionParseError("truncated two-byte extension element")
        elements.append(ExtensionElement(ext_id=ext_id, data=data[offset : offset + length]))
        offset += length
    return elements


def extensions_by_id(extension: Optional[RtpHeaderExtension]) -> Dict[int, bytes]:
    """Return a mapping of extension id to element payload."""
    return {element.ext_id: element.data for element in decode_extensions(extension)}


def find_extension(
    extension: Optional[RtpHeaderExtension], ext_id: int
) -> Optional[bytes]:
    """Return the payload of the element with ``ext_id``, or ``None``."""
    for element in decode_extensions(extension):
        if element.ext_id == ext_id:
            return element.data
    return None


def walk_extension_elements(
    extension: Optional[RtpHeaderExtension],
) -> List[Tuple[int, int, int]]:
    """Yield ``(depth, ext_id, length)`` for each element in parse order.

    This mirrors the depth-aware parse tree described in Appendix E: the
    hardware parser has a *landing state* per depth and uses lookahead to
    decide what element type comes next.  The data-plane model uses the depth
    values to enforce its maximum parsing depth.
    """
    result: List[Tuple[int, int, int]] = []
    for depth, element in enumerate(decode_extensions(extension)):
        result.append((depth, element.ext_id, len(element.data)))
    return result
