"""Wire-native RTP packet views: packed buffers with struct-offset accessors.

Scallop's premise is that an SFU is a per-packet *header transformation*: the
switch never looks at media payload bytes, it reads a handful of header fields
and rewrites two of them (sequence number, SSRC) in place.  The object model in
:mod:`repro.rtp.packet` materializes a full :class:`~repro.rtp.packet.RtpPacket`
dataclass per packet, which is convenient for protocol logic but is pure
overhead on the forwarding fast path — per replica, per packet.

:class:`PacketView` is the wire-native alternative: a thin view over one
contiguous ``bytes``/``bytearray`` buffer holding the packet exactly as it
would appear on the wire (RFC 3550 layout).  Header fields are decoded lazily
via fixed struct offsets and nothing else is parsed unless asked for:

======================  =======================================================
offset (bytes)          field
======================  =======================================================
0                       ``V(2) P(1) X(1) CC(4)`` — version/padding/ext/CSRCs
1                       ``M(1) PT(7)`` — marker / payload type
2..3                    sequence number (big-endian u16)
4..7                    timestamp (big-endian u32)
8..11                   SSRC (big-endian u32)
12..12+4*CC             CSRC list
then (if X)             ``profile(u16) length(u16)`` + ``4*length`` ext bytes
then                    payload (opaque to the SFU)
======================  =======================================================

Mutators (:meth:`PacketView.set_sequence_number`, :meth:`~PacketView.set_ssrc`,
:meth:`~PacketView.set_timestamp`, :meth:`~PacketView.set_frame_number`) patch
the buffer **in place** — they require a mutable ``bytearray`` buffer and are
what the egress pipeline uses instead of ``dataclasses.replace`` copies.

``PacketView`` round-trips with the object codec
(:meth:`PacketView.to_packet` / :meth:`PacketView.from_packet`) and is
property-tested byte-identical against it.  One deliberate asymmetry carried
over from :meth:`RtpPacket.parse`: a view reports the raw on-wire ``size``
including any padding bytes, while ``to_packet`` strips padding (the object
codec's canonical form).  The simulated endpoints never emit padded packets,
so the two representations agree everywhere they meet.

A view may also be *truncated*: the zero-pickle shard transport
(:mod:`repro.dataplane.shardcodec`) ships only the header region across
process boundaries and reconstructs a view whose buffer ends at
``header_length`` — every header accessor still works, ``payload`` is empty,
and the datagram's true wire size travels out of band.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple, Union

from .packet import (
    RTP_HEADER_LEN,
    RTP_VERSION,
    SEQ_MOD,
    RtpHeaderExtension,
    RtpPacket,
    RtpParseError,
)

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_EXT_HEADER = struct.Struct("!HH")
#: The entire 12-byte fixed header in one precompiled struct:
#: ``first_byte, second_byte, sequence_number, timestamp, ssrc``.
_FIXED_HEADER = struct.Struct("!BBHII")

Buffer = Union[bytes, bytearray]


class PacketView:
    """A lazily-parsed view over one RTP packet's wire bytes.

    The buffer is shared, never copied: replicas that need no rewrite reuse
    the same view, and rewritten replicas copy the buffer once and patch it
    in place (:meth:`with_sequence_number`).
    """

    __slots__ = ("buf", "_header_len")

    def __init__(self, buf: Buffer) -> None:
        if len(buf) < RTP_HEADER_LEN:
            raise RtpParseError("buffer shorter than RTP fixed header")
        if buf[0] >> 6 != RTP_VERSION:
            raise RtpParseError(f"unsupported RTP version {buf[0] >> 6}")
        self.buf = buf
        self._header_len: Optional[int] = None

    # -- header accessors (fixed struct offsets, no allocation) ----------------

    @property
    def padding(self) -> bool:
        return bool(self.buf[0] & 0x20)

    @property
    def has_extension(self) -> bool:
        return bool(self.buf[0] & 0x10)

    @property
    def csrc_count(self) -> int:
        return self.buf[0] & 0x0F

    @property
    def marker(self) -> bool:
        return bool(self.buf[1] & 0x80)

    @property
    def payload_type(self) -> int:
        return self.buf[1] & 0x7F

    @property
    def sequence_number(self) -> int:
        return _U16.unpack_from(self.buf, 2)[0]

    @property
    def timestamp(self) -> int:
        return _U32.unpack_from(self.buf, 4)[0]

    @property
    def ssrc(self) -> int:
        return _U32.unpack_from(self.buf, 8)[0]

    def fixed_fields(self) -> Tuple[int, int, int, int, int]:
        """All five fixed-header fields in one struct pass:
        ``(first_byte, second_byte, sequence_number, timestamp, ssrc)``.

        One precompiled unpack replaces several chained property reads on
        paths that need multiple fields per packet — the SRTP profile's
        keystream derivation and the parse-key fast path both use it.
        """
        return _FIXED_HEADER.unpack_from(self.buf, 0)

    @property
    def csrcs(self) -> Tuple[int, ...]:
        return tuple(
            _U32.unpack_from(self.buf, RTP_HEADER_LEN + 4 * index)[0]
            for index in range(self.csrc_count)
        )

    # -- derived layout ---------------------------------------------------------

    @property
    def header_length(self) -> int:
        """Bytes of fixed header + CSRC list + extension block (lazy, cached)."""
        length = self._header_len
        if length is None:
            length = RTP_HEADER_LEN + 4 * self.csrc_count
            if self.has_extension:
                if len(self.buf) < length + 4:
                    raise RtpParseError("truncated extension header")
                _profile, ext_words = _EXT_HEADER.unpack_from(self.buf, length)
                length += 4 + 4 * ext_words
                if len(self.buf) < length:
                    raise RtpParseError("truncated extension data")
            self._header_len = length
        return length

    @property
    def extension_profile(self) -> Optional[int]:
        if not self.has_extension:
            return None
        return _U16.unpack_from(self.buf, RTP_HEADER_LEN + 4 * self.csrc_count)[0]

    def extension_bytes(self) -> bytes:
        """The raw extension element bytes (empty when no extension).

        Always returns ``bytes`` (never ``bytearray``) so the result is
        hashable and can key the parser's memoized-parse cache directly.
        """
        if not self.has_extension:
            return b""
        start = RTP_HEADER_LEN + 4 * self.csrc_count + 4
        return bytes(self.buf[start : self.header_length])

    @property
    def extension(self) -> Optional[RtpHeaderExtension]:
        """The extension block as the object codec's type (built on demand)."""
        profile = self.extension_profile
        if profile is None:
            return None
        return RtpHeaderExtension(profile=profile, data=self.extension_bytes())

    def header_bytes(self) -> bytes:
        """The full header region (what the shard transport ships)."""
        return bytes(self.buf[: self.header_length])

    def parse_key(self) -> tuple:
        """The memoized-parse cache key, built in one pass over the buffer.

        Exactly the tuple the object path's
        :meth:`~repro.dataplane.parser.IngressParser.parse_rtp_cached` uses —
        ``(ssrc, payload_type[, profile, extension bytes])`` — but assembled
        with direct offset reads instead of chained properties, since this
        runs once per packet on the wire fast path.
        """
        buf = self.buf
        first, second, _seq, _ts, ssrc = _FIXED_HEADER.unpack_from(buf, 0)
        payload_type = second & 0x7F
        if not first & 0x10:
            return (ssrc, payload_type)
        base = RTP_HEADER_LEN + 4 * (first & 0x0F)
        profile, ext_words = _EXT_HEADER.unpack_from(buf, base)
        start = base + 4
        return (ssrc, payload_type, profile, bytes(buf[start : start + 4 * ext_words]))

    @property
    def payload(self) -> bytes:
        """Raw payload bytes (padding not stripped; empty on truncated views)."""
        return bytes(self.buf[self.header_length :])

    @property
    def size(self) -> int:
        """On-wire size in bytes of the underlying buffer."""
        return len(self.buf)

    def is_truncated(self) -> bool:
        """True when the buffer holds only the header region (shard transport)."""
        return len(self.buf) <= self.header_length

    # -- in-place rewriting ------------------------------------------------------

    def set_sequence_number(self, seq: int) -> None:
        """Rewrite the sequence number in place (mutable buffers only)."""
        _U16.pack_into(self.buf, 2, seq % SEQ_MOD)

    def set_timestamp(self, timestamp: int) -> None:
        _U32.pack_into(self.buf, 4, timestamp & 0xFFFFFFFF)

    def set_ssrc(self, ssrc: int) -> None:
        _U32.pack_into(self.buf, 8, ssrc & 0xFFFFFFFF)

    def set_frame_number(self, frame_number: int, dd_ext_id: int) -> None:
        """Rewrite the AV1 dependency descriptor's frame number in place.

        The DD's mandatory prefix is ``flags(u8) frame_number(u16)``, so the
        frame number sits 1 byte into the element carrying ``dd_ext_id``.
        Raises :class:`~repro.rtp.packet.RtpParseError` when the packet has no
        such element.
        """
        offset = self._element_offset(dd_ext_id)
        if offset is None:
            raise RtpParseError("no dependency descriptor element to rewrite")
        _U16.pack_into(self.buf, offset + 1, frame_number % SEQ_MOD)

    def _element_offset(self, ext_id: int) -> Optional[int]:
        """Byte offset of the element ``ext_id``'s data inside the buffer,
        walking the RFC 8285 one-/two-byte layouts without materializing
        element objects."""
        profile = self.extension_profile
        if profile is None:
            return None
        start = RTP_HEADER_LEN + 4 * self.csrc_count + 4
        end = self.header_length
        buf = self.buf
        offset = start
        if profile == 0xBEDE:  # one-byte profile
            while offset < end:
                byte = buf[offset]
                if byte == 0:
                    offset += 1
                    continue
                eid = byte >> 4
                if eid == 15:
                    return None
                length = (byte & 0x0F) + 1
                if eid == ext_id:
                    return offset + 1
                offset += 1 + length
            return None
        if (profile & 0xFFF0) == 0x1000:  # two-byte profile
            while offset < end:
                if buf[offset] == 0:
                    offset += 1
                    continue
                if offset + 2 > end:
                    return None
                eid = buf[offset]
                length = buf[offset + 1]
                if eid == ext_id:
                    return offset + 2
                offset += 2 + length
            return None
        return None

    # -- copy-on-rewrite helpers -------------------------------------------------

    def mutable_copy(self) -> "PacketView":
        """A view over a fresh ``bytearray`` copy of this buffer."""
        return PacketView(bytearray(self.buf))

    def with_sequence_number(self, seq: int) -> "PacketView":
        """Copy the buffer once and patch the sequence number in place —
        the wire path's replacement for ``RtpPacket.with_sequence_number``.

        The copy skips ``__init__`` (the source view already validated the
        buffer, and patching two bytes at a fixed offset cannot invalidate
        it) and inherits the cached header length, so per-replica rewriting
        costs one buffer copy and one ``pack_into``.
        """
        buf = bytearray(self.buf)
        _U16.pack_into(buf, 2, seq % SEQ_MOD)
        copy = PacketView.__new__(PacketView)
        copy.buf = buf
        copy._header_len = self._header_len
        return copy

    def with_ssrc(self, ssrc: int) -> "PacketView":
        copy = PacketView(bytearray(self.buf))
        _U32.pack_into(copy.buf, 8, ssrc & 0xFFFFFFFF)
        return copy

    # -- interop with the object codec --------------------------------------------

    def to_packet(self) -> RtpPacket:
        """Decode once into the object representation (reference codec)."""
        return RtpPacket.parse(bytes(self.buf))

    @classmethod
    def from_packet(cls, packet: RtpPacket) -> "PacketView":
        """Encode an object packet once into a wire-native view."""
        return cls(packet.serialize())

    # -- protocol plumbing ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.buf)

    def __bytes__(self) -> bytes:
        return bytes(self.buf)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PacketView):
            return bytes(self.buf) == bytes(other.buf)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(bytes(self.buf))

    def __reduce__(self):
        # rarely pickled (the shard transport ships raw header bytes instead),
        # but keep views picklable for API parity with the object model
        return (PacketView, (bytes(self.buf),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketView(pt={self.payload_type}, seq={self.sequence_number}, "
            f"ssrc={self.ssrc:#x}, len={len(self.buf)})"
        )


def pack_rtp_header(packet: RtpPacket) -> bytes:
    """Serialize only the header region of an object packet.

    Used by the shard transport to ship object-model ingress without paying
    for (or leaking) the payload bytes: the header is everything the
    datapath reads.
    """
    first = (RTP_VERSION << 6) | (int(packet.padding) << 5) | len(packet.csrcs)
    if packet.extension is not None:
        first |= 1 << 4
    second = (int(packet.marker) << 7) | packet.payload_type
    out = bytearray(
        struct.pack(
            "!BBHII",
            first,
            second,
            packet.sequence_number,
            packet.timestamp,
            packet.ssrc,
        )
    )
    for csrc in packet.csrcs:
        out += _U32.pack(csrc)
    if packet.extension is not None:
        out += _EXT_HEADER.pack(packet.extension.profile, len(packet.extension.data) // 4)
        out += packet.extension.data
    return bytes(out)
