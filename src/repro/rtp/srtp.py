"""SRTP-shaped per-packet protection: keystream cipher + truncated-HMAC auth.

This module gives the behavioural model per-packet work with the *shape* of
RFC 3711 SRTP, which is what a production SFU actually spends datapath
cycles on:

* the RTP header (including the extension the AV1 dependency descriptor
  rides in) stays **cleartext** — exactly the property Scallop depends on,
  since the switch pipeline can only parse and match cleartext fields;
* the payload is XORed with a per-packet **keystream** derived from the
  session key and the packet's (SSRC, sequence number) pair — the role the
  IV/packet-index construction plays in RFC 3711 §4.1;
* a **truncated HMAC-SHA1 authentication tag** (4 bytes, the RFC 3711 §4.2
  default for bandwidth-constrained profiles is 4 or 10) over
  ``header || ciphertext`` is appended, and verification uses a
  constant-time compare;
* distinct **session keys** for the client->SFU (ingress) and SFU->client
  (egress) directions are derived from one master key by a labelled
  HMAC-SHA1 KDF, standing in for the RFC 3711 §4.3 key derivation labels.

It is intentionally *not* interoperable SRTP: the cipher is SHAKE-128 as a
keystream generator rather than AES-CTR (the container has no AES
primitive outside ``ssl``), there is no ROC/replay window, and the KDF
labels are ad hoc.  The paper itself notes (§8) that the prototype does
**not** terminate SRTP on the switch — encryption-in-hardware is future
work — so this profile exists to make the *CPU cost model* realistic (it
moves the Amdahl knee of the shard executors toward where a software SFU
sits), not to claim the P4 pipeline does packet cryptography.

Everything is stdlib (``hmac``/``hashlib``) and the profile is stateless
per packet: protecting the same bytes always yields the same bytes, so the
serial, thread, and process executors remain byte-identical under SRTP,
and the profile pickles into process-executor control-plane snapshots.

The ``rounds`` knob repeats the keystream derivation, scaling per-packet
CPU work; the output bytes differ per setting, but at any fixed ``rounds``
they stay fully deterministic (so executors still agree byte for byte).
This is the lever the parallelism benchmark sweeps to locate the
thread-vs-serial crossover.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Optional

from .wire import PacketView

__all__ = ["AUTH_TAG_BYTES", "SrtpProfile"]

#: RFC 3711 §4.2 allows truncating the HMAC-SHA1 tag; 4 bytes is the
#: low-bandwidth profile (RFC 3711 §3.4 registers 32-bit tags for use with
#: the short authentication profile).
AUTH_TAG_BYTES = 4


def _derive_key(master_key: bytes, label: bytes) -> bytes:
    """Labelled key derivation (stands in for RFC 3711 §4.3's AES-CM KDF)."""
    return hmac.new(master_key, b"scallop-srtp/" + label, hashlib.sha1).digest()


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    n = len(data)
    if not n:
        return b""
    return (int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")).to_bytes(n, "big")


@dataclass(frozen=True)
class SrtpProfile:
    """Per-direction SRTP-shaped protection derived from one master key.

    ``rounds`` >= 1 scales the keystream-derivation work per packet (see
    module docstring); ``auth_tag_bytes`` is the truncated tag length.
    Instances are immutable, hashable on the master key, and picklable.
    """

    master_key: bytes
    rounds: int = 1
    auth_tag_bytes: int = AUTH_TAG_BYTES
    # Derived per-direction session keys (RFC 3711 keeps cipher and auth
    # keys distinct; so do we, per direction).
    _ingress_cipher: bytes = field(init=False, repr=False, compare=False, default=b"")
    _ingress_auth: bytes = field(init=False, repr=False, compare=False, default=b"")
    _egress_cipher: bytes = field(init=False, repr=False, compare=False, default=b"")
    _egress_auth: bytes = field(init=False, repr=False, compare=False, default=b"")

    def __post_init__(self) -> None:
        if not self.master_key:
            raise ValueError("SrtpProfile needs a non-empty master key")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if not 1 <= self.auth_tag_bytes <= hashlib.sha1().digest_size:
            raise ValueError(f"auth_tag_bytes must be in [1, 20], got {self.auth_tag_bytes}")
        object.__setattr__(self, "_ingress_cipher", _derive_key(self.master_key, b"ingress-cipher"))
        object.__setattr__(self, "_ingress_auth", _derive_key(self.master_key, b"ingress-auth"))
        object.__setattr__(self, "_egress_cipher", _derive_key(self.master_key, b"egress-cipher"))
        object.__setattr__(self, "_egress_auth", _derive_key(self.master_key, b"egress-auth"))

    # ------------------------------------------------------------------ keystream

    def _keystream(self, cipher_key: bytes, ssrc: int, seq: int, length: int) -> bytes:
        """Deterministic per-packet keystream, iterated ``rounds`` times.

        Keyed on (session key, SSRC, sequence number) — the per-packet
        uniqueness the RFC gets from its IV — and stateless, which is what
        keeps protection identical across executors and across retries.
        """
        if not length:
            return b""
        seed = cipher_key + ssrc.to_bytes(4, "big") + (seq & 0xFFFF).to_bytes(2, "big")
        stream = hashlib.shake_128(seed).digest(length)
        for _ in range(self.rounds - 1):
            stream = hashlib.shake_128(cipher_key + stream).digest(length)
        return stream

    # ------------------------------------------------------------------ core protect/verify

    def _protect(self, buf, cipher_key: bytes, auth_key: bytes) -> bytes:
        """``header || E(payload) || tag`` over a plaintext RTP buffer."""
        view = buf if isinstance(buf, PacketView) else PacketView(buf)
        raw = bytes(view.buf)
        header_len = view.header_length
        _first, _second, seq, _ts, ssrc = view.fixed_fields()
        header = raw[:header_len]
        payload = raw[header_len:]
        ciphertext = _xor_bytes(payload, self._keystream(cipher_key, ssrc, seq, len(payload)))
        tag = hmac.new(auth_key, header + ciphertext, hashlib.sha1).digest()[: self.auth_tag_bytes]
        return header + ciphertext + tag

    def _unprotect(self, buf, cipher_key: bytes, auth_key: bytes) -> Optional[bytes]:
        """Verify the tag and return the plaintext buffer, or ``None`` if
        authentication fails (tampered, truncated, or wrongly keyed)."""
        raw = bytes(buf.buf) if isinstance(buf, PacketView) else bytes(buf)
        tag_len = self.auth_tag_bytes
        if len(raw) < 12 + tag_len:
            return None
        view = PacketView(raw)
        header_len = view.header_length
        if len(raw) < header_len + tag_len:
            return None
        body, tag = raw[:-tag_len], raw[-tag_len:]
        expected = hmac.new(auth_key, body, hashlib.sha1).digest()[:tag_len]
        if not hmac.compare_digest(tag, expected):
            return None
        _first, _second, seq, _ts, ssrc = view.fixed_fields()
        ciphertext = body[header_len:]
        payload = _xor_bytes(ciphertext, self._keystream(cipher_key, ssrc, seq, len(ciphertext)))
        return body[:header_len] + payload

    # ------------------------------------------------------------------ directional API

    def protect_ingress(self, buf) -> bytes:
        """What a client emits toward the SFU."""
        return self._protect(buf, self._ingress_cipher, self._ingress_auth)

    def unprotect_ingress(self, buf) -> Optional[bytes]:
        """What the SFU datapath does on arrival (``None`` = auth failure)."""
        return self._unprotect(buf, self._ingress_cipher, self._ingress_auth)

    def protect_egress(self, buf) -> bytes:
        """What the SFU datapath does to each minted replica."""
        return self._protect(buf, self._egress_cipher, self._egress_auth)

    def unprotect_egress(self, buf) -> Optional[bytes]:
        """What a receiving client does (``None`` = auth failure)."""
        return self._unprotect(buf, self._egress_cipher, self._egress_auth)

    def protected_size(self, plain_size: int) -> int:
        """Wire size of a protected packet (the keystream preserves payload
        length; only the truncated tag is added)."""
        return plain_size + self.auth_tag_bytes
