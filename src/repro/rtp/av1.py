"""AV1 RTP payload scalability structures (dependency descriptor, L1T3 SVC).

Scallop relies on the AV1 RTP dependency descriptor (DD) in two places:

* The **data plane** reads the *template id* of every video packet (a small
  integer in the mandatory part of the DD) and drops packets whose template id
  maps to a temporal layer above the receiver's decode target.
* The **switch agent** parses the *extended* DD carried on key frames, which
  declares the template structure (how template ids map to spatial/temporal
  layers and which decode targets each template belongs to).

This module implements the L1T3 structure used in the paper (one spatial
layer, three temporal layers at 7.5/15/30 fps), the mandatory DD fields, and a
compact extended-descriptor encoding sufficient to round-trip the template
structure.  The byte layout follows the AV1 RTP spec's field order but uses
byte alignment rather than the spec's bit-packing; the data plane model treats
it as an opaque blob except for the first bytes, just like the Tofino can only
read a fixed prefix.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Tuple

from .extensions import (
    EXT_ID_AV1_DEPENDENCY_DESCRIPTOR,
    ExtensionElement,
    find_extension,
)
from .packet import RtpHeaderExtension, RtpPacket


class DecodeTarget(IntEnum):
    """Decode targets of the L1T3 structure, ordered by quality.

    ``DT0`` plays back the 7.5 fps base layer only, ``DT1`` 15 fps, and ``DT2``
    the full 30 fps stream — matching Figure 9 in the paper.
    """

    DT0 = 0  # 7.5 fps  (base layer only)
    DT1 = 1  # 15 fps   (base + first enhancement)
    DT2 = 2  # 30 fps   (all temporal layers)

    @property
    def frame_rate(self) -> float:
        return {DecodeTarget.DT0: 7.5, DecodeTarget.DT1: 15.0, DecodeTarget.DT2: 30.0}[self]


#: Template id -> temporal layer for the L1T3 profile (paper §5.4):
#: ids 0 and 1 are the base layer, id 2 the first enhancement layer and
#: ids 3 and 4 the second enhancement layer.
L1T3_TEMPLATE_TO_TEMPORAL_LAYER: Dict[int, int] = {0: 0, 1: 0, 2: 1, 3: 2, 4: 2}

#: Temporal layer -> highest decode target that still *excludes* it is derived
#: from this: a packet of temporal layer ``l`` is needed by decode target
#: ``dt`` iff ``l <= dt``.
L1T3_NUM_TEMPLATES = 5


def temporal_layer_for_template(template_id: int) -> int:
    """Return the temporal layer of an L1T3 template id."""
    try:
        return L1T3_TEMPLATE_TO_TEMPORAL_LAYER[template_id]
    except KeyError:
        raise ValueError(f"unknown L1T3 template id: {template_id}") from None


def template_needed_by(template_id: int, decode_target: DecodeTarget) -> bool:
    """Whether a packet with ``template_id`` must be forwarded for ``decode_target``."""
    return temporal_layer_for_template(template_id) <= int(decode_target)


def frame_rate_for_decode_target(decode_target: DecodeTarget) -> float:
    """Nominal frame rate delivered by a decode target in the L1T3 structure."""
    return decode_target.frame_rate


@dataclass(frozen=True)
class TemplateStructure:
    """The SVC template structure announced on key frames.

    ``template_to_layer`` maps template ids to ``(spatial, temporal)`` layer
    pairs; ``decode_target_layers`` maps each decode target to the highest
    temporal layer it includes.
    """

    template_to_layer: Dict[int, Tuple[int, int]]
    decode_target_layers: Dict[int, int]

    @classmethod
    def l1t3(cls) -> "TemplateStructure":
        """The canonical L1T3 structure used throughout the paper."""
        return cls(
            template_to_layer={
                tid: (0, layer) for tid, layer in L1T3_TEMPLATE_TO_TEMPORAL_LAYER.items()
            },
            decode_target_layers={int(dt): int(dt) for dt in DecodeTarget},
        )

    def templates_for_decode_target(self, decode_target: int) -> List[int]:
        """Template ids that must be forwarded for a decode target."""
        max_layer = self.decode_target_layers[int(decode_target)]
        return sorted(
            tid
            for tid, (_spatial, temporal) in self.template_to_layer.items()
            if temporal <= max_layer
        )

    def serialize(self) -> bytes:
        """Compact binary encoding of the structure (used in extended DDs)."""
        out = bytearray()
        out.append(len(self.template_to_layer))
        for tid in sorted(self.template_to_layer):
            spatial, temporal = self.template_to_layer[tid]
            out += struct.pack("!BBB", tid, spatial, temporal)
        out.append(len(self.decode_target_layers))
        for dt in sorted(self.decode_target_layers):
            out += struct.pack("!BB", dt, self.decode_target_layers[dt])
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes) -> "TemplateStructure":
        offset = 0
        if len(data) < 1:
            raise ValueError("empty template structure")
        count = data[offset]
        offset += 1
        template_to_layer: Dict[int, Tuple[int, int]] = {}
        for _ in range(count):
            tid, spatial, temporal = struct.unpack_from("!BBB", data, offset)
            template_to_layer[tid] = (spatial, temporal)
            offset += 3
        dt_count = data[offset]
        offset += 1
        decode_target_layers: Dict[int, int] = {}
        for _ in range(dt_count):
            dt, layer = struct.unpack_from("!BB", data, offset)
            decode_target_layers[dt] = layer
            offset += 2
        return cls(template_to_layer=template_to_layer, decode_target_layers=decode_target_layers)


@dataclass(frozen=True)
class DependencyDescriptor:
    """The AV1 RTP dependency descriptor.

    The *mandatory* part (present on every packet) carries the
    start/end-of-frame flags, the template id and the frame number.  Key
    frames additionally attach the :class:`TemplateStructure` — this is the
    "extended" descriptor that the data plane cannot parse and must hand to
    the switch agent (Table 1 counts these as control-plane packets).
    """

    start_of_frame: bool
    end_of_frame: bool
    template_id: int
    frame_number: int
    structure: Optional[TemplateStructure] = None

    @property
    def is_extended(self) -> bool:
        """Whether this descriptor carries a template structure (key frame)."""
        return self.structure is not None

    @property
    def temporal_layer(self) -> int:
        return temporal_layer_for_template(self.template_id)

    def serialize(self) -> bytes:
        flags = (
            (int(self.start_of_frame) << 7)
            | (int(self.end_of_frame) << 6)
            | (int(self.is_extended) << 5)
            | (self.template_id & 0x1F)
        )
        out = bytearray(struct.pack("!BH", flags, self.frame_number & 0xFFFF))
        if self.structure is not None:
            out += self.structure.serialize()
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes) -> "DependencyDescriptor":
        if len(data) < 3:
            raise ValueError("dependency descriptor too short")
        flags, frame_number = struct.unpack_from("!BH", data, 0)
        start = bool(flags & 0x80)
        end = bool(flags & 0x40)
        extended = bool(flags & 0x20)
        template_id = flags & 0x1F
        structure = TemplateStructure.parse(data[3:]) if extended else None
        return cls(
            start_of_frame=start,
            end_of_frame=end,
            template_id=template_id,
            frame_number=frame_number & 0xFFFF,
            structure=structure,
        )

    @classmethod
    def parse_prefix(cls, data: bytes) -> "DependencyDescriptor":
        """Parse only the mandatory 3-byte prefix (what the data plane can do).

        An extended structure, if present, is *not* decoded; ``is_extended``
        can still be detected from the flag bit so the data plane knows it must
        punt the packet to the switch agent.
        """
        if len(data) < 3:
            raise ValueError("dependency descriptor too short")
        flags, frame_number = struct.unpack_from("!BH", data, 0)
        return cls(
            start_of_frame=bool(flags & 0x80),
            end_of_frame=bool(flags & 0x40),
            template_id=flags & 0x1F,
            frame_number=frame_number & 0xFFFF,
            structure=TemplateStructure.l1t3() if flags & 0x20 else None,
        )


def dependency_descriptor_element(descriptor: DependencyDescriptor) -> ExtensionElement:
    """Wrap a dependency descriptor into its RTP header-extension element."""
    return ExtensionElement(
        ext_id=EXT_ID_AV1_DEPENDENCY_DESCRIPTOR, data=descriptor.serialize()
    )


def extract_dependency_descriptor(
    extension: Optional[RtpHeaderExtension],
) -> Optional[DependencyDescriptor]:
    """Extract and parse the AV1 DD from an RTP header-extension block."""
    raw = find_extension(extension, EXT_ID_AV1_DEPENDENCY_DESCRIPTOR)
    if raw is None:
        return None
    return DependencyDescriptor.parse(raw)


def packet_template_id(packet: RtpPacket) -> Optional[int]:
    """Convenience accessor: the template id of an RTP packet, if present."""
    descriptor = extract_dependency_descriptor(packet.extension)
    if descriptor is None:
        return None
    return descriptor.template_id
