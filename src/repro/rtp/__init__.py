"""RTP / RTCP / AV1-SVC protocol substrate.

This package provides byte-accurate models of the wire formats Scallop's data
plane and control plane operate on: RTP packets with header extensions
(:mod:`repro.rtp.packet`, :mod:`repro.rtp.extensions`), the AV1 dependency
descriptor and L1T3 SVC structure (:mod:`repro.rtp.av1`), and the RTCP packet
family used for feedback (:mod:`repro.rtp.rtcp`).
"""

from .packet import (
    PT_AUDIO_OPUS,
    PT_VIDEO_AV1,
    RtpHeaderExtension,
    RtpPacket,
    RtpParseError,
    is_rtcp,
    looks_like_rtp,
    seq_add,
    seq_delta,
)
from .extensions import (
    EXT_ID_AV1_DEPENDENCY_DESCRIPTOR,
    ExtensionElement,
    decode_extensions,
    encode_extensions,
    find_extension,
)
from .av1 import (
    DecodeTarget,
    DependencyDescriptor,
    TemplateStructure,
    extract_dependency_descriptor,
    frame_rate_for_decode_target,
    packet_template_id,
    template_needed_by,
    temporal_layer_for_template,
)
from .wire import PacketView, pack_rtp_header
from .rtcp import (
    Nack,
    PictureLossIndication,
    ReceiverReport,
    Remb,
    ReportBlock,
    RtcpPacket,
    SenderReport,
    SourceDescription,
    classify_rtcp,
    parse_compound,
    serialize_compound,
)

__all__ = [
    "PT_AUDIO_OPUS",
    "PT_VIDEO_AV1",
    "RtpHeaderExtension",
    "RtpPacket",
    "RtpParseError",
    "is_rtcp",
    "looks_like_rtp",
    "seq_add",
    "seq_delta",
    "PacketView",
    "pack_rtp_header",
    "EXT_ID_AV1_DEPENDENCY_DESCRIPTOR",
    "ExtensionElement",
    "decode_extensions",
    "encode_extensions",
    "find_extension",
    "DecodeTarget",
    "DependencyDescriptor",
    "TemplateStructure",
    "extract_dependency_descriptor",
    "frame_rate_for_decode_target",
    "packet_template_id",
    "template_needed_by",
    "temporal_layer_for_template",
    "Nack",
    "PictureLossIndication",
    "ReceiverReport",
    "Remb",
    "ReportBlock",
    "RtcpPacket",
    "SenderReport",
    "SourceDescription",
    "classify_rtcp",
    "parse_compound",
    "serialize_compound",
]
