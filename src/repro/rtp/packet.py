"""RTP packet model and wire-format codec (RFC 3550 subset).

The data plane of Scallop parses real RTP packets, so this module provides a
byte-accurate encoder/decoder for the RTP fixed header, the contributing-source
list, and the header-extension block.  Extension *elements* (one-byte and
two-byte profiles) are handled by :mod:`repro.rtp.extensions`.

The object model is intentionally small and immutable-ish: a packet is a
:class:`RtpPacket` dataclass plus raw payload bytes.  Mutating helpers used by
the SFU (sequence-number rewrite, SSRC rewrite) return new objects so that a
replicated packet never aliases state with its siblings.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

RTP_VERSION = 2
RTP_HEADER_LEN = 12

#: RTP payload types used throughout the reproduction.  The concrete numbers
#: follow common WebRTC dynamic-payload-type assignments.
PT_AUDIO_OPUS = 111
PT_VIDEO_AV1 = 45
PT_VIDEO_RTX = 46

#: One-byte extension profile marker (RFC 8285).
EXTENSION_PROFILE_ONE_BYTE = 0xBEDE
#: Two-byte extension profile marker (RFC 8285, appbits zero).
EXTENSION_PROFILE_TWO_BYTE = 0x1000

SEQ_MOD = 1 << 16
TS_MOD = 1 << 32


class RtpParseError(ValueError):
    """Raised when a buffer cannot be parsed as an RTP packet."""


def seq_delta(newer: int, older: int) -> int:
    """Return the signed wrap-aware distance ``newer - older`` for 16-bit
    sequence numbers.

    The result lies in ``[-32768, 32767]``; a positive value means ``newer``
    is ahead of ``older`` in stream order.
    """
    return ((newer - older + (SEQ_MOD // 2)) % SEQ_MOD) - (SEQ_MOD // 2)


def seq_add(seq: int, delta: int) -> int:
    """Add ``delta`` to a 16-bit sequence number with wrap-around."""
    return (seq + delta) % SEQ_MOD


@dataclass(frozen=True)
class RtpHeaderExtension:
    """The raw RTP header-extension block (profile id + payload words)."""

    profile: int
    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) % 4 != 0:
            raise ValueError("extension data must be a multiple of 4 bytes")


@dataclass(frozen=True)
class RtpPacket:
    """A parsed RTP packet.

    Attributes mirror RFC 3550 header fields.  ``payload`` carries the media
    bytes (possibly already SRTP-encrypted; the SFU never inspects it).
    """

    payload_type: int
    sequence_number: int
    timestamp: int
    ssrc: int
    marker: bool = False
    padding: bool = False
    csrcs: Tuple[int, ...] = ()
    extension: Optional[RtpHeaderExtension] = None
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type < 128:
            raise ValueError(f"payload type out of range: {self.payload_type}")
        if not 0 <= self.sequence_number < SEQ_MOD:
            raise ValueError(f"sequence number out of range: {self.sequence_number}")
        if not 0 <= self.timestamp < TS_MOD:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc < TS_MOD:
            raise ValueError(f"ssrc out of range: {self.ssrc}")
        if len(self.csrcs) > 15:
            raise ValueError("at most 15 CSRCs are allowed")

    # -- helpers used by SFUs -------------------------------------------------

    def with_sequence_number(self, seq: int) -> "RtpPacket":
        """Return a copy with a rewritten sequence number."""
        return replace(self, sequence_number=seq % SEQ_MOD)

    def with_ssrc(self, ssrc: int) -> "RtpPacket":
        """Return a copy with a rewritten synchronization source."""
        return replace(self, ssrc=ssrc)

    @property
    def header_length(self) -> int:
        """Length in bytes of the serialized header (incl. CSRCs/extension)."""
        length = RTP_HEADER_LEN + 4 * len(self.csrcs)
        if self.extension is not None:
            length += 4 + len(self.extension.data)
        return length

    @property
    def size(self) -> int:
        """Total serialized size in bytes."""
        # header_length inlined: one property frame instead of two on the
        # replica fan-out path, which stamps this on every media packet
        length = RTP_HEADER_LEN + 4 * len(self.csrcs) + len(self.payload)
        if self.extension is not None:
            length += 4 + len(self.extension.data)
        return length

    def is_audio(self) -> bool:
        return self.payload_type == PT_AUDIO_OPUS

    def is_video(self) -> bool:
        return self.payload_type in (PT_VIDEO_AV1, PT_VIDEO_RTX)

    # -- wire format ----------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode to RFC 3550 wire format."""
        first = (RTP_VERSION << 6) | (int(self.padding) << 5) | len(self.csrcs)
        if self.extension is not None:
            first |= 1 << 4
        second = (int(self.marker) << 7) | self.payload_type
        out = bytearray(
            struct.pack(
                "!BBHII",
                first,
                second,
                self.sequence_number,
                self.timestamp,
                self.ssrc,
            )
        )
        for csrc in self.csrcs:
            out += struct.pack("!I", csrc)
        if self.extension is not None:
            out += struct.pack("!HH", self.extension.profile, len(self.extension.data) // 4)
            out += self.extension.data
        out += self.payload
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes) -> "RtpPacket":
        """Decode from RFC 3550 wire format.

        Raises :class:`RtpParseError` on malformed input.
        """
        if len(data) < RTP_HEADER_LEN:
            raise RtpParseError("buffer shorter than RTP fixed header")
        first, second, seq, ts, ssrc = struct.unpack("!BBHII", data[:RTP_HEADER_LEN])
        version = first >> 6
        if version != RTP_VERSION:
            raise RtpParseError(f"unsupported RTP version {version}")
        padding = bool(first & 0x20)
        has_extension = bool(first & 0x10)
        csrc_count = first & 0x0F
        marker = bool(second & 0x80)
        payload_type = second & 0x7F

        offset = RTP_HEADER_LEN
        csrcs: List[int] = []
        if len(data) < offset + 4 * csrc_count:
            raise RtpParseError("truncated CSRC list")
        for _ in range(csrc_count):
            csrcs.append(struct.unpack_from("!I", data, offset)[0])
            offset += 4

        extension: Optional[RtpHeaderExtension] = None
        if has_extension:
            if len(data) < offset + 4:
                raise RtpParseError("truncated extension header")
            profile, ext_words = struct.unpack_from("!HH", data, offset)
            offset += 4
            ext_len = 4 * ext_words
            if len(data) < offset + ext_len:
                raise RtpParseError("truncated extension data")
            extension = RtpHeaderExtension(profile=profile, data=data[offset : offset + ext_len])
            offset += ext_len

        payload = data[offset:]
        if padding and payload:
            pad_len = payload[-1]
            if pad_len == 0 or pad_len > len(payload):
                raise RtpParseError("invalid padding length")
            payload = payload[: len(payload) - pad_len]

        return cls(
            payload_type=payload_type,
            sequence_number=seq,
            timestamp=ts,
            ssrc=ssrc,
            marker=marker,
            padding=False,
            csrcs=tuple(csrcs),
            extension=extension,
            payload=payload,
        )


def looks_like_rtp(data: bytes) -> bool:
    """Cheap classification mirroring the data plane's 4-bit lookahead.

    The Tofino program looks at the first bits of the UDP payload to decide
    whether a packet resembles RTP/RTCP (version == 2) as opposed to STUN
    (which always starts with two zero bits).
    """
    if len(data) < 2:
        return False
    return (data[0] >> 6) == RTP_VERSION


def is_rtcp(data: bytes) -> bool:
    """Distinguish RTCP from RTP by payload-type range (RFC 5761 demux)."""
    if len(data) < 2 or (data[0] >> 6) != RTP_VERSION:
        return False
    pt = data[1] & 0x7F
    # RTCP packet types 200..207 map to 72..79 in the RTP PT field space.
    return 72 <= pt <= 79
