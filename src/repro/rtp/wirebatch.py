"""Columnar bulk extraction over a burst of RTP records (`WireBatchView`).

The sharded coordinator reads the same six fields off every packet of a
burst — source, SSRC, sequence number, payload type, marker, wire size — to
partition it, fold telemetry, and replay rewrite descriptions.  Doing that
through per-packet accessors costs a Python method call (or three) per field
per packet; at coordinator scale the burst is the natural unit, not the
packet.  :class:`WireBatchView` makes **one pass** over the burst and yields
the fields as parallel columns (stdlib ``array`` typed arrays — the repo
takes no numpy dependency), extracted with one precompiled
:class:`struct.Struct` unpack per wire record.

Columnar layout
---------------

One row per ingress datagram, in burst order.  Columns (all ``array``):

``kinds``      ``'B'``  — :data:`RECORD_WIRE` (PacketView payload),
                          :data:`RECORD_OBJECT` (RtpPacket payload), or
                          :data:`RECORD_OTHER` (RTCP / STUN / raw bytes).
``src_index``  ``'I'``  — index into :attr:`sources` (per-burst interned
                          source addresses; a burst has few sources and many
                          packets, so address hashing happens per source).
``ssrc``       ``'q'``  — media SSRC, or ``-1`` for non-RTP records (signed
                          so the partitioner's source-only bucketing of
                          control traffic needs no separate flag check).
``seq``        ``'i'``  — RTP sequence number (``-1`` for non-RTP).
``pt``         ``'i'``  — payload type (``-1`` for non-RTP).
``marker``     ``'B'``  — marker bit as 0/1 (0 for non-RTP).
``wire_size``  ``'I'``  — UDP payload size (``Datagram.size``, every record).

Wire records fill their row from a single ``_FIXED_HEADER.unpack_from`` on
the buffer; object records read the already-decoded dataclass attributes
(cheap loads, no construction — the wire-hygiene archlint rule covers this
module).  Bulk extraction is property-tested field-identical to per-packet
:class:`~repro.rtp.wire.PacketView` accessors in ``tests/test_wirebatch.py``.

When the per-packet path remains
--------------------------------

Non-RTP records (RTCP compounds, STUN, raw junk) and pickled-fallback
payloads only contribute ``src_index``/``wire_size`` rows; everything else
about them — parsing, feedback fan-out, replay — stays on the per-packet
path, which is fine because they are a vanishing fraction of a media burst.
SRTP-protected buffers columnize normally (RFC 3711 leaves the header
cleartext).  Truncated worker-side views also columnize: only fixed-header
offsets are read.

Bulk mutators
-------------

:meth:`WireBatchView.set_sequence_numbers` patches sequence numbers in place
across many records (column and wire buffer together), and
:func:`replay_payloads` mints the per-replica payloads of one record's
rewrite description in a single pass — the shard-transport replay
(:mod:`repro.dataplane.shardcodec`) uses it instead of constructing a
per-record tuple and a full ``PacketView.__init__`` per rewritten replica.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple

from ..netsim.datagram import Address, Datagram
from .packet import SEQ_MOD, RtpPacket
from .wire import _FIXED_HEADER, _U16, PacketView

#: Row kinds (the ``kinds`` column).
RECORD_OTHER = 0   # RTCP / STUN / raw bytes: src + size only, per-packet path
RECORD_WIRE = 1    # PacketView payload: columns unpacked off the buffer
RECORD_OBJECT = 2  # RtpPacket payload: columns read off the dataclass


class WireBatchView:
    """Parallel field columns over one burst of ingress datagrams."""

    __slots__ = (
        "datagrams",
        "sources",
        "kinds",
        "src_index",
        "ssrc",
        "seq",
        "pt",
        "marker",
        "wire_size",
    )

    def __init__(
        self,
        datagrams: Sequence[Datagram],
        sources: List[Address],
        kinds: array,
        src_index: array,
        ssrc: array,
        seq: array,
        pt: array,
        marker: array,
        wire_size: array,
    ) -> None:
        self.datagrams = datagrams
        self.sources = sources
        self.kinds = kinds
        self.src_index = src_index
        self.ssrc = ssrc
        self.seq = seq
        self.pt = pt
        self.marker = marker
        self.wire_size = wire_size

    def __len__(self) -> int:
        return len(self.kinds)

    @classmethod
    def from_datagrams(cls, datagrams: Sequence[Datagram]) -> "WireBatchView":
        """One pass over the burst, filling every column.

        The loop body is the columnar replacement for ``len(burst)`` calls
        to ``payload.ssrc`` / ``payload.sequence_number`` / … — one
        precompiled struct unpack per wire record, plain attribute loads per
        object record, local-bound list appends for everything.
        """
        unpack = _FIXED_HEADER.unpack_from
        src_ids: dict = {}
        sources: List[Address] = []
        kinds: List[int] = []
        src_col: List[int] = []
        ssrc_col: List[int] = []
        seq_col: List[int] = []
        pt_col: List[int] = []
        marker_col: List[int] = []
        size_col: List[int] = []
        k_append = kinds.append
        src_append = src_col.append
        ssrc_append = ssrc_col.append
        seq_append = seq_col.append
        pt_append = pt_col.append
        m_append = marker_col.append
        size_append = size_col.append
        get_src = src_ids.get
        for datagram in datagrams:
            src = datagram.src
            index = get_src(src)
            if index is None:
                index = src_ids[src] = len(sources)
                sources.append(src)
            src_append(index)
            size_append(datagram.size)
            payload = datagram.payload
            if isinstance(payload, PacketView):
                _first, second, seq, _ts, ssrc = unpack(payload.buf, 0)
                k_append(RECORD_WIRE)
                ssrc_append(ssrc)
                seq_append(seq)
                pt_append(second & 0x7F)
                m_append(second >> 7)
            elif isinstance(payload, RtpPacket):
                k_append(RECORD_OBJECT)
                ssrc_append(payload.ssrc)
                seq_append(payload.sequence_number)
                pt_append(payload.payload_type)
                m_append(1 if payload.marker else 0)
            else:
                k_append(RECORD_OTHER)
                ssrc_append(-1)
                seq_append(-1)
                pt_append(-1)
                m_append(0)
        return cls(
            datagrams,
            sources,
            array("B", kinds),
            array("I", src_col),
            array("q", ssrc_col),
            array("i", seq_col),
            array("i", pt_col),
            array("B", marker_col),
            array("I", size_col),
        )

    # -- bulk mutators ---------------------------------------------------------

    def set_sequence_numbers(self, indices: Sequence[int], seqs: Sequence[int]) -> None:
        """Patch sequence numbers in place across many wire records at once.

        For each ``(index, seq)`` pair the record's wire buffer is patched at
        the fixed seq offset *and* the ``seq`` column is updated, so column
        reads stay field-identical to per-packet accessors afterwards.  The
        records must be wire records over mutable buffers (the same contract
        as :meth:`PacketView.set_sequence_number`); object/control rows raise.
        """
        pack = _U16.pack_into
        datagrams = self.datagrams
        kinds = self.kinds
        seq_col = self.seq
        for index, seq in zip(indices, seqs):
            if kinds[index] != RECORD_WIRE:
                raise TypeError(
                    f"record {index} is not a wire record; bulk seq patching "
                    "applies to PacketView rows only"
                )
            seq %= SEQ_MOD
            pack(datagrams[index].payload.buf, 2, seq)
            seq_col[index] = seq


def replay_payloads(
    view: PacketView, seqs: Sequence[int]
) -> List[PacketView]:
    """Mint one record's per-replica payloads from its rewrite description.

    ``seqs`` carries one entry per replica: ``-1`` means the replica aliases
    the ingress view unchanged (no buffer copy, same object — preserving the
    payload sharing the in-process datapath produces); any other value mints
    a rewritten copy.  One pass, one buffer copy + one ``pack_into`` per
    rewritten replica, and the minted views inherit the ingress view's cached
    header length instead of re-deriving it per replica.
    """
    buf0 = view.buf
    header_len = view._header_len
    pack = _U16.pack_into
    new = PacketView.__new__
    out: List[PacketView] = []
    append = out.append
    for seq in seqs:
        if seq < 0:
            append(view)
            continue
        buf = bytearray(buf0)
        pack(buf, 2, seq % SEQ_MOD)
        copy = new(PacketView)
        copy.buf = buf
        copy._header_len = header_len
        append(copy)
    return out
