"""RTCP packet models and wire-format codecs (RFC 3550 / 4585 / REMB draft).

Scallop's control-plane split hinges on RTCP: receiver reports and REMB
messages drive rate adaptation in the switch agent, while NACK and PLI are
forwarded through the data plane (with copies punted to the agent).  This
module provides byte-accurate encoders/decoders for:

* Sender Reports (SR, PT=200)
* Receiver Reports (RR, PT=201) with report blocks
* Source Description (SDES, PT=202) with CNAME items
* Generic NACK feedback (RTPFB, PT=205, FMT=1)
* Picture Loss Indication (PSFB, PT=206, FMT=1)
* Receiver Estimated Max Bitrate (PSFB, PT=206, FMT=15, "REMB")
* Compound packets (concatenation of the above)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

RTCP_VERSION = 2

PT_SR = 200
PT_RR = 201
PT_SDES = 202
PT_BYE = 203
PT_RTPFB = 205
PT_PSFB = 206

FMT_NACK = 1
FMT_PLI = 1
FMT_REMB = 15

REMB_IDENTIFIER = b"REMB"


class RtcpParseError(ValueError):
    """Raised when a buffer cannot be parsed as RTCP."""


# ---------------------------------------------------------------------------
# Report blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReportBlock:
    """An RR/SR report block describing reception of one source."""

    ssrc: int
    fraction_lost: int = 0
    cumulative_lost: int = 0
    highest_sequence: int = 0
    jitter: int = 0
    last_sr: int = 0
    delay_since_last_sr: int = 0

    def serialize(self) -> bytes:
        lost = self.cumulative_lost & 0xFFFFFF
        return struct.pack(
            "!IIIIII",
            self.ssrc,
            ((self.fraction_lost & 0xFF) << 24) | lost,
            self.highest_sequence & 0xFFFFFFFF,
            self.jitter & 0xFFFFFFFF,
            self.last_sr & 0xFFFFFFFF,
            self.delay_since_last_sr & 0xFFFFFFFF,
        )

    @classmethod
    def parse(cls, data: bytes) -> "ReportBlock":
        if len(data) < 24:
            raise RtcpParseError("report block too short")
        ssrc, lost_word, highest, jitter, last_sr, dlsr = struct.unpack_from("!IIIIII", data, 0)
        return cls(
            ssrc=ssrc,
            fraction_lost=lost_word >> 24,
            cumulative_lost=lost_word & 0xFFFFFF,
            highest_sequence=highest,
            jitter=jitter,
            last_sr=last_sr,
            delay_since_last_sr=dlsr,
        )


# ---------------------------------------------------------------------------
# Individual RTCP packet types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SenderReport:
    """RTCP Sender Report (PT=200)."""

    sender_ssrc: int
    ntp_timestamp: int = 0
    rtp_timestamp: int = 0
    packet_count: int = 0
    octet_count: int = 0
    report_blocks: Tuple[ReportBlock, ...] = ()

    packet_type = PT_SR

    def serialize(self) -> bytes:
        body = struct.pack(
            "!IQIII",
            self.sender_ssrc,
            self.ntp_timestamp & 0xFFFFFFFFFFFFFFFF,
            self.rtp_timestamp & 0xFFFFFFFF,
            self.packet_count & 0xFFFFFFFF,
            self.octet_count & 0xFFFFFFFF,
        )
        for block in self.report_blocks:
            body += block.serialize()
        return _wrap_header(PT_SR, len(self.report_blocks), body)

    @classmethod
    def parse_body(cls, count: int, body: bytes) -> "SenderReport":
        if len(body) < 24:
            raise RtcpParseError("sender report too short")
        ssrc, ntp, rtp_ts, pkts, octets = struct.unpack_from("!IQIII", body, 0)
        blocks = _parse_report_blocks(body[24:], count)
        return cls(
            sender_ssrc=ssrc,
            ntp_timestamp=ntp,
            rtp_timestamp=rtp_ts,
            packet_count=pkts,
            octet_count=octets,
            report_blocks=blocks,
        )


@dataclass(frozen=True)
class ReceiverReport:
    """RTCP Receiver Report (PT=201)."""

    sender_ssrc: int
    report_blocks: Tuple[ReportBlock, ...] = ()

    packet_type = PT_RR

    def serialize(self) -> bytes:
        body = struct.pack("!I", self.sender_ssrc)
        for block in self.report_blocks:
            body += block.serialize()
        return _wrap_header(PT_RR, len(self.report_blocks), body)

    @classmethod
    def parse_body(cls, count: int, body: bytes) -> "ReceiverReport":
        if len(body) < 4:
            raise RtcpParseError("receiver report too short")
        ssrc = struct.unpack_from("!I", body, 0)[0]
        blocks = _parse_report_blocks(body[4:], count)
        return cls(sender_ssrc=ssrc, report_blocks=blocks)


@dataclass(frozen=True)
class SourceDescription:
    """RTCP SDES packet with a single CNAME chunk per source."""

    chunks: Tuple[Tuple[int, str], ...] = ()

    packet_type = PT_SDES

    def serialize(self) -> bytes:
        body = bytearray()
        for ssrc, cname in self.chunks:
            chunk = bytearray(struct.pack("!I", ssrc))
            encoded = cname.encode()
            chunk += bytes([1, len(encoded)]) + encoded
            chunk += b"\x00"  # end of items
            while len(chunk) % 4 != 0:
                chunk += b"\x00"
            body += chunk
        return _wrap_header(PT_SDES, len(self.chunks), bytes(body))

    @classmethod
    def parse_body(cls, count: int, body: bytes) -> "SourceDescription":
        chunks: List[Tuple[int, str]] = []
        offset = 0
        for _ in range(count):
            if offset + 4 > len(body):
                raise RtcpParseError("truncated SDES chunk")
            ssrc = struct.unpack_from("!I", body, offset)[0]
            offset += 4
            cname = ""
            while offset < len(body):
                item_type = body[offset]
                if item_type == 0:
                    offset += 1
                    while offset % 4 != 0:
                        offset += 1
                    break
                length = body[offset + 1]
                data = body[offset + 2 : offset + 2 + length]
                if item_type == 1:
                    cname = data.decode(errors="replace")
                offset += 2 + length
            chunks.append((ssrc, cname))
        return cls(chunks=tuple(chunks))


@dataclass(frozen=True)
class Nack:
    """Generic NACK (RTPFB FMT=1) requesting retransmission of lost packets."""

    sender_ssrc: int
    media_ssrc: int
    lost_sequence_numbers: Tuple[int, ...] = ()

    packet_type = PT_RTPFB

    def serialize(self) -> bytes:
        body = struct.pack("!II", self.sender_ssrc, self.media_ssrc)
        for pid, blp in _nack_fci(self.lost_sequence_numbers):
            body += struct.pack("!HH", pid, blp)
        return _wrap_header(PT_RTPFB, FMT_NACK, body)

    @classmethod
    def parse_body(cls, fmt: int, body: bytes) -> "Nack":
        if len(body) < 8:
            raise RtcpParseError("NACK too short")
        sender, media = struct.unpack_from("!II", body, 0)
        lost: List[int] = []
        offset = 8
        while offset + 4 <= len(body):
            pid, blp = struct.unpack_from("!HH", body, offset)
            lost.append(pid)
            for bit in range(16):
                if blp & (1 << bit):
                    lost.append((pid + bit + 1) & 0xFFFF)
            offset += 4
        return cls(sender_ssrc=sender, media_ssrc=media, lost_sequence_numbers=tuple(lost))


@dataclass(frozen=True)
class PictureLossIndication:
    """PLI (PSFB FMT=1): ask the sender for a new key frame."""

    sender_ssrc: int
    media_ssrc: int

    packet_type = PT_PSFB

    def serialize(self) -> bytes:
        body = struct.pack("!II", self.sender_ssrc, self.media_ssrc)
        return _wrap_header(PT_PSFB, FMT_PLI, body)

    @classmethod
    def parse_body(cls, fmt: int, body: bytes) -> "PictureLossIndication":
        if len(body) < 8:
            raise RtcpParseError("PLI too short")
        sender, media = struct.unpack_from("!II", body, 0)
        return cls(sender_ssrc=sender, media_ssrc=media)


@dataclass(frozen=True)
class Remb:
    """Receiver Estimated Maximum Bitrate (PSFB FMT=15, "REMB")."""

    sender_ssrc: int
    bitrate_bps: float
    media_ssrcs: Tuple[int, ...] = ()

    packet_type = PT_PSFB

    def serialize(self) -> bytes:
        exponent, mantissa = _remb_encode_bitrate(self.bitrate_bps)
        body = struct.pack("!II", self.sender_ssrc, 0)
        body += REMB_IDENTIFIER
        body += bytes([len(self.media_ssrcs)])
        body += bytes([(exponent << 2) | (mantissa >> 16), (mantissa >> 8) & 0xFF, mantissa & 0xFF])
        for ssrc in self.media_ssrcs:
            body += struct.pack("!I", ssrc)
        return _wrap_header(PT_PSFB, FMT_REMB, body)

    @classmethod
    def parse_body(cls, fmt: int, body: bytes) -> "Remb":
        if len(body) < 16 or body[8:12] != REMB_IDENTIFIER:
            raise RtcpParseError("not a REMB packet")
        sender = struct.unpack_from("!I", body, 0)[0]
        num_ssrcs = body[12]
        exponent = body[13] >> 2
        mantissa = ((body[13] & 0x03) << 16) | (body[14] << 8) | body[15]
        bitrate = mantissa * (2 ** exponent)
        ssrcs: List[int] = []
        offset = 16
        for _ in range(num_ssrcs):
            if offset + 4 > len(body):
                raise RtcpParseError("truncated REMB SSRC list")
            ssrcs.append(struct.unpack_from("!I", body, offset)[0])
            offset += 4
        return cls(sender_ssrc=sender, bitrate_bps=float(bitrate), media_ssrcs=tuple(ssrcs))


RtcpPacket = Union[SenderReport, ReceiverReport, SourceDescription, Nack, PictureLossIndication, Remb]


# ---------------------------------------------------------------------------
# Compound packets
# ---------------------------------------------------------------------------


def serialize_compound(packets: Sequence[RtcpPacket]) -> bytes:
    """Serialize a compound RTCP packet (simple concatenation)."""
    return b"".join(packet.serialize() for packet in packets)


def parse_compound(data: bytes) -> List[RtcpPacket]:
    """Parse a compound RTCP packet into its constituent packets.

    Unknown packet types are skipped (their length field is honoured), which is
    what both real receivers and our data-plane model do.
    """
    packets: List[RtcpPacket] = []
    offset = 0
    while offset + 4 <= len(data):
        first, pt, length_words = struct.unpack_from("!BBH", data, offset)
        if (first >> 6) != RTCP_VERSION:
            raise RtcpParseError("bad RTCP version")
        count_or_fmt = first & 0x1F
        total_len = 4 * (length_words + 1)
        if offset + total_len > len(data):
            raise RtcpParseError("truncated RTCP packet")
        body = data[offset + 4 : offset + total_len]
        parsed = _parse_one(pt, count_or_fmt, body)
        if parsed is not None:
            packets.append(parsed)
        offset += total_len
    return packets


def _parse_one(pt: int, count_or_fmt: int, body: bytes) -> Optional[RtcpPacket]:
    if pt == PT_SR:
        return SenderReport.parse_body(count_or_fmt, body)
    if pt == PT_RR:
        return ReceiverReport.parse_body(count_or_fmt, body)
    if pt == PT_SDES:
        return SourceDescription.parse_body(count_or_fmt, body)
    if pt == PT_RTPFB and count_or_fmt == FMT_NACK:
        return Nack.parse_body(count_or_fmt, body)
    if pt == PT_PSFB:
        if count_or_fmt == FMT_REMB or (len(body) >= 12 and body[8:12] == REMB_IDENTIFIER):
            return Remb.parse_body(count_or_fmt, body)
        if count_or_fmt == FMT_PLI:
            return PictureLossIndication.parse_body(count_or_fmt, body)
    return None


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _wrap_header(pt: int, count_or_fmt: int, body: bytes) -> bytes:
    if len(body) % 4 != 0:
        body += b"\x00" * (4 - len(body) % 4)
    length_words = len(body) // 4
    first = (RTCP_VERSION << 6) | (count_or_fmt & 0x1F)
    return struct.pack("!BBH", first, pt, length_words) + body


def _parse_report_blocks(data: bytes, count: int) -> Tuple[ReportBlock, ...]:
    blocks: List[ReportBlock] = []
    offset = 0
    for _ in range(count):
        blocks.append(ReportBlock.parse(data[offset : offset + 24]))
        offset += 24
    return tuple(blocks)


def _nack_fci(lost: Sequence[int]) -> List[Tuple[int, int]]:
    """Pack lost sequence numbers into (PID, BLP) pairs."""
    fci: List[Tuple[int, int]] = []
    remaining = sorted(set(s & 0xFFFF for s in lost))
    while remaining:
        pid = remaining.pop(0)
        blp = 0
        still: List[int] = []
        for seq in remaining:
            delta = (seq - pid) & 0xFFFF
            if 1 <= delta <= 16:
                blp |= 1 << (delta - 1)
            else:
                still.append(seq)
        remaining = still
        fci.append((pid, blp))
    return fci


def _remb_encode_bitrate(bitrate_bps: float) -> Tuple[int, int]:
    """Encode a bitrate into REMB's 6-bit exponent / 18-bit mantissa form."""
    bitrate = max(0, int(bitrate_bps))
    exponent = 0
    while bitrate > 0x3FFFF and exponent < 63:
        bitrate >>= 1
        exponent += 1
    return exponent, bitrate


def classify_rtcp(packet: RtcpPacket) -> str:
    """Return a short label used by the Table 1 accounting."""
    if isinstance(packet, SenderReport):
        return "SR"
    if isinstance(packet, ReceiverReport):
        return "RR"
    if isinstance(packet, SourceDescription):
        return "SDES"
    if isinstance(packet, Remb):
        return "REMB"
    if isinstance(packet, Nack):
        return "NACK"
    if isinstance(packet, PictureLossIndication):
        return "PLI"
    return "OTHER"
