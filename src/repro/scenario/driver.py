"""The scenario driver: turn a declarative :class:`~repro.scenario.spec.Scenario`
into a live simulation and execute its schedule.

:func:`build_scenario` constructs the simulator, the network, the configured
SFU backend, and the initial meeting population (deterministically — the same
spec and seed always produce the same topology, addresses, and media streams),
then arms the schedule's timed events on the simulator.  The result is a
:class:`ScenarioRun`: a :class:`Testbed` that additionally knows its spec,
supports imperative churn (``add_participant`` / ``leave`` / ``set_link`` —
the same operations the schedule performs), logs every applied event, and
collects uniform per-client / per-meeting metrics plus a state-reconciliation
check (switch-agent, controller, and accountant state must always match the
surviving population).

Both the declarative and the imperative surface go through the same code
paths, so an experiment can mix a scheduled link-degradation phase with an
interactive join loop without caring which side drives the churn.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baseline.software_sfu import SoftwareSfu
from ..cluster import SfuCluster
from ..core.rate_control import select_decode_target
from ..core.scallop import ScallopSfu
from ..netsim.datagram import Address
from ..netsim.link import LinkProfile, Network
from ..netsim.simulator import Simulator
from ..webrtc.client import ClientConfig, WebRtcClient
from .spec import (
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    MeetingRef,
    MeetingSpec,
    MigrateEvent,
    ParticipantRef,
    Scenario,
)

SFU_ADDRESS = Address("10.0.0.1", 5000)


@dataclass
class Testbed:
    """A built topology: simulator, network, the SFU, and all clients.

    Context manager: ``with build_scenario(spec) as run: ...`` guarantees the
    SFU backend's resources (process-executor worker pools of a sharded
    Scallop pipeline) are released even when the body raises mid-run.
    """

    simulator: Simulator
    network: Network
    sfu: object
    clients: List[WebRtcClient] = field(default_factory=list)
    clients_by_meeting: Dict[str, List[WebRtcClient]] = field(default_factory=dict)
    closed: bool = False

    def meeting(self, meeting_id: str) -> List[WebRtcClient]:
        return self.clients_by_meeting.get(meeting_id, [])

    def run_for(self, duration_s: float) -> None:
        self.simulator.run_for(duration_s)

    def close(self) -> None:
        """Release SFU backend resources (worker pools of a process-sharded
        Scallop pipeline); safe to call on any testbed, idempotent."""
        self.closed = True
        close = getattr(self.sfu, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Testbed":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class MeetingStats:
    """Uniform per-meeting metrics collected from the surviving clients."""

    meeting_id: str
    participants: int
    inbound_video_streams: int
    mean_receive_fps: float
    mean_jitter_ms: float
    freeze_events: int
    video_packets_received: int


@dataclass
class ScenarioRun(Testbed):
    """A running scenario: the testbed plus its spec, churn, and metrics."""

    scenario: Optional[Scenario] = None
    #: Clients that left mid-run (kept for post-hoc metric collection).
    departed: List[WebRtcClient] = field(default_factory=list)
    #: ``(sim_time, description)`` per applied schedule/imperative event.
    event_log: List[Tuple[float, str]] = field(default_factory=list)
    joins: int = 0
    leaves: int = 0
    #: Meeting ids in registration order (spec order first, then dynamic
    #: creations) — the iteration order of :meth:`meeting_stats`.
    _meeting_order: List[str] = field(default_factory=list)
    #: Meeting id -> naming/addressing index.  Unique per meeting (it seeds
    #: participant ids and client addresses); spec meetings use their spec
    #: position, canonical ``meeting-<n>`` ids use ``n``, anything else gets
    #: the first unused index.
    _meeting_naming: Dict[str, int] = field(default_factory=dict)
    #: Next fresh participant index per meeting (monotonic across leaves, so
    #: a re-join never reuses a departed participant's address).
    _participant_counter: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ lifecycle

    def run(self, duration_s: Optional[float] = None) -> "ScenarioRun":
        """Run to the scenario horizon, or for an explicit duration.

        Without an argument this advances the clock *to* ``duration_s`` of
        the spec (a no-op if already there), so mixing ``run_for`` phases
        with a final ``run()`` never overshoots the declared horizon.  An
        explicit ``duration_s`` runs for that long from now.
        """
        if duration_s is not None:
            self.run_for(duration_s)
            return self
        horizon = self.scenario.duration_s if self.scenario is not None else 0.0
        self.run_for(max(0.0, horizon - self.simulator.now))
        return self

    # ------------------------------------------------------------------ selectors

    def meeting_id_for(self, meeting: MeetingRef) -> str:
        """Resolve a meeting reference (spec index or id) to its id.

        Integer references are stable: index ``n`` names the spec's
        ``n``-th meeting, or the canonical ``meeting-<n>`` beyond the spec
        (created lazily by the next join targeting it) — never "whatever was
        registered ``n``-th", so out-of-order dynamic joins cannot alias.
        """
        if isinstance(meeting, str):
            return meeting
        scenario = self.scenario
        if scenario is not None and 0 <= meeting < len(scenario.meetings):
            return scenario.meetings[meeting].meeting_id or f"meeting-{meeting}"
        return f"meeting-{meeting}"

    def _register_meeting(self, meeting_id: str, prefer_index: Optional[int] = None) -> int:
        """Register a meeting (idempotent); returns its naming index."""
        index = self._meeting_naming.get(meeting_id)
        if index is not None:
            return index
        used = set(self._meeting_naming.values())
        candidate = prefer_index
        if candidate is None and meeting_id.startswith("meeting-"):
            suffix = meeting_id[len("meeting-"):]
            if suffix.isdigit():
                candidate = int(suffix)
        if candidate is None or candidate in used:
            candidate = 0
            while candidate in used:
                candidate += 1
        self._meeting_naming[meeting_id] = candidate
        self._meeting_order.append(meeting_id)
        return candidate

    def _spec_for(self, meeting_id: str) -> MeetingSpec:
        scenario = self.scenario
        if scenario is not None:
            for index, spec in enumerate(scenario.meetings):
                if (spec.meeting_id or f"meeting-{index}") == meeting_id:
                    return spec
            if scenario.default_meeting is not None:
                return scenario.default_meeting
        return MeetingSpec()

    def find_client(self, meeting: MeetingRef, participant: ParticipantRef) -> Optional[WebRtcClient]:
        """Look up a surviving client by meeting + participant reference.

        Read-only: a failed lookup registers nothing (an unknown meeting id
        must not claim a spec-order slot later integer references resolve
        through).
        """
        meeting_id = self.meeting_id_for(meeting)
        members = self.clients_by_meeting.get(meeting_id, [])
        if isinstance(participant, str):
            for client in members:
                if client.config.participant_id == participant:
                    return client
            return None
        meeting_index = self._meeting_naming.get(meeting_id)
        if meeting_index is None:
            return None
        wanted = self._participant_id(meeting_index, participant)
        for client in members:
            if client.config.participant_id == wanted:
                return client
        return None

    @staticmethod
    def _participant_id(meeting_index: int, participant_index: int) -> str:
        return f"m{meeting_index}-p{participant_index}"

    @staticmethod
    def _client_address(meeting_index: int, participant_index: int) -> Address:
        return Address(
            f"10.{1 + meeting_index // 200}.{meeting_index % 200}.{participant_index + 2}",
            6000 + participant_index,
        )

    # ------------------------------------------------------------------ churn (imperative + scheduled)

    def add_participant(
        self,
        meeting: MeetingRef,
        participant_index: Optional[int] = None,
        start: bool = True,
    ) -> WebRtcClient:
        """Join one new participant (creating the meeting if needed)."""
        meeting_id = self.meeting_id_for(meeting)
        meeting_index = self._register_meeting(
            meeting_id, prefer_index=meeting if isinstance(meeting, int) else None
        )
        if participant_index is None:
            participant_index = self._participant_counter.get(meeting_id, 0)
        client = self._admit(meeting_id, meeting_index, participant_index)
        if start:
            client.start()
        self.joins += 1
        self._log(f"join {client.config.participant_id} -> {meeting_id}")
        return client

    def _admit(self, meeting_id: str, meeting_index: int, participant_index: int) -> WebRtcClient:
        """Create, attach, and sign in one participant (not yet started)."""
        scenario = self.scenario
        spec = self._spec_for(meeting_id)
        traffic = scenario.traffic if scenario is not None else None
        seed = scenario.seed if scenario is not None else 1
        frame_bursts = spec.frame_bursts
        if frame_bursts is None:
            frame_bursts = traffic.frame_bursts if traffic is not None else False
        wire_native = spec.wire_native
        if wire_native is None:
            wire_native = traffic.wire_native if traffic is not None else False
        config = ClientConfig(
            participant_id=self._participant_id(meeting_index, participant_index),
            meeting_id=meeting_id,
            address=self._client_address(meeting_index, participant_index),
            remote=SFU_ADDRESS,
            send_audio=spec.send_audio,
            send_video=spec.send_video,
            video_bitrate_bps=spec.video_bitrate_bps,
            frame_rate=spec.frame_rate,
            seed=seed * 1000 + meeting_index * 37 + participant_index,
            send_frames_as_bursts=frame_bursts,
            wire_native=wire_native,
            srtp=traffic.srtp if traffic is not None else None,
        )
        client = WebRtcClient(config, self.simulator, self.network)
        self.network.attach(client, uplink=spec.uplink, downlink=spec.downlink)
        self.clients.append(client)
        self.clients_by_meeting.setdefault(meeting_id, []).append(client)
        counter = self._participant_counter.get(meeting_id, 0)
        self._participant_counter[meeting_id] = max(counter, participant_index + 1)
        if isinstance(self.sfu, SfuCluster):
            # declarative placement: an explicit cascade pins participant i
            # to member cascade[i % len], a plain `sfu` homes the whole
            # meeting; otherwise the cluster's default placement applies
            member: Optional[int] = None
            if spec.cascade:
                member = spec.cascade[participant_index % len(spec.cascade)]
            elif spec.sfu is not None:
                member = spec.sfu
            self.sfu.join(client, member=member)
        else:
            self.sfu.join(client)  # type: ignore[attr-defined]
        return client

    def leave(self, meeting: MeetingRef, participant: ParticipantRef) -> Optional[WebRtcClient]:
        """One participant leaves: signaling teardown, then network detach.

        The SFU releases everything the participant consumed (forwarding
        entries, PRE nodes, adaptation registers, feedback rules, accountant
        charges); the client stops producing media and its endpoint leaves
        the network.  The client object is kept in :attr:`departed` so its
        collected metrics remain readable.
        """
        client = self.find_client(meeting, participant)
        if client is None:
            return None
        meeting_id = client.config.meeting_id
        self.sfu.leave(client)  # type: ignore[attr-defined]
        client.detach()
        self.clients.remove(client)
        members = self.clients_by_meeting.get(meeting_id, [])
        if client in members:
            members.remove(client)
        self.departed.append(client)
        self.leaves += 1
        self._log(f"leave {client.config.participant_id} <- {meeting_id}")
        return client

    def set_link(
        self,
        meeting: MeetingRef,
        participant: ParticipantRef,
        uplink: Optional[LinkProfile] = None,
        downlink: Optional[LinkProfile] = None,
    ) -> bool:
        """Apply a link-profile phase change to one participant's access links."""
        client = self.find_client(meeting, participant)
        if client is None:
            return False
        self.network.reprofile(client.address, uplink=uplink, downlink=downlink)
        changed = " ".join(
            part
            for part, profile in (("uplink", uplink), ("downlink", downlink))
            if profile is not None
        )
        self._log(f"link {client.config.participant_id}: {changed or 'no-op'}")
        return True

    def migrate(self, meeting: MeetingRef, to_sfu: int) -> bool:
        """Live-migrate a meeting onto cluster member ``to_sfu``.

        Cross-SFU migration (``repro.cluster``): versioned snapshot, client
        re-home, rewriter adoption, straggler drain.  Returns ``False`` when
        the meeting is already home on the target; raises on a non-cluster
        backend (migration is a federation capability, not a churn event).
        """
        if not isinstance(self.sfu, SfuCluster):
            raise ValueError("migrate() requires a multi-SFU backend (BackendSpec.n_sfus > 1)")
        meeting_id = self.meeting_id_for(meeting)
        moved = self.sfu.migrate_meeting(meeting_id, to_sfu)
        self._log(f"migrate {meeting_id} -> sfu {to_sfu}{'' if moved else ' (already home)'}")
        return moved

    def _log(self, message: str) -> None:
        self.event_log.append((self.simulator.now, message))

    def _apply_event(self, event) -> None:
        if isinstance(event, JoinEvent):
            self.add_participant(event.meeting, event.participant_index)
        elif isinstance(event, LeaveEvent):
            if self.leave(event.meeting, event.participant) is None:
                # a scheduled event aimed at a participant that does not
                # (or no longer) exists is a scenario bug worth surfacing
                self._log(f"drop leave {event.meeting}/{event.participant}: no such participant")
        elif isinstance(event, LinkEvent):
            if not self.set_link(event.meeting, event.participant, event.uplink, event.downlink):
                self._log(f"drop link {event.meeting}/{event.participant}: no such participant")
        elif isinstance(event, MigrateEvent):
            self.migrate(event.meeting, event.to_sfu)
        else:  # pragma: no cover - spec types are closed
            raise TypeError(f"unknown scenario event: {event!r}")

    # ------------------------------------------------------------------ metrics

    def meeting_stats(self, window_s: float = 4.0) -> Dict[str, MeetingStats]:
        """Per-meeting receive metrics over the surviving population."""
        now = self.simulator.now
        stats: Dict[str, MeetingStats] = {}
        for meeting_id in self._meeting_order:
            members = self.clients_by_meeting.get(meeting_id, [])
            rates: List[float] = []
            jitters: List[float] = []
            freezes = 0
            packets = 0
            for client in members:
                for stream in client.video_receivers.values():
                    rates.append(stream.frame_rate(window_s, now))
                    jitters.append(stream.jitter_ms)
                    freezes += stream.freeze_events
                    packets += stream.packets_received
            stats[meeting_id] = MeetingStats(
                meeting_id=meeting_id,
                participants=len(members),
                inbound_video_streams=len(rates),
                mean_receive_fps=sum(rates) / len(rates) if rates else 0.0,
                mean_jitter_ms=sum(jitters) / len(jitters) if jitters else 0.0,
                freeze_events=freezes,
                video_packets_received=packets,
            )
        return stats

    def summary(self) -> Dict[str, object]:
        """One-dict run summary for CLIs and logs."""
        sfu = self.sfu
        out: Dict[str, object] = {
            "scenario": self.scenario.name if self.scenario is not None else "ad-hoc",
            "sim_time_s": round(self.simulator.now, 3),
            "meetings": sum(1 for members in self.clients_by_meeting.values() if members),
            "clients": len(self.clients),
            "departed": len(self.departed),
            "joins": self.joins,
            "leaves": self.leaves,
            "events_applied": len(self.event_log),
        }
        if isinstance(sfu, SfuCluster):
            out["sfu"] = "scallop-cluster"
            out["n_sfus"] = len(sfu.members)
            out["packets_in"] = sum(m.stats.packets_in for m in sfu.members)
            out["packets_out"] = sum(m.stats.packets_out for m in sfu.members)
            out["trunk_packets_in"] = sum(m.trunk_stats.packets_in for m in sfu.members)
            out["trunk_subscriptions"] = sum(m.trunk_stats.subscriptions for m in sfu.members)
            out["meeting_migrations"] = sum(m.trunk_stats.migrations_in for m in sfu.members)
            out["snapshot_bytes_shipped"] = sum(
                m.trunk_stats.snapshot_bytes for m in sfu.members
            ) // 2  # counted on both ends
        elif isinstance(sfu, ScallopSfu):
            out["sfu"] = "scallop"
            out["packets_in"] = sfu.stats.packets_in
            out["packets_out"] = sfu.stats.packets_out
            shares = sfu.data_plane_fraction()
            out["data_plane_packet_share"] = round(shares["packets"], 4)
            pipeline = sfu.pipeline
            migrations = getattr(pipeline, "migrations_applied", None)
            if migrations is not None:
                out["n_shards"] = pipeline.n_shards
                out["migrations_applied"] = migrations
                tracker = getattr(pipeline, "load_tracker", None)
                if tracker is not None:
                    out["rebalance_batches_observed"] = tracker.batches_observed
                    # report the quantity the policy actually drives down:
                    # egress-weighted shard load, under the armed config's
                    # weight (ingress-only skew under-states the balance the
                    # planner achieved on heterogeneous meeting sizes)
                    rebalancer = getattr(pipeline, "rebalancer", None)
                    egress_weight = (
                        rebalancer.config.egress_weight if rebalancer is not None else 0.0
                    )
                    weights = tracker.shard_weights(egress_weight)
                    mean = sum(weights) / len(weights) if weights else 0.0
                    out["rebalance_skew"] = round(max(weights) / mean, 3) if mean else 1.0
        elif isinstance(sfu, SoftwareSfu):
            out["sfu"] = "software"
            out["packets_in"] = sfu.stats.packets_in
            out["packets_out"] = sfu.stats.packets_out
            out["packets_dropped_cpu"] = sfu.stats.packets_dropped_cpu
        return out

    def metrics_snapshot(self) -> Dict[str, object]:
        """The run's unified telemetry snapshot (``repro.obs`` schema).

        Folds the SFU pipeline's entire stat surface through the
        :class:`~repro.obs.bus.TelemetryBus` and adds the client-side
        end-to-end RTP latency samples (surviving and departed clients),
        stamped with the simulator clock.  Works on any backend; series that
        need the declarative ``profile=True`` / ``obs=True`` backend knobs
        are present only when those were armed (``--metrics-out`` arms both).
        """
        from ..obs.bus import TelemetryBus

        bus = TelemetryBus()
        sim_time_s = self.simulator.now
        if isinstance(self.sfu, SfuCluster):
            for member in self.sfu.members:
                bus.add_engine(member.pipeline, sim_time_s=sim_time_s)
        else:
            pipeline = getattr(self.sfu, "pipeline", None)
            if pipeline is not None:
                bus.add_engine(pipeline, sim_time_s=sim_time_s)
        samples: List[float] = []
        for client in self.clients:
            samples.extend(getattr(client, "rtp_latency_samples_ms", ()))
        for client in self.departed:
            samples.extend(getattr(client, "rtp_latency_samples_ms", ()))
        bus.add_latency_samples(samples)
        return bus.snapshot(sim_time_s)

    # ------------------------------------------------------------------ reconciliation

    def reconcile(self) -> List[str]:
        """Check that SFU-side state matches the surviving population.

        Returns a list of human-readable discrepancies (empty = consistent).
        After any amount of churn the controller, switch agent, data-plane
        tables, and the resource accountant must all describe exactly the
        participants still in the run — a leave that leaks table entries,
        PRE nodes, or accountant charges shows up here.
        """
        problems: List[str] = []
        surviving_ids = {client.config.participant_id for client in self.clients}
        surviving_addresses = {client.address for client in self.clients}
        surviving_ssrcs = set()
        for client in self.clients:
            if client.config.send_audio:
                surviving_ssrcs.add(client.audio_ssrc)
            if client.config.send_video:
                surviving_ssrcs.add(client.video_ssrc)

        sfu = self.sfu
        if isinstance(sfu, SfuCluster):
            # the cluster audits each box against the cross-SFU population it
            # tracks itself (homes, trunk subscriptions, idle baselines); the
            # driver only cross-checks the two population ledgers agree
            if sfu.total_participants() != len(self.clients):
                problems.append(
                    f"cluster tracks {sfu.total_participants()} participants, "
                    f"{len(self.clients)} survive"
                )
            problems.extend(sfu.reconcile())
            return problems
        if isinstance(sfu, SoftwareSfu):
            if sfu.total_participants != len(self.clients):
                problems.append(
                    f"software SFU tracks {sfu.total_participants} participants, "
                    f"{len(self.clients)} survive"
                )
            stale = set(sfu._by_ssrc) - surviving_ssrcs
            if stale:
                problems.append(f"software SFU keeps {len(stale)} departed SSRC routes")
            return problems
        if not isinstance(sfu, ScallopSfu):
            return problems

        controller = sfu.controller
        if controller.total_participants() != len(self.clients):
            problems.append(
                f"controller tracks {controller.total_participants()} participants, "
                f"{len(self.clients)} survive"
            )
        agent_ids = set(sfu.agent._participants)
        if agent_ids != surviving_ids:
            problems.append(
                f"switch agent tracks {sorted(agent_ids ^ surviving_ids)} inconsistently"
            )
        control = sfu.pipeline.control
        for (src, ssrc), _entry in control.stream_table.entries():
            if src not in surviving_addresses or ssrc not in surviving_ssrcs:
                problems.append(f"stale stream entry for departed flow {src}/{ssrc}")
        for (ssrc, receiver), _entry in control.adaptation_table.entries():
            if receiver not in surviving_addresses or ssrc not in surviving_ssrcs:
                problems.append(f"stale adaptation entry ({ssrc}, {receiver})")
        for (receiver, ssrc), _rule in control.feedback_table.entries():
            if receiver not in surviving_addresses or ssrc not in surviving_ssrcs:
                problems.append(f"stale feedback rule ({receiver}, {ssrc})")
        # (the load tracker is deliberately NOT checked: in-flight tail
        # traffic of a departed client legitimately re-mints telemetry rows,
        # which are bounded and decay to zero — placement pins are the state
        # that must not outlive the population, enforced here)
        for (src, ssrc), _shard in control.placement_table.entries():
            if src not in surviving_addresses:
                problems.append(f"stale placement exception for departed flow {src}/{ssrc}")
        accountant = control.accountant
        pre = control.pre
        if accountant.trees_allocated != pre.num_trees:
            problems.append(
                f"accountant holds {accountant.trees_allocated} trees, PRE has {pre.num_trees}"
            )
        if accountant.l1_nodes_allocated != pre.total_l1_nodes():
            problems.append(
                f"accountant holds {accountant.l1_nodes_allocated} L1 nodes, "
                f"PRE has {pre.total_l1_nodes()}"
            )
        tracker_cells = sum(
            getattr(rewriter, "state_cells", 1)
            for _index, rewriter in control.stream_trackers.used_entries()
        )
        if accountant.stream_tracker_cells_used != tracker_cells:
            problems.append(
                f"accountant charges {accountant.stream_tracker_cells_used} tracker cells, "
                f"registers hold {tracker_cells}"
            )
        if control.stream_indices.in_use != len(control.adaptation_table):
            problems.append(
                f"{control.stream_indices.in_use} stream indices allocated for "
                f"{len(control.adaptation_table)} adaptation entries"
            )
        return problems


# --------------------------------------------------------------------------- building


def _build_sfu(scenario: Scenario, simulator: Simulator, network: Network):
    backend = scenario.backend
    if backend.kind == "scallop" and backend.n_sfus > 1:
        # member 0 sits on SFU_ADDRESS, so clients' initial signaling target
        # is unchanged; per-member backend knobs are uniform across the fleet
        return SfuCluster(
            simulator,
            network,
            n_sfus=backend.n_sfus,
            rewrite_variant=backend.rewrite_variant,
            adaptation_thresholds_bps=backend.adaptation_thresholds_bps,
            uplink_profile=backend.sfu_link,
            downlink_profile=backend.sfu_link,
            n_shards=backend.n_shards,
            shard_executor=backend.shard_executor,
            rebalance=backend.rebalance_config(),
            srtp=scenario.traffic.srtp,
            profile=backend.profile,
            obs=backend.obs,
        )
    if backend.kind == "scallop":
        return ScallopSfu(
            SFU_ADDRESS,
            simulator,
            network,
            rewrite_variant=backend.rewrite_variant,
            adaptation_thresholds_bps=backend.adaptation_thresholds_bps,
            uplink_profile=backend.sfu_link,
            downlink_profile=backend.sfu_link,
            n_shards=backend.n_shards,
            shard_executor=backend.shard_executor,
            rebalance=backend.rebalance_config(),
            srtp=scenario.traffic.srtp,
            profile=backend.profile,
            obs=backend.obs,
        )
    if scenario.traffic.srtp is not None:
        raise ValueError(
            "TrafficSpec.srtp is only supported by the scallop backend "
            "(the software baseline does not unprotect/re-protect media)"
        )
    return SoftwareSfu(
        SFU_ADDRESS,
        simulator,
        network,
        cores=backend.cores,
        cpu=backend.cpu,
        uplink_profile=backend.sfu_link,
        downlink_profile=backend.sfu_link,
        select_fn=backend.select_fn or select_decode_target,
    )


def build_scenario(scenario: Scenario) -> ScenarioRun:
    """Build a scenario into a running (not yet advanced) simulation.

    Deterministic: topology, addresses, seeds, and signaling order are pure
    functions of the spec, so two builds of the same scenario are
    stat-identical (this is also what makes the legacy
    ``build_*_testbed`` shims exactly equivalent to their scenario twins).
    The schedule's events are armed on the simulator; ``run()`` (or any
    ``run_for``) executes them at their times.
    """
    late_events = sum(1 for event in scenario.schedule.events if event.at_s >= scenario.duration_s)
    if late_events:
        # legal (an interactive caller may run_for past the horizon) but a
        # trap when the run ends at duration_s: surface it at build time
        warnings.warn(
            f"{late_events} schedule event(s) at/after duration_s="
            f"{scenario.duration_s}; they only fire if the run is advanced "
            "past the scenario horizon",
            stacklevel=2,
        )
    resolved_ids = [
        spec.meeting_id or f"meeting-{index}" for index, spec in enumerate(scenario.meetings)
    ]
    duplicates = {mid for mid in resolved_ids if resolved_ids.count(mid) > 1}
    if duplicates:
        raise ValueError(
            f"scenario declares duplicate meeting ids: {sorted(duplicates)} "
            "(every MeetingSpec must resolve to a distinct meeting)"
        )
    simulator = Simulator()
    network = Network(
        simulator,
        seed=scenario.seed,
        rx_coalesce_window_s=(
            scenario.traffic.rx_coalesce_window_s if scenario.effective_frame_bursts() else 0.0
        ),
    )
    sfu = _build_sfu(scenario, simulator, network)
    run = ScenarioRun(simulator=simulator, network=network, sfu=sfu, scenario=scenario)

    for index, (meeting_id, spec) in enumerate(zip(resolved_ids, scenario.meetings)):
        run._register_meeting(meeting_id, prefer_index=index)
        for participant_index in range(spec.participants):
            run._admit(meeting_id, index, participant_index)
            run.joins += 1
    if isinstance(sfu, (ScallopSfu, SfuCluster)):
        sfu.start()
    for client in run.clients:
        client.start()

    now = simulator.now
    for event in sorted(scenario.schedule.events, key=lambda e: e.at_s):
        simulator.schedule(max(0.0, event.at_s - now), lambda e=event: run._apply_event(e))
    return run
