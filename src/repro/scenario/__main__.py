"""CLI runner for the canned scenario library.

Usage::

    python -m repro.scenario churn_storm [--smoke] [--duration S] [--seed N]
    python -m repro.scenario --list

Runs the named scenario to its horizon, prints the applied event log and
per-meeting receive metrics, and *reconciles* the SFU-side state against the
surviving population — any leaked table entry, PRE node, or accountant
charge after churn fails the run (exit code 1), which is what CI's
``churn_storm --smoke`` step gates on.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .driver import build_scenario
from .library import LIBRARY


def _print_run(run) -> None:
    print(f"=== scenario: {run.scenario.name} ({run.simulator.now:.1f} s simulated) ===")
    if run.event_log:
        print("events:")
        for at_s, message in run.event_log:
            print(f"  {at_s:7.2f}s  {message}")
    stats = run.meeting_stats()
    if stats:
        print(f"{'meeting':<14}{'parts':>6}{'streams':>8}{'fps':>7}{'jitter':>8}{'pkts':>9}{'frz':>5}")
        for meeting in stats.values():
            print(
                f"{meeting.meeting_id:<14}{meeting.participants:>6}"
                f"{meeting.inbound_video_streams:>8}{meeting.mean_receive_fps:>7.1f}"
                f"{meeting.mean_jitter_ms:>8.2f}{meeting.video_packets_received:>9}"
                f"{meeting.freeze_events:>5}"
            )
    print("summary:")
    for key, value in run.summary().items():
        print(f"  {key}: {value}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.scenario", description=__doc__)
    parser.add_argument("name", nargs="?", choices=sorted(LIBRARY), help="canned scenario to run")
    parser.add_argument("--smoke", action="store_true", help="short-horizon CI variant")
    parser.add_argument("--duration", type=float, default=None, help="override the horizon (s)")
    parser.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    parser.add_argument(
        "--executor",
        default=None,
        help="override the backend shard executor (serial, thread, or process)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the coordinator Amdahl stage table (sharded backends only)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's repro.obs telemetry snapshot (JSON) to PATH; "
        "arms the backend's profile and obs knobs so the coordinator stage "
        "histograms and per-shard tracing series are present",
    )
    parser.add_argument("--list", action="store_true", help="list the scenario library")
    args = parser.parse_args(argv)

    if args.list or args.name is None:
        for name, factory in sorted(LIBRARY.items()):
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<18} {doc}")
        return 0

    scenario = LIBRARY[args.name](args.smoke)
    if args.duration is not None:
        scenario = dataclasses.replace(scenario, duration_s=args.duration)
    if args.seed is not None:
        scenario = dataclasses.replace(scenario, seed=args.seed)
    if args.executor is not None:
        # BackendSpec.__post_init__ revalidates the name, so a typo fails
        # here with the engine's own error message rather than deep in setup
        scenario = dataclasses.replace(
            scenario,
            backend=dataclasses.replace(scenario.backend, shard_executor=args.executor),
        )
    if args.metrics_out is not None and scenario.backend.kind == "scallop":
        # arm the declarative telemetry knobs so the snapshot carries the
        # coordinator stage histograms and per-shard obs series (core schema)
        scenario = dataclasses.replace(
            scenario,
            backend=dataclasses.replace(scenario.backend, profile=True, obs=True),
        )

    with build_scenario(scenario) as run:
        stats = None
        if args.profile:
            pipeline = getattr(run.sfu, "pipeline", None)
            if pipeline is not None and hasattr(pipeline, "coordinator_stats"):
                from ..experiments.coordstats import CoordinatorStats

                stats = pipeline.coordinator_stats = CoordinatorStats()
            else:
                print(
                    "--profile: backend is not a sharded engine, no coordinator to profile",
                    file=sys.stderr,
                )
        run.run()
        _print_run(run)
        if stats is not None:
            print()
            print(stats.format_table())
        if args.metrics_out is not None:
            from ..obs.export import to_json

            snapshot = run.metrics_snapshot()
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(to_json(snapshot))
            print(
                f"metrics snapshot: {len(snapshot['series'])} series, "
                f"{len(snapshot['traces'])} traces -> {args.metrics_out}"
            )
        problems = run.reconcile()
    if problems:
        print("RECONCILIATION FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("reconciliation: SFU state matches the surviving population")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
