"""Declarative workload scenarios: specs, the driver, and a canned library.

The public workload API of the reproduction.  Describe a population and its
evolution as data (:class:`Scenario` — heterogeneous :class:`MeetingSpec`
meetings, a :class:`Schedule` of timed joins/leaves/link-profile phases, a
:class:`BackendSpec`, a :class:`TrafficSpec`), then :func:`build_scenario` it
into a :class:`ScenarioRun` to simulate.  ``python -m repro.scenario`` runs
the canned :data:`LIBRARY` (``steady``, ``churn_storm``, ``flash_crowd``,
``degrading_uplink``, ``zipf_hotset``, ``federated_pair``) from the
command line.
"""

from .spec import (
    BackendSpec,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    MeetingSpec,
    MigrateEvent,
    Scenario,
    ScenarioEvent,
    Schedule,
    TrafficSpec,
    zipf_meetings,
)
from .driver import (
    SFU_ADDRESS,
    MeetingStats,
    ScenarioRun,
    Testbed,
    build_scenario,
)
from .library import (
    LIBRARY,
    churn_storm,
    degrading_uplink,
    federated_pair,
    flash_crowd,
    steady,
    zipf_hotset,
)

__all__ = [
    "BackendSpec",
    "JoinEvent",
    "LeaveEvent",
    "LinkEvent",
    "MeetingSpec",
    "MigrateEvent",
    "Scenario",
    "ScenarioEvent",
    "Schedule",
    "TrafficSpec",
    "zipf_meetings",
    "SFU_ADDRESS",
    "MeetingStats",
    "ScenarioRun",
    "Testbed",
    "build_scenario",
    "LIBRARY",
    "steady",
    "churn_storm",
    "flash_crowd",
    "degrading_uplink",
    "zipf_hotset",
    "federated_pair",
]
