"""Declarative workload specifications: what a simulated deployment runs.

A :class:`Scenario` is the single public description of an end-to-end
workload: *which meetings exist* (a heterogeneous tuple of
:class:`MeetingSpec` — sizes, bitrates, frame rates, and per-meeting traffic
models are all first-class, so Zipf meeting populations are a spec, not a
hand-rolled loop), *what happens over time* (a :class:`Schedule` of timed
joins, leaves, and :class:`~repro.netsim.link.LinkProfile` phase changes —
SRMCA's point is that membership and load churn are the normal case, not an
edge case), *which SFU serves it* (a :class:`BackendSpec` unifying the
Scallop / software / cpu-punt choice with shards, executor, and the
load-aware rebalancer in one place), and *how media is represented on the
wire* (a :class:`TrafficSpec`: frame bursts, wire-native encoding, RX
moderation).

Specs are immutable values: building one performs no simulation work, so
scenarios can be constructed in tests, serialized into tables, or swept over
without side effects.  :func:`repro.scenario.driver.build_scenario` turns a
spec into a live :class:`~repro.scenario.driver.ScenarioRun`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Union

from ..core.capacity import RewriteVariant
from ..dataplane.rebalance import RebalancerConfig
from ..dataplane.sharding import validate_executor
from ..netsim.link import LinkProfile
from ..obs.hooks import ObsConfig

#: Selector for a meeting: its index in :attr:`Scenario.meetings` or its id.
MeetingRef = Union[int, str]
#: Selector for a participant: its per-meeting index or its participant id.
ParticipantRef = Union[int, str]


@dataclass(frozen=True)
class MeetingSpec:
    """One meeting's population and media parameters.

    ``frame_bursts`` / ``wire_native`` default to ``None`` (inherit the
    scenario's :class:`TrafficSpec`); setting them makes the meeting's
    traffic model heterogeneous relative to the rest of the population.
    """

    participants: int = 3
    meeting_id: Optional[str] = None
    video_bitrate_bps: float = 2_200_000.0
    frame_rate: float = 30.0
    send_audio: bool = True
    send_video: bool = True
    #: Access-link profiles of this meeting's participants (``None`` =
    #: :data:`~repro.netsim.link.DEFAULT_ACCESS_PROFILE`).
    uplink: Optional[LinkProfile] = None
    downlink: Optional[LinkProfile] = None
    #: Per-meeting traffic-model overrides (``None`` inherits the scenario).
    frame_bursts: Optional[bool] = None
    wire_native: Optional[bool] = None
    #: Cluster placement (``repro.cluster``): home every participant on this
    #: member index (``None`` = the cluster's default placement).
    sfu: Optional[int] = None
    #: Cascade the meeting: participant ``i`` is homed on member
    #: ``cascade[i % len(cascade)]`` — e.g. ``(0, 0, 1, 1)`` splits a
    #: four-party meeting across two boxes joined by an inter-SFU trunk.
    #: Takes precedence over ``sfu``.
    cascade: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TrafficSpec:
    """Scenario-wide media representation defaults.

    ``frame_bursts`` delivers each video frame as one schedule-preserving
    network burst (the SFU ingests batches); ``wire_native`` makes senders
    serialize each packet exactly once into a packed
    :class:`~repro.rtp.wire.PacketView` buffer; ``rx_coalesce_window_s`` is
    the NIC-style RX interrupt-moderation window used when bursts are on;
    ``srtp`` (a :class:`~repro.rtp.srtp.SrtpProfile`) makes every client
    authenticate-and-encrypt emitted media and the SFU datapath
    unprotect/re-protect each packet — SRTP-shaped per-packet CPU work,
    which requires ``wire_native`` (protection operates on wire buffers;
    the object model has no payload bytes to protect).
    """

    frame_bursts: bool = False
    wire_native: bool = False
    rx_coalesce_window_s: float = 250e-6
    #: Optional :class:`~repro.rtp.srtp.SrtpProfile`; requires wire_native.
    srtp: Optional[object] = None

    def __post_init__(self) -> None:
        if self.srtp is not None and not self.wire_native:
            raise ValueError(
                "TrafficSpec.srtp requires wire_native=True: SRTP protection "
                "operates on packed wire buffers, not object-model packets"
            )


@dataclass(frozen=True)
class BackendSpec:
    """Which SFU serves the scenario, and how it is configured.

    One place for every backend knob that used to be scattered across
    ``build_scallop_testbed`` / ``build_software_testbed`` kwargs and
    post-hoc pipeline surgery: ``kind`` selects the SFU, the Scallop block
    configures the dataplane (shards, executor, and — finally reachable from
    a workload spec — the load-aware rebalancer), and the software block
    configures the split-proxy baseline's CPU model.
    """

    #: ``"scallop"`` — the switch SFU; ``"software"`` (alias ``"cpu-punt"``)
    #: — the split-proxy baseline that pays the CPU cost per packet per copy.
    kind: str = "scallop"
    #: SFU port profile applied to both directions (``None`` = the backend's
    #: default 1 Gbit/s-class port).
    sfu_link: Optional[LinkProfile] = None
    #: Federation size (``repro.cluster``): ``1`` runs the classic single
    #: box; ``n > 1`` builds an :class:`~repro.cluster.SfuCluster` of ``n``
    #: Scallop SFUs joined by inter-SFU trunks, and meetings place/cascade
    #: across members via :attr:`MeetingSpec.sfu` / :attr:`MeetingSpec.cascade`.
    n_sfus: int = 1

    # -- scallop ---------------------------------------------------------------
    rewrite_variant: RewriteVariant = RewriteVariant.S_LR
    adaptation_thresholds_bps: Optional[Tuple[float, float]] = None
    n_shards: int = 1
    shard_executor: str = "serial"
    #: Arm the telemetry -> policy -> migration placement loop: ``True`` for
    #: defaults, a :class:`~repro.dataplane.rebalance.RebalancerConfig` for
    #: explicit knobs, ``None``/``False`` for static CRC32 placement.
    rebalance: Union[bool, RebalancerConfig, None] = None
    #: Attach the coordinator's Amdahl stage profile
    #: (:class:`~repro.experiments.coordstats.CoordinatorStats`)
    #: declaratively — no post-hoc pipeline surgery; implies the sharded
    #: engine even at ``n_shards=1``.
    profile: bool = False
    #: Arm the telemetry plane on every datapath shard: ``True`` for the
    #: default :class:`~repro.obs.hooks.ObsConfig`, an explicit config for
    #: custom sampling, ``None``/``False`` to keep the hot path bare.
    obs: Union[bool, ObsConfig, None] = None

    # -- software --------------------------------------------------------------
    cores: int = 1
    #: Pre-built CPU model (overrides ``cores``), e.g. a calibrated
    #: :class:`~repro.baseline.cpu.CpuPool` for overload experiments.
    cpu: Optional[object] = None
    #: Decode-target selection policy (``None`` = the paper's default).
    select_fn: Optional[Callable] = None

    def __post_init__(self) -> None:
        kind = self.kind
        if kind == "cpu-punt":
            object.__setattr__(self, "kind", "software")
        elif kind not in ("scallop", "software"):
            raise ValueError(f"unknown backend kind: {kind!r}")
        if self.n_sfus < 1:
            raise ValueError(f"BackendSpec.n_sfus must be >= 1, got {self.n_sfus}")
        if self.n_sfus > 1 and self.kind != "scallop":
            raise ValueError("multi-SFU federation requires the scallop backend")
        # single source of truth for executor names: the sharding module's
        # validator, shared with the engine constructor
        validate_executor(self.shard_executor)

    @classmethod
    def cluster(cls, n_sfus: int = 2, **kwargs) -> "BackendSpec":
        """A federation of ``n_sfus`` Scallop boxes in one netsim."""
        return cls(kind="scallop", n_sfus=n_sfus, **kwargs)

    def rebalance_config(self) -> Optional[RebalancerConfig]:
        """The effective rebalancer config, or ``None`` when disarmed."""
        if self.rebalance is True:
            return RebalancerConfig()
        if isinstance(self.rebalance, RebalancerConfig):
            return self.rebalance
        return None


# --------------------------------------------------------------------------- schedule events


@dataclass(frozen=True)
class JoinEvent:
    """A participant joins ``meeting`` at ``at_s`` (created on the fly)."""

    at_s: float
    meeting: MeetingRef
    participant_index: Optional[int] = None


@dataclass(frozen=True)
class LeaveEvent:
    """``participant`` leaves ``meeting`` at ``at_s`` (full teardown: media
    stops, the endpoint detaches, and the SFU releases the participant's
    table/PRE/register state and accountant charges)."""

    at_s: float
    meeting: MeetingRef
    participant: ParticipantRef


@dataclass(frozen=True)
class LinkEvent:
    """A link-profile phase change on one participant's access links."""

    at_s: float
    meeting: MeetingRef
    participant: ParticipantRef
    uplink: Optional[LinkProfile] = None
    downlink: Optional[LinkProfile] = None


@dataclass(frozen=True)
class MigrateEvent:
    """Migrate ``meeting`` onto cluster member ``to_sfu`` at ``at_s``.

    Cross-SFU live migration (``repro.cluster``): snapshot at a batch
    boundary, move the clients, adopt the versioned rewriter/decode-target
    snapshot on the destination, drain stragglers over the trunk.  Only
    meaningful on a ``n_sfus > 1`` backend.
    """

    at_s: float
    meeting: MeetingRef
    to_sfu: int


ScenarioEvent = Union[JoinEvent, LeaveEvent, LinkEvent, MigrateEvent]


@dataclass(frozen=True)
class Schedule:
    """A timed event script executed against the simulator by the driver.

    Immutable fluent builder: every helper returns a new schedule with the
    event appended, so phases compose: ``Schedule().join(2.0, 0).leave(5.0,
    0, 1).set_link(8.0, 0, 2, downlink=congested)``.
    """

    events: Tuple[ScenarioEvent, ...] = ()

    def join(
        self, at_s: float, meeting: MeetingRef, participant_index: Optional[int] = None
    ) -> "Schedule":
        return Schedule(self.events + (JoinEvent(at_s, meeting, participant_index),))

    def leave(self, at_s: float, meeting: MeetingRef, participant: ParticipantRef) -> "Schedule":
        return Schedule(self.events + (LeaveEvent(at_s, meeting, participant),))

    def set_link(
        self,
        at_s: float,
        meeting: MeetingRef,
        participant: ParticipantRef,
        uplink: Optional[LinkProfile] = None,
        downlink: Optional[LinkProfile] = None,
    ) -> "Schedule":
        return Schedule(self.events + (LinkEvent(at_s, meeting, participant, uplink, downlink),))

    def migrate(self, at_s: float, meeting: MeetingRef, to_sfu: int) -> "Schedule":
        return Schedule(self.events + (MigrateEvent(at_s, meeting, to_sfu),))

    def extend(self, *events: ScenarioEvent) -> "Schedule":
        return Schedule(self.events + tuple(events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------------- the scenario


@dataclass(frozen=True)
class Scenario:
    """A complete declarative workload: population + schedule + backend.

    ``meetings`` is the initial population (heterogeneous specs welcome);
    ``schedule`` mutates it over time; ``default_meeting`` is the template
    used when a scheduled (or imperative) join targets a meeting the spec
    did not declare — which is how open-ended populations (the overload
    sweep's incremental joins) stay declarative.
    """

    meetings: Tuple[MeetingSpec, ...] = ()
    backend: BackendSpec = field(default_factory=BackendSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    schedule: Schedule = field(default_factory=Schedule)
    duration_s: float = 30.0
    seed: int = 1
    name: str = "scenario"
    #: Template for meetings created dynamically by join events.
    default_meeting: Optional[MeetingSpec] = None

    @classmethod
    def uniform(
        cls,
        num_meetings: int,
        participants_per_meeting: Optional[int] = None,
        meeting: Optional[MeetingSpec] = None,
        **kwargs,
    ) -> "Scenario":
        """The classic flat population: ``num_meetings`` identical meetings.

        ``participants_per_meeting`` overrides the template's size only when
        given — a template that already carries its population is respected.
        """
        template = meeting or MeetingSpec()
        if participants_per_meeting is not None:
            template = replace(template, participants=participants_per_meeting)
        return cls(meetings=tuple(template for _ in range(num_meetings)), **kwargs)

    def effective_frame_bursts(self) -> bool:
        """Whether any meeting in the population sends frame bursts."""
        if any(spec.frame_bursts for spec in self.meetings):
            return True
        if any(spec.frame_bursts is None for spec in self.meetings) and self.traffic.frame_bursts:
            return True
        if self.default_meeting is not None:
            if self.default_meeting.frame_bursts or (
                self.default_meeting.frame_bursts is None and self.traffic.frame_bursts
            ):
                return True
        return not self.meetings and self.traffic.frame_bursts


def zipf_meetings(
    count: int,
    largest: int = 10,
    exponent: float = 0.6,
    floor: int = 2,
    meeting: Optional[MeetingSpec] = None,
) -> Tuple[MeetingSpec, ...]:
    """A Zipf-distributed meeting-size population as a first-class spec.

    Meeting ``rank`` gets ``max(floor, round(largest / (rank + 1) ** s))``
    participants — the heterogeneous population the mega-meeting sweep used
    to hand-roll, now composable with any backend/schedule.
    """
    template = meeting or MeetingSpec()
    return tuple(
        replace(template, participants=max(floor, round(largest / (rank + 1) ** exponent)))
        for rank in range(count)
    )
