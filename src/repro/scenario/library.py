"""Canned scenario library: one spec per workload family, CLI-runnable.

Each factory returns a ready :class:`~repro.scenario.spec.Scenario`; pass
``smoke=True`` for a short-horizon variant sized for CI.  The table below is
the map from scenario to the subsystem it exercises end to end:

=================  ==========================================================
Scenario           Exercises
=================  ==========================================================
``steady``         The paper's flat population: forwarding, replication
                   trees, feedback rules, data-plane/CPU split (Table 1).
``churn_storm``    Continuous joins + leaves with a mid-run link-profile
                   phase change on a sharded dataplane with the load-aware
                   rebalancer armed: membership teardown (tables, PRE,
                   rewriter registers, accountant charges), burst batch
                   ingest, and live flow migration under churn.
``flash_crowd``    A two-party call that balloons: TWO_PARTY -> NRA design
                   promotion, controller reconfiguration storms, replication
                   tree growth.
``degrading_uplink``  A sender's uplink degrades in phases (loss + shrinking
                   bandwidth), then recovers: NACK/RTX, GCC estimation, and
                   sequence-rewriter behaviour under uplink loss.
``zipf_hotset``    Zipf meeting sizes and a hot head: heterogeneous
                   populations on a sharded wire-native dataplane with
                   rebalancing — egress-weighted placement end to end.
``federated_pair``  Two Scallop boxes in one netsim: a meeting cascaded
                   across both over an inter-SFU trunk, late joins landing
                   on either box, then a mid-run live migration
                   consolidating the meeting onto one box (``repro.cluster``
                   end to end: trunks, snapshot shipping, straggler drain).
=================  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from ..dataplane.rebalance import RebalancerConfig
from ..netsim.link import LinkProfile
from .spec import BackendSpec, MeetingSpec, Scenario, Schedule, TrafficSpec, zipf_meetings

#: Rebalancer knobs for scenario-scale runs: short epochs so the control
#: loop converges within a few simulated seconds of bursty batches.
SCENARIO_REBALANCE = RebalancerConfig(
    epoch_batches=4, trigger_ratio=1.15, target_ratio=1.05, migration_budget=6
)

CONGESTED_DOWNLINK = LinkProfile(
    bandwidth_bps=1_300_000, propagation_delay_s=0.01, queue_limit_bytes=60_000
)
LOSSY_UPLINK = LinkProfile(bandwidth_bps=2_000_000, propagation_delay_s=0.01, loss_rate=0.03)
CRUSHED_UPLINK = LinkProfile(
    bandwidth_bps=900_000, propagation_delay_s=0.015, loss_rate=0.08, queue_limit_bytes=50_000
)
HEALTHY_ACCESS = LinkProfile(bandwidth_bps=50_000_000, propagation_delay_s=0.01)


def steady(smoke: bool = False) -> Scenario:
    """The flat, static population every paper experiment was built from."""
    return Scenario.uniform(
        num_meetings=2 if smoke else 4,
        participants_per_meeting=3,
        name="steady",
        duration_s=6.0 if smoke else 20.0,
        seed=1,
    )


def churn_storm(smoke: bool = False) -> Scenario:
    """Membership churn as the normal case, on a rebalancing sharded SFU.

    Joins and leaves land throughout the run, one participant's downlink
    degrades mid-run and recovers (a phased :class:`LinkProfile` change),
    and the 4-shard dataplane runs with the placement control loop armed —
    the end state must reconcile to the surviving population exactly.
    """
    num_meetings = 2 if smoke else 4
    participants = 3 if smoke else 4
    duration = 8.0 if smoke else 30.0
    schedule = Schedule()
    # a wave of late joiners, spread across meetings and time
    join_times = [duration * f for f in (0.15, 0.25, 0.4, 0.55)]
    for wave, at_s in enumerate(join_times):
        schedule = schedule.join(at_s, wave % num_meetings)
    # early participants start leaving while the joins are still landing
    leave_times = [duration * f for f in (0.35, 0.5, 0.7)]
    for wave, at_s in enumerate(leave_times):
        schedule = schedule.leave(at_s, wave % num_meetings, wave % participants)
    # the phased link change: a meeting-0 participant that never leaves
    # (the leave waves above take participants 0 and 2 of meeting 0)
    # degrades mid-run, then recovers before the end
    schedule = schedule.set_link(
        duration * 0.45, 0, 1, downlink=CONGESTED_DOWNLINK
    ).set_link(duration * 0.8, 0, 1, downlink=HEALTHY_ACCESS)
    return Scenario(
        name="churn_storm",
        meetings=tuple(
            MeetingSpec(participants=participants, video_bitrate_bps=900_000.0)
            for _ in range(num_meetings)
        ),
        default_meeting=MeetingSpec(video_bitrate_bps=900_000.0),
        backend=BackendSpec(
            kind="scallop",
            n_shards=2 if smoke else 4,
            rebalance=SCENARIO_REBALANCE,
            adaptation_thresholds_bps=(900_000.0 * 0.8, 900_000.0 * 0.4),
        ),
        traffic=TrafficSpec(frame_bursts=True),
        schedule=schedule,
        duration_s=duration,
        seed=7,
    )


def flash_crowd(smoke: bool = False) -> Scenario:
    """A two-party call that a crowd piles into."""
    duration = 8.0 if smoke else 16.0
    joiners = 4 if smoke else 8
    schedule = Schedule()
    start = duration * 0.25
    for wave in range(joiners):
        schedule = schedule.join(start + wave * 0.4, 0)
    return Scenario(
        name="flash_crowd",
        meetings=(MeetingSpec(participants=2, video_bitrate_bps=900_000.0),),
        default_meeting=MeetingSpec(video_bitrate_bps=900_000.0),
        schedule=schedule,
        duration_s=duration,
        seed=11,
    )


def degrading_uplink(smoke: bool = False) -> Scenario:
    """One sender's uplink degrades in phases, then recovers."""
    duration = 10.0 if smoke else 30.0
    schedule = (
        Schedule()
        .set_link(duration * 0.3, 0, 0, uplink=LOSSY_UPLINK)
        .set_link(duration * 0.55, 0, 0, uplink=CRUSHED_UPLINK)
        .set_link(duration * 0.8, 0, 0, uplink=HEALTHY_ACCESS)
    )
    return Scenario(
        name="degrading_uplink",
        meetings=(MeetingSpec(participants=3, video_bitrate_bps=900_000.0),),
        backend=BackendSpec(adaptation_thresholds_bps=(900_000.0 * 0.8, 900_000.0 * 0.4)),
        schedule=schedule,
        duration_s=duration,
        seed=13,
    )


def zipf_hotset(smoke: bool = False) -> Scenario:
    """Zipf meeting sizes on a sharded, wire-native, rebalancing dataplane."""
    count = 6 if smoke else 12
    largest = 5 if smoke else 8
    return Scenario(
        name="zipf_hotset",
        meetings=zipf_meetings(
            count, largest=largest, floor=2, meeting=MeetingSpec(video_bitrate_bps=900_000.0)
        ),
        backend=BackendSpec(kind="scallop", n_shards=4, rebalance=SCENARIO_REBALANCE),
        traffic=TrafficSpec(frame_bursts=True, wire_native=True),
        duration_s=6.0 if smoke else 12.0,
        seed=17,
    )


def federated_pair(smoke: bool = False) -> Scenario:
    """Two federated Scallop boxes: a cascaded meeting, then live migration.

    Meeting 0 is split across both boxes (``cascade=(0, 0, 1, 1)``) so its
    media crosses the inter-SFU trunk in both directions; meeting 1 lives
    entirely on box 1 so box 0 must hold no state for it.  A late joiner
    lands on each side of the cascade mid-run, one early participant leaves,
    and at 60% of the horizon the cascaded meeting live-migrates onto box 1
    — versioned snapshot, rewriter adoption, straggler drain — after which
    box 0 must drain back toward its baseline.  End-state reconciliation
    audits every box against the surviving cross-SFU population.
    """
    duration = 8.0 if smoke else 20.0
    schedule = (
        Schedule()
        .join(duration * 0.2, 0)   # lands on box 0 (cascade index 4 % 4 = 0)
        .join(duration * 0.3, 1)   # meeting 1 grows on box 1
        .leave(duration * 0.45, 0, 1)
        .migrate(duration * 0.6, 0, 1)
    )
    return Scenario(
        name="federated_pair",
        meetings=(
            MeetingSpec(participants=4, video_bitrate_bps=900_000.0, cascade=(0, 0, 1, 1)),
            MeetingSpec(participants=2, video_bitrate_bps=900_000.0, sfu=1),
        ),
        default_meeting=MeetingSpec(video_bitrate_bps=900_000.0),
        backend=BackendSpec.cluster(
            n_sfus=2,
            adaptation_thresholds_bps=(900_000.0 * 0.8, 900_000.0 * 0.4),
        ),
        traffic=TrafficSpec(frame_bursts=True, wire_native=True),
        schedule=schedule,
        duration_s=duration,
        seed=23,
    )


LIBRARY: Dict[str, Callable[[bool], Scenario]] = {
    "steady": steady,
    "churn_storm": churn_storm,
    "flash_crowd": flash_crowd,
    "degrading_uplink": degrading_uplink,
    "zipf_hotset": zipf_hotset,
    "federated_pair": federated_pair,
}
