"""Shared experiment scaffolding: build simulated meetings on either SFU.

Every end-to-end experiment (Table 1, Figures 3/4, 14, 19) needs the same
setup: a simulator, a network, an SFU (Scallop or the software baseline), and
a set of WebRTC clients signed into meetings.  This module provides that
scaffolding with deterministic seeds and convenient link-profile knobs so the
experiment modules read like the paper's methodology sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baseline.cpu import CpuPool
from ..baseline.software_sfu import SoftwareSfu
from ..core.capacity import RewriteVariant
from ..core.scallop import ScallopSfu
from ..netsim.datagram import Address
from ..netsim.link import LinkProfile, Network
from ..netsim.simulator import Simulator
from ..webrtc.client import ClientConfig, WebRtcClient

SFU_ADDRESS = Address("10.0.0.1", 5000)


@dataclass
class MeetingSetupConfig:
    """Parameters of a simulated meeting population."""

    num_meetings: int = 1
    participants_per_meeting: int = 3
    video_bitrate_bps: float = 2_200_000.0
    frame_rate: float = 30.0
    send_audio: bool = True
    send_video: bool = True
    access_uplink: Optional[LinkProfile] = None
    access_downlink: Optional[LinkProfile] = None
    seed: int = 1
    #: Deliver each video frame as a coalesced packet burst so the SFU's
    #: batch pipeline handles it.  Bursts are deliver-with-schedule: every
    #: packet keeps its per-packet arrival timestamp inside the burst, so
    #: GCC/jitter measurements see true pacing while the SFU ingests one
    #: batch per event (what large multi-meeting sweeps want).
    frame_bursts: bool = False
    #: Shard count of the Scallop dataplane (1 = the single-datapath
    #: reference engine; >=2 partitions bursts by flow across share-nothing
    #: datapath shards with byte-identical outputs).
    n_shards: int = 1
    #: Shard execution backend ("serial" in-process, or "process" for the
    #: per-shard worker pools fed by the zero-pickle packed transport).
    shard_executor: str = "serial"
    #: Clients emit RTP wire-natively (packed :class:`~repro.rtp.wire.PacketView`
    #: buffers encoded once at the sender, forwarded/rewritten in place by the
    #: SFU, decoded once at the receiver).  Observable simulation behaviour is
    #: identical to the object representation.
    wire_native: bool = False
    #: RX interrupt-moderation window used when ``frame_bursts`` is on:
    #: bursts landing at an endpoint within this window drain as one batch,
    #: so batch sizes follow instantaneous load.  Packet timings are carried
    #: inside the burst (deliver-with-schedule), so the window shifts only
    #: event times, not measured arrival times.
    rx_coalesce_window_s: float = 250e-6


@dataclass
class Testbed:
    """A built topology: simulator, network, the SFU, and all clients."""

    simulator: Simulator
    network: Network
    sfu: object
    clients: List[WebRtcClient] = field(default_factory=list)
    clients_by_meeting: Dict[str, List[WebRtcClient]] = field(default_factory=dict)

    def meeting(self, meeting_id: str) -> List[WebRtcClient]:
        return self.clients_by_meeting.get(meeting_id, [])

    def run_for(self, duration_s: float) -> None:
        self.simulator.run_for(duration_s)

    def close(self) -> None:
        """Release SFU backend resources (worker pools of a process-sharded
        Scallop pipeline); safe to call on any testbed."""
        close = getattr(self.sfu, "close", None)
        if close is not None:
            close()


def _client_address(meeting_index: int, participant_index: int) -> Address:
    return Address(f"10.{1 + meeting_index // 200}.{meeting_index % 200}.{participant_index + 2}", 6000 + participant_index)


def _make_client(
    testbed: Testbed,
    config: MeetingSetupConfig,
    meeting_index: int,
    participant_index: int,
    remote: Address,
) -> WebRtcClient:
    meeting_id = f"meeting-{meeting_index}"
    participant_id = f"m{meeting_index}-p{participant_index}"
    address = _client_address(meeting_index, participant_index)
    client_config = ClientConfig(
        participant_id=participant_id,
        meeting_id=meeting_id,
        address=address,
        remote=remote,
        send_audio=config.send_audio,
        send_video=config.send_video,
        video_bitrate_bps=config.video_bitrate_bps,
        frame_rate=config.frame_rate,
        seed=config.seed * 1000 + meeting_index * 37 + participant_index,
        send_frames_as_bursts=config.frame_bursts,
        wire_native=config.wire_native,
    )
    client = WebRtcClient(client_config, testbed.simulator, testbed.network)
    testbed.network.attach(client, uplink=config.access_uplink, downlink=config.access_downlink)
    testbed.clients.append(client)
    testbed.clients_by_meeting.setdefault(meeting_id, []).append(client)
    return client


def build_scallop_testbed(
    config: Optional[MeetingSetupConfig] = None,
    rewrite_variant: RewriteVariant = RewriteVariant.S_LR,
    adaptation_thresholds_bps: Optional[Tuple[float, float]] = None,
    sfu_link: Optional[LinkProfile] = None,
) -> Testbed:
    """Build a Scallop SFU with the configured meetings, signed in and started."""
    config = config or MeetingSetupConfig()
    simulator = Simulator()
    network = Network(
        simulator,
        seed=config.seed,
        rx_coalesce_window_s=config.rx_coalesce_window_s if config.frame_bursts else 0.0,
    )
    sfu = ScallopSfu(
        SFU_ADDRESS,
        simulator,
        network,
        rewrite_variant=rewrite_variant,
        adaptation_thresholds_bps=adaptation_thresholds_bps,
        uplink_profile=sfu_link,
        downlink_profile=sfu_link,
        n_shards=config.n_shards,
        shard_executor=config.shard_executor,
    )
    testbed = Testbed(simulator=simulator, network=network, sfu=sfu)
    for meeting_index in range(config.num_meetings):
        for participant_index in range(config.participants_per_meeting):
            client = _make_client(testbed, config, meeting_index, participant_index, SFU_ADDRESS)
            sfu.join(client)
    sfu.start()
    for client in testbed.clients:
        client.start()
    return testbed


def build_software_testbed(
    config: Optional[MeetingSetupConfig] = None,
    cores: int = 1,
    cpu: Optional[CpuPool] = None,
    sfu_link: Optional[LinkProfile] = None,
    select_fn=None,
) -> Testbed:
    """Build the Mediasoup-like software SFU with the configured meetings."""
    from ..core.rate_control import select_decode_target

    config = config or MeetingSetupConfig()
    simulator = Simulator()
    network = Network(
        simulator,
        seed=config.seed,
        rx_coalesce_window_s=config.rx_coalesce_window_s if config.frame_bursts else 0.0,
    )
    sfu = SoftwareSfu(
        SFU_ADDRESS,
        simulator,
        network,
        cores=cores,
        cpu=cpu,
        uplink_profile=sfu_link,
        downlink_profile=sfu_link,
        select_fn=select_fn or select_decode_target,
    )
    testbed = Testbed(simulator=simulator, network=network, sfu=sfu)
    for meeting_index in range(config.num_meetings):
        for participant_index in range(config.participants_per_meeting):
            client = _make_client(testbed, config, meeting_index, participant_index, SFU_ADDRESS)
            sfu.join(client)
    for client in testbed.clients:
        client.start()
    return testbed


def add_participant(
    testbed: Testbed,
    config: MeetingSetupConfig,
    meeting_index: int,
    participant_index: int,
) -> WebRtcClient:
    """Add one more participant to a running testbed (used by the overload sweep)."""
    client = _make_client(testbed, config, meeting_index, participant_index, SFU_ADDRESS)
    sfu = testbed.sfu
    if isinstance(sfu, ScallopSfu):
        sfu.join(client)
    elif isinstance(sfu, SoftwareSfu):
        sfu.join(client)
    client.start()
    return client
