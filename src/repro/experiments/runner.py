"""DEPRECATED flat testbed builders — thin shims over :mod:`repro.scenario`.

Every workload in the repo now builds its topology through the declarative
Scenario API (:class:`~repro.scenario.Scenario` + ``build_scenario``), which
is strictly more expressive: heterogeneous meeting populations, timed
join/leave churn, link-profile phases, and the full backend matrix (shards,
executors, rebalancing) are all part of the spec.  The builders below remain
for source compatibility: each constructs the equivalent ``Scenario``
internally and returns the resulting :class:`~repro.scenario.ScenarioRun`
(a :class:`~repro.scenario.Testbed`), asserted stat-identical to the old
hand-rolled construction by ``tests/test_scenario.py``.

New code should use :mod:`repro.scenario` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from ..baseline.cpu import CpuPool
from ..core.capacity import RewriteVariant
from ..netsim.link import LinkProfile
from ..scenario import (
    BackendSpec,
    MeetingSpec,
    Scenario,
    ScenarioRun,
    Testbed,
    TrafficSpec,
    build_scenario,
)
from ..scenario.driver import SFU_ADDRESS
from ..webrtc.client import WebRtcClient

__all__ = [
    "SFU_ADDRESS",
    "MeetingSetupConfig",
    "Testbed",
    "add_participant",
    "build_scallop_testbed",
    "build_software_testbed",
]


@dataclass
class MeetingSetupConfig:
    """DEPRECATED flat meeting-population parameters.

    The kwargs pile this class accreted is exactly what
    :class:`~repro.scenario.Scenario` decomposes: population shape
    (:class:`~repro.scenario.MeetingSpec`), traffic model
    (:class:`~repro.scenario.TrafficSpec`), and backend configuration
    (:class:`~repro.scenario.BackendSpec`).  Kept as the shim input;
    :meth:`to_scenario` is the documented mapping.
    """

    num_meetings: int = 1
    participants_per_meeting: int = 3
    video_bitrate_bps: float = 2_200_000.0
    frame_rate: float = 30.0
    send_audio: bool = True
    send_video: bool = True
    access_uplink: Optional[LinkProfile] = None
    access_downlink: Optional[LinkProfile] = None
    seed: int = 1
    #: Deliver each video frame as a coalesced schedule-preserving burst.
    frame_bursts: bool = False
    #: Shard count of the Scallop dataplane.
    n_shards: int = 1
    #: Shard execution backend ("serial" or "process").
    shard_executor: str = "serial"
    #: Clients emit RTP wire-natively (packed buffers end to end).
    wire_native: bool = False
    #: RX interrupt-moderation window used when ``frame_bursts`` is on.
    rx_coalesce_window_s: float = 250e-6

    def meeting_spec(self) -> MeetingSpec:
        """This population's per-meeting spec (uniform across meetings)."""
        return MeetingSpec(
            participants=self.participants_per_meeting,
            video_bitrate_bps=self.video_bitrate_bps,
            frame_rate=self.frame_rate,
            send_audio=self.send_audio,
            send_video=self.send_video,
            uplink=self.access_uplink,
            downlink=self.access_downlink,
        )

    def to_scenario(self, backend: BackendSpec, duration_s: float = 30.0) -> Scenario:
        """The equivalent declarative scenario for this flat config."""
        spec = self.meeting_spec()
        return Scenario(
            name="legacy-testbed",
            meetings=tuple(spec for _ in range(self.num_meetings)),
            default_meeting=spec,
            backend=backend,
            traffic=TrafficSpec(
                frame_bursts=self.frame_bursts,
                wire_native=self.wire_native,
                rx_coalesce_window_s=self.rx_coalesce_window_s,
            ),
            duration_s=duration_s,
            seed=self.seed,
        )


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; build workloads through repro.scenario instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_scallop_testbed(
    config: Optional[MeetingSetupConfig] = None,
    rewrite_variant: RewriteVariant = RewriteVariant.S_LR,
    adaptation_thresholds_bps: Optional[Tuple[float, float]] = None,
    sfu_link: Optional[LinkProfile] = None,
) -> ScenarioRun:
    """DEPRECATED: build a Scallop testbed (shim over ``build_scenario``)."""
    _warn_deprecated("build_scallop_testbed")
    config = config or MeetingSetupConfig()
    backend = BackendSpec(
        kind="scallop",
        rewrite_variant=rewrite_variant,
        adaptation_thresholds_bps=adaptation_thresholds_bps,
        sfu_link=sfu_link,
        n_shards=config.n_shards,
        shard_executor=config.shard_executor,
    )
    return build_scenario(config.to_scenario(backend))


def build_software_testbed(
    config: Optional[MeetingSetupConfig] = None,
    cores: int = 1,
    cpu: Optional[CpuPool] = None,
    sfu_link: Optional[LinkProfile] = None,
    select_fn=None,
) -> ScenarioRun:
    """DEPRECATED: build the software-SFU testbed (shim over ``build_scenario``)."""
    _warn_deprecated("build_software_testbed")
    config = config or MeetingSetupConfig()
    backend = BackendSpec(
        kind="software",
        cores=cores,
        cpu=cpu,
        sfu_link=sfu_link,
        select_fn=select_fn,
    )
    return build_scenario(config.to_scenario(backend))


def add_participant(
    testbed: Testbed,
    config: MeetingSetupConfig,
    meeting_index: int,
    participant_index: int,
) -> WebRtcClient:
    """DEPRECATED: join one more participant (shim over ``ScenarioRun.add_participant``).

    ``config`` must be the config the testbed was built from (its media
    parameters live in the run's scenario; the argument is retained for
    source compatibility only).
    """
    del config  # parameters come from the run's scenario
    assert isinstance(testbed, ScenarioRun), "legacy testbeds are ScenarioRuns now"
    return testbed.add_participant(meeting_index, participant_index)
