"""Figures 3 and 4: QoE collapse of an under-provisioned software SFU.

Methodology (paper §2.2): Mediasoup is pinned to a single CPU core; meetings of
ten participants each are added one participant at a time while the receive
jitter and receive frame rate of the *first* meeting are measured through the
WebRTC statistics API.  Tail jitter explodes and the frame rate collapses once
the core saturates (around 80 participants on the paper's hardware).

Because the reproduction simulates every packet in Python, the default
parameters scale the media rates down and the per-packet CPU cost up by the
same factor, which preserves the saturation point (in participants) and the
shape of the jitter/frame-rate curves while keeping the event count tractable.
The scale factor is configurable; ``media_scale=1.0`` reproduces the paper's
full packet rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.metrics import percentile
from ..baseline.cpu import CpuPool
from ..netsim.link import LinkProfile
from ..rtp.av1 import DecodeTarget
from ..scenario import BackendSpec, MeetingSpec, Scenario, Testbed, TrafficSpec, build_scenario


@dataclass(frozen=True)
class OverloadSample:
    """QoE of meeting 0 at a given total participant count.

    ``mean_frame_rate_fps`` is measured at the (possibly scaled-down) encoder
    frame rate; ``normalized_frame_rate_fps`` maps it back onto the paper's
    30 fps axis so the Figure 4 shape can be compared directly.
    """

    participants: int
    cpu_utilization: float
    median_jitter_ms: float
    p95_jitter_ms: float
    p99_jitter_ms: float
    mean_frame_rate_fps: float
    min_frame_rate_fps: float
    normalized_frame_rate_fps: float = 0.0


@dataclass(frozen=True)
class OverloadResult:
    """The Figure 3 / Figure 4 series."""

    samples: List[OverloadSample]
    saturation_participants: Optional[int]

    def jitter_series(self) -> List[Tuple[int, float, float, float]]:
        """(participants, median, p95, p99 jitter in ms) — Figure 3."""
        return [(s.participants, s.median_jitter_ms, s.p95_jitter_ms, s.p99_jitter_ms) for s in self.samples]

    def frame_rate_series(self) -> List[Tuple[int, float]]:
        """(participants, mean received fps at meeting 0, on a 30 fps axis) — Figure 4."""
        return [(s.participants, s.normalized_frame_rate_fps) for s in self.samples]


@dataclass
class OverloadConfig:
    """Knobs of the overload sweep."""

    num_meetings: int = 10
    participants_per_meeting: int = 10
    seconds_per_join: float = 1.0
    measure_window_s: float = 1.0
    media_scale: float = 0.1
    saturation_participants: int = 80
    video_bitrate_bps: float = 2_200_000.0
    seed: int = 5
    #: Deliver frames as coalesced schedule-preserving bursts.  The software
    #: SFU ingests them through ``handle_datagram_batch`` (same modelled CPU
    #: cost per packet), so Figures 3/4 compare the baseline like-for-like
    #: with the batched/sharded Scallop path at high meeting counts.
    frame_bursts: bool = False

    @property
    def frame_rate(self) -> float:
        return max(2.0, 30.0 * self.media_scale)

    @property
    def scaled_bitrate_bps(self) -> float:
        return max(100_000.0, self.video_bitrate_bps * self.media_scale)

    def per_packet_cost_s(self) -> float:
        """Per-packet CPU cost calibrated so saturation occurs at the target
        participant count under the scaled media rates."""
        # offered CPU operations per second per participant: each sent packet
        # costs one receive op plus (participants - 1) send ops
        packets_per_second = self.frame_rate * 1.6 + 8.0  # video packets + RTCP/STUN
        ops_per_participant = packets_per_second * self.participants_per_meeting
        saturating_ops = self.saturation_participants * ops_per_participant
        return 1.0 / saturating_ops


def run_overload_experiment(config: Optional[OverloadConfig] = None) -> OverloadResult:
    """Run the incremental-overload sweep against the software SFU."""
    config = config or OverloadConfig()
    cpu = CpuPool(cores=1, base_cost_s=config.per_packet_cost_s(), per_byte_cost_s=0.0, seed=config.seed)
    # An open-ended population: the scenario declares no initial meetings,
    # only the template dynamically-joined meetings are stamped from; the
    # sweep below then drives imperative joins through the same driver the
    # schedule would use.  The paper's overload experiment does not constrain
    # any downlink, so the SFU never intentionally reduces quality:
    # frame-rate loss in Figure 4 comes purely from CPU overload (REMB-driven
    # layer dropping is disabled via ``select_fn``).
    scenario = Scenario(
        name="fig3-4-overload",
        meetings=(),
        default_meeting=MeetingSpec(
            video_bitrate_bps=config.scaled_bitrate_bps,
            frame_rate=config.frame_rate,
            send_audio=False,
        ),
        backend=BackendSpec(
            kind="software",
            cores=1,
            cpu=cpu,
            select_fn=lambda current, history, estimate: DecodeTarget.DT2,
        ),
        traffic=TrafficSpec(frame_bursts=config.frame_bursts),
        seed=config.seed,
    )

    samples: List[OverloadSample] = []
    saturation: Optional[int] = None
    total = 0
    with build_scenario(scenario) as testbed:
        for participant_index in range(config.participants_per_meeting):
            for meeting_index in range(config.num_meetings):
                testbed.add_participant(meeting_index, participant_index)
                total += 1
                testbed.run_for(config.seconds_per_join)
                sample = _measure(testbed, total, config)
                samples.append(sample)
                if saturation is None and sample.cpu_utilization >= 0.99:
                    saturation = total
    return OverloadResult(samples=samples, saturation_participants=saturation)


def _measure(testbed: Testbed, participants: int, config: OverloadConfig) -> OverloadSample:
    now = testbed.simulator.now
    meeting0 = testbed.meeting("meeting-0")
    jitters: List[float] = []
    frame_rates: List[float] = []
    for client in meeting0:
        for stream in client.video_receivers.values():
            jitters.append(stream.jitter_ms)
            frame_rates.append(stream.frame_rate(config.measure_window_s * 2, now))
    cpu = testbed.sfu.cpu  # type: ignore[attr-defined]
    utilization = cpu.max_utilization(now)
    if not jitters:
        jitters = [0.0]
    if not frame_rates:
        frame_rates = [0.0]
    mean_fps = sum(frame_rates) / len(frame_rates)
    return OverloadSample(
        participants=participants,
        cpu_utilization=utilization,
        median_jitter_ms=percentile(jitters, 50.0),
        p95_jitter_ms=percentile(jitters, 95.0),
        p99_jitter_ms=percentile(jitters, 99.0),
        mean_frame_rate_fps=mean_fps,
        min_frame_rate_fps=min(frame_rates),
        normalized_frame_rate_fps=mean_fps / config.frame_rate * 30.0,
    )


def format_overload(result: OverloadResult) -> str:
    lines = [f"{'parts':>6}{'cpu%':>7}{'median jit':>12}{'p95 jit':>10}{'p99 jit':>10}{'fps':>7}"]
    for s in result.samples:
        lines.append(
            f"{s.participants:>6}{s.cpu_utilization * 100:>7.0f}{s.median_jitter_ms:>12.2f}"
            f"{s.p95_jitter_ms:>10.2f}{s.p99_jitter_ms:>10.2f}{s.normalized_frame_rate_fps:>7.1f}"
        )
    if result.saturation_participants is not None:
        lines.append(f"CPU saturated at {result.saturation_participants} participants")
    return "\n".join(lines)
